//! Property-based differential test for the delta-driven engine mode:
//! on randomized simple positive systems, whenever the naive engine
//! reaches a fixpoint, the delta engine must reach an *equivalent*
//! fixpoint under every visit strategy — skipping calls whose read set
//! is unchanged may reorder and drop invocations but never changes the
//! limit (Theorem 2.1 confluence plus monotonicity of services).

use positive_axml::core::engine::{run, EngineConfig, EngineMode, RunStatus, Strategy};
use positive_axml::core::gensys::{random_simple_system, GenConfig};
use proptest::prelude::*;

const BUDGET: usize = 5_000;

fn gen_cfg(knob: u64) -> GenConfig {
    GenConfig {
        services: 2 + (knob % 3) as usize,
        docs: 1 + (knob % 2) as usize,
        head_call_prob: 0.15 + 0.2 * ((knob % 4) as f64),
        ..GenConfig::default()
    }
}

fn pick_strategy(ix: u8, seed: u64) -> Strategy {
    match ix % 3 {
        0 => Strategy::RoundRobin,
        1 => Strategy::Reverse,
        _ => Strategy::Random(seed ^ 0xABCD),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn delta_equals_naive_on_random_terminating_systems(
        seed in 0u64..1_000_000,
        knob in 0u64..24,
        strat_ix in 0u8..3,
    ) {
        let sys = random_simple_system(&gen_cfg(knob), seed);
        let mut naive = sys.clone();
        let (nstatus, nstats) =
            run(&mut naive, &EngineConfig::with_budget(BUDGET)).unwrap();
        if nstatus != RunStatus::Terminated {
            // Divergent system: nothing to compare at the limit.
            return Ok(());
        }
        let mut delta = sys.clone();
        let cfg = EngineConfig {
            mode: EngineMode::Delta,
            strategy: pick_strategy(strat_ix, seed),
            ..EngineConfig::with_budget(BUDGET)
        };
        let (dstatus, dstats) = run(&mut delta, &cfg).unwrap();
        prop_assert_eq!(dstatus, RunStatus::Terminated);
        prop_assert!(
            naive.equivalent_to(&delta),
            "seed {} knob {} strat {}: delta fixpoint differs from naive",
            seed, knob, strat_ix
        );
        // Delta never performs more evaluations than naive under the
        // same round-robin order; under other strategies the fixpoint
        // may be reached along a different path, so only check the
        // invariant that skips are real work not done.
        prop_assert!(dstats.invocations <= nstats.invocations + dstats.skipped);
    }
}
