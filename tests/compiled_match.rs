//! Differential coverage for compiled pattern matching: the compiled
//! path (`EngineConfig { compile: true }`) must be bit-for-bit
//! equivalent to the recursive interpreter across the full
//! {Naive,Delta} × {Scan,Indexed} × {Sequential,Workers} matrix —
//! identical fixpoints, invocation/productive/skip/round counts, final
//! node counts, snapshot-level bindings, and explain/provenance DAGs.
//!
//! Soundness background (see `docs/compilation.md`): the optimization
//! passes only remove work the interpreter would have proved redundant
//! (duplicate and ground-implied conjuncts with earlier surviving
//! witnesses), the emitted program evaluates the same canonical
//! (sorted + deduplicated) binding sets per level, and the runtime
//! still orders child joins by actual candidate size exactly like the
//! interpreter does.

use positive_axml::core::compile::ProgramCache;
use positive_axml::core::engine::{
    run, EngineConfig, EngineMode, Parallelism, RunStatus,
};
use positive_axml::core::eval::{snapshot_compiled, snapshot_with_strategy, Env};
use positive_axml::core::gensys::{random_simple_system, GenConfig};
use positive_axml::core::matcher::MatchStrategy;
use positive_axml::core::{parse_query, Sym};
use proptest::prelude::*;

const BUDGET: usize = 5_000;

fn gen_cfg(knob: u64) -> GenConfig {
    GenConfig {
        services: 2 + (knob % 3) as usize,
        docs: 1 + (knob % 2) as usize,
        head_call_prob: 0.15 + 0.2 * ((knob % 4) as f64),
        ..GenConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full matrix on random simple positive systems: every
    /// (mode, strategy, parallelism) cell computes the identical
    /// fixpoint and the identical run statistics with compilation on
    /// and off. The compiled run additionally reports program-cache
    /// traffic; the interpreted run never compiles anything.
    #[test]
    fn compiled_runs_reproduce_interpreted_runs(
        seed in 0u64..1_000_000,
        knob in 0u64..24,
    ) {
        let sys = random_simple_system(&gen_cfg(knob), seed);
        for mode in [EngineMode::Naive, EngineMode::Delta] {
            for strategy in [MatchStrategy::Scan, MatchStrategy::Indexed] {
                for parallelism in
                    [Parallelism::Sequential, Parallelism::Workers(2)]
                {
                    let base = EngineConfig {
                        mode,
                        match_strategy: strategy,
                        parallelism,
                        ..EngineConfig::with_budget(BUDGET)
                    };
                    let mut interp = sys.clone();
                    let (i_status, i_stats) = run(
                        &mut interp,
                        &EngineConfig { compile: false, ..base },
                    )
                    .unwrap();
                    if i_status != RunStatus::Terminated {
                        // Budget-exhausted prefixes are compared by the
                        // small-budget test below; their documents can
                        // be too deep for recursive canonicalization.
                        continue;
                    }
                    let mut comp = sys.clone();
                    let (c_status, c_stats) = run(
                        &mut comp,
                        &EngineConfig { compile: true, ..base },
                    )
                    .unwrap();
                    prop_assert!(
                        c_status == i_status,
                        "seed {} knob {} {:?}/{:?}/{:?}: status {:?} vs {:?}",
                        seed, knob, mode, strategy, parallelism,
                        c_status, i_status
                    );
                    prop_assert!(
                        comp.canonical_key() == interp.canonical_key(),
                        "seed {} knob {} {:?}/{:?}/{:?}: fixpoint diverged",
                        seed, knob, mode, strategy, parallelism
                    );
                    prop_assert!(c_stats.invocations == i_stats.invocations);
                    prop_assert!(c_stats.productive == i_stats.productive);
                    prop_assert!(c_stats.skipped == i_stats.skipped);
                    prop_assert!(c_stats.rounds == i_stats.rounds);
                    prop_assert!(c_stats.final_nodes == i_stats.final_nodes);
                    prop_assert!(c_stats.cache_hits == i_stats.cache_hits);
                    prop_assert!(c_stats.cache_misses == i_stats.cache_misses);
                    // Program-cache traffic is the only divergence.
                    prop_assert!(
                        i_stats.programs_compiled == 0
                            && i_stats.program_cache_hits == 0
                            && i_stats.program_cache_misses == 0
                    );
                    if c_stats.invocations > 0 {
                        prop_assert!(
                            c_stats.program_cache_hits
                                + c_stats.program_cache_misses
                                > 0,
                            "seed {} knob {}: compiled run never consulted \
                             the program cache",
                            seed, knob
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Budget-bounded prefixes: even when a random system does *not*
    /// terminate inside the budget, the compiled run's prefix must be
    /// identical to the interpreter's (same status, stats, and final
    /// canonical state).
    #[test]
    fn nonterminating_prefixes_identical_with_and_without_compilation(
        seed in 0u64..1_000_000,
    ) {
        let sys = random_simple_system(
            &GenConfig { head_call_prob: 0.9, ..GenConfig::default() },
            seed,
        );
        let mut outcomes = Vec::new();
        for compile in [false, true] {
            let mut runner = sys.clone();
            let cfg = EngineConfig {
                mode: EngineMode::Delta,
                compile,
                ..EngineConfig::with_budget(200)
            };
            let (status, stats) = run(&mut runner, &cfg).unwrap();
            outcomes.push((status, stats, runner.canonical_key()));
        }
        prop_assert!(outcomes[0].0 == outcomes[1].0);
        prop_assert!(outcomes[0].1.invocations == outcomes[1].1.invocations);
        prop_assert!(outcomes[0].1.rounds == outcomes[1].1.rounds);
        prop_assert!(outcomes[0].1.skipped == outcomes[1].1.skipped);
        prop_assert!(
            outcomes[0].2 == outcomes[1].2,
            "seed {}: prefix state diverged",
            seed
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Snapshot-level differential: on the documents a terminated run
    /// leaves behind, every positive service's compiled snapshot equals
    /// the interpreted snapshot tree-for-tree (same trees, same order —
    /// the binding sets are canonical, so equality is bit-for-bit).
    #[test]
    fn compiled_snapshots_are_bit_identical(
        seed in 0u64..1_000_000,
        knob in 0u64..24,
    ) {
        let mut sys = random_simple_system(&gen_cfg(knob), seed);
        let (status, _) = run(&mut sys, &EngineConfig::with_budget(200)).unwrap();
        if status == RunStatus::NodeBudget {
            return Ok(());
        }
        let mut env = Env::new();
        for &d in sys.doc_names() {
            env.insert(d, sys.doc(d).unwrap());
        }
        for strategy in [MatchStrategy::Scan, MatchStrategy::Indexed] {
            let mut programs = ProgramCache::new();
            for &svc in sys.service_names() {
                let Some(q) = sys.service_query(svc) else { continue };
                let interp = snapshot_with_strategy(q, &env, strategy);
                let comp = snapshot_compiled(q, &env, svc, &mut programs, strategy);
                match (interp, comp) {
                    (Ok((fi, _)), Ok((fc, _))) => {
                        let ti: Vec<String> =
                            fi.trees().iter().map(|t| t.to_string()).collect();
                        let tc: Vec<String> =
                            fc.trees().iter().map(|t| t.to_string()).collect();
                        prop_assert!(
                            ti == tc,
                            "seed {} knob {} {:?} service {}: forests diverged",
                            seed, knob, strategy, svc.as_str()
                        );
                    }
                    (Err(ei), Err(ec)) => prop_assert!(
                        ei.to_string() == ec.to_string(),
                        "seed {} knob {}: errors diverged: {ei} vs {ec}",
                        seed, knob
                    ),
                    (i, c) => prop_assert!(
                        false,
                        "seed {} knob {}: one path errored: {:?} vs {:?}",
                        seed, knob, i.is_ok(), c.is_ok()
                    ),
                }
            }
        }
    }
}

/// Provenance differential on the deterministic closure workload: the
/// compiled engine grafts the same nodes through the same invocation
/// records, so every answer's derivation DAG renders to the identical
/// DOT text as the interpreter's.
#[test]
fn explain_answer_dags_identical_with_and_without_compilation() {
    use positive_axml::core::engine::run_with_provenance;
    use positive_axml::core::matcher::match_pattern;
    use positive_axml::core::provenance::{Provenance, ProvenanceStore};
    use positive_axml::core::trace::Tracer;

    let mut dots: Vec<Vec<String>> = Vec::new();
    for compile in [false, true] {
        let mut sys = axml_bench::tc_random_digraph(32, 3, 12);
        let store = ProvenanceStore::new();
        let cfg = EngineConfig {
            compile,
            ..EngineConfig::with_mode(EngineMode::Delta)
        };
        let (status, _) =
            run_with_provenance(&mut sys, &cfg, Tracer::disabled(), Provenance::new(&store))
                .unwrap();
        assert_eq!(status, RunStatus::Terminated);

        let q = parse_query("path{$x,$y} :- d1/r{t{from{$x},to{$y}}}").unwrap();
        let t = sys.doc(Sym::intern("d1")).unwrap();
        let bindings = match_pattern(&q.body[0].pattern, t);
        assert!(!bindings.is_empty());
        let rendered: Vec<String> = bindings
            .iter()
            .map(|b| store.explain_answer(&sys, &q, b).lineage.to_dot())
            .collect();
        dots.push(rendered);
    }
    assert_eq!(
        dots[0], dots[1],
        "derivation DAGs diverged between interpreter and compiled engine"
    );
}

/// Redundant conjuncts: a service body with a literal duplicate atom
/// and a ground atom implied by it compiles to a one-atom program, and
/// the compiled fixpoint still matches the interpreter's exactly.
#[test]
fn redundant_conjuncts_are_eliminated_without_observable_effect() {
    let build = || {
        let mut sys = positive_axml::core::System::new();
        sys.add_document_text(
            "d0",
            r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, @f}"#,
        )
        .unwrap();
        sys.add_service_text(
            "f",
            "t{from{$x},to{$y}} :- \
             d0/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}, \
             d0/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}, \
             d0/r{t}",
        )
        .unwrap();
        sys
    };
    // The pattern itself compiles down to one atom...
    let sys = build();
    let q = sys.service_query(Sym::intern("f")).unwrap();
    let compiled = positive_axml::core::compile::compile_query(
        q,
        None,
        MatchStrategy::Indexed,
    );
    assert_eq!(compiled.plan().atoms.len(), 1);
    assert_eq!(compiled.plan().eliminated.len(), 2);
    // ...and both engines agree on the closure.
    let mut interp = build();
    let (s1, st1) = run(&mut interp, &EngineConfig::with_compile(false)).unwrap();
    let mut comp = build();
    let (s2, st2) = run(&mut comp, &EngineConfig::with_compile(true)).unwrap();
    assert_eq!(s1, RunStatus::Terminated);
    assert_eq!(s2, RunStatus::Terminated);
    assert_eq!(interp.canonical_key(), comp.canonical_key());
    assert_eq!(st1.invocations, st2.invocations);
    assert_eq!(st1.productive, st2.productive);
    assert!(st2.programs_compiled > 0);
}

/// The compiled run emits its compile-category trace events, and they
/// are the *only* difference between the two engines' journals.
#[test]
fn trace_streams_differ_only_in_compile_events() {
    use positive_axml::core::trace::{EventKind, Journal, Tracer};

    let journal_of = |compile: bool| {
        let mut sys = axml_bench::tc_system(10);
        let journal = Journal::new();
        let cfg = EngineConfig {
            compile,
            ..EngineConfig::with_mode(EngineMode::Delta)
        };
        positive_axml::core::engine::run_traced(&mut sys, &cfg, Tracer::new(&journal))
            .unwrap();
        journal.snapshot()
    };
    let is_compile_event = |k: &EventKind| {
        matches!(
            k,
            EventKind::PlanCompiled { .. }
                | EventKind::ProgramCacheHit { .. }
                | EventKind::ProgramCacheMiss { .. }
        )
    };
    let interp = journal_of(false);
    let comp = journal_of(true);
    assert!(!interp.iter().any(|e| is_compile_event(&e.kind)));
    assert!(comp.iter().any(|e| matches!(e.kind, EventKind::PlanCompiled { .. })));
    assert!(comp.iter().any(|e| matches!(e.kind, EventKind::ProgramCacheHit { .. })));
    // Zero out wall-clock fields (run-specific) and index-probe tallies
    // (the decorrelated evaluator computes each child relation once per
    // level instead of once per parent binding, so it legitimately
    // probes *less* — the only accounting the two paths don't share).
    // Everything else must be identical.
    let zero_after = |s: String, field: &str| -> String {
        let mut out = String::new();
        let mut rest = s.as_str();
        while let Some(i) = rest.find(field) {
            let j = i + field.len();
            out.push_str(&rest[..j]);
            out.push('0');
            let tail = &rest[j..];
            let k = tail
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(tail.len());
            rest = &tail[k..];
        }
        out.push_str(rest);
        out
    };
    let norm = |s: String| -> String {
        ["dur_ns: ", "probes: ", "probe_hits: ", "fallbacks: "]
            .iter()
            .fold(s, |s, f| zero_after(s, f))
    };
    let strip = |evs: &[positive_axml::core::trace::TraceEvent]| -> Vec<String> {
        evs.iter()
            .filter(|e| !is_compile_event(&e.kind))
            .map(|e| norm(format!("{:?}", e.kind)))
            .collect()
    };
    assert_eq!(
        strip(&interp),
        strip(&comp),
        "non-compile event streams diverged"
    );
}

/// The forced-interpreter escape hatch: `AXML_FORCE_INTERPRET` only
/// flips the *default*; an explicit `compile` in the config always
/// wins, which is what this suite sweeps.
#[test]
fn explicit_compile_overrides_are_independent() {
    let build = || axml_bench::tc_system(12);
    let mut interp = build();
    let (s1, st1) = run(&mut interp, &EngineConfig::with_compile(false)).unwrap();
    let mut comp = build();
    let (s2, st2) = run(&mut comp, &EngineConfig::with_compile(true)).unwrap();
    assert_eq!(s1, RunStatus::Terminated);
    assert_eq!(s2, RunStatus::Terminated);
    assert_eq!(interp.canonical_key(), comp.canonical_key());
    assert_eq!(st1.programs_compiled, 0);
    assert!(st2.programs_compiled > 0);
}
