//! Differential coverage for consistent-hash placement: a
//! [`ShardedNetwork`] must reach the same per-tenant fixpoint for
//! every peer count, every ring seed, and across mid-run peer joins
//! and leaves — with the placement-independent journal projection and
//! the tenant-level provenance DAGs bit-for-bit identical too.
//!
//! Soundness background (see `docs/sharding.md`): tenant state
//! (subscriptions, seen-sets, digests) lives at the tenant, commits
//! happen in a canonical per-round order, and Theorem 2.1 (confluence
//! of fair rewritings) pins every placement's schedule to the same
//! limit. Only message events and wall-clock timings may differ
//! between placements.

use axml_bench::sharded_tenant_network;
use positive_axml::core::provenance::Origin;
use positive_axml::core::trace::{EventKind, TraceEvent};
use positive_axml::p2p::{
    detect_termination_sharded_with, ShardedConfig, ShardedNetwork, Verdict,
};
use proptest::prelude::*;

const PEER_COUNTS: [usize; 3] = [1, 2, 4];
const MAX_ROUNDS: usize = 200;

fn net_with(peers: usize, pairs: usize, chain: usize, ring_seed: u64) -> ShardedNetwork {
    let cfg = ShardedConfig {
        seed: ring_seed,
        ..ShardedConfig::default()
    };
    sharded_tenant_network(peers, pairs, chain, cfg)
}

/// The placement-independent projection of a journal: drop the
/// message-plane events (`MsgSend`/`MsgRecv` name physical peers;
/// `PeerEval` carries wall-clock latency) and zero the one timing
/// field the logical plane records (`Invoke::dur_ns`). Everything
/// left — round boundaries, call selection, invocations, grafts,
/// reductions, cache and index activity — is emitted in canonical
/// commit order and must be identical for every placement.
fn logical_projection(events: &[TraceEvent]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::MsgSend { .. }
            | EventKind::MsgRecv { .. }
            | EventKind::PeerEval { .. } => None,
            EventKind::Invoke {
                doc,
                node,
                service,
                changed,
                grafted,
                result_trees,
                doc_version,
                ..
            } => Some(format!(
                "Invoke {doc} {node:?} {service} {changed} {grafted} {result_trees} {doc_version}"
            )),
            ref kind => Some(format!("{kind:?}")),
        })
        .collect()
}

/// Every tenant's provenance, rendered placement-independently: for
/// each document (tenant-name order), the origin stamp of every live
/// node in traversal order. Origins are tenant-level (`Remote`
/// records the provider *tenant*, not the physical peer) with seqs
/// assigned in canonical commit order.
fn origin_projection(net: &ShardedNetwork) -> Vec<String> {
    let mut tenants: Vec<_> = net.tenant_names();
    tenants.sort_unstable_by(|a, b| a.as_str().cmp(b.as_str()));
    let mut out = Vec::new();
    for name in tenants {
        let peer = net.tenant(name.as_str()).expect("tenant exists");
        let store = net
            .provenance_store(name.as_str())
            .expect("provenance enabled");
        for &doc in peer.doc_names() {
            let tree = peer.doc(doc.as_str()).expect("doc exists");
            for node in tree.iter_live(tree.root()) {
                out.push(format!(
                    "{name}/{doc}: {:?}",
                    store.origin(doc, node)
                ));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Placement transparency over the workload and the ring: for any
    /// tenant-pair workload size and any ring seed (i.e. any
    /// tenant→peer assignment), every peer count reaches the same
    /// canonical fixpoint through the same number of rounds and
    /// evaluations, and remote traffic appears exactly when there is
    /// more than one peer to cross.
    #[test]
    fn fixpoint_identical_across_peer_counts(
        pairs in 1usize..4,
        chain in 2usize..8,
        ring_seed in 0u64..1_000_000,
    ) {
        let mut outcomes = Vec::new();
        for &peers in &PEER_COUNTS {
            let mut net = net_with(peers, pairs, chain, ring_seed);
            let quiet = net.run(MAX_ROUNDS).unwrap();
            prop_assert!(quiet, "peers {}: did not quiesce", peers);
            if peers == 1 {
                prop_assert_eq!(net.stats.remote_deliveries, 0);
            }
            outcomes.push((
                net.canonical_key(),
                net.stats.rounds,
                net.stats.evaluations,
            ));
        }
        for o in &outcomes[1..] {
            prop_assert!(o.0 == outcomes[0].0, "fixpoint diverged (seed {})", ring_seed);
            prop_assert!(o.1 == outcomes[0].1, "round count diverged");
            prop_assert!(o.2 == outcomes[0].2, "evaluation count diverged");
        }
    }

    /// Elasticity: a peer joining (and, separately, leaving) in the
    /// middle of the run migrates documents but cannot change the
    /// fixpoint, and the termination detector still reaches a
    /// `Terminated` verdict across the epoch bump.
    #[test]
    fn mid_run_join_and_leave_preserve_fixpoint(
        pairs in 1usize..4,
        chain in 2usize..8,
        event_round in 0usize..4,
    ) {
        let mut stable = net_with(2, pairs, chain, ShardedConfig::default().seed);
        prop_assert!(stable.run(MAX_ROUNDS).unwrap());
        let want = stable.canonical_key();

        let mut joined = net_with(2, pairs, chain, ShardedConfig::default().seed);
        let verdict = detect_termination_sharded_with(&mut joined, MAX_ROUNDS, |n, round| {
            if round == event_round {
                n.join_peer("late");
            }
        })
        .unwrap();
        let terminated = matches!(verdict, Verdict::Terminated { .. });
        prop_assert!(terminated, "join run did not terminate");
        // The epoch moves exactly when the ring actually reassigned a
        // tenant (small workloads may hash nothing onto the joiner).
        let moved = joined.stats.rebalance_moves > 0;
        prop_assert!(moved == (joined.epoch() > 0), "epoch must track migrations");
        prop_assert!(joined.canonical_key() == want, "join changed the fixpoint");

        let mut shrunk = net_with(3, pairs, chain, ShardedConfig::default().seed);
        let verdict = detect_termination_sharded_with(&mut shrunk, MAX_ROUNDS, |n, round| {
            if round == event_round {
                n.leave_peer("peer-2").unwrap();
            }
        })
        .unwrap();
        let terminated = matches!(verdict, Verdict::Terminated { .. });
        prop_assert!(terminated, "leave run did not terminate");
        prop_assert!(shrunk.canonical_key() == want, "leave changed the fixpoint");
    }
}

/// The structured journal, projected onto its logical plane, is
/// bit-for-bit identical for every peer count — placement only adds
/// message events and changes timings, never the derivation itself.
#[test]
fn journal_projection_identical_across_peer_counts() {
    let mut projections = Vec::new();
    for &peers in &PEER_COUNTS {
        let mut net = net_with(peers, 3, 8, ShardedConfig::default().seed);
        net.enable_tracing();
        assert!(net.run(MAX_ROUNDS).unwrap());
        let events = net.take_journal();
        let sends = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MsgSend { .. }))
            .count();
        assert!(sends > 0, "peers {peers}: calls are journalled");
        projections.push(logical_projection(&events));
    }
    assert!(!projections[0].is_empty());
    assert_eq!(projections[0], projections[1], "1-peer vs 2-peer journals");
    assert_eq!(projections[0], projections[2], "1-peer vs 4-peer journals");
}

/// Tenant-level provenance is placement-independent: every live
/// node's origin stamp — including `Remote` stamps naming the
/// provider tenant and canonical invocation seqs — is identical for
/// every peer count and across a mid-run join.
#[test]
fn provenance_origins_identical_across_peer_counts_and_join() {
    let mut baseline: Option<Vec<String>> = None;
    for &peers in &PEER_COUNTS {
        let mut net = net_with(peers, 3, 8, ShardedConfig::default().seed);
        net.enable_provenance();
        assert!(net.run(MAX_ROUNDS).unwrap());
        let origins = origin_projection(&net);
        assert!(
            origins.iter().any(|o| o.contains("Remote")),
            "peers {peers}: delivered nodes are stamped Origin::Remote"
        );
        match &baseline {
            None => baseline = Some(origins),
            Some(b) => assert_eq!(b, &origins, "origins diverged at {peers} peers"),
        }
    }

    let mut joined = net_with(2, 3, 8, ShardedConfig::default().seed);
    joined.enable_provenance();
    let verdict = detect_termination_sharded_with(&mut joined, MAX_ROUNDS, |n, round| {
        if round == 1 {
            n.join_peer("late");
        }
    })
    .unwrap();
    assert!(matches!(verdict, Verdict::Terminated { .. }));
    assert_eq!(
        baseline.as_deref(),
        Some(origin_projection(&joined).as_slice()),
        "a mid-run join must not perturb lineage"
    );
}

/// Migrated state is whole state: after a join forces a rebalance,
/// every tenant's individual state key matches the undisturbed run's
/// (not just the network-wide aggregate), and the seed stamps of
/// pre-run documents survive the move.
#[test]
fn rebalance_moves_whole_tenant_state() {
    let mut stable = net_with(2, 3, 8, ShardedConfig::default().seed);
    assert!(stable.run(MAX_ROUNDS).unwrap());

    let mut joined = net_with(2, 3, 8, ShardedConfig::default().seed);
    joined.enable_provenance();
    let verdict = detect_termination_sharded_with(&mut joined, MAX_ROUNDS, |n, round| {
        if round == 2 {
            n.join_peer("late");
        }
    })
    .unwrap();
    assert!(matches!(verdict, Verdict::Terminated { .. }));
    assert!(joined.stats.rebalance_moves > 0, "the join must migrate documents");

    let mut tenants = stable.tenant_names();
    tenants.sort_unstable_by(|a, b| a.as_str().cmp(b.as_str()));
    for t in tenants {
        assert_eq!(
            stable.tenant_state_key(t),
            joined.tenant_state_key(t),
            "tenant {t}: state diverged across the rebalance"
        );
    }
    // Seed stamps survive migration: producer accumulator roots were
    // present before the run and must still read `Origin::Seed`.
    let store = joined.provenance_store("prod-0").unwrap();
    let peer = joined.tenant("prod-0").unwrap();
    let acc = peer.doc("acc").unwrap();
    let doc = positive_axml::core::Sym::intern("acc");
    assert!(matches!(store.origin(doc, acc.root()), Some(Origin::Seed)));
}
