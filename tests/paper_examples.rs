//! End-to-end reproductions of every worked example in the paper.

use positive_axml::core::engine::{run, EngineConfig, RunStatus, Strategy};
use positive_axml::core::eval::{snapshot, Env};
use positive_axml::core::graphrepr::{decide_termination, GraphRepr, Termination};
use positive_axml::core::query::parse_query;
use positive_axml::core::{equivalent, parse_tree, System};

/// §2.1: the jazz directory with GetRating; invocation appends the
/// rating as a sibling of the call.
#[test]
fn section_2_1_get_rating() {
    let mut sys = System::new();
    sys.add_document_text(
        "dir",
        r#"directory{
            cd{title{"L'amour"}, singer{"Carla Bruni"}, rating{"***"}},
            cd{title{"Body and Soul"}, singer{"Billie Holiday"},
               @GetRating{"Body and Soul"}},
            cd{title{"Where or When"}, singer{"Peggy Lee"}, rating{"*****"}}
        }"#,
    )
    .unwrap();
    sys.add_document_text(
        "ratings",
        r#"db{entry{name{"Body and Soul"}, stars{"****"}}}"#,
    )
    .unwrap();
    sys.add_service_text(
        "GetRating",
        r#"rating{$s} :- input/input{$n}, ratings/db{entry{name{$n}, stars{$s}}}"#,
    )
    .unwrap();
    let (d, n) = sys.function_nodes()[0];
    positive_axml::core::invoke_node(&mut sys, d, n).unwrap();
    let expected = parse_tree(
        r#"directory{
            cd{title{"L'amour"}, singer{"Carla Bruni"}, rating{"***"}},
            cd{title{"Body and Soul"}, singer{"Billie Holiday"},
               @GetRating{"Body and Soul"}, rating{"****"}},
            cd{title{"Where or When"}, singer{"Peggy Lee"}, rating{"*****"}}
        }"#,
    )
    .unwrap();
    assert!(equivalent(sys.doc("dir".into()).unwrap(), &expected));
}

/// Example 2.1: d/a{f} with f returning a{f} — the displayed rewriting
/// prefix, non-termination, and the graph diagnosis.
#[test]
fn example_2_1_full_story() {
    let build = || {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "a{@f} :-").unwrap();
        sys
    };
    // Bounded engine run never terminates.
    let mut sys = build();
    let (status, _) = run(&mut sys, &EngineConfig::with_budget(100)).unwrap();
    assert_eq!(status, RunStatus::InvocationBudget);
    // Theorem 3.3's procedure diagnoses divergence on the simple system.
    assert!(matches!(
        decide_termination(&build()).unwrap(),
        Termination::Diverges { .. }
    ));
    // The engine's bounded state embeds into the graph representation's
    // truncated unfolding (they describe the same limit).
    let repr = GraphRepr::build(&build()).unwrap();
    let droot = repr.roots[&"d".into()];
    let prefix = repr.graph.unfold_truncated(droot, 64);
    assert!(positive_axml::core::subsumed(
        sys.doc("d".into()).unwrap(),
        &prefix
    ));
}

/// Example 3.1: both the label-variable and the tree-variable query.
#[test]
fn example_3_1_queries() {
    let d = parse_tree(
        r#"r{t{a{"1"},b{c{"2"},d{"3"}}},
            t{a{"1"},b{c{"3"},e{"3"}}},
            t{a{"2"},b{c{"2"},k{"6"}}}}"#,
    )
    .unwrap();
    let dp = parse_tree(r#"a{"1"}"#).unwrap();
    let mut env = Env::new();
    env.insert("d".into(), &d);
    env.insert("dp".into(), &dp);

    let simple = parse_query("?z :- dp/a{$x}, d/r{t{a{$x},b{?z}}}").unwrap();
    let mut labels: Vec<String> = snapshot(&simple, &env)
        .unwrap()
        .trees()
        .iter()
        .map(ToString::to_string)
        .collect();
    labels.sort();
    assert_eq!(labels, ["c", "d", "e"]);

    let treeq = parse_query("#Z :- dp/a{$x}, d/r{t{a{$x},b{#Z}}}").unwrap();
    let mut trees: Vec<String> = snapshot(&treeq, &env)
        .unwrap()
        .trees()
        .iter()
        .map(ToString::to_string)
        .collect();
    trees.sort();
    assert_eq!(
        trees,
        [r#"c{"2"}"#, r#"c{"3"}"#, r#"d{"3"}"#, r#"e{"3"}"#]
    );
}

/// Example 3.2: the transitive closure converges, under every strategy,
/// to the same fixpoint, and the Theorem 3.3 verdict is Terminates.
#[test]
fn example_3_2_closure_confluent() {
    let build = || {
        let mut sys = System::new();
        sys.add_document_text(
            "d0",
            r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, t{from{"3"},to{"4"}}}"#,
        )
        .unwrap();
        sys.add_document_text("d1", "r{@g,@f}").unwrap();
        sys.add_service_text("g", "t{from{$x},to{$y}} :- d0/r{t{from{$x},to{$y}}}")
            .unwrap();
        sys.add_service_text(
            "f",
            "t{from{$x},to{$y}} :- d1/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
        )
        .unwrap();
        sys
    };
    assert_eq!(
        decide_termination(&build()).unwrap(),
        Termination::Terminates
    );
    let mut reference = build();
    run(&mut reference, &EngineConfig::default()).unwrap();
    for s in [Strategy::Reverse, Strategy::Random(11), Strategy::Random(99)] {
        let mut sys = build();
        run(&mut sys, &EngineConfig::with_strategy(s)).unwrap();
        assert!(sys.equivalent_to(&reference));
    }
}

/// Example 3.3: d'/a{a{b},g} with the tree-variable service grows a
/// non-regular family a^i{b}; the displayed prefix is reproduced.
#[test]
fn example_3_3_displayed_rewriting() {
    let mut sys = System::new();
    sys.add_document_text("d", "a{a{b},@g}").unwrap();
    sys.add_service_text("g", "a{a{#X}} :- context/a{a{#X}}").unwrap();
    let (d, n) = sys.function_nodes()[0];
    let expect = [
        "a{a{b}, a{a{b}}, @g}",
        "a{a{b}, a{a{b}}, a{a{a{b}}}, @g}",
        "a{a{b}, a{a{b}}, a{a{a{b}}}, a{a{a{a{b}}}}, @g}",
    ];
    for e in expect {
        positive_axml::core::invoke_node(&mut sys, d, n).unwrap();
        assert!(
            equivalent(sys.doc("d".into()).unwrap(), &parse_tree(e).unwrap()),
            "expected {e}, got {}",
            sys.doc("d".into()).unwrap()
        );
    }
    // Non-simple: the graph representation rightfully refuses.
    assert!(GraphRepr::build(&sys).is_err());
}

/// §5's nesting example: the given simple system nests the relation on
/// its a-column.
#[test]
fn section_5_nesting() {
    let mut sys = System::new();
    sys.add_document_text(
        "d",
        r#"r{t{a{"1"}, b{"2"}}, t{a{"1"}, b{"3"}}, t{a{"2"}, b{"2"}}}"#,
    )
    .unwrap();
    sys.add_document_text("dn", "r{@f}").unwrap();
    sys.add_service_text("f", "t{a{$x}, @g} :- d/r{t{a{$x}}}").unwrap();
    sys.add_service_text("g", "b{$y} :- context/t{a{$x}}, d/r{t{a{$x}, b{$y}}}")
        .unwrap();
    assert!(sys.is_simple());
    let (status, _) = run(&mut sys, &EngineConfig::default()).unwrap();
    assert_eq!(status, RunStatus::Terminated);
    let expected = parse_tree(
        r#"r{@f, t{a{"1"}, @g, b{"2"}, b{"3"}}, t{a{"2"}, @g, b{"2"}}}"#,
    )
    .unwrap();
    assert!(
        equivalent(sys.doc("dn".into()).unwrap(), &expected),
        "got {}",
        sys.doc("dn".into()).unwrap()
    );
}

/// §4 intro: both the materialized rating and the intensional call are
/// possible answers to the rating query.
#[test]
fn section_4_possible_answers() {
    use positive_axml::core::forest::Forest;
    use positive_axml::core::lazy::is_possible_answer;
    let mut sys = System::new();
    sys.add_document_text(
        "dir",
        r#"directory{cd{title{"Body and Soul"}, @GetRating{"Body and Soul"}}}"#,
    )
    .unwrap();
    sys.add_document_text(
        "ratings",
        r#"db{entry{name{"Body and Soul"}, stars{"****"}}}"#,
    )
    .unwrap();
    sys.add_service_text(
        "GetRating",
        r#"rating{$s} :- input/input{$n}, ratings/db{entry{name{$n}, stars{$s}}}"#,
    )
    .unwrap();
    let q = parse_query(
        r#"rating{$s} :- dir/directory{cd{title{"Body and Soul"}, rating{$s}}}"#,
    )
    .unwrap();
    let materialized = Forest::from_trees(vec![parse_tree(r#"rating{"****"}"#).unwrap()]);
    assert!(is_possible_answer(&sys, &q, &materialized).unwrap());
    let wrong = Forest::from_trees(vec![parse_tree(r#"rating{"*"}"#).unwrap()]);
    assert!(!is_possible_answer(&sys, &q, &wrong).unwrap());
}
