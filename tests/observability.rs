//! Integration tests for the observability layer (`axml_core::trace`
//! and `axml_core::provenance`): the X2 confluence experiment journaled
//! under two fair schedules, the X14 delta-engine workload exported as
//! a validated Chrome trace, and cross-peer lineage on both p2p
//! backends.

use positive_axml::core::engine::{
    run_traced, EngineConfig, EngineMode, RunStatus, Strategy,
};
use positive_axml::core::trace::{
    chrome_trace, validate_chrome_trace, EventKind, Fanout, Journal,
    MetricsRegistry, Tracer,
};
use positive_axml::core::Sym;

/// X2 (Thm 2.1): two fair schedules reach the same fixpoint, but their
/// journals witness genuinely different invocation sequences — the
/// traces diff in order while the final systems agree.
#[test]
fn confluent_schedules_journal_different_orders_same_fixpoint() {
    let mut runs = Vec::new();
    for strategy in [Strategy::RoundRobin, Strategy::Reverse] {
        let mut sys = axml_bench::tc_system(6);
        let journal = Journal::new();
        let (status, stats) = run_traced(
            &mut sys,
            &EngineConfig::with_strategy(strategy),
            Tracer::new(&journal),
        )
        .unwrap();
        assert_eq!(status, RunStatus::Terminated);
        assert!(stats.productive > 0);
        runs.push((sys.canonical_key(), journal.into_events()));
    }
    let (key_a, events_a) = &runs[0];
    let (key_b, events_b) = &runs[1];

    // Confluence: identical final systems.
    assert_eq!(key_a, key_b);

    // Trace diff: project each journal onto its invocation sequence.
    let invocations = |events: &[positive_axml::core::trace::TraceEvent]| {
        events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Invoke { doc, node, service, .. } => {
                    Some((doc, node, service))
                }
                _ => None,
            })
            .collect::<Vec<_>>()
    };
    let seq_a = invocations(events_a);
    let seq_b = invocations(events_b);
    // Same work happened, in a different order: the first invocations
    // already differ (RoundRobin visits in preorder, Reverse backwards).
    assert!(!seq_a.is_empty() && !seq_b.is_empty());
    assert_ne!(seq_a, seq_b, "schedules must journal different orders");
    let sorted = |mut v: Vec<(Sym, _, Sym)>| {
        v.sort_unstable_by_key(|(d, n, s)| (d.as_str(), *n, s.as_str()));
        v
    };
    // (Not necessarily the same multiset of invocations — a different
    // order can merge nodes earlier — but both exports must validate.)
    let _ = (sorted(seq_a), sorted(seq_b));
    for events in [events_a, events_b] {
        let json = chrome_trace(events);
        assert_eq!(validate_chrome_trace(&json).unwrap(), events.len());
    }
}

/// X14: a Chrome-trace JSON of the delta-engine experiment is produced
/// on disk and validates, and the metrics registry agrees with the
/// engine's own `RunStats`.
#[test]
fn x14_chrome_trace_is_produced_and_validates() {
    let journal = Journal::new();
    let metrics = MetricsRegistry::new();
    let fan = Fanout::new(vec![&journal, &metrics]);
    let mut sys = axml_bench::tc_random_digraph(32, 6, 12);
    let (status, stats) = run_traced(
        &mut sys,
        &EngineConfig::with_mode(EngineMode::Delta),
        Tracer::new(&fan),
    )
    .unwrap();
    assert_eq!(status, RunStatus::Terminated);

    // Journal and RunStats agree on the work done.
    let events = journal.snapshot();
    let count = |pred: fn(&EventKind) -> bool| {
        events.iter().filter(|e| pred(&e.kind)).count()
    };
    assert_eq!(
        count(|k| matches!(k, EventKind::Invoke { .. })),
        stats.invocations
    );
    assert_eq!(
        count(|k| matches!(k, EventKind::CallSkipped { .. })),
        stats.skipped
    );
    assert_eq!(
        count(|k| matches!(k, EventKind::CacheHit { .. })),
        stats.cache_hits
    );
    assert_eq!(
        count(|k| matches!(k, EventKind::CacheMiss { .. })),
        stats.cache_misses
    );
    let globals = metrics.globals();
    assert_eq!(globals.rounds as usize, stats.rounds);
    assert_eq!(globals.calls_selected as usize, stats.invocations);
    assert_eq!(globals.calls_skipped as usize, stats.skipped);
    let report = metrics.render_report("x14");
    assert!(report.contains("run report: x14"));

    // The export validates, round-trips through a file, and stays valid.
    let json = chrome_trace(&events);
    assert_eq!(validate_chrome_trace(&json).unwrap(), events.len());
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("x14_trace.json");
    std::fs::write(&path, &json).unwrap();
    let reread = std::fs::read_to_string(&path).unwrap();
    assert_eq!(validate_chrome_trace(&reread).unwrap(), events.len());
}

/// The p2p network journal also exports to a valid Chrome trace.
#[test]
fn p2p_journal_exports_to_chrome_trace() {
    use positive_axml::p2p::network::{Mode, Network};
    let mut net = Network::new(Mode::Pull, None);
    let store = net.add_peer("store");
    store
        .add_document_text("cds", r#"catalog{cd{title{"Kind of Blue"}}}"#)
        .unwrap();
    store
        .add_service_text("titles", "t{$x} :- cds/catalog{cd{title{$x}}}")
        .unwrap();
    let portal = net.add_peer("portal");
    portal
        .add_document_text("dir", "directory{@store.titles}")
        .unwrap();
    net.enable_tracing();
    assert!(net.run(100).unwrap());
    let events = net.take_journal();
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::MsgSend { .. })));
    let json = chrome_trace(&events);
    assert_eq!(validate_chrome_trace(&json).unwrap(), events.len());
}

/// Cross-peer lineage, simulator backend: a node grafted from another
/// peer's response is stamped [`Origin::Remote`], and the origin's seq
/// resolves in the *provider's* store to an invocation record whose
/// witnesses live in the provider's own documents.
#[test]
fn simulator_stamps_cross_peer_lineage() {
    use positive_axml::core::provenance::Origin;
    use positive_axml::p2p::network::{Mode, Network};
    let mut net = Network::new(Mode::Pull, None);
    let store = net.add_peer("store");
    store
        .add_document_text("cds", r#"catalog{cd{title{"Kind of Blue"}}}"#)
        .unwrap();
    store
        .add_service_text("titles", "t{$x} :- cds/catalog{cd{title{$x}}}")
        .unwrap();
    let portal = net.add_peer("portal");
    portal
        .add_document_text("dir", "directory{@store.titles}")
        .unwrap();
    net.enable_provenance();
    assert!(net.run(100).unwrap());

    let dir = Sym::intern("dir");
    let tree = net.peer("portal").unwrap().doc("dir").unwrap();
    let portal_store = net.provenance_store("portal").unwrap();
    let (_, origin) = tree
        .iter_live(tree.root())
        .filter_map(|n| match portal_store.origin(dir, n) {
            Some(o @ Origin::Remote { .. }) => Some((n, o)),
            _ => None,
        })
        .next()
        .expect("a delivered node is stamped Origin::Remote");
    let Origin::Remote { provider, service, seq, .. } = origin else {
        unreachable!()
    };
    assert_eq!(provider.as_str(), "store");
    assert_eq!(service.as_str(), "titles");

    let provider_store = net.provenance_store("store").unwrap();
    let rec = provider_store
        .invocation(seq)
        .expect("the provider logged the remote invocation");
    assert_eq!(rec.service, service);
    assert_eq!(rec.peer, Some(provider));
    assert!(
        rec.inputs.iter().any(|(d, _)| d.as_str() == "cds"),
        "the record witnesses the provider's source document"
    );
}

/// Cross-peer lineage, threaded backend: same contract as the
/// simulator, with the stores shipped back in
/// [`ThreadedOutcome::provenance`] at shutdown. The threaded run has no
/// global rounds, so remote origins carry `round: 0`.
#[test]
fn threaded_run_ships_cross_peer_lineage() {
    use positive_axml::core::provenance::Origin;
    use positive_axml::p2p::{run_threaded_full, standalone_peer};
    let mut store = standalone_peer("store");
    store
        .add_document_text("cds", r#"catalog{cd{title{"Kind of Blue"}}}"#)
        .unwrap();
    store
        .add_service_text("titles", "t{$x} :- cds/catalog{cd{title{$x}}}")
        .unwrap();
    let mut portal = standalone_peer("portal");
    portal
        .add_document_text("dir", "directory{@store.titles}")
        .unwrap();
    let outcome =
        run_threaded_full(vec![store, portal], 64, false, true).unwrap();
    assert!(outcome.stats.messages > 0);

    let dir = Sym::intern("dir");
    let portal_name = Sym::intern("portal");
    let tree = outcome.peers[&portal_name].doc("dir").unwrap();
    let portal_store = &outcome.provenance[&portal_name];
    let (_, origin) = tree
        .iter_live(tree.root())
        .filter_map(|n| match portal_store.origin(dir, n) {
            Some(o @ Origin::Remote { .. }) => Some((n, o)),
            _ => None,
        })
        .next()
        .expect("a delivered node is stamped Origin::Remote");
    let Origin::Remote { provider, service, seq, round } = origin else {
        unreachable!()
    };
    assert_eq!(provider.as_str(), "store");
    assert_eq!(service.as_str(), "titles");
    assert_eq!(round, 0, "the threaded backend has no global rounds");

    let rec = outcome.provenance[&provider]
        .invocation(seq)
        .expect("the provider logged the remote invocation");
    assert_eq!(rec.service, service);
    assert_eq!(rec.peer, Some(provider));
    assert!(rec.inputs.iter().any(|(d, _)| d.as_str() == "cds"));
}

/// X16: a traced indexed run journals `IndexLookup` probes and
/// `IndexMaintain` deltas, the metrics surface them as a hit rate plus
/// maintenance counters in the report, and both event kinds survive the
/// Chrome-trace export.
#[test]
fn indexed_runs_journal_probe_and_maintenance_events() {
    let journal = Journal::new();
    let metrics = MetricsRegistry::new();
    let fan = Fanout::new(vec![&journal, &metrics]);
    let mut sys = axml_bench::tc_random_digraph(64, 6, 12);
    let (status, _) = run_traced(
        &mut sys,
        &EngineConfig::with_mode(EngineMode::Delta),
        Tracer::new(&fan),
    )
    .unwrap();
    assert_eq!(status, RunStatus::Terminated);

    let events = journal.snapshot();
    let lookups = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::IndexLookup { .. }))
        .count();
    let maintains = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::IndexMaintain { .. }))
        .count();
    assert!(lookups > 0, "no IndexLookup events were journaled");
    assert!(maintains > 0, "no IndexMaintain events were journaled");

    let globals = metrics.globals();
    assert!(globals.index_probes > 0);
    assert_eq!(globals.index_maintains as usize, maintains);
    assert!(globals.index_bytes_peak > 0, "peak footprint must be estimated");
    let report = metrics.render_report("x16");
    assert!(report.contains("index: probes"), "report must show the index section");
    assert!(report.contains("hit rate"), "report must show the probe hit rate");

    let json = chrome_trace(&events);
    assert_eq!(validate_chrome_trace(&json).unwrap(), events.len());
}
