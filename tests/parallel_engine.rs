//! Differential coverage for parallel round evaluation: `Workers(n)`
//! must reproduce the sequential engine's canonical fixpoint for every
//! worker count, across both engine modes and both match strategies
//! (the full {Naive,Delta} × {Scan,Indexed} × {Sequential,Workers}
//! matrix), with invocation counts inside fairness bounds and runs that
//! are bit-for-bit deterministic in the worker count.
//!
//! Soundness background (see `docs/parallelism.md`): evaluation is
//! read-only on the round-start snapshot, grafts commit sequentially in
//! a fixed order, and Theorem 2.1 (confluence of fair rewritings) pins
//! every schedule to the same limit.

use positive_axml::core::engine::{
    run, EngineConfig, EngineMode, Parallelism, RunStatus,
};
use positive_axml::core::gensys::{random_simple_system, GenConfig};
use positive_axml::core::matcher::MatchStrategy;
use proptest::prelude::*;

const BUDGET: usize = 5_000;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn gen_cfg(knob: u64) -> GenConfig {
    GenConfig {
        services: 2 + (knob % 3) as usize,
        docs: 1 + (knob % 2) as usize,
        head_call_prob: 0.15 + 0.2 * ((knob % 4) as f64),
        ..GenConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full matrix on random simple positive systems: every
    /// (mode, strategy, workers) cell terminates with the sequential
    /// cell's canonical fixpoint, worker counts don't change any
    /// observable statistic among themselves, and the parallel
    /// invocation count stays within a constant factor of sequential
    /// (fairness: snapshot evaluation may defer a same-round re-fire to
    /// the next round, never starve it).
    #[test]
    fn workers_reproduce_sequential_fixpoint(
        seed in 0u64..1_000_000,
        knob in 0u64..24,
    ) {
        let sys = random_simple_system(&gen_cfg(knob), seed);
        for mode in [EngineMode::Naive, EngineMode::Delta] {
            for strategy in [MatchStrategy::Scan, MatchStrategy::Indexed] {
                let mut seq = sys.clone();
                let seq_cfg = EngineConfig {
                    mode,
                    match_strategy: strategy,
                    parallelism: Parallelism::Sequential,
                    ..EngineConfig::with_budget(BUDGET)
                };
                let (seq_status, seq_stats) = run(&mut seq, &seq_cfg).unwrap();
                if seq_status != RunStatus::Terminated {
                    continue;
                }
                let mut par_stats = Vec::new();
                for n in WORKER_COUNTS {
                    let mut par = sys.clone();
                    let cfg = EngineConfig {
                        parallelism: Parallelism::Workers(n),
                        ..seq_cfg
                    };
                    let (status, stats) = run(&mut par, &cfg).unwrap();
                    prop_assert!(
                        status == RunStatus::Terminated,
                        "seed {} knob {} {:?}/{:?} Workers({}): status {:?}",
                        seed, knob, mode, strategy, n, status
                    );
                    prop_assert!(
                        par.canonical_key() == seq.canonical_key(),
                        "seed {} knob {} {:?}/{:?} Workers({}): fixpoint diverged",
                        seed, knob, mode, strategy, n
                    );
                    // Fairness bound: deferred re-fires cost at most a
                    // round, never a starvation; counts stay comparable.
                    prop_assert!(
                        stats.invocations <= seq_stats.invocations * 2 + 8
                            && seq_stats.invocations <= stats.invocations * 2 + 8,
                        "seed {} knob {} {:?}/{:?} Workers({}): \
                         invocations {} vs sequential {}",
                        seed, knob, mode, strategy, n,
                        stats.invocations, seq_stats.invocations
                    );
                    par_stats.push(stats);
                }
                // Determinism in the worker count: every observable
                // statistic is identical across n.
                for st in &par_stats[1..] {
                    prop_assert!(st.invocations == par_stats[0].invocations);
                    prop_assert!(st.productive == par_stats[0].productive);
                    prop_assert!(st.skipped == par_stats[0].skipped);
                    prop_assert!(st.rounds == par_stats[0].rounds);
                    prop_assert!(st.final_nodes == par_stats[0].final_nodes);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Budget-bounded prefixes: even when a random system does *not*
    /// terminate inside the budget, the parallel run must be
    /// deterministic in the worker count (identical stats and final
    /// canonical state for every n).
    #[test]
    fn nonterminating_prefixes_deterministic_in_worker_count(
        seed in 0u64..1_000_000,
    ) {
        let sys = random_simple_system(
            &GenConfig { head_call_prob: 0.9, ..GenConfig::default() },
            seed,
        );
        let mut outcomes = Vec::new();
        for n in WORKER_COUNTS {
            let mut runner = sys.clone();
            let cfg = EngineConfig {
                mode: EngineMode::Delta,
                parallelism: Parallelism::Workers(n),
                ..EngineConfig::with_budget(200)
            };
            let (status, stats) = run(&mut runner, &cfg).unwrap();
            outcomes.push((status, stats, runner.canonical_key()));
        }
        for (status, stats, key) in &outcomes[1..] {
            prop_assert!(*status == outcomes[0].0);
            prop_assert!(stats.invocations == outcomes[0].1.invocations);
            prop_assert!(stats.rounds == outcomes[0].1.rounds);
            prop_assert!(key == &outcomes[0].2, "seed {}: prefix state diverged", seed);
        }
    }
}

/// Provenance differential on the deterministic closure workload:
/// parallel runs graft the same nodes through the same invocation
/// records for every worker count, so every answer's derivation DAG
/// renders to the identical DOT text — and matches the sequential DAG.
#[test]
fn explain_answer_dags_identical_across_worker_counts() {
    use positive_axml::core::engine::run_with_provenance;
    use positive_axml::core::provenance::{Provenance, ProvenanceStore};
    use positive_axml::core::trace::Tracer;
    use positive_axml::core::{matcher::match_pattern, parse_query, Sym};

    let mut dots: Vec<Vec<String>> = Vec::new();
    let configs = [
        Parallelism::Sequential,
        Parallelism::Workers(1),
        Parallelism::Workers(2),
        Parallelism::Workers(4),
    ];
    for parallelism in configs {
        let mut sys = axml_bench::tc_random_digraph(32, 3, 12);
        let store = ProvenanceStore::new();
        let cfg = EngineConfig {
            parallelism,
            ..EngineConfig::with_mode(EngineMode::Delta)
        };
        let (status, _) =
            run_with_provenance(&mut sys, &cfg, Tracer::disabled(), Provenance::new(&store))
                .unwrap();
        assert_eq!(status, RunStatus::Terminated);

        let q = parse_query("path{$x,$y} :- d1/r{t{from{$x},to{$y}}}").unwrap();
        let t = sys.doc(Sym::intern("d1")).unwrap();
        let bindings = match_pattern(&q.body[0].pattern, t);
        assert!(!bindings.is_empty());
        let rendered: Vec<String> = bindings
            .iter()
            .map(|b| store.explain_answer(&sys, &q, b).lineage.to_dot())
            .collect();
        dots.push(rendered);
    }
    // Bit-for-bit deterministic in the worker count.
    assert_eq!(dots[1], dots[2], "DAGs diverged between Workers(1) and Workers(2)");
    assert_eq!(dots[1], dots[3], "DAGs diverged between Workers(1) and Workers(4)");
    // And the parallel lineage matches the sequential lineage.
    assert_eq!(dots[0], dots[1], "DAGs diverged between Sequential and Workers(1)");
}

/// The forced-workers escape hatch: `AXML_WORKERS` only flips the
/// *default*; an explicit `parallelism` in the config always wins, and
/// explicit settings are what this suite sweeps.
#[test]
fn explicit_parallelism_overrides_are_independent() {
    let build = || axml_bench::tc_system(12);
    let mut seq = build();
    let (s1, st1) = run(
        &mut seq,
        &EngineConfig {
            parallelism: Parallelism::Sequential,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let mut par = build();
    let (s2, st2) = run(
        &mut par,
        &EngineConfig {
            parallelism: Parallelism::Workers(4),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert_eq!(s1, RunStatus::Terminated);
    assert_eq!(s2, RunStatus::Terminated);
    assert_eq!(seq.canonical_key(), par.canonical_key());
    assert!(st1.invocations > 0 && st2.invocations > 0);
}
