//! Property-based tests of the core invariants (proptest).
//!
//! Random AXML trees exercise Proposition 2.1 (reduction/subsumption),
//! §2.1's lattice structure (lub), and Proposition 3.1 (snapshot
//! monotonicity) on arbitrary inputs rather than hand-picked ones.

use positive_axml::core::eval::{snapshot, Env};
use positive_axml::core::query::parse_query;
use positive_axml::core::reduce::{canonical_key, is_reduced, lub, reduce};
use positive_axml::core::{equivalent, subsumed, Marking, Tree};
use proptest::prelude::*;

/// A random tree over a tiny alphabet (labels a-d, values "0"/"1",
/// function f) — small alphabets maximize sibling collisions, which is
/// where reduction is interesting.
fn arb_tree() -> impl Strategy<Value = Tree> {
    // Recursive structure: a node is (marking index, children).
    #[derive(Clone, Debug)]
    enum Spec {
        Label(u8, Vec<Spec>),
        Value(u8),
        Func(u8, Vec<Spec>),
    }
    let leaf = prop_oneof![
        (0u8..4).prop_map(|l| Spec::Label(l, vec![])),
        (0u8..2).prop_map(Spec::Value),
        (0u8..2).prop_map(|f| Spec::Func(f, vec![])),
    ];
    let node = leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            ((0u8..4), prop::collection::vec(inner.clone(), 0..4))
                .prop_map(|(l, cs)| Spec::Label(l, cs)),
            ((0u8..2), prop::collection::vec(inner, 0..3))
                .prop_map(|(f, cs)| Spec::Func(f, cs)),
            (0u8..2).prop_map(Spec::Value),
        ]
    });
    // Root must be a label.
    ((0u8..4), prop::collection::vec(node, 0..4)).prop_map(|(l, cs)| {
        fn build(t: &mut Tree, parent: positive_axml::core::NodeId, s: &Spec) {
            match s {
                Spec::Label(l, cs) => {
                    let id = t
                        .add_child(parent, Marking::label(&format!("l{l}")))
                        .unwrap();
                    for c in cs {
                        build(t, id, c);
                    }
                }
                Spec::Value(v) => {
                    t.add_child(parent, Marking::value(&format!("{v}"))).unwrap();
                }
                Spec::Func(f, cs) => {
                    let id = t
                        .add_child(parent, Marking::func(&format!("f{f}")))
                        .unwrap();
                    for c in cs {
                        build(t, id, c);
                    }
                }
            }
        }
        let mut t = Tree::new(Marking::label(&format!("l{l}")));
        let root = t.root();
        for c in &cs {
            build(&mut t, root, c);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Prop 2.1 (2): reduction yields an equivalent, reduced tree, and
    /// is idempotent.
    #[test]
    fn reduction_sound_and_idempotent(t in arb_tree()) {
        let r = reduce(&t);
        prop_assert!(equivalent(&t, &r));
        prop_assert!(is_reduced(&r));
        let rr = reduce(&r);
        prop_assert_eq!(canonical_key(&r), canonical_key(&rr));
    }

    /// Prop 2.1 (2): equivalent trees have identical canonical keys —
    /// built here by shuffling child insertion through an extra reduce
    /// and by duplicating subtrees (which reduction absorbs).
    #[test]
    fn canonical_keys_respect_equivalence(t in arb_tree()) {
        // Duplicate the first child (if any): equivalent by definition.
        let mut dup = t.clone();
        if let Some(&c) = dup.children(dup.root()).first() {
            let copy = dup.subtree(c);
            let root = dup.root();
            dup.graft(root, &copy).unwrap();
        }
        prop_assert!(equivalent(&t, &dup));
        prop_assert_eq!(canonical_key(&t), canonical_key(&dup));
    }

    /// Prop 2.1 (1): subsumption is reflexive and transitive on random
    /// triples (transitivity checked when premises hold).
    #[test]
    fn subsumption_preorder(a in arb_tree(), b in arb_tree(), c in arb_tree()) {
        prop_assert!(subsumed(&a, &a));
        if subsumed(&a, &b) && subsumed(&b, &c) {
            prop_assert!(subsumed(&a, &c));
        }
    }

    /// §2.1: `lub` is an upper bound and least among upper bounds of the
    /// same root marking.
    #[test]
    fn lub_is_least_upper_bound(a in arb_tree(), b in arb_tree()) {
        // Force comparable roots by re-rooting b onto a's root marking.
        let mut b2 = Tree::new(a.marking(a.root()));
        let b2root = b2.root();
        b.copy_children_into(b.root(), &mut b2, b2root);
        let u = lub(&a, &b2).unwrap();
        prop_assert!(subsumed(&a, &u));
        prop_assert!(subsumed(&b2, &u));
        // Any other upper bound dominates u: test with u ∪ extra.
        let mut bigger = u.clone();
        let broot = bigger.root();
        bigger.add_child(broot, Marking::label("extra")).unwrap();
        prop_assert!(subsumed(&u, &bigger));
    }

    /// Prop 3.1 (1): snapshot evaluation is monotone — growing the
    /// document can only grow the result.
    #[test]
    fn snapshot_monotone(t in arb_tree(), extra in arb_tree()) {
        let q = parse_query("hit{?l} :- d/?r{?l{$v}}").unwrap();
        let small_res = {
            let mut env = Env::new();
            env.insert("d".into(), &t);
            snapshot(&q, &env).unwrap()
        };
        // Grow: graft `extra` under the root.
        let mut grown = t.clone();
        let root = grown.root();
        grown.graft(root, &extra).unwrap();
        let big_res = {
            let mut env = Env::new();
            env.insert("d".into(), &grown);
            snapshot(&q, &env).unwrap()
        };
        prop_assert!(subsumed(&t, &grown));
        prop_assert!(small_res.subsumed_by(&big_res));
    }

    /// Graph import/unfold is the identity on finite trees, and graph
    /// simulation coincides with tree subsumption (regular-tree layer
    /// soundness, underpinning Lemma 3.2).
    #[test]
    fn graph_simulation_matches_tree_subsumption(a in arb_tree(), b in arb_tree()) {
        use positive_axml::core::regular::{simulated, Graph};
        let mut g = Graph::new();
        let na = g.import_tree(&a);
        let nb = g.import_tree(&b);
        prop_assert_eq!(simulated(&g, na, &g, nb), subsumed(&a, &b));
        let back = g.unfold_exact(na).unwrap();
        prop_assert!(equivalent(&a, &back));
    }

    /// Parser/serializer roundtrip through the compact syntax.
    #[test]
    fn display_parse_roundtrip(t in arb_tree()) {
        let text = t.to_string();
        let back = positive_axml::core::parse_tree(&text).unwrap();
        prop_assert!(equivalent(&t, &back));
    }
}
