//! Theorem 3.3 validated against ground truth: the graph-representation
//! termination decision must agree with (budget-bounded) fair execution
//! on a generated family of simple positive systems.

use positive_axml::core::depgraph::is_acyclic;
use positive_axml::core::engine::{run, EngineConfig, RunStatus};
use positive_axml::core::graphrepr::{decide_termination, GraphRepr, Termination};
use positive_axml::core::System;

/// A family of simple positive systems with known termination behavior.
/// Each entry: (name, builder, terminates?).
fn family() -> Vec<(&'static str, System, bool)> {
    let mut out = Vec::new();

    // 1. Example 2.1: self-reproducing call — diverges.
    let mut s = System::new();
    s.add_document_text("d", "a{@f}").unwrap();
    s.add_service_text("f", "a{@f} :-").unwrap();
    out.push(("ex2.1", s, false));

    // 2. Transitive closure — terminates.
    let mut s = System::new();
    s.add_document_text(
        "d0",
        r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, t{from{"3"},to{"4"}}}"#,
    )
    .unwrap();
    s.add_document_text("d1", "r{@g,@f}").unwrap();
    s.add_service_text("g", "t{from{$x},to{$y}} :- d0/r{t{from{$x},to{$y}}}")
        .unwrap();
    s.add_service_text(
        "f",
        "t{from{$x},to{$y}} :- d1/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
    )
    .unwrap();
    out.push(("tc", s, true));

    // 3. Acyclic pipeline — terminates (and is detectably acyclic).
    let mut s = System::new();
    s.add_document_text("base", r#"r{v{"1"},v{"2"}}"#).unwrap();
    s.add_document_text("mid", "m{@copy}").unwrap();
    s.add_document_text("top", "t{@wrap}").unwrap();
    s.add_service_text("copy", "v{$x} :- base/r{v{$x}}").unwrap();
    s.add_service_text("wrap", "w{$x} :- mid/m{v{$x}}").unwrap();
    out.push(("pipeline", s, true));

    // 4. Mutual recursion that saturates — terminates (finite alphabet).
    let mut s = System::new();
    s.add_document_text("d", r#"r{seed{"1"}, @f, @g}"#).unwrap();
    s.add_service_text("f", "a{$x} :- d/r{seed{$x}}").unwrap();
    s.add_service_text("g", "seen{$x} :- d/r{a{$x}}").unwrap();
    out.push(("mutual-saturating", s, true));

    // 5. Mutual recursion that ping-pongs structure — diverges: f wraps
    //    g's output and vice versa, growing depth forever.
    let mut s = System::new();
    s.add_document_text("d", "a{@f}").unwrap();
    s.add_service_text("f", "b{@g} :-").unwrap();
    s.add_service_text("g", "a{@f} :-").unwrap();
    out.push(("mutual-growing", s, false));

    // 6. A guarded self-call that never fires (body unsatisfiable) —
    //    terminates immediately.
    let mut s = System::new();
    s.add_document_text("d", "a{@f}").unwrap();
    s.add_service_text("f", "a{@f} :- d/a{never{matches}}").unwrap();
    out.push(("dead-guard", s, true));

    // 7. A guarded self-call whose guard data is produced by another
    //    service — diverges once the guard is enabled, because the head
    //    re-creates the guard at every level.
    let mut s = System::new();
    s.add_document_text("d", "a{@enable, @f}").unwrap();
    s.add_service_text("enable", "go :-").unwrap();
    s.add_service_text("f", "a{go, @f} :- context/a{go}").unwrap();
    out.push(("enabled-growth", s, false));

    // 7b. The same guard, but the head does not re-create it: the inner
    //     call never fires, so this one terminates.
    let mut s = System::new();
    s.add_document_text("d", "a{@enable, @f}").unwrap();
    s.add_service_text("enable", "go :-").unwrap();
    s.add_service_text("f", "a{@f} :- context/a{go}").unwrap();
    out.push(("guard-not-propagated", s, true));

    // 8. Context-sensitive copying with a bounded alphabet — terminates.
    let mut s = System::new();
    s.add_document_text("d", r#"root{x{"1"}, x{"2"}, @f}"#).unwrap();
    s.add_service_text("f", "y{$v} :- context/root{x{$v}}").unwrap();
    out.push(("context-copy", s, true));

    out
}

#[test]
fn decision_matches_bounded_execution() {
    for (name, sys, expect_terminates) in family() {
        assert!(sys.is_simple(), "{name} must be simple");
        let verdict = decide_termination(&sys).unwrap();
        let decided = matches!(verdict, Termination::Terminates);
        assert_eq!(decided, expect_terminates, "graph verdict wrong on {name}");

        // Ground truth: a generous budget either reaches a fixpoint or
        // keeps going.
        let mut runner = sys.clone();
        let (status, _) = run(&mut runner, &EngineConfig::with_budget(3_000)).unwrap();
        match status {
            RunStatus::Terminated => {
                assert!(expect_terminates, "{name}: engine terminated, verdict said diverge")
            }
            _ => assert!(!expect_terminates, "{name}: engine ran out, verdict said terminate"),
        }
    }
}

#[test]
fn acyclic_implies_terminates_but_not_conversely() {
    let fam = family();
    for (name, sys, expect_terminates) in &fam {
        if is_acyclic(sys) {
            assert!(*expect_terminates, "{name}: acyclic system must terminate");
        }
    }
    // The TC system terminates but is cyclic: the converse fails.
    let (_, tc, t) = &fam[1];
    assert!(*t);
    assert!(!is_acyclic(tc));
}

#[test]
fn graph_representation_matches_engine_fixpoint_on_terminating_family() {
    for (name, sys, expect_terminates) in family() {
        if !expect_terminates {
            continue;
        }
        let repr = GraphRepr::build(&sys).unwrap();
        let mut runner = sys.clone();
        run(&mut runner, &EngineConfig::default()).unwrap();
        for (&d, &root) in &repr.roots {
            let unfolded = repr.graph.unfold_exact(root).unwrap_or_else(|| {
                panic!("{name}: representation cyclic despite terminating verdict")
            });
            let engine_doc = runner.doc(d).unwrap();
            assert!(
                positive_axml::core::equivalent(
                    &positive_axml::core::reduce(&unfolded),
                    engine_doc
                ),
                "{name}/{d}: graph unfolding differs from engine fixpoint"
            );
        }
    }
}

#[test]
fn representation_stays_small_on_divergent_systems() {
    // The whole point of Lemma 3.2: infinite semantics, finite (small)
    // representation.
    for (name, sys, expect_terminates) in family() {
        if expect_terminates {
            continue;
        }
        let repr = GraphRepr::build(&sys).unwrap();
        assert!(
            repr.graph.node_count() < 100,
            "{name}: representation unexpectedly large ({} nodes)",
            repr.graph.node_count()
        );
        assert!(repr.divergence_witness().is_some());
    }
}
