//! Differential coverage for the copy-on-write persistent tree engine:
//! `Tree::clone` / `System::snapshot` are O(1) frozen handles, and the
//! engine run on a COW clone is bit-for-bit the engine run on the
//! original — answers, fixpoint statistics, trace journals, and explain
//! DAGs — across the full {Naive,Delta} × {Scan,Indexed} ×
//! {Sequential,Workers} configuration matrix.
//!
//! Background (see `docs/mvcc.md`): nodes live in chunked `Arc`-shared
//! spines, mutators path-copy only the touched chunk, and every commit
//! stamps a fresh globally-unique version while a separate per-handle
//! mutation tally keeps everything observable (journals, stats, wire
//! frames) deterministic run-to-run.

use positive_axml::core::engine::{
    run, EngineConfig, EngineMode, Parallelism, RunStatus,
};
use positive_axml::core::gensys::{random_simple_system, GenConfig};
use positive_axml::core::matcher::MatchStrategy;
use positive_axml::core::tree::{Marking, Tree};
use proptest::prelude::*;

const BUDGET: usize = 5_000;

fn gen_cfg(knob: u64) -> GenConfig {
    GenConfig {
        services: 2 + (knob % 3) as usize,
        docs: 1 + (knob % 2) as usize,
        head_call_prob: 0.15 + 0.2 * ((knob % 4) as f64),
        ..GenConfig::default()
    }
}

/// A live node picked deterministically from `k` (always succeeds:
/// the root is live).
fn pick_live(t: &Tree, k: usize) -> positive_axml::core::tree::NodeId {
    let live: Vec<_> = t.iter_live(t.root()).collect();
    live[k % live.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random mutation scripts with interleaved clones: every clone is
    /// a frozen snapshot (its rendering and `snapshot_handle` never
    /// move while the writer keeps mutating), handles are injective
    /// (same stamp ⇔ same content), and a fresh clone shares every
    /// chunk with its source.
    #[test]
    fn clones_are_frozen_snapshots(ops in prop::collection::vec((0u8..4, 0usize..64), 1..60)) {
        let labels = ["a", "b", "c", "d"];
        let mut t = Tree::with_label("root");
        let mut checkpoints: Vec<(Tree, String)> = Vec::new();
        for (i, (op, k)) in ops.iter().enumerate() {
            match op {
                0..=2 => {
                    let parent = pick_live(&t, *k);
                    t.add_child(parent, Marking::label(labels[*k % labels.len()])).unwrap();
                }
                _ => {
                    let n = pick_live(&t, *k);
                    if n != t.root() {
                        t.remove_subtree(n).unwrap();
                    }
                }
            }
            if i % 7 == 0 {
                let snap = t.clone();
                // A fresh clone shares its entire spine with the writer.
                prop_assert_eq!(snap.shared_chunks_with(&t), t.chunk_count());
                prop_assert_eq!(snap.snapshot_handle(), t.snapshot_handle());
                let rendered = snap.to_string();
                checkpoints.push((snap, rendered));
            }
        }
        // Every checkpoint is still exactly what it was when taken.
        for (snap, rendered) in &checkpoints {
            prop_assert!(&snap.to_string() == rendered, "snapshot moved under the writer");
        }
        // Handles are injective: equal stamps mean equal content, and
        // distinct mutation tallies mean distinct stamps.
        for (a, ra) in &checkpoints {
            for (b, rb) in &checkpoints {
                if a.snapshot_handle() == b.snapshot_handle() {
                    prop_assert!(ra == rb, "equal handles must mean equal content");
                    prop_assert_eq!(a.mutation_count(), b.mutation_count());
                } else {
                    prop_assert!(a.mutation_count() != b.mutation_count());
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full engine matrix on COW clones of one random system:
    /// every cell runs on its own O(1) clone, all cells agree on the
    /// canonical fixpoint, statistics are identical wherever the
    /// semantics say they must be (across strategies and worker counts
    /// within a mode), and a snapshot taken before any run is still
    /// bit-for-bit the seed state after all sixteen runs mutated their
    /// clones.
    #[test]
    fn engine_matrix_on_cow_clones_is_bit_for_bit(
        seed in 0u64..1_000_000,
        knob in 0u64..24,
    ) {
        let sys = random_simple_system(&gen_cfg(knob), seed);
        let pre_snap = sys.snapshot();
        let pre_key = sys.canonical_key();
        let pre_version = sys.version();
        for mode in [EngineMode::Naive, EngineMode::Delta] {
            let mut cells = Vec::new();
            for strategy in [MatchStrategy::Scan, MatchStrategy::Indexed] {
                for parallelism in [Parallelism::Sequential, Parallelism::Workers(2)] {
                    let mut clone = sys.clone();
                    let cfg = EngineConfig {
                        mode,
                        match_strategy: strategy,
                        parallelism,
                        ..EngineConfig::with_budget(BUDGET)
                    };
                    let (status, stats) = run(&mut clone, &cfg).unwrap();
                    if cells.is_empty() && status != RunStatus::Terminated {
                        // Nonterminating seed: budget-exhausted states
                        // can be enormous, skip the whole mode.
                        break;
                    }
                    cells.push((status, stats, clone.canonical_key()));
                }
                if cells.is_empty() {
                    break;
                }
            }
            if cells.is_empty() {
                continue;
            }
            // Cells are [Scan/Seq, Scan/W2, Indexed/Seq, Indexed/W2].
            for (status, _, key) in &cells[1..] {
                prop_assert!(*status == RunStatus::Terminated);
                prop_assert!(
                    key == &cells[0].2,
                    "seed {} knob {} {:?}: fixpoint diverged across the matrix",
                    seed, knob, mode
                );
            }
            // The match strategy must not change any statistic at all.
            for (seq, par) in [(0usize, 2usize), (1, 3)] {
                prop_assert!(cells[seq].1.invocations == cells[par].1.invocations);
                prop_assert!(cells[seq].1.productive == cells[par].1.productive);
                prop_assert!(cells[seq].1.skipped == cells[par].1.skipped);
                prop_assert!(cells[seq].1.rounds == cells[par].1.rounds);
                prop_assert!(cells[seq].1.final_nodes == cells[par].1.final_nodes);
            }
            // Sequential vs workers: snapshot evaluation may defer a
            // same-round re-fire to the next round, so counts agree
            // only up to the fairness bound (see tests/parallel_engine.rs).
            let (s, w) = (&cells[0].1, &cells[1].1);
            prop_assert!(
                w.invocations <= s.invocations * 2 + 8
                    && s.invocations <= w.invocations * 2 + 8,
                "seed {} knob {} {:?}: invocations {} vs {} outside the fairness bound",
                seed, knob, mode, w.invocations, s.invocations
            );
            prop_assert!(cells[1].1.final_nodes == cells[0].1.final_nodes);
        }
        // The pre-run snapshot never moved, whatever the clones did.
        prop_assert!(pre_snap.canonical_key() == pre_key);
        prop_assert!(pre_snap.version() == pre_version);
        prop_assert!(sys.canonical_key() == pre_key, "the source system itself must be untouched");
    }
}

/// Two COW clones of one system produce bit-for-bit identical trace
/// journals (wall-clock durations zeroed) — the regression gate for
/// the split between globally-unique MVCC stamps (cache keys) and the
/// deterministic per-handle mutation tally every reported
/// `doc_version` comes from. With raw stamps in the events, two runs
/// in one process could never agree.
#[test]
fn journals_identical_across_cow_clones_and_worker_counts() {
    use positive_axml::core::trace::{Journal, Tracer};

    let base = axml_bench::tc_system(10);
    let journal_of = |parallelism: Parallelism| {
        let mut sys = base.clone();
        let journal = Journal::new();
        let cfg = EngineConfig {
            parallelism,
            ..EngineConfig::with_mode(EngineMode::Delta)
        };
        positive_axml::core::engine::run_traced(&mut sys, &cfg, Tracer::new(&journal)).unwrap();
        (journal.snapshot(), sys.canonical_key())
    };
    // Zero the wall-clock fields; everything else must match exactly.
    let zero_after = |s: String, field: &str| -> String {
        let mut out = String::new();
        let mut rest = s.as_str();
        while let Some(i) = rest.find(field) {
            let j = i + field.len();
            out.push_str(&rest[..j]);
            out.push('0');
            let tail = &rest[j..];
            let k = tail
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(tail.len());
            rest = &tail[k..];
        }
        out.push_str(rest);
        out
    };
    use positive_axml::core::trace::EventKind;
    // Worker-tagged events (eval striping, pool shape) legitimately
    // depend on the worker count; everything committed does not.
    let worker_tagged = |k: &EventKind| {
        matches!(
            k,
            EventKind::WorkerEval { .. } | EventKind::ParallelRound { .. }
        )
    };
    let strip = |evs: &[positive_axml::core::trace::TraceEvent]| -> Vec<String> {
        evs.iter()
            .filter(|e| !worker_tagged(&e.kind))
            .map(|e| zero_after(format!("{:?}", e.kind), "dur_ns: "))
            .collect()
    };
    let (j1, k1) = journal_of(Parallelism::Sequential);
    let (j2, k2) = journal_of(Parallelism::Sequential);
    assert_eq!(k1, k2);
    assert_eq!(strip(&j1), strip(&j2), "two clones of one system journaled differently");
    let (w1, wk1) = journal_of(Parallelism::Workers(1));
    let (w2, wk2) = journal_of(Parallelism::Workers(2));
    assert_eq!(wk1, k1);
    assert_eq!(wk2, k1);
    assert_eq!(
        strip(&w1),
        strip(&w2),
        "worker count changed the committed event stream"
    );
}

/// Explain DAGs are unchanged by COW cloning: lineage recorded while
/// running a clone renders to exactly the DOT text of the original's
/// run.
#[test]
fn explain_dags_unchanged_by_cow_cloning() {
    use positive_axml::core::engine::run_with_provenance;
    use positive_axml::core::matcher::match_pattern;
    use positive_axml::core::provenance::{Provenance, ProvenanceStore};
    use positive_axml::core::trace::Tracer;
    use positive_axml::core::{parse_query, Sym};

    let base = axml_bench::tc_random_digraph(24, 3, 11);
    let dags_of = || {
        let mut sys = base.clone();
        let store = ProvenanceStore::new();
        let cfg = EngineConfig::with_mode(EngineMode::Delta);
        let (status, _) =
            run_with_provenance(&mut sys, &cfg, Tracer::disabled(), Provenance::new(&store))
                .unwrap();
        assert_eq!(status, RunStatus::Terminated);
        let q = parse_query("path{$x,$y} :- d1/r{t{from{$x},to{$y}}}").unwrap();
        let t = sys.doc(Sym::intern("d1")).unwrap();
        let bindings = match_pattern(&q.body[0].pattern, t);
        assert!(!bindings.is_empty());
        bindings
            .iter()
            .map(|b| store.explain_answer(&sys, &q, b).lineage.to_dot())
            .collect::<Vec<String>>()
    };
    assert_eq!(dags_of(), dags_of(), "cloning perturbed the lineage DAGs");
}

/// `System::snapshot` is a handle, not a copy: the snapshot answers
/// with the pre-run state while the writer advances through a whole
/// fixpoint, and its trees still share their spines with wherever the
/// writer has not yet diverged.
#[test]
fn system_snapshot_survives_a_full_fixpoint() {
    let mut sys = axml_bench::tc_system(8);
    let snap = sys.snapshot();
    let before_key = snap.canonical_key();
    let before_version = snap.version();
    let (status, stats) = run(&mut sys, &EngineConfig::default()).unwrap();
    assert_eq!(status, RunStatus::Terminated);
    assert!(stats.invocations > 0);
    assert_ne!(sys.canonical_key(), before_key, "the run must actually change the system");
    assert_eq!(snap.canonical_key(), before_key);
    assert_eq!(snap.version(), before_version);
}
