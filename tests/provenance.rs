//! Integration coverage for the provenance layer: lineage of the
//! tc-digraph closure workload, per-answer explanations, and the delta
//! engine's skip evidence.

use positive_axml::core::engine::{
    run_with_provenance, EngineConfig, EngineMode, RunStatus,
};
use positive_axml::core::matcher::match_pattern;
use positive_axml::core::provenance::{Origin, Provenance, ProvenanceStore};
use positive_axml::core::trace::Tracer;
use positive_axml::core::{parse_query, Sym};

fn run_tc_with_provenance() -> (positive_axml::core::System, ProvenanceStore) {
    let mut sys = axml_bench::tc_random_digraph(32, 3, 12);
    let store = ProvenanceStore::new();
    let (status, stats) = run_with_provenance(
        &mut sys,
        &EngineConfig::with_mode(EngineMode::Delta),
        Tracer::disabled(),
        Provenance::new(&store),
    )
    .unwrap();
    assert_eq!(status, RunStatus::Terminated);
    assert!(stats.productive > 0);
    (sys, store)
}

/// The tentpole acceptance criterion: some derived `path` answer traces
/// back through at least two chained invocations (closure step `@f`,
/// then a loader) to seed `edge` nodes in the shard documents.
#[test]
fn explain_answer_chains_closure_tuples_to_seed_edges() {
    let (sys, store) = run_tc_with_provenance();
    assert!(store.invocation_count() > 0);

    let q = parse_query("path{$x,$y} :- d1/r{t{from{$x},to{$y}}}").unwrap();
    let d1 = Sym::intern("d1");
    let t = sys.doc(d1).unwrap();
    let bindings = match_pattern(&q.body[0].pattern, t);
    assert!(!bindings.is_empty(), "the closure produced no path tuples");

    let mut witnessed = 0usize;
    let mut deep = None;
    for b in &bindings {
        let ex = store.explain_answer(&sys, &q, b);
        // Exactly one body atom, over d1; its witnesses must be
        // binding-compatible t-tuples, not the document root.
        assert_eq!(ex.atoms.len(), 1);
        if ex.atoms[0].nodes.is_empty() {
            continue;
        }
        witnessed += 1;
        let depth = ex.lineage.invocation_depth();
        let has_shard_seed = ex.lineage.seed_leaves().into_iter().any(|i| {
            let n = &ex.lineage.nodes[i];
            n.origin == Origin::Seed && n.doc.as_str().starts_with('e')
        });
        if depth >= 2 && has_shard_seed {
            deep = Some(ex);
            break;
        }
    }
    assert!(witnessed > 0, "no answer binding had witness nodes");
    let ex = deep.expect(
        "no derived path tuple chains ≥2 invocations back to seed edge nodes",
    );
    // The chain names its invocations: some witness node was grafted by
    // the closure rule or a loader, with a full InvocationRecord.
    let services: Vec<String> = ex
        .lineage
        .nodes
        .iter()
        .filter_map(|n| n.via.as_ref().map(|r| r.service.as_str().to_string()))
        .collect();
    assert!(
        services.iter().any(|s| s == "f"),
        "expected the closure service in the chain, got {services:?}"
    );
    assert!(
        services.iter().any(|s| s.starts_with("load")),
        "expected a loader invocation in the chain, got {services:?}"
    );
    // And the DAG renders as DOT.
    let dot = ex.lineage.to_dot();
    assert!(dot.starts_with("digraph provenance {"));
    assert!(dot.contains("->"), "a chained derivation must have edges");
}

/// `explain_node` on a node grafted by the closure rule returns a DAG
/// rooted at that node whose record identifies the invocation.
#[test]
fn explain_node_identifies_the_grafting_invocation() {
    let (sys, store) = run_tc_with_provenance();
    let d1 = Sym::intern("d1");
    let t = sys.doc(d1).unwrap();
    let derived = t
        .iter_live(t.root())
        .find(|&n| matches!(store.origin(d1, n), Some(Origin::Local { .. })))
        .expect("the run grafted at least one node into d1");
    let dag = store.explain_node(&sys, d1, derived);
    assert_eq!(dag.roots.len(), 1);
    let root = &dag.nodes[dag.roots[0]];
    let rec = root.via.as_ref().expect("derived root carries its record");
    assert_eq!(rec.doc, d1);
    assert!(!rec.inputs.is_empty(), "invocations record their witnesses");
    let svc = rec.service.as_str();
    assert!(svc == "f" || svc.starts_with("load"), "unexpected service {svc}");
}

/// The weak q-unneededness verdicts from `lazy/` surface per answer:
/// for a query that only reads a shard document (which contains no
/// calls), every call in the system is reported q-unneeded.
#[test]
fn explain_answer_reports_unneeded_calls() {
    let (sys, store) = run_tc_with_provenance();
    let q = parse_query("p{$x} :- e0/r{edge{from{$x},to{$y}}}").unwrap();
    let e0 = Sym::intern("e0");
    let t = sys.doc(e0).unwrap();
    let bindings = match_pattern(&q.body[0].pattern, t);
    assert!(!bindings.is_empty());
    let ex = store.explain_answer(&sys, &q, &bindings[0]);
    assert_eq!(
        ex.unneeded_calls.len(),
        sys.function_nodes().len(),
        "a query over call-free shard data needs no call at all"
    );
    // Every witness of this answer is seed data: depth 0.
    assert_eq!(ex.lineage.invocation_depth(), 0);
}

/// The delta engine records read-set evidence for every skip, and
/// `explain_skip` surfaces the most recent one per call site.
#[test]
fn explain_skip_carries_read_set_evidence() {
    let (_sys, store) = run_tc_with_provenance();
    let skips = store.skips();
    assert!(!skips.is_empty(), "the delta run skipped no call");
    let last = skips.last().unwrap().clone();
    let again = store
        .explain_skip(last.doc, last.node)
        .expect("recorded skip is explainable");
    assert_eq!(again.service, last.service);
    assert!(!again.evidence.is_empty(), "skips must carry evidence");
    for (doc, changed_at) in &again.evidence {
        assert!(
            *changed_at <= again.invoked_at,
            "{doc} changed at t={changed_at} after the call's last \
             invocation at t={} — the skip would be unsound",
            again.invoked_at
        );
    }
    let rendered = again.to_string();
    assert!(rendered.contains("skipped in round"));
    assert!(rendered.contains("reads unchanged"));
}
