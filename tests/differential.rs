//! Differential fuzzing: the Theorem 3.3 decision procedure, the graph
//! representation, and the fair engine are independent implementations
//! of the same semantics. On randomly generated simple positive systems
//! they must agree:
//!
//! * verdict `Terminates` ⟺ the engine reaches a fixpoint;
//! * on terminating systems, unfolding the representation gives exactly
//!   the engine's fixpoint documents;
//! * all fair schedules agree (confluence, again, but on random
//!   systems rather than curated ones);
//! * full query results over the representation match snapshot queries
//!   over the engine's fixpoint.

use positive_axml::core::engine::{run, EngineConfig, RunStatus, Strategy};
use positive_axml::core::gensys::{random_simple_system, GenConfig};
use positive_axml::core::graphrepr::{full_query_result, GraphRepr};
use positive_axml::core::query::parse_query;
use positive_axml::core::{equivalent, reduce};

const SEEDS: u64 = 60;

fn cases() -> impl Iterator<Item = (u64, positive_axml::core::System)> {
    (0..SEEDS).map(|seed| {
        let cfg = GenConfig {
            // Vary shape knobs with the seed for diversity.
            services: 2 + (seed % 3) as usize,
            docs: 1 + (seed % 2) as usize,
            head_call_prob: 0.15 + 0.2 * ((seed % 4) as f64),
            ..GenConfig::default()
        };
        (seed, random_simple_system(&cfg, seed))
    })
}

#[test]
fn verdict_matches_engine_on_random_systems() {
    let mut terminating = 0usize;
    let mut diverging = 0usize;
    for (seed, sys) in cases() {
        let repr = match GraphRepr::build(&sys) {
            Ok(r) => r,
            Err(_) => continue, // safety-limit blowup: skip, counted below
        };
        let mut runner = sys.clone();
        let (status, _) = run(&mut runner, &EngineConfig::with_budget(20_000)).unwrap();
        match (repr.terminates(), status) {
            (true, RunStatus::Terminated) => {
                terminating += 1;
                // Unfolding must equal the fixpoint, document by document.
                for (&d, &root) in &repr.roots {
                    let unfolded = repr
                        .graph
                        .unfold_exact(root)
                        .unwrap_or_else(|| panic!("seed {seed}: cyclic doc in terminating repr"));
                    assert!(
                        equivalent(&reduce(&unfolded), runner.doc(d).unwrap()),
                        "seed {seed}, doc {d}: graph unfolding != engine fixpoint\n  graph: {}\n  engine: {}",
                        reduce(&unfolded),
                        runner.doc(d).unwrap()
                    );
                }
            }
            (false, RunStatus::Terminated) => {
                panic!("seed {seed}: verdict says diverges, engine terminated")
            }
            (true, _) => panic!("seed {seed}: verdict says terminates, engine exhausted budget"),
            (false, _) => diverging += 1,
        }
    }
    // The generator must exercise both behaviours to be meaningful.
    assert!(terminating >= 10, "only {terminating} terminating cases");
    assert!(diverging >= 5, "only {diverging} diverging cases");
}

#[test]
fn random_systems_are_confluent() {
    for (seed, sys) in cases().take(25) {
        // Only check confluence-to-fixpoint on terminating systems.
        let Ok(repr) = GraphRepr::build(&sys) else { continue };
        if !repr.terminates() {
            continue;
        }
        let mut reference = sys.clone();
        run(&mut reference, &EngineConfig::default()).unwrap();
        for s in [Strategy::Reverse, Strategy::Random(seed ^ 0xABCD)] {
            let mut alt = sys.clone();
            run(&mut alt, &EngineConfig::with_strategy(s)).unwrap();
            assert!(
                alt.equivalent_to(&reference),
                "seed {seed}: schedules disagree"
            );
        }
    }
}

#[test]
fn full_query_results_match_fixpoint_snapshots() {
    use positive_axml::core::eval::{snapshot, Env};
    // A generic probe query over the generated alphabet.
    let q = parse_query("probe{$v} :- d0/l0{l1{$v}}")
        .or_else(|_| parse_query("probe{$v} :- d0/l0{l0{$v}}"))
        .unwrap();
    for (seed, sys) in cases() {
        let Ok(res) = full_query_result(&sys, &q) else { continue };
        let Ok(repr) = GraphRepr::build(&sys) else { continue };
        if !repr.terminates() {
            // Simple queries still have finite results (§3.3).
            assert!(res.is_finite(), "seed {seed}: simple query infinite result");
            continue;
        }
        let mut runner = sys.clone();
        run(&mut runner, &EngineConfig::default()).unwrap();
        let mut env = Env::new();
        for &d in runner.doc_names() {
            env.insert(d, runner.doc(d).unwrap());
        }
        let direct = snapshot(&q, &env).unwrap();
        let via_graph = res
            .materialize()
            .unwrap_or_else(|| panic!("seed {seed}: finite result failed to materialize"));
        let via_graph: positive_axml::core::Forest = via_graph
            .iter()
            .map(positive_axml::core::reduce)
            .collect();
        assert!(
            direct.equivalent(&via_graph.reduce()),
            "seed {seed}: graph query result != fixpoint snapshot"
        );
    }
}
