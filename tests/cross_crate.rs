//! Cross-crate integration: datalog↔AXML, TM↔AXML, ψ translation on
//! generated workloads, and the substrates agreeing with the core.

use positive_axml::core::engine::{run, EngineConfig, RunStatus};
use positive_axml::core::eval::{snapshot, Env};
use positive_axml::core::forest::Forest;
use positive_axml::core::pathexpr::{parse_reg_query, snapshot_reg};
use positive_axml::core::translate::{strip_annotations, translate};
use positive_axml::core::System;
use positive_axml::datalog::engine::db_size;
use positive_axml::datalog::workload::{chain_tc, cycle_tc, random_tc, same_generation};
use positive_axml::datalog::{axml_eval, seminaive_eval};
use positive_axml::tm::encode::{run_axml_tm, AxmlTmOutcome};
use positive_axml::tm::machine::{run as tm_run, Outcome};
use positive_axml::tm::samples;

#[test]
fn datalog_simulation_agrees_on_generated_workloads() {
    let programs = vec![
        ("chain-6", chain_tc(6)),
        ("chain-12", chain_tc(12)),
        ("cycle-5", cycle_tc(5)),
        ("random-10-15", random_tc(10, 15, 42)),
        ("sg-3", same_generation(3)),
    ];
    for (name, prog) in programs {
        let (dl, _) = seminaive_eval(&prog);
        let (ax, _) = axml_eval(&prog).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(dl, ax, "datalog/AXML mismatch on {name}");
        assert!(db_size(&dl) > 0, "{name} derived nothing");
    }
}

#[test]
fn turing_simulation_agrees_on_sample_suite() {
    let suite: Vec<(&str, positive_axml::tm::Tm, Vec<Vec<&str>>)> = vec![
        (
            "parity",
            samples::even_parity(),
            vec![vec![], vec!["one"; 3], vec!["one"; 4]],
        ),
        (
            "anbn",
            samples::anbn(),
            vec![vec!["a", "b"], vec!["a", "a", "b", "b"], vec!["b"]],
        ),
        (
            "inc",
            samples::binary_increment(),
            vec![vec!["zero"], vec!["one", "one", "one"]],
        ),
    ];
    for (name, tm, inputs) in suite {
        for input in inputs {
            let (native, _) = tm_run(&tm, &input, 20_000);
            let (axml, _) = run_axml_tm(&tm, &input, 100_000).unwrap();
            match (&native, &axml) {
                (Outcome::Accept(a), AxmlTmOutcome::Accept(b)) => {
                    assert_eq!(a, b, "{name} tape mismatch on {input:?}")
                }
                (Outcome::Reject, AxmlTmOutcome::Reject) => {}
                other => panic!("{name} on {input:?}: {other:?}"),
            }
        }
    }
}

/// ψ translation checked on a family of path expressions over a deeper
/// generated hierarchy, with and without run-time data growth.
#[test]
fn psi_translation_on_generated_hierarchies() {
    // A 3-level catalog with mixed labels.
    fn catalog(width: usize) -> String {
        let mut s = String::from("lib{");
        for i in 0..width {
            s.push_str(&format!(
                "shelf{{box{{cd{{title{{\"s{i}\"}}}}}}, cd{{title{{\"d{i}\"}}}}}},"
            ));
        }
        s.push_str("misc{dvd{title{\"m\"}}}}");
        s
    }
    let queries = [
        "t{$x} :- d/lib{<_*.cd>{title{$x}}}",
        "t{$x} :- d/lib{<shelf.box.cd>{title{$x}}}",
        "t{$x} :- d/lib{<shelf.(box|cd)>{title{$x}}}",
        "t{$x} :- d/lib{<(shelf|misc)._*>{title{$x}}}",
        "hit :- d/lib{<shelf.box>{cd}}",
    ];
    for width in [1usize, 3] {
        let mut sys = System::new();
        sys.add_document_text("d", &catalog(width)).unwrap();
        for qtext in queries {
            let q = parse_reg_query(qtext).unwrap();
            // Direct.
            let mut env = Env::new();
            env.insert("d".into(), sys.doc("d".into()).unwrap());
            let direct = snapshot_reg(&q, &env).unwrap().reduce();
            // Via ψ.
            let tr = translate(&sys, &q).unwrap();
            let mut tsys = tr.system;
            let (status, _) = run(&mut tsys, &EngineConfig::default()).unwrap();
            assert_eq!(status, RunStatus::Terminated);
            let mut tenv = Env::new();
            for &dn in tsys.doc_names() {
                tenv.insert(dn, tsys.doc(dn).unwrap());
            }
            let raw = snapshot(&tr.query, &tenv).unwrap();
            let stripped: Forest = raw.trees().iter().map(strip_annotations).collect();
            assert!(
                direct.equivalent(&stripped.reduce()),
                "ψ mismatch: width={width}, query={qtext}"
            );
        }
    }
}

/// The datalog-generated AXML systems are exactly the simple positive
/// systems Theorem 3.3 handles: the verdict must be Terminates, and the
/// graph representation must carry every derived tuple.
#[test]
fn datalog_systems_feed_the_graph_representation() {
    use positive_axml::core::graphrepr::{decide_termination, GraphRepr, Termination};
    let prog = chain_tc(5);
    let sys = positive_axml::datalog::datalog_to_axml(&prog).unwrap();
    assert_eq!(decide_termination(&sys).unwrap(), Termination::Terminates);
    let repr = GraphRepr::build(&sys).unwrap();
    let root = repr.roots[&"db".into()];
    let unfolded = repr.graph.unfold_exact(root).unwrap();
    // 5+4+…+1 = 15 path tuples + 5 edge tuples.
    let tuples = unfolded
        .children(unfolded.root())
        .iter()
        .filter(|&&n| {
            matches!(
                unfolded.marking(n),
                positive_axml::core::Marking::Label(l) if l.as_str() == "path" || l.as_str() == "edge"
            )
        })
        .count();
    assert_eq!(tuples, 20);
}

/// Full pipeline: a datalog-derived relation queried lazily through a
/// positive+reg query.
#[test]
fn datalog_then_path_query() {
    let prog = chain_tc(4);
    let mut sys = positive_axml::datalog::datalog_to_axml(&prog).unwrap();
    run(&mut sys, &EngineConfig::default()).unwrap();
    let q = parse_reg_query(r#"reach{$y} :- db/r{<path>{a0{"0"}, a1{$y}}}"#).unwrap();
    let mut env = Env::new();
    env.insert("db".into(), sys.doc("db".into()).unwrap());
    let res = snapshot_reg(&q, &env).unwrap();
    assert_eq!(res.len(), 4); // 0 reaches 1, 2, 3, 4
}
