//! Theorem 2.1 at scale: all fair rewritings of a monotone system reach
//! the same result — across strategies, random seeds, black-box
//! services, and restricted (`[I↓N]`) runs.

use positive_axml::core::engine::{run, run_restricted, EngineConfig, RunStatus, Strategy};
use positive_axml::core::forest::Forest;
use positive_axml::core::service::BlackBoxService;
use positive_axml::core::{parse_tree, System};

/// A mid-sized positive system: three interdependent documents with
/// copy, join, and filter services.
fn workload() -> System {
    let mut sys = System::new();
    sys.add_document_text(
        "people",
        r#"db{p{name{"ann"}, dept{"cs"}},
             p{name{"bob"}, dept{"cs"}},
             p{name{"cyd"}, dept{"ee"}}}"#,
    )
    .unwrap();
    sys.add_document_text("cs", "list{@cs-members, @pairs}").unwrap();
    sys.add_document_text("pairs", "out{@mirror}").unwrap();
    sys.add_service_text(
        "cs-members",
        r#"m{$n} :- people/db{p{name{$n}, dept{"cs"}}}"#,
    )
    .unwrap();
    sys.add_service_text(
        "pairs",
        "pair{$a,$b} :- cs/list{m{$a}, m{$b}}, $a != $b",
    )
    .unwrap();
    sys.add_service_text("mirror", "copy{$a,$b} :- cs/list{pair{$a,$b}}").unwrap();
    sys
}

#[test]
fn many_random_schedules_agree() {
    let mut reference = workload();
    let (status, _) = run(&mut reference, &EngineConfig::default()).unwrap();
    assert_eq!(status, RunStatus::Terminated);
    for seed in 0..20u64 {
        let mut sys = workload();
        let (status, _) =
            run(&mut sys, &EngineConfig::with_strategy(Strategy::Random(seed))).unwrap();
        assert_eq!(status, RunStatus::Terminated);
        assert_eq!(
            sys.canonical_key(),
            reference.canonical_key(),
            "seed {seed} diverged from the reference fixpoint"
        );
    }
}

#[test]
fn lemma_2_1_prefixes_embed_into_the_fixpoint() {
    // Any bounded (fair-prefix) state is subsumed by the fixpoint.
    let mut full = workload();
    run(&mut full, &EngineConfig::default()).unwrap();
    for budget in [1usize, 2, 3, 5, 8] {
        let mut partial = workload();
        run(&mut partial, &EngineConfig::with_budget(budget)).unwrap();
        assert!(
            partial.subsumed_by(&full),
            "budget-{budget} prefix not subsumed by the fixpoint"
        );
    }
}

#[test]
fn black_box_monotone_services_are_confluent_too() {
    // §2.2's general monotone systems: services as closures. This one
    // returns one tree per value present in `src` (monotone: more values
    // ⇒ more trees).
    let build = || {
        let mut sys = System::new();
        sys.add_document_text("src", r#"r{v{"1"}, v{"2"}, @feed}"#).unwrap();
        sys.add_document_text("dst", "out{@collect}").unwrap();
        sys.add_service_text("feed", r#"v{"3"} :-"#).unwrap();
        sys.add_black_box(
            "collect",
            BlackBoxService::new("wrap values", |env: &positive_axml::core::Env| {
                let mut out = Forest::new();
                if let Some(t) = env.get("src".into()) {
                    for n in t.iter_live(t.root()) {
                        if t.marking(n) == positive_axml::core::Marking::label("v") {
                            if let Some(&c) = t.children(n).first() {
                                let item = format!(
                                    "got{{{}}}",
                                    t.marking(c)
                                );
                                out.push(parse_tree(&item).unwrap());
                            }
                        }
                    }
                }
                Ok(out)
            }),
        )
        .unwrap();
        sys
    };
    let mut a = build();
    run(&mut a, &EngineConfig::default()).unwrap();
    let mut b = build();
    run(&mut b, &EngineConfig::with_strategy(Strategy::Reverse)).unwrap();
    assert_eq!(a.canonical_key(), b.canonical_key());
    // And the black box's data arrived, including the value fed by the
    // positive service (call order independence).
    let dst = a.doc("dst".into()).unwrap();
    let expected = parse_tree(r#"out{@collect, got{"1"}, got{"2"}, got{"3"}}"#).unwrap();
    assert!(positive_axml::core::equivalent(dst, &expected), "got {dst}");
}

#[test]
fn restricted_runs_are_confluent_and_smaller() {
    // [I↓N] is itself order-independent, and subsumed by [I].
    let excluded_fn = |sys: &System| {
        // Exclude the `pairs` call (second function node of doc `cs`).
        sys.function_nodes()
            .into_iter()
            .find(|&(d, n)| {
                d == "cs".into()
                    && sys.doc(d).unwrap().marking(n)
                        == positive_axml::core::Marking::func("pairs")
            })
            .unwrap()
    };
    let mut ref_sys = workload();
    let excl = excluded_fn(&ref_sys);
    run_restricted(&mut ref_sys, &EngineConfig::default(), |d, n| (d, n) != excl).unwrap();
    for seed in [5u64, 6] {
        let mut sys = workload();
        let excl = excluded_fn(&sys);
        run_restricted(
            &mut sys,
            &EngineConfig::with_strategy(Strategy::Random(seed)),
            |d, n| (d, n) != excl,
        )
        .unwrap();
        assert_eq!(sys.canonical_key(), ref_sys.canonical_key());
    }
    let mut full = workload();
    run(&mut full, &EngineConfig::default()).unwrap();
    assert!(ref_sys.subsumed_by(&full));
    assert!(!full.subsumed_by(&ref_sys)); // pairs data genuinely missing
}

#[test]
fn divergent_systems_prefixes_are_totally_ordered_in_the_limit() {
    // For Example 2.1: two different budgets give states where the
    // smaller embeds in the larger (they approximate the same limit).
    let build = || {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "a{@f} :-").unwrap();
        sys
    };
    let mut small = build();
    run(&mut small, &EngineConfig::with_budget(10)).unwrap();
    let mut large = build();
    run(&mut large, &EngineConfig::with_budget(60)).unwrap();
    assert!(small.subsumed_by(&large));
}
