//! Differential coverage for indexed pattern matching: the `Indexed`
//! and `Scan` strategies must be *observationally identical* — same
//! binding lists in the same order at the matcher level, same fixpoints,
//! invocation counts, and explanation DAGs at the engine level — with
//! the index itself validating against a rebuild-from-scratch after
//! every run.

use positive_axml::core::engine::{run, EngineConfig, EngineMode, RunStatus};
use positive_axml::core::gensys::{random_simple_system, GenConfig};
use positive_axml::core::matcher::{
    match_pattern, match_pattern_anywhere_with, match_pattern_with, MatchStrategy,
};
use positive_axml::core::parse_pattern;
use proptest::prelude::*;

const BUDGET: usize = 5_000;

fn gen_cfg(knob: u64) -> GenConfig {
    GenConfig {
        services: 2 + (knob % 3) as usize,
        docs: 1 + (knob % 2) as usize,
        head_call_prob: 0.15 + 0.2 * ((knob % 4) as f64),
        ..GenConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Matcher-level differential: on random documents, every pattern
    /// shape yields byte-identical binding lists (same order) whether
    /// candidates come from arena scans or index probes.
    #[test]
    fn scan_and_indexed_enumerate_identical_bindings(
        seed in 0u64..1_000_000,
        n in 30usize..220,
    ) {
        let doc = axml_bench::random_tree(n, 4, 4, 0.3, seed);
        doc.build_index();
        for pat in [
            "root{l0{$x}}",
            "root{l1}",
            "root{?l}",
            "root{l0{$x}, l1, #T}",
            "root{l0{l1{$x}}}",
            "root{l2{?a}, l2{?b}}",
        ] {
            let p = parse_pattern(pat).unwrap();
            let (scan, sstats) = match_pattern_with(&p, &doc, MatchStrategy::Scan);
            let (indexed, istats) = match_pattern_with(&p, &doc, MatchStrategy::Indexed);
            prop_assert!(scan == indexed, "pattern {} diverged", pat);
            prop_assert_eq!(sstats.probes, 0);
            let _ = istats;
        }
        // Unanchored matching must agree on (node, binding) pairs too.
        let p = parse_pattern("l0{$x}").unwrap();
        let (scan, _) = match_pattern_anywhere_with(&p, &doc, MatchStrategy::Scan);
        let (indexed, _) = match_pattern_anywhere_with(&p, &doc, MatchStrategy::Indexed);
        prop_assert_eq!(scan, indexed);
        prop_assert!(doc.validate_index().is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Engine-level differential: on random simple positive systems the
    /// two strategies produce equal invocation counts and *identical*
    /// canonical fixpoints in both engine modes, and every incrementally
    /// maintained index still matches a rebuild afterwards.
    #[test]
    fn strategies_are_observationally_equivalent(
        seed in 0u64..1_000_000,
        knob in 0u64..24,
    ) {
        let sys = random_simple_system(&gen_cfg(knob), seed);
        let mut outcomes = Vec::new();
        for mode in [EngineMode::Naive, EngineMode::Delta] {
            for strategy in [MatchStrategy::Scan, MatchStrategy::Indexed] {
                let mut runner = sys.clone();
                let cfg = EngineConfig {
                    mode,
                    match_strategy: strategy,
                    ..EngineConfig::with_budget(BUDGET)
                };
                let (status, stats) = run(&mut runner, &cfg).unwrap();
                for d in runner.doc_names() {
                    let t = runner.doc(*d).unwrap();
                    prop_assert!(
                        t.validate_index().is_ok(),
                        "seed {} knob {}: index invalid after {:?}/{:?}",
                        seed, knob, mode, strategy
                    );
                }
                outcomes.push((mode, strategy, status, stats, runner));
            }
        }
        if outcomes[0].2 != RunStatus::Terminated {
            return Ok(());
        }
        // Within one mode the strategies must be indistinguishable:
        // same status, same invocation count, same canonical fixpoint.
        for pair in outcomes.chunks(2) {
            let (m, _, s0, st0, r0) = &pair[0];
            let (_, _, s1, st1, r1) = &pair[1];
            prop_assert!(s0 == s1, "seed {} knob {} mode {:?}: status diverged", seed, knob, m);
            prop_assert!(
                st0.invocations == st1.invocations,
                "seed {} knob {} mode {:?}: invocation counts diverged", seed, knob, m
            );
            prop_assert!(
                r0.canonical_key() == r1.canonical_key(),
                "seed {} knob {} mode {:?}: fixpoints diverged", seed, knob, m
            );
        }
        // And across modes the limit agrees (Theorem 2.1 confluence).
        prop_assert_eq!(outcomes[0].4.canonical_key(), outcomes[2].4.canonical_key());
    }
}

/// Provenance differential on the deterministic closure workload: the
/// strategies graft the same nodes in the same order, so every answer's
/// derivation DAG renders to the identical DOT text.
#[test]
fn explain_answer_dags_identical_across_strategies() {
    use positive_axml::core::engine::run_with_provenance;
    use positive_axml::core::provenance::{Provenance, ProvenanceStore};
    use positive_axml::core::trace::Tracer;
    use positive_axml::core::{parse_query, Sym};

    let mut dots = Vec::new();
    for strategy in [MatchStrategy::Scan, MatchStrategy::Indexed] {
        let mut sys = axml_bench::tc_random_digraph(32, 3, 12);
        let store = ProvenanceStore::new();
        let cfg = EngineConfig {
            match_strategy: strategy,
            ..EngineConfig::with_mode(EngineMode::Delta)
        };
        let (status, _) =
            run_with_provenance(&mut sys, &cfg, Tracer::disabled(), Provenance::new(&store))
                .unwrap();
        assert_eq!(status, RunStatus::Terminated);

        let q = parse_query("path{$x,$y} :- d1/r{t{from{$x},to{$y}}}").unwrap();
        let t = sys.doc(Sym::intern("d1")).unwrap();
        let bindings = match_pattern(&q.body[0].pattern, t);
        assert!(!bindings.is_empty());
        let rendered: Vec<String> = bindings
            .iter()
            .map(|b| store.explain_answer(&sys, &q, b).lineage.to_dot())
            .collect();
        dots.push(rendered);
    }
    assert_eq!(dots[0].len(), dots[1].len());
    assert_eq!(dots[0], dots[1], "derivation DAGs diverged between strategies");
}
