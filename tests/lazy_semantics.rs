//! §4 semantics, cross-checked: the weak (PTIME) properties must be
//! *sound* approximations of the exact (graph-based) ones on simple
//! systems, and the lazy evaluator's answers must be possible answers.

use positive_axml::core::engine::{run, EngineConfig};
use positive_axml::core::eval::{snapshot, Env};
use positive_axml::core::lazy::{
    is_possible_answer, is_q_stable, is_unneeded, lazy_query_eval, weak_relevance,
    weakly_stable, LazyConfig,
};
use positive_axml::core::query::parse_query;
use positive_axml::core::{NodeId, Query, Sym, System};

/// A little zoo of (simple system, simple query) pairs.
fn zoo() -> Vec<(&'static str, System, Query)> {
    let mut out = Vec::new();

    // Portal with a relevant and an irrelevant call.
    let mut s = System::new();
    s.add_document_text(
        "dir",
        r#"directory{cd{title{"X"}, @GetRating{"X"}}, news{@Feed}}"#,
    )
    .unwrap();
    s.add_document_text("ratings", r#"db{entry{name{"X"}, stars{"*"}}}"#)
        .unwrap();
    s.add_service_text(
        "GetRating",
        "rating{$s} :- input/input{$n}, ratings/db{entry{name{$n}, stars{$s}}}",
    )
    .unwrap();
    s.add_service_text("Feed", r#"cd{title{"new"}} :-"#).unwrap();
    let q = parse_query("r{$x} :- dir/directory{cd{title{$x}, rating{$s}}}").unwrap();
    out.push(("portal", s, q));

    // Transitive closure queried at the accumulator.
    let mut s = System::new();
    s.add_document_text("d0", r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}}"#)
        .unwrap();
    s.add_document_text("d1", "r{@g,@f}").unwrap();
    s.add_service_text("g", "t{from{$x},to{$y}} :- d0/r{t{from{$x},to{$y}}}")
        .unwrap();
    s.add_service_text(
        "f",
        "t{from{$x},to{$y}} :- d1/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
    )
    .unwrap();
    let q = parse_query(r#"reach{$y} :- d1/r{t{from{"1"},to{$y}}}"#).unwrap();
    out.push(("tc", s, q));

    // Query about a static document: stable from the start.
    let mut s = System::new();
    s.add_document_text("fixed", r#"store{item{"cd"}}"#).unwrap();
    s.add_document_text("live", "feed{@tick}").unwrap();
    s.add_service_text("tick", r#"beat{"1"} :-"#).unwrap();
    let q = parse_query("ans{$i} :- fixed/store{item{$i}}").unwrap();
    out.push(("static-target", s, q));

    out
}

/// Weak soundness: every weakly-unneeded singleton is exactly unneeded,
/// and weak stability implies exact stability.
#[test]
fn weak_properties_are_sound() {
    for (name, sys, q) in zoo() {
        let rel = weak_relevance(&sys, &q);
        let all: Vec<(Sym, NodeId)> = sys.function_nodes();
        for occ in &all {
            if !rel.relevant_calls.contains(occ) {
                assert!(
                    is_unneeded(&sys, &q, &[*occ]).unwrap(),
                    "{name}: weakly-unneeded call is exactly needed — unsound weak analysis"
                );
            }
        }
        if weakly_stable(&sys, &q) {
            assert!(
                is_q_stable(&sys, &q).unwrap(),
                "{name}: weak stability did not imply stability"
            );
        }
    }
}

/// The lazy evaluator's answer is a possible answer (Definition 4.1's
/// very purpose), whenever it stabilizes on a simple system.
#[test]
fn lazy_answers_are_possible_answers() {
    for (name, mut sys, q) in zoo() {
        let check_sys = sys.clone();
        let (answer, stats) = lazy_query_eval(&mut sys, &q, &LazyConfig::default()).unwrap();
        assert!(stats.stable, "{name}: lazy evaluation did not stabilize");
        assert!(
            is_possible_answer(&check_sys, &q, &answer).unwrap(),
            "{name}: lazy answer is not a possible answer"
        );
    }
}

/// Lazy and eager evaluation agree on terminating systems, and lazy
/// never does more invocations than eager-to-fixpoint.
#[test]
fn lazy_matches_eager_with_fewer_invocations() {
    for (name, sys, q) in zoo() {
        let mut eager = sys.clone();
        let (_, estats) = run(&mut eager, &EngineConfig::default()).unwrap();
        let mut env = Env::new();
        for &d in eager.doc_names() {
            env.insert(d, eager.doc(d).unwrap());
        }
        let eager_ans = snapshot(&q, &env).unwrap();

        let mut lazy_sys = sys.clone();
        let (lazy_ans, lstats) =
            lazy_query_eval(&mut lazy_sys, &q, &LazyConfig::default()).unwrap();
        assert!(
            lazy_ans.equivalent(&eager_ans),
            "{name}: lazy and eager answers differ"
        );
        assert!(
            lstats.invocations <= estats.invocations,
            "{name}: lazy used more invocations ({}) than eager ({})",
            lstats.invocations,
            estats.invocations
        );
    }
}

/// Stability is reached exactly when the relevant region is saturated:
/// after an eager fixpoint, every system is q-stable for every query in
/// the zoo.
#[test]
fn fixpoints_are_stable() {
    for (name, mut sys, q) in zoo() {
        run(&mut sys, &EngineConfig::default()).unwrap();
        assert!(
            is_q_stable(&sys, &q).unwrap(),
            "{name}: fixpoint not q-stable"
        );
    }
}

/// §4's non-closure-under-union, reproduced on the redundant-twins
/// system as an integration-level check.
#[test]
fn unneededness_not_closed_under_union() {
    let mut sys = System::new();
    sys.add_document_text("src", r#"r{v{"1"}}"#).unwrap();
    sys.add_document_text("d", "out{@f1, @f2}").unwrap();
    sys.add_service_text("f1", "w{$x} :- src/r{v{$x}}").unwrap();
    sys.add_service_text("f2", "w{$x} :- src/r{v{$x}}").unwrap();
    let q = parse_query("ans{$x} :- d/out{w{$x}}").unwrap();
    let calls = sys.function_nodes();
    assert_eq!(calls.len(), 2);
    assert!(is_unneeded(&sys, &q, &calls[..1]).unwrap());
    assert!(is_unneeded(&sys, &q, &calls[1..]).unwrap());
    assert!(!is_unneeded(&sys, &q, &calls).unwrap());
}
