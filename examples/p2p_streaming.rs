//! P2P AXML (§1/§6): peers exchanging extensional *and intensional*
//! data, pull vs push propagation, and distributed termination
//! detection.
//!
//! ```sh
//! cargo run --example p2p_streaming
//! ```

use positive_axml::p2p::network::{Mode, Network};
use positive_axml::p2p::termination::{detect_termination, Verdict};

fn build(mode: Mode, seed: Option<u64>) -> Network {
    let mut net = Network::new(mode, seed);

    // A music store holding the data.
    let store = net.add_peer("store");
    store
        .add_document_text(
            "cds",
            r#"catalog{cd{title{"Body and Soul"}, rating{"****"}},
                       cd{title{"So What"}, rating{"*****"}}}"#,
        )
        .unwrap();
    store
        .add_service_text("titles", "t{$x} :- cds/catalog{cd{title{$x}}}")
        .unwrap();
    store
        .add_service_text(
            "rating-of",
            "r{$s} :- input/input{$t}, cds/catalog{cd{title{$t}, rating{$s}}}",
        )
        .unwrap();

    // A reviews hub whose ANSWERS are intensional: they contain calls
    // back to the store rather than materialized ratings.
    let hub = net.add_peer("hub");
    hub.add_document_text("feed", "feed{@store.titles}").unwrap();
    hub.add_service_text(
        "reviews",
        r#"review{title{$x}, @store.rating-of{$x}} :- feed/feed{t{$x}}"#,
    )
    .unwrap();

    // The end-user portal subscribes to the hub.
    let portal = net.add_peer("portal");
    portal
        .add_document_text("page", "page{@hub.reviews}")
        .unwrap();
    net
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pull mode: rounds of polling until global quiescence.
    let mut pull = build(Mode::Pull, None);
    assert!(pull.run(100)?);
    println!("pull page : {}", pull.peer("portal").unwrap().doc("page").unwrap());
    println!(
        "pull stats: {} rounds, {} calls, {} responses ({} productive)",
        pull.stats.rounds, pull.stats.calls_sent, pull.stats.responses,
        pull.stats.productive_responses
    );

    // Push mode reaches the same state with fewer messages once stable.
    let mut push = build(Mode::Push, None);
    assert!(push.run(100)?);
    assert_eq!(pull.canonical_key(), push.canonical_key());
    println!(
        "push stats: {} rounds, {} calls, {} responses ({} productive)",
        push.stats.rounds, push.stats.calls_sent, push.stats.responses,
        push.stats.productive_responses
    );

    // Confluence across randomized delivery orders (Theorem 2.1 in the
    // distributed setting).
    for seed in [3u64, 1337] {
        let mut net = build(Mode::Pull, Some(seed));
        net.run(100)?;
        assert_eq!(net.canonical_key(), pull.canonical_key());
    }
    println!("confluence: randomized delivery orders agree");

    // Distributed termination detection (§6): the two-wave detector.
    let mut net = build(Mode::Pull, None);
    match detect_termination(&mut net, 200)? {
        Verdict::Terminated { rounds, waves } => {
            println!("distributed termination detected after {rounds} rounds / {waves} waves")
        }
        Verdict::Undecided => unreachable!("this network terminates"),
    }
    Ok(())
}
