//! Lemma 3.1: Turing machines as positive AXML systems.
//!
//! Runs sample machines both natively and through the AXML encoding
//! (configuration trees + one tree-variable service per transition), and
//! shows the non-halting machine exhausting any engine budget —
//! Corollary 3.1's source of undecidability.
//!
//! ```sh
//! cargo run --example turing
//! ```

use positive_axml::tm::encode::{encode_tm, run_axml_tm, AxmlTmOutcome};
use positive_axml::tm::machine::{run, Outcome};
use positive_axml::tm::samples;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a^n b^n recognition, natively and via AXML.
    let tm = samples::anbn();
    for input in [vec!["a", "b"], vec!["a", "a", "b", "b"], vec!["a", "b", "b"]] {
        let (native, steps) = run(&tm, &input, 10_000);
        let (axml, stats) = run_axml_tm(&tm, &input, 100_000)?;
        let native_acc = matches!(native, Outcome::Accept(_));
        let axml_acc = matches!(axml, AxmlTmOutcome::Accept(_));
        assert_eq!(native_acc, axml_acc);
        println!(
            "a^n b^n on {input:?}: accept={native_acc} \
             (native {steps} steps; AXML {} invocations, {} configs)",
            stats.invocations, stats.configs
        );
    }

    // Binary increment computes an output tape.
    let tm = samples::binary_increment();
    let (native, _) = run(&tm, &["one", "one"], 1_000);
    let (axml, _) = run_axml_tm(&tm, &["one", "one"], 50_000)?;
    println!("\nbinary 11 + 1: native={native:?}\n               axml  ={axml:?}");
    assert_eq!(
        matches!(&native, Outcome::Accept(t) if t == &vec!["zero".to_string(), "zero".into(), "one".into()]),
        matches!(&axml, AxmlTmOutcome::Accept(t) if t == &vec!["zero".to_string(), "zero".into(), "one".into()])
    );

    // The encoded system is positive but NOT simple: tree variables copy
    // the unbounded tape — exactly why Theorem 3.3's decidability needs
    // simplicity.
    let sys = encode_tm(&tm, &["one"])?;
    println!(
        "\nencoded system: positive={}, simple={}",
        sys.is_positive(),
        sys.is_simple()
    );

    // A non-halting, non-cycling machine ⇒ a non-terminating system.
    let spinner = samples::spinner();
    let (out, stats) = run_axml_tm(&spinner, &["one"], 400)?;
    println!(
        "spinner: {out:?} after {} invocations, {} configurations accumulated",
        stats.invocations, stats.configs
    );
    assert_eq!(out, AxmlTmOutcome::Budget);
    Ok(())
}
