//! Quickstart: the paper's §1 jazz-portal document, service invocation,
//! subsumption and reduction.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use positive_axml::core::engine::{run, EngineConfig};
use positive_axml::core::{equivalent, parse_document, parse_tree, reduce, subsumed, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // §2.1's example document: extensional cds, plus intensional data
    // behind service calls (`@name{…}` marks a function node).
    let mut sys = System::new();
    sys.add_document_text(
        "directory",
        r#"directory{
            cd{title{"L'amour"}, singer{"Carla Bruni"}, rating{"***"}},
            cd{title{"Body and Soul"}, singer{"Billie Holiday"},
               @GetRating{"Body and Soul"}},
            cd{title{"Where or When"}, singer{"Peggy Lee"}, rating{"*****"}},
            @FreeMusicDB{type{"Jazz"}}
        }"#,
    )?;

    // GetRating is a positive service: a conjunctive query over a local
    // ratings database, reading its parameter through `input`.
    sys.add_document_text(
        "ratings",
        r#"db{entry{name{"Body and Soul"}, stars{"****"}},
             entry{name{"So What"}, stars{"*****"}}}"#,
    )?;
    sys.add_service_text(
        "GetRating",
        r#"rating{$s} :- input/input{$n}, ratings/db{entry{name{$n}, stars{$s}}}"#,
    )?;
    // FreeMusicDB returns more jazz cds (here a constant answer).
    sys.add_service_text(
        "FreeMusicDB",
        r#"cd{title{"Kind of Blue"}, singer{"Miles Davis"}, @GetRating{"So What"}} :-"#,
    )?;
    sys.validate()?;

    println!("before: {}\n", sys.doc("directory".into()).unwrap());

    // Run a fair rewriting to the fixpoint (Definition 2.4/2.5). Note the
    // FreeMusicDB answer itself contained a call — intensional data.
    let (status, stats) = run(&mut sys, &EngineConfig::default())?;
    println!(
        "engine: {status:?} after {} invocations ({} productive)\n",
        stats.invocations, stats.productive
    );
    println!("after:  {}\n", sys.doc("directory".into()).unwrap());

    // Subsumption and reduction (Definition 2.2, Proposition 2.1).
    let a = parse_tree("a{b{c,c},b{c,d,d}}")?;
    let r = reduce(&a);
    println!("reduce({a}) = {r}");
    assert!(equivalent(&a, &r));
    assert!(subsumed(&parse_tree("b{c,c}")?, &parse_tree("b{c,d,d}")?));

    // Documents are unordered: these two parse to equivalent trees.
    let x = parse_document("songs{s{\"1\"}, s{\"2\"}}")?;
    let y = parse_document("songs{s{\"2\"}, s{\"1\"}}")?;
    assert!(equivalent(&x, &y));
    println!("\nok: unordered equivalence and reduction behave as in the paper");
    Ok(())
}
