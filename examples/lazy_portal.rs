//! Lazy query evaluation (§4): answer a query over a portal whose
//! irrelevant branch *diverges* — eager materialization never finishes,
//! lazy evaluation answers after two invocations.
//!
//! ```sh
//! cargo run --example lazy_portal
//! ```

use positive_axml::core::engine::{run, EngineConfig, RunStatus};
use positive_axml::core::lazy::{
    is_q_stable, is_unneeded, lazy_query_eval, weak_relevance, LazyConfig,
};
use positive_axml::core::query::parse_query;
use positive_axml::core::{Marking, System};

fn portal() -> System {
    let mut sys = System::new();
    sys.add_document_text(
        "dir",
        r#"directory{
            cd{title{"Body and Soul"}, @GetRating{"Body and Soul"}},
            cd{title{"Where or When"}, rating{"*****"}},
            junk{@Spam}
        }"#,
    )
    .unwrap();
    sys.add_document_text(
        "ratings",
        r#"db{entry{name{"Body and Soul"}, stars{"****"}}}"#,
    )
    .unwrap();
    sys.add_service_text(
        "GetRating",
        r#"rating{$s} :- input/input{$n}, ratings/db{entry{name{$n}, stars{$s}}}"#,
    )
    .unwrap();
    // The junk branch hosts an Example 2.1-style diverging service.
    sys.add_service_text("Spam", "junk{@Spam} :-").unwrap();
    sys
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let q = parse_query(r#"rating{$s} :- dir/directory{cd{title{"Body and Soul"}, rating{$s}}}"#)?;

    // Weak relevance (PTIME, §4's "weaker properties"): only GetRating
    // can matter; the diverging Spam call is weakly unneeded.
    let sys = portal();
    let rel = weak_relevance(&sys, &q);
    let dir = sys.doc("dir".into()).unwrap();
    let relevant: Vec<String> = rel
        .relevant_calls
        .iter()
        .map(|&(_, n)| dir.marking(n).sym().to_string())
        .collect();
    println!("weakly relevant calls: {relevant:?}");

    // Exact analysis (Theorem 4.1 (2), graph representations): the Spam
    // call is q-unneeded; the whole system is not yet q-stable.
    let spam = dir
        .function_nodes()
        .into_iter()
        .find(|&n| dir.marking(n) == Marking::func("Spam"))
        .unwrap();
    println!(
        "exact: Spam q-unneeded = {}, system q-stable = {}",
        is_unneeded(&sys, &q, &[("dir".into(), spam)])?,
        is_q_stable(&sys, &q)?
    );

    // Eager evaluation burns its entire budget on the junk branch.
    let mut eager = portal();
    let (status, estats) = run(&mut eager, &EngineConfig::with_budget(500))?;
    assert_eq!(status, RunStatus::InvocationBudget);
    println!("eager:  budget exhausted after {} invocations", estats.invocations);

    // Lazy evaluation invokes only the relevant call and stabilizes.
    let mut lazy = portal();
    let (answer, lstats) = lazy_query_eval(&mut lazy, &q, &LazyConfig::default())?;
    println!(
        "lazy:   stable={} after {} invocations; answer = {}",
        lstats.stable,
        lstats.invocations,
        answer
            .trees()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert!(lstats.stable && lstats.invocations <= 3);
    Ok(())
}
