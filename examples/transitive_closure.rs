//! Example 3.2: a simple positive system computing a transitive closure,
//! the datalog connection (§3.2), termination analysis (Theorem 3.3),
//! and the fire-once contrast (§4).
//!
//! ```sh
//! cargo run --example transitive_closure
//! ```

use positive_axml::core::engine::{run, EngineConfig};
use positive_axml::core::fireonce::run_fire_once;
use positive_axml::core::graphrepr::{decide_termination, Termination};
use positive_axml::core::System;
use positive_axml::datalog::{axml_eval, parse_program, seminaive_eval};

fn example_3_2() -> System {
    let mut sys = System::new();
    sys.add_document_text(
        "d0",
        r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, t{from{"3"},to{"4"}}}"#,
    )
    .unwrap();
    sys.add_document_text("d1", "r{@g,@f}").unwrap();
    // g copies the base relation; f is the recursive join — the paper's
    //   g : t{x,y} :- d0/r{t{x,y}}
    //   f : t{x,y} :- d1/r{t{x,z}, t{z,y}}
    sys.add_service_text("g", "t{from{$x},to{$y}} :- d0/r{t{from{$x},to{$y}}}")
        .unwrap();
    sys.add_service_text(
        "f",
        "t{from{$x},to{$y}} :- d1/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
    )
    .unwrap();
    sys
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's own decision procedure says this system terminates.
    let verdict = decide_termination(&example_3_2())?;
    assert_eq!(verdict, Termination::Terminates);
    println!("Theorem 3.3 verdict: {verdict:?}");

    // 2. Positive semantics: the fair engine computes the closure.
    let mut sys = example_3_2();
    let (_, stats) = run(&mut sys, &EngineConfig::default())?;
    println!(
        "positive semantics: d1 = {} ({} invocations)",
        sys.doc("d1".into()).unwrap(),
        stats.invocations
    );

    // 3. Fire-once semantics loses the recursion (§4).
    let mut fo = example_3_2();
    let fstats = run_fire_once(&mut fo, 10_000)?;
    println!(
        "fire-once semantics: d1 = {} ({} calls fired)",
        fo.doc("d1".into()).unwrap(),
        fstats.fired
    );
    assert!(fo.subsumed_by(&sys) && !sys.subsumed_by(&fo));

    // 4. The same computation as a datalog program, evaluated natively
    //    (semi-naive) and through the AXML simulation — §3.2's "any
    //    datalog program can be simulated by a simple positive system".
    let prog = parse_program(
        r#"
        edge("1","2"). edge("2","3"). edge("3","4").
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
    "#,
    )?;
    let (dl, _) = seminaive_eval(&prog);
    let (ax, invocations) = axml_eval(&prog)?;
    assert_eq!(dl, ax);
    println!(
        "datalog: {} path tuples; AXML simulation agrees ({} invocations)",
        dl["path"].len(),
        invocations
    );
    Ok(())
}
