//! §5: regular path expressions and the ψ translation (Prop 5.1).
//!
//! Evaluates a positive+reg query directly (NFA walk) and through ψ —
//! translating the path expression into automaton-state services — and
//! checks the two agree. Also shows the nesting example from §5.
//!
//! ```sh
//! cargo run --example path_expressions
//! ```

use positive_axml::core::engine::{run, EngineConfig};
use positive_axml::core::eval::{snapshot, Env};
use positive_axml::core::forest::Forest;
use positive_axml::core::pathexpr::{parse_reg_query, snapshot_reg};
use positive_axml::core::translate::{strip_annotations, translate};
use positive_axml::core::System;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = System::new();
    sys.add_document_text(
        "d",
        r#"lib{
            shelf{box{cd{title{"A"}}}, cd{title{"B"}}},
            cd{title{"C"}},
            misc{dvd{title{"D"}}}
        }"#,
    )?;

    // A positive+reg query: titles of cds under ANY chain of labels.
    let q = parse_reg_query("t{$x} :- d/lib{<_*.cd>{title{$x}}}")?;

    // Direct evaluation (NFA product walk).
    let mut env = Env::new();
    env.insert("d".into(), sys.doc("d".into()).unwrap());
    let direct = snapshot_reg(&q, &env)?;
    println!(
        "direct : {}",
        direct.trees().iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    );

    // ψ translation: plain positive system + query.
    let tr = translate(&sys, &q)?;
    println!(
        "ψ added {} services, planted {} calls ({} path occurrence(s))",
        tr.stats.services_added, tr.stats.calls_planted, tr.stats.occurrences
    );
    let mut tsys = tr.system;
    run(&mut tsys, &EngineConfig::default())?;
    let mut tenv = Env::new();
    for &dn in tsys.doc_names() {
        tenv.insert(dn, tsys.doc(dn).unwrap());
    }
    let raw = snapshot(&tr.query, &tenv)?;
    let via_psi: Forest = raw.trees().iter().map(strip_annotations).collect();
    let via_psi = via_psi.reduce();
    println!(
        "via ψ  : {}",
        via_psi.trees().iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    );
    assert!(direct.reduce().equivalent(&via_psi));

    // §5's nesting example: nest a binary relation on its a-column with
    // a context-reading service — a *simple* system.
    let mut nest = System::new();
    nest.add_document_text(
        "d",
        r#"r{t{a{"1"}, b{"2"}}, t{a{"1"}, b{"3"}}, t{a{"2"}, b{"2"}}}"#,
    )?;
    nest.add_document_text("dn", "r{@f}")?;
    nest.add_service_text("f", "t{a{$x}, @g} :- d/r{t{a{$x}}}")?;
    nest.add_service_text(
        "g",
        "b{$y} :- context/t{a{$x}}, d/r{t{a{$x}, b{$y}}}",
    )?;
    run(&mut nest, &EngineConfig::default())?;
    println!("\nnesting (simple system!): {}", nest.doc("dn".into()).unwrap());
    assert!(nest.is_simple());
    Ok(())
}
