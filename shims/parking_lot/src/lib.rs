//! Offline shim for `parking_lot`: thin wrappers over `std::sync` locks
//! with the panic-free (poison-recovering) `parking_lot` API shape.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (recovers from poisoning).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard (recovers from poisoning).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (recovers from poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
