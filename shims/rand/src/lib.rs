//! Offline shim for `rand` 0.8: the subset of the API this workspace
//! uses, backed by SplitMix64. Deterministic for a given seed, like the
//! seeded `StdRng` the repo relies on for reproducible experiments.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard generator: SplitMix64 (not cryptographic; plenty for
    /// seeded experiment schedules and workload generation).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range. Panics on an empty range, like
    /// the real crate.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The user-facing generator methods, blanket-implemented for any core.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u8 = rng.gen_range(0..=2);
            assert!(y <= 2);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }
}
