//! Offline shim for `criterion`: a wall-clock micro-bench harness with
//! the API shape the X1–X13 benches use. No statistics, plots, or
//! baselines — each benchmark reports the median of up to `sample_size`
//! timed samples, bounded by `measurement_time`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The bench context handed to `criterion_group!` functions.
pub struct Criterion {
    /// When true (set by `--test`, as `cargo test` passes to harnessless
    /// bench targets), run each benchmark body once and skip timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            test_mode: self.test_mode,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, Duration::from_secs(2), self.test_mode, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.test_mode,
            |b| f(b, input),
        );
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.test_mode,
            |b| f(b),
        );
        self
    }

    /// End the group (report layout only; nothing buffered).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget: if test_mode {
            Duration::ZERO
        } else {
            measurement_time
        },
        sample_size: if test_mode { 1 } else { sample_size },
    };
    f(&mut b);
    if test_mode {
        println!("{label}: ok (test mode)");
        return;
    }
    let mut s = b.samples;
    if s.is_empty() {
        println!("{label}: no samples");
        return;
    }
    s.sort_unstable();
    let median = s[s.len() / 2];
    println!(
        "{label}  time: {}  (median of {} samples)",
        fmt_duration(median),
        s.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Timing driver passed to each benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting up to the configured number of samples
    /// within the measurement budget (always at least one run).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if self.samples.len() >= self.sample_size || start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// A benchmark's display identifier.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so group APIs accept strings too.
pub trait IntoBenchmarkId {
    /// Convert.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Define a bench group function invoking each benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a bench binary from its groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_samples() {
        let mut c = Criterion { test_mode: false };
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        g.bench_with_input(BenchmarkId::new("noop", 1), &7u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x + 1
            })
        });
        g.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut runs = 0usize;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
