//! Offline shim for `crossbeam`: the `channel` subset the p2p substrate
//! uses, backed by `std::sync::mpsc`.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The sending half; cloneable across threads.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; fails iff all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Block with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Sending on a channel with no live receiver.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Receiving on a channel with no live sender.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a timed receive returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed first.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Why a non-blocking receive returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(42u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(42));
        h.join().unwrap();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<()>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
