//! Offline shim for `crossbeam`: the `channel` subset the p2p substrate
//! uses (backed by `std::sync::mpsc`) plus the `thread::scope` subset
//! the parallel engine uses (backed by `std::thread::scope`, stable
//! since Rust 1.63 — within the workspace's 1.75 floor).

/// Scoped threads, mirroring `crossbeam::thread` (the `scope` entry
/// point only). Scoped spawns may borrow from the caller's stack; the
/// scope joins every thread before returning.
pub mod thread {
    /// A handle to a running scoped thread (mirrors
    /// `crossbeam::thread::ScopedJoinHandle`).
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish and return its result.
        /// Panics propagate to the joiner, matching crossbeam's
        /// behavior of surfacing child panics at the scope boundary.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// The scope passed to the closure of [`scope`].
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow non-`'static` data from the
        /// enclosing scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.0.spawn(f))
        }
    }

    /// Create a scope for spawning borrowing threads. All spawned
    /// threads are joined before `scope` returns; a child panic is
    /// re-raised on the caller once every sibling has been joined.
    ///
    /// Unlike real crossbeam (which returns `thread::Result<R>`), the
    /// std backend propagates child panics directly, so the closure's
    /// value is returned as-is — the signature the engine uses.
    pub fn scope<'env, F, R>(f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::thread::scope(|s| f(&Scope(s)))
    }
}

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The sending half; cloneable across threads.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; fails iff all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Block with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Sending on a channel with no live receiver.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Receiving on a channel with no live sender.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a timed receive returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed first.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Why a non-blocking receive returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(42u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(42));
        h.join().unwrap();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sums: Vec<u64> = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move || c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<()>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
