//! Offline shim for `proptest`: a deterministic, non-shrinking
//! property-testing harness with the strategy-combinator API surface
//! this workspace uses (`proptest!`, `prop_oneof!`, `prop_map`,
//! `prop_recursive`, integer ranges, tuples, `collection::vec`).
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * no shrinking — a failing case reports its inputs verbatim;
//! * the RNG is seeded deterministically (override with the
//!   `PROPTEST_SEED` environment variable), so runs are reproducible;
//! * `prop_recursive` unrolls the recursion to its depth bound instead
//!   of sampling a target size.

pub mod test_runner {
    use std::fmt;

    /// Run configuration: how many random cases per property.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to execute.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic generator driving all strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from `PROPTEST_SEED` when set, else a fixed constant.
        pub fn deterministic() -> TestRng {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x243F_6A88_85A3_08D3);
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generate one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { src: self, f }
        }

        /// Type-erase into a cloneable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.gen_value(rng)))
        }

        /// Build a recursive strategy: `self` is the leaf case and `f`
        /// wraps an inner strategy into the recursive case. The
        /// recursion is unrolled `levels` deep (the real crate's
        /// `depth`); `_desired_size`/`_expected_branch` are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            levels: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..levels {
                strat = f(strat.clone()).boxed();
            }
            strat
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        src: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.src.gen_value(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    /// The unit strategy (`Just`): always the same cloneable value.
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Accepted vector-length specifications.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Generates `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors: `vec(element, 0..4)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Namespace alias so `prop::collection::vec(..)` works after
/// `use proptest::prelude::*`, as with the real crate.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
}

/// Declare property tests: each runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n{}",
                        case + 1,
                        config.cases,
                        e,
                        [$(format!("  {} = {:?}", stringify!($arg), &$arg)),+]
                            .join("\n"),
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..7, y in 0usize..=4) {
            prop_assert!((3..7).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn map_and_oneof_compose(v in prop_oneof![
            (0u8..3).prop_map(|x| x as u32),
            (10u8..13).prop_map(|x| x as u32),
        ]) {
            prop_assert!(v < 3 || (10..13).contains(&v));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn recursive_strategies_bound_depth() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..1).prop_map(|_| T::Leaf).prop_recursive(3, 8, 2, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(T::Node)
        });
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            assert!(depth(&strat.gen_value(&mut rng)) <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
