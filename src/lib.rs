//! # positive-axml — facade crate
//!
//! Re-exports the crates of the *Positive Active XML* (PODS 2004)
//! reproduction under one roof. See `README.md`, `DESIGN.md`, and the
//! runnable programs under `examples/`.

#![forbid(unsafe_code)]

pub use axml_automata as automata;
pub use axml_core as core;
pub use axml_datalog as datalog;
pub use axml_p2p as p2p;
pub use axml_server as server;
pub use axml_tm as tm;
