//! `axml` — a command-line driver for the Positive Active XML engine.
//!
//! ```text
//! axml run <file.axml> [--budget N] [--strategy reverse|random:SEED]
//! axml query <file.axml> '<query>' [--lazy]
//! axml decide <file.axml>
//! axml analyze <file.axml> '<query>'
//! axml fire-once <file.axml>
//! axml reduce '<tree>'
//! axml --version
//! ```
//!
//! System files use the `doc`/`service` declaration format of
//! `axml_core::file` (see `examples/portal.axml`).

use positive_axml::core::engine::{run, EngineConfig, RunStatus, Strategy};
use positive_axml::core::eval::{snapshot, Env};
use positive_axml::core::file::from_text;
use positive_axml::core::fireonce::run_fire_once;
use positive_axml::core::graphrepr::{decide_termination, Termination};
use positive_axml::core::lazy::{is_q_stable, lazy_query_eval, weak_relevance, LazyConfig};
use positive_axml::core::query::parse_query;
use positive_axml::core::{parse_tree, reduce, System};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  axml run <file> [--budget N] [--strategy reverse|random:SEED]\n  \
         axml query <file> '<query>' [--lazy]\n  \
         axml decide <file>\n  \
         axml analyze <file> '<query>'\n  \
         axml fire-once <file>\n  \
         axml reduce '<tree>'\n  \
         axml --version"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<System, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let sys = from_text(&src).map_err(|e| format!("{path}: {e}"))?;
    sys.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(sys)
}

fn print_docs(sys: &System) {
    for &d in sys.doc_names() {
        println!("doc {d} = {}", sys.doc(d).expect("stored"));
    }
}

fn parse_strategy(s: &str) -> Result<Strategy, String> {
    match s {
        "reverse" => Ok(Strategy::Reverse),
        _ => match s.strip_prefix("random:") {
            Some(seed) => seed
                .parse::<u64>()
                .map(Strategy::Random)
                .map_err(|e| format!("bad seed: {e}")),
            None => Err(format!("unknown strategy {s:?}")),
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run_cli(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Ok(usage());
    };
    match cmd.as_str() {
        "run" => {
            let Some(path) = args.get(1) else { return Ok(usage()) };
            let mut budget = 100_000usize;
            let mut strategy = Strategy::RoundRobin;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--budget" => {
                        budget = args
                            .get(i + 1)
                            .ok_or("--budget needs a value")?
                            .parse()
                            .map_err(|e| format!("bad budget: {e}"))?;
                        i += 2;
                    }
                    "--strategy" => {
                        strategy =
                            parse_strategy(args.get(i + 1).ok_or("--strategy needs a value")?)?;
                        i += 2;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let mut sys = load(path)?;
            let cfg = EngineConfig {
                max_invocations: budget,
                strategy,
                ..EngineConfig::default()
            };
            let (status, stats) = run(&mut sys, &cfg).map_err(|e| e.to_string())?;
            print_docs(&sys);
            eprintln!(
                "status: {status:?} ({} invocations, {} productive, {} rounds)",
                stats.invocations, stats.productive, stats.rounds
            );
            Ok(if status == RunStatus::Terminated {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(3)
            })
        }
        "query" => {
            let (Some(path), Some(qtext)) = (args.get(1), args.get(2)) else {
                return Ok(usage());
            };
            let lazy = args.iter().any(|a| a == "--lazy");
            let mut sys = load(path)?;
            let q = parse_query(qtext).map_err(|e| e.to_string())?;
            let answer = if lazy {
                let (ans, stats) = lazy_query_eval(&mut sys, &q, &LazyConfig::default())
                    .map_err(|e| e.to_string())?;
                eprintln!(
                    "lazy: stable={} after {} invocations / {} rounds",
                    stats.stable, stats.invocations, stats.rounds
                );
                ans
            } else {
                run(&mut sys, &EngineConfig::default()).map_err(|e| e.to_string())?;
                let mut env = Env::new();
                for &d in sys.doc_names() {
                    env.insert(d, sys.doc(d).expect("stored"));
                }
                snapshot(&q, &env).map_err(|e| e.to_string())?
            };
            for t in answer.trees() {
                println!("{t}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "decide" => {
            let Some(path) = args.get(1) else { return Ok(usage()) };
            let sys = load(path)?;
            match decide_termination(&sys).map_err(|e| e.to_string())? {
                Termination::Terminates => {
                    println!("terminates");
                    Ok(ExitCode::SUCCESS)
                }
                Termination::Diverges { cycle_len } => {
                    println!("diverges (cycle of length {cycle_len})");
                    Ok(ExitCode::from(3))
                }
            }
        }
        "analyze" => {
            let (Some(path), Some(qtext)) = (args.get(1), args.get(2)) else {
                return Ok(usage());
            };
            let sys = load(path)?;
            let q = parse_query(qtext).map_err(|e| e.to_string())?;
            let rel = weak_relevance(&sys, &q);
            println!("weakly relevant calls: {}", rel.relevant_calls.len());
            for &(d, n) in &rel.relevant_calls {
                let t = sys.doc(d).expect("stored");
                println!("  {d}: {}", t.marking(n));
            }
            match is_q_stable(&sys, &q) {
                Ok(stable) => println!("q-stable (exact): {stable}"),
                Err(e) => println!("q-stable (exact): unavailable ({e})"),
            }
            Ok(ExitCode::SUCCESS)
        }
        "fire-once" => {
            let Some(path) = args.get(1) else { return Ok(usage()) };
            let mut sys = load(path)?;
            let stats = run_fire_once(&mut sys, 100_000).map_err(|e| e.to_string())?;
            print_docs(&sys);
            eprintln!(
                "fired {} calls once each ({} productive, topological: {})",
                stats.fired, stats.productive, stats.topological
            );
            Ok(ExitCode::SUCCESS)
        }
        "reduce" => {
            let Some(tree) = args.get(1) else { return Ok(usage()) };
            let t = parse_tree(tree).map_err(|e| e.to_string())?;
            println!("{}", reduce(&t));
            Ok(ExitCode::SUCCESS)
        }
        "--version" | "-V" => {
            println!("axml {}", env!("CARGO_PKG_VERSION"));
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}
