//! Regular expressions over a label alphabet.
//!
//! Textual syntax (labels are identifiers; `.` concatenates because
//! labels are multi-character words):
//!
//! ```text
//! path   := alt
//! alt    := cat ('|' cat)*
//! cat    := rep ('.' rep)*
//! rep    := atom ('*' | '+' | '?')*
//! atom   := LABEL | '_' | '(' path ')'
//! ```
//!
//! Examples: `a.(b|c)*.d`, `_*.rating`, `cd.title?`.

use std::fmt;

/// A regular expression over labels of type `L`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex<L> {
    /// The empty word.
    Epsilon,
    /// A single label.
    Label(L),
    /// Any single label (wildcard `_`).
    Any,
    /// Concatenation.
    Concat(Box<Regex<L>>, Box<Regex<L>>),
    /// Alternation.
    Alt(Box<Regex<L>>, Box<Regex<L>>),
    /// Kleene star.
    Star(Box<Regex<L>>),
}

impl<L> Regex<L> {
    /// `r+` desugars to `r.r*`.
    pub fn plus(r: Regex<L>) -> Regex<L>
    where
        L: Clone,
    {
        Regex::Concat(Box::new(r.clone()), Box::new(Regex::Star(Box::new(r))))
    }

    /// `r?` desugars to `ε | r`.
    pub fn opt(r: Regex<L>) -> Regex<L> {
        Regex::Alt(Box::new(Regex::Epsilon), Box::new(r))
    }

    /// Map the label type (e.g. `String` → an interned symbol).
    pub fn map<M>(&self, f: &mut impl FnMut(&L) -> M) -> Regex<M> {
        match self {
            Regex::Epsilon => Regex::Epsilon,
            Regex::Any => Regex::Any,
            Regex::Label(l) => Regex::Label(f(l)),
            Regex::Concat(a, b) => Regex::Concat(Box::new(a.map(f)), Box::new(b.map(f))),
            Regex::Alt(a, b) => Regex::Alt(Box::new(a.map(f)), Box::new(b.map(f))),
            Regex::Star(a) => Regex::Star(Box::new(a.map(f))),
        }
    }

    /// All labels mentioned.
    pub fn labels(&self) -> Vec<&L> {
        let mut out = Vec::new();
        fn go<'a, L>(r: &'a Regex<L>, out: &mut Vec<&'a L>) {
            match r {
                Regex::Label(l) => out.push(l),
                Regex::Concat(a, b) | Regex::Alt(a, b) => {
                    go(a, out);
                    go(b, out);
                }
                Regex::Star(a) => go(a, out),
                Regex::Epsilon | Regex::Any => {}
            }
        }
        go(self, &mut out);
        out
    }

    /// Does the expression use the `_` wildcard?
    pub fn uses_wildcard(&self) -> bool {
        match self {
            Regex::Any => true,
            Regex::Concat(a, b) | Regex::Alt(a, b) => a.uses_wildcard() || b.uses_wildcard(),
            Regex::Star(a) => a.uses_wildcard(),
            Regex::Epsilon | Regex::Label(_) => false,
        }
    }
}

impl<L: fmt::Display> fmt::Display for Regex<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Epsilon => write!(f, "()"),
            Regex::Label(l) => write!(f, "{l}"),
            Regex::Any => write!(f, "_"),
            Regex::Concat(a, b) => write!(f, "{a}.{b}"),
            Regex::Alt(a, b) => write!(f, "({a}|{b})"),
            Regex::Star(a) => match **a {
                Regex::Label(_) | Regex::Any | Regex::Epsilon => write!(f, "{a}*"),
                _ => write!(f, "({a})*"),
            },
        }
    }
}

/// Parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegexError {
    /// Byte position of the failure.
    pub pos: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for RegexError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, RegexError> {
        Err(RegexError {
            pos: self.pos,
            msg: msg.to_string(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alt(&mut self) -> Result<Regex<String>, RegexError> {
        let mut r = self.cat()?;
        while self.eat(b'|') {
            let rhs = self.cat()?;
            r = Regex::Alt(Box::new(r), Box::new(rhs));
        }
        Ok(r)
    }

    fn cat(&mut self) -> Result<Regex<String>, RegexError> {
        let mut r = self.rep()?;
        while self.eat(b'.') {
            let rhs = self.rep()?;
            r = Regex::Concat(Box::new(r), Box::new(rhs));
        }
        Ok(r)
    }

    fn rep(&mut self) -> Result<Regex<String>, RegexError> {
        let mut r = self.atom()?;
        loop {
            if self.eat(b'*') {
                r = Regex::Star(Box::new(r));
            } else if self.eat(b'+') {
                r = Regex::plus(r);
            } else if self.eat(b'?') {
                r = Regex::opt(r);
            } else {
                return Ok(r);
            }
        }
    }

    fn atom(&mut self) -> Result<Regex<String>, RegexError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                if self.eat(b')') {
                    return Ok(Regex::Epsilon); // `()` is ε (printed by Display)
                }
                let r = self.alt()?;
                if !self.eat(b')') {
                    return self.err("expected ')'");
                }
                Ok(r)
            }
            Some(b'_') => {
                self.pos += 1;
                Ok(Regex::Any)
            }
            Some(c) if c.is_ascii_alphanumeric() || c == b'-' => {
                let start = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric()
                        || self.src[self.pos] == b'-')
                {
                    self.pos += 1;
                }
                let label = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ASCII label")
                    .to_string();
                Ok(Regex::Label(label))
            }
            _ => self.err("expected label, '_' or '('"),
        }
    }
}

/// Parse a path expression over string labels.
pub fn parse_regex(src: &str) -> Result<Regex<String>, RegexError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    let r = p.alt()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return p.err("trailing input");
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_forms() {
        assert_eq!(parse_regex("a").unwrap(), Regex::Label("a".into()));
        assert_eq!(
            parse_regex("a.b").unwrap(),
            Regex::Concat(
                Box::new(Regex::Label("a".into())),
                Box::new(Regex::Label("b".into()))
            )
        );
        assert!(matches!(parse_regex("a|b").unwrap(), Regex::Alt(..)));
        assert!(matches!(parse_regex("a*").unwrap(), Regex::Star(..)));
        assert_eq!(parse_regex("_").unwrap(), Regex::Any);
    }

    #[test]
    fn parse_precedence() {
        // a.b|c = (a.b)|c ; a.b* = a.(b*)
        let r = parse_regex("a.b|c").unwrap();
        assert!(matches!(r, Regex::Alt(..)));
        let r = parse_regex("a.b*").unwrap();
        match r {
            Regex::Concat(_, b) => assert!(matches!(*b, Regex::Star(..))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_regex("").is_err());
        assert!(parse_regex("(a").is_err());
        assert!(parse_regex("a..b").is_err());
        assert!(parse_regex("a)").is_err());
        assert!(parse_regex("|a").is_err());
    }

    #[test]
    fn desugaring() {
        // a+ = a.a*, a? = ()|a
        let plus = parse_regex("a+").unwrap();
        assert!(matches!(plus, Regex::Concat(..)));
        let opt = parse_regex("a?").unwrap();
        match opt {
            Regex::Alt(l, _) => assert_eq!(*l, Regex::Epsilon),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_roundtrip() {
        for src in ["a.(b|c)*.d", "a+", "_*.rating", "x?"] {
            let r = parse_regex(src).unwrap();
            let r2 = parse_regex(&r.to_string()).unwrap();
            assert_eq!(r.to_string(), r2.to_string());
        }
    }

    #[test]
    fn label_collection_and_map() {
        let r = parse_regex("a.(b|c)*").unwrap();
        let mut labels: Vec<&String> = r.labels();
        labels.sort();
        assert_eq!(labels, vec!["a", "b", "c"]);
        let mapped = r.map(&mut |l: &String| l.len());
        assert_eq!(mapped.labels(), vec![&1usize, &1, &1]);
    }
}
