//! Nondeterministic finite automata over label alphabets.
//!
//! Built by Thompson's construction from [`Regex`]; ε-transitions can be
//! eliminated ([`Nfa::without_epsilon`]) because the ψ translation of
//! Proposition 5.1 manufactures one AXML service per **labeled** move
//! `δ(q, a) = p`.

use crate::regex::Regex;
use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// An automaton state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StateId(pub u32);

/// A transition label: a concrete label, the wildcard, or ε.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Move<L> {
    /// Consume one occurrence of this label.
    Label(L),
    /// Consume any one label.
    Any,
    /// Consume nothing.
    Epsilon,
}

/// An NFA over labels `L`.
#[derive(Clone, Debug)]
pub struct Nfa<L> {
    /// Number of states (ids are `0..states`).
    states: u32,
    /// Start state.
    pub start: StateId,
    /// Accepting states.
    pub accept: HashSet<StateId>,
    /// Transitions `(from, move, to)`.
    transitions: Vec<(StateId, Move<L>, StateId)>,
}

impl<L: Clone + Eq + Hash> Nfa<L> {
    /// Thompson construction.
    pub fn from_regex(r: &Regex<L>) -> Nfa<L> {
        let mut nfa = Nfa {
            states: 0,
            start: StateId(0),
            accept: HashSet::new(),
            transitions: Vec::new(),
        };
        let (s, f) = nfa.build(r);
        nfa.start = s;
        nfa.accept.insert(f);
        nfa
    }

    fn fresh(&mut self) -> StateId {
        let id = StateId(self.states);
        self.states += 1;
        id
    }

    fn build(&mut self, r: &Regex<L>) -> (StateId, StateId) {
        match r {
            Regex::Epsilon => {
                let s = self.fresh();
                let f = self.fresh();
                self.transitions.push((s, Move::Epsilon, f));
                (s, f)
            }
            Regex::Label(l) => {
                let s = self.fresh();
                let f = self.fresh();
                self.transitions.push((s, Move::Label(l.clone()), f));
                (s, f)
            }
            Regex::Any => {
                let s = self.fresh();
                let f = self.fresh();
                self.transitions.push((s, Move::Any, f));
                (s, f)
            }
            Regex::Concat(a, b) => {
                let (sa, fa) = self.build(a);
                let (sb, fb) = self.build(b);
                self.transitions.push((fa, Move::Epsilon, sb));
                (sa, fb)
            }
            Regex::Alt(a, b) => {
                let s = self.fresh();
                let f = self.fresh();
                let (sa, fa) = self.build(a);
                let (sb, fb) = self.build(b);
                self.transitions.push((s, Move::Epsilon, sa));
                self.transitions.push((s, Move::Epsilon, sb));
                self.transitions.push((fa, Move::Epsilon, f));
                self.transitions.push((fb, Move::Epsilon, f));
                (s, f)
            }
            Regex::Star(a) => {
                let s = self.fresh();
                let f = self.fresh();
                let (sa, fa) = self.build(a);
                self.transitions.push((s, Move::Epsilon, sa));
                self.transitions.push((s, Move::Epsilon, f));
                self.transitions.push((fa, Move::Epsilon, sa));
                self.transitions.push((fa, Move::Epsilon, f));
                (s, f)
            }
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states as usize
    }

    /// All transitions.
    pub fn transitions(&self) -> &[(StateId, Move<L>, StateId)] {
        &self.transitions
    }

    /// ε-closure of a state set.
    pub fn eps_closure(&self, set: &HashSet<StateId>) -> HashSet<StateId> {
        let mut out = set.clone();
        let mut stack: Vec<StateId> = set.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for (from, mv, to) in &self.transitions {
                if *from == s && matches!(mv, Move::Epsilon) && out.insert(*to) {
                    stack.push(*to);
                }
            }
        }
        out
    }

    /// One labeled step from a state set.
    pub fn step(&self, set: &HashSet<StateId>, label: &L) -> HashSet<StateId> {
        let mut out = HashSet::new();
        for (from, mv, to) in &self.transitions {
            if set.contains(from) {
                match mv {
                    Move::Label(l) if l == label => {
                        out.insert(*to);
                    }
                    Move::Any => {
                        out.insert(*to);
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// Does the automaton accept `word`?
    pub fn accepts(&self, word: &[L]) -> bool {
        let mut current = self.eps_closure(&HashSet::from([self.start]));
        for l in word {
            current = self.eps_closure(&self.step(&current, l));
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|s| self.accept.contains(s))
    }

    /// Equivalent NFA with no ε-transitions (same state space; labeled
    /// transitions completed through closures; accepting states extended
    /// to those whose closure accepts).
    pub fn without_epsilon(&self) -> Nfa<L> {
        let mut closures: HashMap<StateId, HashSet<StateId>> = HashMap::new();
        for s in 0..self.states {
            let sid = StateId(s);
            closures.insert(sid, self.eps_closure(&HashSet::from([sid])));
        }
        let mut transitions: Vec<(StateId, Move<L>, StateId)> = Vec::new();
        for s in 0..self.states {
            let sid = StateId(s);
            for mid in &closures[&sid] {
                for (from, mv, to) in &self.transitions {
                    if from == mid && !matches!(mv, Move::Epsilon) {
                        let entry = (sid, mv.clone(), *to);
                        if !transitions.contains(&entry) {
                            transitions.push(entry);
                        }
                    }
                }
            }
        }
        let mut accept: HashSet<StateId> = HashSet::new();
        for s in 0..self.states {
            let sid = StateId(s);
            if closures[&sid].iter().any(|m| self.accept.contains(m)) {
                accept.insert(sid);
            }
        }
        Nfa {
            states: self.states,
            start: self.start,
            accept,
            transitions,
        }
    }

    /// States reachable from the start via any transitions.
    pub fn reachable_states(&self) -> HashSet<StateId> {
        let mut out = HashSet::from([self.start]);
        let mut stack = vec![self.start];
        while let Some(s) = stack.pop() {
            for (from, _, to) in &self.transitions {
                if *from == s && out.insert(*to) {
                    stack.push(*to);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse_regex;

    fn accepts(expr: &str, word: &[&str]) -> bool {
        let r = parse_regex(expr).unwrap();
        let nfa = Nfa::from_regex(&r);
        let w: Vec<String> = word.iter().map(|s| s.to_string()).collect();
        let plain = nfa.accepts(&w);
        // ε-free variant must agree.
        assert_eq!(nfa.without_epsilon().accepts(&w), plain, "ε-free disagrees on {expr}");
        plain
    }

    #[test]
    fn basic_acceptance() {
        assert!(accepts("a", &["a"]));
        assert!(!accepts("a", &["b"]));
        assert!(!accepts("a", &[]));
        assert!(accepts("a.b", &["a", "b"]));
        assert!(!accepts("a.b", &["a"]));
    }

    #[test]
    fn star_plus_opt() {
        assert!(accepts("a*", &[]));
        assert!(accepts("a*", &["a", "a", "a"]));
        assert!(!accepts("a+", &[]));
        assert!(accepts("a+", &["a"]));
        assert!(accepts("a?", &[]));
        assert!(accepts("a?", &["a"]));
        assert!(!accepts("a?", &["a", "a"]));
    }

    #[test]
    fn alternation_and_grouping() {
        assert!(accepts("a.(b|c)*.d", &["a", "d"]));
        assert!(accepts("a.(b|c)*.d", &["a", "b", "c", "b", "d"]));
        assert!(!accepts("a.(b|c)*.d", &["a", "x", "d"]));
    }

    #[test]
    fn wildcard() {
        assert!(accepts("_", &["anything"]));
        assert!(accepts("_*.rating", &["a", "b", "rating"]));
        assert!(accepts("_*.rating", &["rating"]));
        assert!(!accepts("_*.rating", &["a", "b"]));
    }

    #[test]
    fn epsilon_elimination_structure() {
        let r = parse_regex("a.(b|c)*").unwrap();
        let nfa = Nfa::from_regex(&r);
        let ef = nfa.without_epsilon();
        assert!(ef
            .transitions()
            .iter()
            .all(|(_, mv, _)| !matches!(mv, Move::Epsilon)));
        // Same language spot-checks.
        for w in [vec!["a"], vec!["a", "b"], vec!["a", "c", "b"]] {
            let word: Vec<String> = w.iter().map(|s| s.to_string()).collect();
            assert!(ef.accepts(&word));
        }
        assert!(!ef.accepts(&["b".to_string()]));
    }

    #[test]
    fn reachable_states_cover_used_automaton() {
        let r = parse_regex("a.b|c").unwrap();
        let nfa = Nfa::from_regex(&r);
        let reach = nfa.reachable_states();
        assert!(reach.contains(&nfa.start));
        assert!(reach.len() <= nfa.state_count());
    }
}
