//! # axml-automata — regular path expressions for positive+reg AXML
//!
//! Section 5 of *Positive Active XML* extends the query language with
//! regular path expressions over node labels, and Proposition 5.1
//! translates them away by encoding the expression's automaton into
//! services that propagate states up the document tree.
//!
//! This crate provides the substrate: a regular-expression AST over an
//! arbitrary label alphabet ([`Regex`]), a parser for a compact textual
//! syntax, Thompson-construction NFAs ([`Nfa`]), ε-elimination (the ψ
//! translation wants one service per labeled transition), and word
//! acceptance. It is written from scratch because the sanctioned offline
//! dependency set has no regex crate — and byte-oriented regex engines do
//! not speak label alphabets anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod nfa;
pub mod regex;

pub use nfa::{Nfa, StateId};
pub use regex::{parse_regex, Regex, RegexError};
