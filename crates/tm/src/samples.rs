//! A small library of Turing machines for tests and experiment X6.
//!
//! Symbols are identifier-safe words (`one`, `zero`, `a`, `b`, `x`, `y`)
//! so they can double as AXML labels in the Lemma 3.1 encoding.

use crate::machine::{Dir, Tm};

/// Append one `one` to a unary number: run right to the first blank,
/// write `one`, accept.
pub fn unary_successor() -> Tm {
    Tm::new(
        "q0",
        "qa",
        None,
        &[
            ("q0", "one", "q0", "one", Dir::R),
            ("q0", "blank", "qa", "one", Dir::R),
        ],
    )
}

/// Accept iff the number of `one`s is even (scan right, flip parity).
pub fn even_parity() -> Tm {
    Tm::new(
        "even",
        "qa",
        Some("qr"),
        &[
            ("even", "one", "odd", "one", Dir::R),
            ("odd", "one", "even", "one", Dir::R),
            ("even", "blank", "qa", "blank", Dir::R),
            ("odd", "blank", "qr", "blank", Dir::R),
        ],
    )
}

/// Recognize `aⁿbⁿ` by crossing off matching `a`/`b` pairs (`x`/`y`
/// markers).
pub fn anbn() -> Tm {
    Tm::new(
        "q0",
        "qa",
        Some("qr"),
        &[
            // q0: at (logical) start; find the first unmarked a.
            ("q0", "x", "q0", "x", Dir::R),
            ("q0", "a", "q1", "x", Dir::R),
            ("q0", "y", "q3", "y", Dir::R), // no a's left: verify only y's remain
            ("q0", "blank", "qa", "blank", Dir::R), // empty word
            // q1: skip a's and y's, find the first b.
            ("q1", "a", "q1", "a", Dir::R),
            ("q1", "y", "q1", "y", Dir::R),
            ("q1", "b", "q2", "y", Dir::L),
            ("q1", "blank", "qr", "blank", Dir::R),
            // q2: rewind to the leftmost x block.
            ("q2", "a", "q2", "a", Dir::L),
            ("q2", "y", "q2", "y", Dir::L),
            ("q2", "x", "q0", "x", Dir::R),
            // q3: after the a's are gone everything must be y.
            ("q3", "y", "q3", "y", Dir::R),
            ("q3", "blank", "qa", "blank", Dir::R),
            ("q3", "a", "qr", "a", Dir::R),
            ("q3", "b", "qr", "b", Dir::R),
            // stray symbols in q0.
            ("q0", "b", "qr", "b", Dir::R),
        ],
    )
}

/// Increment an LSB-first binary number (`one`/`zero`), carrying.
pub fn binary_increment() -> Tm {
    Tm::new(
        "carry",
        "qa",
        None,
        &[
            ("carry", "one", "carry", "zero", Dir::R),
            ("carry", "zero", "qa", "one", Dir::R),
            ("carry", "blank", "qa", "one", Dir::R),
        ],
    )
}

/// A machine that never halts and never cycles (for Corollary 3.1's
/// non-termination direction): march right forever, writing `one`s, so
/// every configuration is new.
pub fn spinner() -> Tm {
    Tm::new(
        "q0",
        "qa",
        None,
        &[
            ("q0", "one", "q0", "one", Dir::R),
            ("q0", "zero", "q0", "one", Dir::R),
            ("q0", "blank", "q0", "one", Dir::R),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_samples_are_well_formed() {
        for tm in [
            unary_successor(),
            even_parity(),
            anbn(),
            binary_increment(),
            spinner(),
        ] {
            assert!(tm.states().contains(&tm.start));
            assert!(tm.states().contains(&tm.accept));
            assert!(tm.symbols().contains("blank"));
        }
    }
}
