//! Deterministic single-tape Turing machines with a semi-infinite tape,
//! and a direct step interpreter (the baseline of experiment X6).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Head movement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    /// Left (at the left edge: stay, conventionally).
    L,
    /// Right.
    R,
}

/// A deterministic Turing machine. States and symbols are identifier
/// strings; the blank symbol is `"blank"` by convention, and the
/// reserved names used by the AXML encoding (`cfg`, `st`, `left`,
/// `right`, `end`) may not be tape symbols.
#[derive(Clone, Debug)]
pub struct Tm {
    /// Start state.
    pub start: String,
    /// Accepting state (halts).
    pub accept: String,
    /// Rejecting state (halts), if distinguished.
    pub reject: Option<String>,
    /// δ: (state, read) → (state, write, move).
    pub transitions: HashMap<(String, String), (String, String, Dir)>,
}

/// The blank symbol.
pub const BLANK: &str = "blank";

const RESERVED: &[&str] = &["cfg", "st", "left", "right", "end"];

impl Tm {
    /// Construct and validate a machine.
    pub fn new(
        start: &str,
        accept: &str,
        reject: Option<&str>,
        transitions: &[(&str, &str, &str, &str, Dir)],
    ) -> Tm {
        let mut map = HashMap::new();
        for (q, a, q2, b, d) in transitions {
            assert!(
                !RESERVED.contains(a) && !RESERVED.contains(b),
                "symbol collides with an encoding-reserved name"
            );
            map.insert(
                (q.to_string(), a.to_string()),
                (q2.to_string(), b.to_string(), *d),
            );
        }
        Tm {
            start: start.to_string(),
            accept: accept.to_string(),
            reject: reject.map(str::to_string),
            transitions: map,
        }
    }

    /// All states mentioned.
    pub fn states(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        out.insert(self.start.clone());
        out.insert(self.accept.clone());
        if let Some(r) = &self.reject {
            out.insert(r.clone());
        }
        for ((q, _), (q2, _, _)) in &self.transitions {
            out.insert(q.clone());
            out.insert(q2.clone());
        }
        out
    }

    /// All tape symbols mentioned (plus blank).
    pub fn symbols(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        out.insert(BLANK.to_string());
        for ((_, a), (_, b, _)) in &self.transitions {
            out.insert(a.clone());
            out.insert(b.clone());
        }
        out
    }

    /// Is `q` a halting state?
    pub fn is_halting(&self, q: &str) -> bool {
        q == self.accept || self.reject.as_deref() == Some(q)
    }
}

/// A configuration: state, the tape left of the head (top = adjacent),
/// and the tape from the head rightward.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Config {
    /// Current state.
    pub state: String,
    /// Cells left of the head, nearest first.
    pub left: Vec<String>,
    /// Cells from the head rightward; empty means all-blank.
    pub right: Vec<String>,
}

impl Config {
    /// Initial configuration over `input`.
    pub fn initial(tm: &Tm, input: &[&str]) -> Config {
        Config {
            state: tm.start.clone(),
            left: Vec::new(),
            right: input.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The symbol under the head.
    pub fn head(&self) -> &str {
        self.right.first().map(String::as_str).unwrap_or(BLANK)
    }

    /// The tape content with trailing blanks trimmed (left to right).
    pub fn tape(&self) -> Vec<String> {
        let mut out: Vec<String> = self.left.iter().rev().cloned().collect();
        out.extend(self.right.iter().cloned());
        while out.last().map(String::as_str) == Some(BLANK) {
            out.pop();
        }
        out
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in self.left.iter().rev() {
            write!(f, "{s} ")?;
        }
        write!(f, "[{}] ", self.state)?;
        for s in &self.right {
            write!(f, "{s} ")?;
        }
        Ok(())
    }
}

/// The result of running a machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Reached the accept state; the final tape is attached.
    Accept(Vec<String>),
    /// Reached the reject state (or had no applicable transition).
    Reject,
    /// Step budget exhausted.
    Timeout,
}

/// One step. `None` when halted or stuck.
pub fn step(tm: &Tm, c: &Config) -> Option<Config> {
    if tm.is_halting(&c.state) {
        return None;
    }
    let read = c.head().to_string();
    let (q2, write, dir) = tm.transitions.get(&(c.state.clone(), read))?.clone();
    let mut left = c.left.clone();
    let mut right = c.right.clone();
    if right.is_empty() {
        right.push(BLANK.to_string());
    }
    right[0] = write;
    match dir {
        Dir::R => {
            let moved = right.remove(0);
            left.insert(0, moved);
        }
        Dir::L => {
            if let Some(cell) = left.first().cloned() {
                left.remove(0);
                right.insert(0, cell);
            }
            // At the left edge L means stay (right unchanged).
        }
    }
    while right.last().map(String::as_str) == Some(BLANK) {
        right.pop();
    }
    Some(Config {
        state: q2,
        left,
        right,
    })
}

/// Run to a halting state or the step budget.
pub fn run(tm: &Tm, input: &[&str], max_steps: usize) -> (Outcome, usize) {
    let mut c = Config::initial(tm, input);
    for steps in 0..max_steps {
        if c.state == tm.accept {
            return (Outcome::Accept(c.tape()), steps);
        }
        if tm.is_halting(&c.state) {
            return (Outcome::Reject, steps);
        }
        match step(tm, &c) {
            Some(next) => c = next,
            None => {
                return if c.state == tm.accept {
                    (Outcome::Accept(c.tape()), steps)
                } else {
                    (Outcome::Reject, steps)
                }
            }
        }
    }
    if c.state == tm.accept {
        return (Outcome::Accept(c.tape()), max_steps);
    }
    (Outcome::Timeout, max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn unary_successor_appends_a_one() {
        let tm = samples::unary_successor();
        let (out, _) = run(&tm, &["one", "one"], 100);
        assert_eq!(
            out,
            Outcome::Accept(vec!["one".into(), "one".into(), "one".into()])
        );
        let (out, _) = run(&tm, &[], 100);
        assert_eq!(out, Outcome::Accept(vec!["one".into()]));
    }

    #[test]
    fn parity_machine() {
        let tm = samples::even_parity();
        for (n, expect) in [(0, true), (1, false), (2, true), (5, false), (8, true)] {
            let input: Vec<&str> = std::iter::repeat_n("one", n).collect();
            let (out, _) = run(&tm, &input, 1000);
            let accepted = matches!(out, Outcome::Accept(_));
            assert_eq!(accepted, expect, "parity of {n}");
        }
    }

    #[test]
    fn anbn_recognizer() {
        let tm = samples::anbn();
        let word = |a: usize, b: usize| -> Vec<&'static str> {
            std::iter::repeat_n("a", a)
                .chain(std::iter::repeat_n("b", b))
                .collect()
        };
        for (a, b, expect) in [
            (0, 0, true),
            (1, 1, true),
            (3, 3, true),
            (2, 1, false),
            (1, 2, false),
            (0, 2, false),
        ] {
            let (out, _) = run(&tm, &word(a, b), 10_000);
            let accepted = matches!(out, Outcome::Accept(_));
            assert_eq!(accepted, expect, "a^{a} b^{b}");
        }
        // b before a is rejected.
        let (out, _) = run(&tm, &["b", "a"], 10_000);
        assert!(matches!(out, Outcome::Reject));
    }

    #[test]
    fn binary_increment() {
        let tm = samples::binary_increment();
        // LSB-first: 1 0 1 (=5) + 1 → 0 1 1 (=6).
        let (out, _) = run(&tm, &["one", "zero", "one"], 1000);
        assert_eq!(
            out,
            Outcome::Accept(vec!["zero".into(), "one".into(), "one".into()])
        );
        // 1 1 (=3) + 1 → 0 0 1 (=4): carries past the end.
        let (out, _) = run(&tm, &["one", "one"], 1000);
        assert_eq!(
            out,
            Outcome::Accept(vec!["zero".into(), "zero".into(), "one".into()])
        );
    }

    #[test]
    fn looping_machine_times_out() {
        let tm = samples::spinner();
        let (out, steps) = run(&tm, &["one"], 250);
        assert_eq!(out, Outcome::Timeout);
        assert_eq!(steps, 250);
    }

    #[test]
    fn reserved_symbols_panic() {
        let caught = std::panic::catch_unwind(|| {
            Tm::new("q0", "qa", None, &[("q0", "cfg", "qa", "cfg", Dir::R)])
        });
        assert!(caught.is_err());
    }
}
