//! # axml-tm — Turing machines and their AXML encoding (Lemma 3.1)
//!
//! Lemma 3.1 of *Positive Active XML*: any Turing machine can be
//! simulated by a positive AXML system, with the tape represented as a
//! "line" tree. This crate builds both sides of the claim:
//!
//! * a TM model and direct step interpreter ([`machine`]) — the ground
//!   truth;
//! * the compiler to positive AXML systems ([`encode`]), literal to the
//!   proof sketch: configurations as trees holding the state and two
//!   line trees for the tape halves, one (non-simple, tree-variable)
//!   service per transition, all configurations accumulated in one
//!   document;
//! * a library of sample machines ([`samples`]) used by the tests and
//!   experiment X6.
//!
//! Corollary 3.1 (undecidability of positive-system termination) rests
//! on this encoding; the tests confirm that non-halting machines yield
//! non-terminating systems and halting ones reach fixpoints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod machine;
pub mod samples;

pub use encode::{encode_tm, run_axml_tm, AxmlTmOutcome};
pub use machine::{Dir, Outcome, Tm};
