//! The Lemma 3.1 encoding: Turing machines as positive AXML systems.
//!
//! Following the proof sketch:
//!
//! * the tape is a **line tree** `a1{a2{…{end}}}` (the paper's
//!   `#{a1{a2{...an{#}}}}`, with `end` as the terminator);
//! * each configuration is a tree
//!   `cfg{st{"q"}, left{line}, right{line}}` holding the state and the
//!   two halves of the tape (the `left` line is stored nearest-first);
//! * each machine transition becomes a **non-simple positive service**
//!   (tree variables copy the unbounded tape remainders), and all
//!   configurations the machine goes through accumulate in a single
//!   document `d/cfgs{…}`;
//! * acceptance is read off the document by looking for a configuration
//!   in the accepting state.
//!
//! A halting machine yields a system whose fair rewriting reaches a
//! fixpoint; the `spinner` sample (fresh configuration every step) yields
//! a non-terminating system — the two directions behind Corollary 3.1's
//! undecidability of termination.

use crate::machine::{Config, Dir, Tm, BLANK};
use axml_core::engine::{run, EngineConfig, RunStatus};
use axml_core::error::Result;
use axml_core::sym::Sym;
use axml_core::system::System;
use axml_core::tree::{Marking, NodeId, Tree};

const END: &str = "end";

/// Build the line tree of a symbol sequence under `parent`.
fn build_line(doc: &mut Tree, parent: NodeId, cells: &[String]) -> Result<()> {
    let mut at = parent;
    for c in cells {
        at = doc.add_child(at, Marking::label(c))?;
    }
    doc.add_child(at, Marking::label(END))?;
    Ok(())
}

/// Read a line tree back into symbols.
fn read_line(doc: &Tree, line_parent: NodeId) -> Vec<String> {
    let mut out = Vec::new();
    let mut at = line_parent;
    loop {
        let Some(&c) = doc.children(at).first() else {
            return out;
        };
        let Marking::Label(l) = doc.marking(c) else {
            return out;
        };
        if l.as_str() == END {
            return out;
        }
        out.push(l.as_str().to_string());
        at = c;
    }
}

/// Encode machine + input as a positive AXML system: document `d` holds
/// the initial configuration and one call per transition service.
pub fn encode_tm(tm: &Tm, input: &[&str]) -> Result<System> {
    let mut sys = System::new();
    let mut doc = Tree::with_label("cfgs");
    let root = doc.root();

    // Initial configuration.
    let cfg = doc.add_child(root, Marking::label("cfg"))?;
    let st = doc.add_child(cfg, Marking::label("st"))?;
    doc.add_child(st, Marking::value(&tm.start))?;
    let left = doc.add_child(cfg, Marking::label("left"))?;
    build_line(&mut doc, left, &[])?;
    let right = doc.add_child(cfg, Marking::label("right"))?;
    let cells: Vec<String> = input.iter().map(|s| s.to_string()).collect();
    build_line(&mut doc, right, &cells)?;

    // Transition services. Each transition yields up to four queries
    // covering interior/edge tape cases.
    let mut services: Vec<String> = Vec::new();
    for ((q, a), (q2, b, dir)) in &tm.transitions {
        let mut rules: Vec<String> = Vec::new();
        match dir {
            Dir::R => {
                // Interior: consume `a` from the right line, push `b`
                // onto the left line.
                rules.push(format!(
                    "cfg{{st{{\"{q2}\"}}, left{{{b}{{#L}}}}, right{{#R}}}} :- \
                     d/cfgs{{cfg{{st{{\"{q}\"}}, left{{#L}}, right{{{a}{{#R}}}}}}}}"
                ));
                if a == BLANK {
                    // Head over the implicit blank at the right edge.
                    rules.push(format!(
                        "cfg{{st{{\"{q2}\"}}, left{{{b}{{#L}}}}, right{{{END}}}}} :- \
                         d/cfgs{{cfg{{st{{\"{q}\"}}, left{{#L}}, right{{{END}}}}}}}"
                    ));
                }
            }
            Dir::L => {
                // Interior: the left line's top cell ?c slides back onto
                // the right line, above the freshly written `b`.
                rules.push(format!(
                    "cfg{{st{{\"{q2}\"}}, left{{#L}}, right{{?c{{{b}{{#R}}}}}}}} :- \
                     d/cfgs{{cfg{{st{{\"{q}\"}}, left{{?c{{#L}}}}, right{{{a}{{#R}}}}}}}}"
                ));
                // At the left edge, L stays put.
                rules.push(format!(
                    "cfg{{st{{\"{q2}\"}}, left{{{END}}}, right{{{b}{{#R}}}}}} :- \
                     d/cfgs{{cfg{{st{{\"{q}\"}}, left{{{END}}}, right{{{a}{{#R}}}}}}}}"
                ));
                if a == BLANK {
                    rules.push(format!(
                        "cfg{{st{{\"{q2}\"}}, left{{#L}}, right{{?c{{{b}{{{END}}}}}}}}} :- \
                         d/cfgs{{cfg{{st{{\"{q}\"}}, left{{?c{{#L}}}}, right{{{END}}}}}}}"
                    ));
                    rules.push(format!(
                        "cfg{{st{{\"{q2}\"}}, left{{{END}}}, right{{{b}{{{END}}}}}}} :- \
                         d/cfgs{{cfg{{st{{\"{q}\"}}, left{{{END}}}, right{{{END}}}}}}}"
                    ));
                }
            }
        }
        services.extend(rules);
    }
    for (i, _) in services.iter().enumerate() {
        doc.add_child(root, Marking::func(&format!("step{i}")))?;
    }
    sys.add_document("d", doc)?;
    for (i, text) in services.iter().enumerate() {
        sys.add_service_text(&format!("step{i}"), text)?;
    }
    sys.validate()?;
    Ok(sys)
}

/// Outcome of the AXML simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AxmlTmOutcome {
    /// An accepting configuration was derived; its trimmed tape.
    Accept(Vec<String>),
    /// The system reached a fixpoint without an accepting configuration
    /// (the machine rejected or got stuck).
    Reject,
    /// The engine budget ran out (non-halting machine, or budget too
    /// small).
    Budget,
}

/// Statistics of the AXML simulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct AxmlTmStats {
    /// Service invocations performed.
    pub invocations: usize,
    /// Configurations accumulated in the document.
    pub configs: usize,
    /// Total live nodes at the end.
    pub nodes: usize,
}

/// Decode every configuration stored in the document.
pub fn decode_configs(sys: &System) -> Vec<Config> {
    let doc = sys.doc(Sym::intern("d")).expect("document d");
    let root = doc.root();
    let mut out = Vec::new();
    for &c in doc.children(root) {
        if doc.marking(c) != Marking::label("cfg") {
            continue;
        }
        let mut state = None;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for &part in doc.children(c) {
            match doc.marking(part) {
                m if m == Marking::label("st") => {
                    if let Some(&v) = doc.children(part).first() {
                        if let Marking::Value(s) = doc.marking(v) {
                            state = Some(s.as_str().to_string());
                        }
                    }
                }
                m if m == Marking::label("left") => left = read_line(doc, part),
                m if m == Marking::label("right") => right = read_line(doc, part),
                _ => {}
            }
        }
        if let Some(state) = state {
            out.push(Config { state, left, right });
        }
    }
    out
}

/// Run the encoded machine under the fair engine and report the result.
pub fn run_axml_tm(
    tm: &Tm,
    input: &[&str],
    max_invocations: usize,
) -> Result<(AxmlTmOutcome, AxmlTmStats)> {
    let mut sys = encode_tm(tm, input)?;
    let cfg = EngineConfig {
        max_invocations,
        ..EngineConfig::default()
    };
    let (status, rstats) = run(&mut sys, &cfg)?;
    let configs = decode_configs(&sys);
    let stats = AxmlTmStats {
        invocations: rstats.invocations,
        configs: configs.len(),
        nodes: sys.node_count(),
    };
    // An accepting configuration may appear even before the fixpoint.
    if let Some(acc) = configs.iter().find(|c| c.state == tm.accept) {
        return Ok((AxmlTmOutcome::Accept(acc.tape()), stats));
    }
    match status {
        RunStatus::Terminated => Ok((AxmlTmOutcome::Reject, stats)),
        _ => Ok((AxmlTmOutcome::Budget, stats)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{run as tm_run, Outcome};
    use crate::samples;

    /// The central Lemma 3.1 check: the AXML simulation agrees with the
    /// direct interpreter, machine by machine, input by input.
    #[test]
    fn simulation_agrees_with_interpreter() {
        let cases: Vec<(Tm, Vec<Vec<&str>>)> = vec![
            (
                samples::unary_successor(),
                vec![vec![], vec!["one"], vec!["one", "one", "one"]],
            ),
            (
                samples::even_parity(),
                vec![vec![], vec!["one"], vec!["one", "one"], vec!["one"; 5]],
            ),
            (
                samples::binary_increment(),
                vec![vec!["one", "zero", "one"], vec!["one", "one"], vec!["zero"]],
            ),
        ];
        for (tm, inputs) in cases {
            for input in inputs {
                let (native, _) = tm_run(&tm, &input, 10_000);
                let (axml, _) = run_axml_tm(&tm, &input, 50_000).unwrap();
                match (native, axml) {
                    (Outcome::Accept(t1), AxmlTmOutcome::Accept(t2)) => {
                        assert_eq!(t1, t2, "tape mismatch on {input:?}")
                    }
                    (Outcome::Reject, AxmlTmOutcome::Reject) => {}
                    (n, a) => panic!("mismatch on {input:?}: native {n:?} vs axml {a:?}"),
                }
            }
        }
    }

    #[test]
    fn anbn_via_axml() {
        let tm = samples::anbn();
        let (out, _) = run_axml_tm(&tm, &["a", "b"], 50_000).unwrap();
        assert!(matches!(out, AxmlTmOutcome::Accept(_)));
        let (out, _) = run_axml_tm(&tm, &["a", "a", "b"], 50_000).unwrap();
        assert_eq!(out, AxmlTmOutcome::Reject);
    }

    #[test]
    fn configs_accumulate_monotonically() {
        // The proof's "all the configurations the system goes through are
        // accumulated in a single document".
        let tm = samples::even_parity();
        let (_, stats) = run_axml_tm(&tm, &["one", "one"], 50_000).unwrap();
        // initial + 3 steps (odd, even, accept) = 4 configurations.
        assert_eq!(stats.configs, 4);
    }

    #[test]
    fn non_halting_machine_never_terminates() {
        // Corollary 3.1's hard direction: the spinner produces a fresh
        // configuration forever, so the system exhausts any budget.
        let tm = samples::spinner();
        let (out, stats) = run_axml_tm(&tm, &["one"], 300).unwrap();
        assert_eq!(out, AxmlTmOutcome::Budget);
        assert!(stats.configs > 3);
    }

    #[test]
    fn encoded_system_is_positive_but_not_simple() {
        let sys = encode_tm(&samples::even_parity(), &["one"]).unwrap();
        assert!(sys.is_positive());
        assert!(!sys.is_simple()); // tree variables copy the tape
    }
}
