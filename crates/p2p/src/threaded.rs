//! Truly concurrent peers: each peer runs on its own OS thread and
//! exchanges AXML messages over channels.
//!
//! The round-based [`crate::network`] simulator is deterministic; this
//! module removes that crutch. Peers pull concurrently, interleave
//! arbitrarily, and a coordinator detects global quiescence with a
//! double-wave protocol (digests stable *and* the network's global
//! sent/received counters balanced across two consecutive polls — the
//! classical guard against in-flight laggards). Theorem 2.1 predicts
//! that, despite the nondeterminism, the final state equals the
//! deterministic simulator's fixpoint — which is exactly what the tests
//! assert, across many runs.

use crate::network::Peer;
use axml_core::engine::Parallelism;
use axml_core::error::{AxmlError, Result};
use axml_core::forest::Forest;
use axml_core::provenance::{InvocationRecord, Origin, Provenance, ProvenanceStore};
use axml_core::reduce::CanonKey;
use axml_core::sym::{FxHashMap, Sym};
use axml_core::trace::{EventKind, Journal, MsgKind, TraceEvent, Tracer};
use axml_core::tree::{NodeId, Tree};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A message between peer threads.
enum Msg {
    /// Invoke `service` at the receiver on behalf of `(caller, doc, node)`.
    Call {
        caller: Sym,
        doc: Sym,
        node: NodeId,
        service: Sym,
        input: Tree,
        context: Tree,
        /// Request-scoped trace id, assigned by the caller when the
        /// pull is issued; the provider stamps its receive/eval/send
        /// events with it and echoes it on the `Response`, so one
        /// pull's derivation is reconstructable across both peers'
        /// journals.
        trace: u64,
    },
    /// The provider's answer for a call site, stamped with the
    /// provider's state digest so the caller knows whether the provider
    /// is still evolving (and must be re-pulled).
    Response {
        doc: Sym,
        node: NodeId,
        forest: Forest,
        provider: Sym,
        service: Sym,
        provider_digest: Vec<(Sym, CanonKey)>,
        /// Cross-peer lineage rides the response: the sequence number of
        /// the provider-side [`InvocationRecord`] that produced the
        /// forest (None when provenance is off).
        prov_seq: Option<u64>,
        /// The originating `Call`'s trace id, echoed back.
        trace: u64,
    },
    /// A provider's documents changed: past callers should re-pull.
    /// (The §2.2 push view assisting the pull loop — without it, a
    /// provider that changes after a caller's last pull would never be
    /// re-queried.)
    Changed,
    /// Coordinator poll: report a digest and the message counters.
    Poll(Sender<PollReply>),
    /// Stop and ship the final peer state (plus the peer's trace
    /// journal and provenance store, when enabled) back.
    Shutdown(Sender<(Peer, Option<Journal>, Option<ProvenanceStore>)>),
}

struct PollReply {
    digest: Vec<(Sym, CanonKey)>,
    sent: u64,
    received: u64,
    /// No pending pull scheduled (the peer will stay silent unless a
    /// message arrives).
    idle: bool,
    /// Cumulative `PeerSnapshot` freezes this peer performed to serve
    /// call batches.
    snapshot_freezes: u64,
    /// Cumulative call batches answered from an already-frozen
    /// snapshot (no commit intervened since the last freeze).
    snapshot_reuses: u64,
}

/// Configuration for the threaded runtime ([`run_threaded_config`]).
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// Polling waves before the coordinator gives up on quiescence.
    pub max_waves: usize,
    /// Keep a per-peer event [`Journal`] (see [`run_threaded_traced`]).
    pub trace: bool,
    /// Keep a per-peer [`ProvenanceStore`] (see [`run_threaded_full`]).
    pub provenance: bool,
    /// How each peer evaluates a batch of simultaneously-pending
    /// incoming calls: the peer freezes one O(1)
    /// [`crate::network::PeerSnapshot`] per batch, and with
    /// [`Parallelism::Workers`]`(n)` drains every queued `Call` and
    /// evaluates them on `n` worker threads against that snapshot,
    /// then sends the responses sequentially in arrival order — the
    /// same snapshot-read / sequential-commit split as the engine's
    /// parallel rounds, and sound for the same Theorem 2.1 reason.
    pub parallelism: Parallelism,
}

impl Default for ThreadedConfig {
    fn default() -> ThreadedConfig {
        ThreadedConfig {
            max_waves: 2_000,
            trace: false,
            provenance: false,
            parallelism: Parallelism::default(),
        }
    }
}

/// Statistics of a threaded run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadedStats {
    /// Polling waves until quiescence.
    pub waves: usize,
    /// Total messages sent by peers (calls + responses).
    pub messages: u64,
    /// `PeerSnapshot` freezes performed across all peers: one per
    /// *invalidation*, not one per batch — a peer re-freezes only
    /// after a commit actually changed its documents.
    pub snapshot_freezes: u64,
    /// Call batches answered from a still-valid frozen snapshot.
    pub snapshot_reuses: u64,
}

/// Outcome of a threaded run: the final peers plus statistics.
pub struct ThreadedOutcome {
    /// Final peer states, by name.
    pub peers: FxHashMap<Sym, Peer>,
    /// Run statistics.
    pub stats: ThreadedStats,
    /// Per-peer event journals ([`run_threaded_traced`] with tracing
    /// on; empty otherwise). Each peer stamps its own events, so
    /// ordering is meaningful per peer, not across peers.
    pub journals: FxHashMap<Sym, Vec<TraceEvent>>,
    /// Per-peer provenance stores ([`run_threaded_full`] with
    /// provenance on; empty otherwise). A node stamped
    /// [`Origin::Remote`] on one peer resolves through the *provider
    /// peer's* store via the origin's `seq`.
    pub provenance: FxHashMap<Sym, ProvenanceStore>,
}

impl ThreadedOutcome {
    /// Canonical key of the final network state (for comparisons with
    /// the deterministic simulator).
    pub fn canonical_key(&self) -> Vec<(Sym, Sym, CanonKey)> {
        let mut out = Vec::new();
        for (name, peer) in &self.peers {
            for (d, k) in peer.digest() {
                out.push((*name, d, k));
            }
        }
        out.sort_unstable();
        out
    }
}

/// Run the given peers concurrently (pull mode) until the coordinator
/// detects global quiescence or `max_waves` polls pass.
pub fn run_threaded(peers: Vec<Peer>, max_waves: usize) -> Result<ThreadedOutcome> {
    run_threaded_traced(peers, max_waves, false)
}

/// [`run_threaded`] with optional tracing: when `trace` is on, each
/// peer thread keeps a local [`Journal`] of its message traffic and
/// service evaluations, shipped back in
/// [`ThreadedOutcome::journals`] at shutdown (journals are per-peer —
/// no cross-thread sink, no contention on the hot path).
pub fn run_threaded_traced(
    peers: Vec<Peer>,
    max_waves: usize,
    trace: bool,
) -> Result<ThreadedOutcome> {
    run_threaded_full(peers, max_waves, trace, false)
}

/// [`run_threaded_traced`] with optional provenance: when `provenance`
/// is on, each peer thread keeps a local [`ProvenanceStore`] — its
/// documents stamped as seed data up front, every served `Call` logged
/// as an [`InvocationRecord`] whose seq rides the `Response`, and every
/// delivered response's grafted nodes stamped [`Origin::Remote`] — all
/// shipped back in [`ThreadedOutcome::provenance`] at shutdown.
pub fn run_threaded_full(
    peers: Vec<Peer>,
    max_waves: usize,
    trace: bool,
    provenance: bool,
) -> Result<ThreadedOutcome> {
    run_threaded_config(
        peers,
        ThreadedConfig {
            max_waves,
            trace,
            provenance,
            parallelism: Parallelism::default(),
        },
    )
}

/// The fully-configurable entry point: [`run_threaded_full`] plus the
/// per-peer [`Parallelism`] knob (see [`ThreadedConfig`]).
pub fn run_threaded_config(peers: Vec<Peer>, cfg: ThreadedConfig) -> Result<ThreadedOutcome> {
    let ThreadedConfig {
        max_waves,
        trace,
        provenance,
        parallelism,
    } = cfg;
    let names: Vec<Sym> = peers.iter().map(|p| p.name).collect();
    let mut senders: FxHashMap<Sym, Sender<Msg>> = FxHashMap::default();
    let mut receivers: Vec<(Peer, Receiver<Msg>)> = Vec::new();
    for peer in peers {
        let (tx, rx) = unbounded::<Msg>();
        senders.insert(peer.name, tx);
        receivers.push((peer, rx));
    }

    // One network-wide trace-id well: every pull any peer issues gets
    // a fresh nonzero id, so ids are unique across the whole run.
    let trace_ids = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for (peer, rx) in receivers {
        let peers_tx = senders.clone();
        let journal = trace.then(Journal::new);
        let store = provenance.then(|| {
            let store = ProvenanceStore::new();
            peer.seed_provenance(&store);
            store
        });
        let trace_ids = Arc::clone(&trace_ids);
        handles.push(thread::spawn(move || {
            peer_loop(peer, rx, peers_tx, journal, store, parallelism, &trace_ids)
        }));
    }

    // Coordinator: two consecutive waves where every peer is idle, the
    // digests are unchanged, the global counters balance (nothing in
    // flight: every sent message was processed), and the counters did
    // not move between the waves (nothing was sent in between). Any
    // message or pending pull after a peer's poll bumps a counter and
    // voids the fire condition — race-free by monotonicity.
    let mut stats = ThreadedStats::default();
    // Per-wave snapshot: per-peer doc digests + (sent, received) counters.
    type WaveSnapshot = (Vec<Vec<(Sym, CanonKey)>>, u64, u64);
    let mut prev: Option<WaveSnapshot> = None;
    let mut quiesced = false;
    for _ in 0..max_waves {
        stats.waves += 1;
        thread::sleep(Duration::from_millis(3));
        let mut digests = Vec::new();
        let mut sent = 0u64;
        let mut received = 0u64;
        let mut freezes = 0u64;
        let mut reuses = 0u64;
        let mut all_idle = true;
        let mut ok = true;
        for name in &names {
            let (rtx, rrx) = unbounded();
            if senders[name].send(Msg::Poll(rtx)).is_err() {
                ok = false;
                break;
            }
            match rrx.recv_timeout(Duration::from_secs(5)) {
                Ok(reply) => {
                    digests.push(reply.digest);
                    sent += reply.sent;
                    received += reply.received;
                    all_idle &= reply.idle;
                    freezes += reply.snapshot_freezes;
                    reuses += reply.snapshot_reuses;
                }
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            break;
        }
        // Counters are cumulative per peer; the latest complete wave
        // holds the run's totals so far.
        stats.snapshot_freezes = freezes;
        stats.snapshot_reuses = reuses;
        let balanced = sent == received;
        if all_idle && balanced {
            if let Some((pd, ps, pr)) = &prev {
                if *pd == digests && *ps == sent && *pr == received {
                    stats.messages = sent;
                    quiesced = true;
                    break;
                }
            }
            prev = Some((digests, sent, received));
        } else {
            prev = None;
        }
    }

    // Shut everything down and collect final states (journals, stores).
    let mut final_peers: FxHashMap<Sym, Peer> = FxHashMap::default();
    let mut journals: FxHashMap<Sym, Vec<TraceEvent>> = FxHashMap::default();
    let mut stores: FxHashMap<Sym, ProvenanceStore> = FxHashMap::default();
    for name in &names {
        let (rtx, rrx) = unbounded();
        let _ = senders[name].send(Msg::Shutdown(rtx));
        if let Ok((peer, journal, store)) = rrx.recv_timeout(Duration::from_secs(5)) {
            final_peers.insert(*name, peer);
            if let Some(j) = journal {
                journals.insert(*name, j.into_events());
            }
            if let Some(s) = store {
                stores.insert(*name, s);
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
    if !quiesced {
        return Err(AxmlError::BudgetExhausted);
    }
    Ok(ThreadedOutcome {
        peers: final_peers,
        stats,
        journals,
        provenance: stores,
    })
}

/// One incoming `Call`, unpacked for batch service.
struct PendingCall {
    caller: Sym,
    doc: Sym,
    node: NodeId,
    service: Sym,
    input: Tree,
    context: Tree,
    trace: u64,
}

/// The peer's event loop: serve calls, absorb responses, keep pulling.
fn peer_loop(
    mut peer: Peer,
    rx: Receiver<Msg>,
    peers_tx: FxHashMap<Sym, Sender<Msg>>,
    mut journal: Option<Journal>,
    mut store: Option<ProvenanceStore>,
    parallelism: Parallelism,
    trace_ids: &AtomicU64,
) {
    let myname = peer.name;
    let workers = match parallelism {
        Parallelism::Sequential => 0,
        Parallelism::Workers(n) => n.max(1),
    };
    let mut sent = 0u64;
    let mut received = 0u64;
    // Re-pull when: never pulled, new data arrived, our own documents
    // changed, or a provider's stamped digest shows it is still moving.
    let mut need_pull = true;
    let mut provider_digests: FxHashMap<Sym, Vec<(Sym, CanonKey)>> = FxHashMap::default();
    let mut callers_seen: Vec<Sym> = Vec::new();
    // Non-Call messages set aside while draining a call batch.
    let mut backlog: VecDeque<Msg> = VecDeque::new();
    // The current frozen state, reused across call batches until a
    // commit invalidates it. The *only* mutation site in this loop is
    // `deliver_with` in the `Response` arm, so invalidating there —
    // and only when it reports a change — keeps the cached snapshot
    // exactly equal to the live state whenever it exists. A whole
    // push-propagation wave of batches between commits then freezes
    // once instead of once per batch.
    let mut frozen: Option<crate::network::PeerSnapshot> = None;
    let mut snapshot_freezes = 0u64;
    let mut snapshot_reuses = 0u64;
    loop {
        let tracer = match journal.as_ref() {
            Some(j) => Tracer::new(j),
            None => Tracer::disabled(),
        };
        let msg = match backlog.pop_front() {
            Some(m) => Ok(m),
            None => rx.recv_timeout(Duration::from_millis(2)),
        };
        match msg {
            Ok(Msg::Call {
                caller,
                doc,
                node,
                service,
                input,
                context,
                trace,
            }) => {
                let mut batch = vec![PendingCall {
                    caller,
                    doc,
                    node,
                    service,
                    input,
                    context,
                    trace,
                }];
                if workers > 0 {
                    // Drain every already-queued call into one batch so
                    // the worker pool has something to chew on; other
                    // message kinds keep their relative order via the
                    // backlog.
                    while let Ok(m) = rx.try_recv() {
                        match m {
                            Msg::Call {
                                caller,
                                doc,
                                node,
                                service,
                                input,
                                context,
                                trace,
                            } => batch.push(PendingCall {
                                caller,
                                doc,
                                node,
                                service,
                                input,
                                context,
                                trace,
                            }),
                            other => backlog.push_back(other),
                        }
                    }
                }
                received += batch.len() as u64;
                for call in &batch {
                    tracer.with_trace(call.trace).emit(|| EventKind::MsgRecv {
                        peer: myname,
                        kind: MsgKind::Call,
                    });
                    if !callers_seen.contains(&call.caller) {
                        callers_seen.push(call.caller);
                    }
                }

                // Answer the whole batch from one MVCC snapshot — an
                // O(1) freeze of the peer's documents (COW trees, so a
                // few Arc bumps) — and keep that snapshot for the
                // *next* batch too, unless a commit intervenes: only
                // the `Response` arm mutates the peer, and it drops
                // `frozen` when the delivery changed anything. With
                // `Workers(n)` the calls are striped across a scoped
                // pool sharing the snapshot — the peer-local version
                // of the engine's snapshot-read phase. Responses are
                // sent afterwards, sequentially, in arrival order, and
                // stamped with the digest of the exact state that
                // answered them, so callers observe the same behavior
                // whatever the worker count.
                let snap = match &frozen {
                    Some(s) => {
                        snapshot_reuses += 1;
                        s.clone()
                    }
                    None => {
                        snapshot_freezes += 1;
                        let s = peer.snapshot();
                        frozen = Some(s.clone());
                        s
                    }
                };
                let evals: Vec<(Result<Forest>, u64)> = if workers > 1 && batch.len() > 1 {
                    let k = workers.min(batch.len());
                    let snap_ref = &snap;
                    let batch_ref = &batch[..];
                    crossbeam::thread::scope(|scope| {
                        let handles: Vec<_> = (0..k)
                            .map(|w| {
                                scope.spawn(move || {
                                    let mut out = Vec::new();
                                    let mut i = w;
                                    while i < batch_ref.len() {
                                        let call = &batch_ref[i];
                                        let t0 = Instant::now();
                                        let r = snap_ref.evaluate(
                                            call.service,
                                            &call.input,
                                            &call.context,
                                        );
                                        out.push((i, r, t0.elapsed().as_nanos() as u64));
                                        i += k;
                                    }
                                    out
                                })
                            })
                            .collect();
                        let mut slots: Vec<Option<(Result<Forest>, u64)>> =
                            (0..batch_ref.len()).map(|_| None).collect();
                        for h in handles {
                            for (i, r, d) in h.join().expect("peer eval worker panicked") {
                                slots[i] = Some((r, d));
                            }
                        }
                        slots
                            .into_iter()
                            .map(|s| s.expect("every call evaluated"))
                            .collect()
                    })
                } else {
                    batch
                        .iter()
                        .map(|call| {
                            let t0 = Instant::now();
                            let r = snap.evaluate(call.service, &call.input, &call.context);
                            (r, t0.elapsed().as_nanos() as u64)
                        })
                        .collect()
                };

                for (call, (res, dur_ns)) in batch.iter().zip(evals) {
                    let Ok(forest) = res else { continue };
                    tracer.with_trace(call.trace).emit(|| EventKind::PeerEval {
                        peer: myname,
                        service: call.service,
                        dur_ns,
                    });
                    // Provider-side lineage: record what this evaluation
                    // read locally; the seq rides the response so the
                    // caller can stamp the grafts with it.
                    let prov_seq = store.as_ref().map(|st| {
                        st.begin_invocation(InvocationRecord {
                            seq: 0,
                            service: call.service,
                            doc: call.doc,
                            node: call.node,
                            round: 0, // the threaded backend has no rounds
                            doc_version: 0,
                            peer: Some(myname),
                            inputs: snap.witnesses(call.service),
                        })
                    });
                    if let Some(tx) = peers_tx.get(&call.caller) {
                        sent += 1;
                        tracer.with_trace(call.trace).emit(|| EventKind::MsgSend {
                            from: myname,
                            to: call.caller,
                            kind: MsgKind::Response,
                        });
                        let _ = tx.send(Msg::Response {
                            doc: call.doc,
                            node: call.node,
                            forest,
                            provider: myname,
                            service: call.service,
                            provider_digest: snap.digest(),
                            prov_seq,
                            trace: call.trace,
                        });
                    }
                }
            }
            Ok(Msg::Response {
                doc,
                node,
                forest,
                provider,
                service,
                provider_digest,
                prov_seq,
                trace,
            }) => {
                received += 1;
                tracer.with_trace(trace).emit(|| EventKind::MsgRecv {
                    peer: myname,
                    kind: MsgKind::Response,
                });
                // Caller-side lineage: grafted nodes name the remote
                // invocation that produced them.
                let prov = match store.as_ref() {
                    Some(st) => Provenance::new(st),
                    None => Provenance::disabled(),
                };
                let origin = Origin::Remote {
                    provider,
                    service,
                    seq: prov_seq.unwrap_or(0),
                    round: 0,
                };
                let changed = peer.deliver_with(doc, node, &forest, prov, origin);
                if changed {
                    // The commit moved our documents: the cached batch
                    // snapshot no longer equals the live state.
                    frozen = None;
                }
                let known = provider_digests.insert(provider, provider_digest.clone());
                if changed || known.as_ref() != Some(&provider_digest) {
                    need_pull = true;
                }
                if changed {
                    // Our own data moved: past callers must re-pull us.
                    for c in &callers_seen {
                        if let Some(tx) = peers_tx.get(c) {
                            sent += 1;
                            tracer.emit(|| EventKind::MsgSend {
                                from: myname,
                                to: *c,
                                kind: MsgKind::Changed,
                            });
                            let _ = tx.send(Msg::Changed);
                        }
                    }
                }
            }
            Ok(Msg::Changed) => {
                received += 1;
                tracer.emit(|| EventKind::MsgRecv {
                    peer: myname,
                    kind: MsgKind::Changed,
                });
                need_pull = true;
            }
            Ok(Msg::Poll(reply)) => {
                tracer.emit(|| EventKind::MsgRecv {
                    peer: myname,
                    kind: MsgKind::Poll,
                });
                let _ = reply.send(PollReply {
                    digest: peer.digest(),
                    sent,
                    received,
                    idle: !need_pull,
                    snapshot_freezes,
                    snapshot_reuses,
                });
            }
            Ok(Msg::Shutdown(reply)) => {
                let _ = reply.send((peer, journal.take(), store.take()));
                return;
            }
            Err(RecvTimeoutError::Timeout) => {
                if need_pull {
                    for (doc, node, qualified) in peer.function_nodes() {
                        let Some((provider, service)) = split_qualified(qualified) else {
                            continue;
                        };
                        let Some((input, context)) = peer.call_arguments(doc, node) else {
                            continue;
                        };
                        if let Some(tx) = peers_tx.get(&provider) {
                            sent += 1;
                            // Every pull is one request: a fresh
                            // network-unique trace id stamps the send
                            // and rides the Call to the provider.
                            let trace = trace_ids.fetch_add(1, Ordering::Relaxed) + 1;
                            tracer.with_trace(trace).emit(|| EventKind::MsgSend {
                                from: myname,
                                to: provider,
                                kind: MsgKind::Call,
                            });
                            let _ = tx.send(Msg::Call {
                                caller: myname,
                                doc,
                                node,
                                service,
                                input,
                                context,
                                trace,
                            });
                        }
                    }
                    need_pull = false;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn split_qualified(qualified: Sym) -> Option<(Sym, Sym)> {
    let s = qualified.as_str();
    let (peer, svc) = s.split_once('.')?;
    Some((Sym::intern(peer), Sym::intern(svc)))
}

/// Convenience: build peers with a closure and run them.
pub fn run_with(
    build: impl FnOnce(&mut Vec<Peer>),
    max_waves: usize,
) -> Result<ThreadedOutcome> {
    let mut peers = Vec::new();
    build(&mut peers);
    run_threaded(peers, max_waves)
}

/// Create a standalone peer (for [`run_threaded`]).
pub fn standalone_peer(name: &str) -> Peer {
    Peer::new(Sym::intern(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Mode, Network};

    fn build_peers() -> Vec<Peer> {
        let mut store = standalone_peer("store");
        store
            .add_document_text(
                "cds",
                r#"catalog{cd{title{"Body and Soul"}}, cd{title{"So What"}}}"#,
            )
            .unwrap();
        store
            .add_service_text("titles", "t{$x} :- cds/catalog{cd{title{$x}}}")
            .unwrap();
        let mut hub = standalone_peer("hub");
        hub.add_document_text("feed", "feed{@store.titles}").unwrap();
        hub.add_service_text("relay", "got{$x} :- feed/feed{t{$x}}").unwrap();
        let mut portal = standalone_peer("portal");
        portal.add_document_text("page", "page{@hub.relay}").unwrap();
        vec![store, hub, portal]
    }

    fn reference_key() -> Vec<(Sym, Sym, CanonKey)> {
        let mut net = Network::new(Mode::Pull, None);
        {
            let p = net.add_peer("store");
            p.add_document_text(
                "cds",
                r#"catalog{cd{title{"Body and Soul"}}, cd{title{"So What"}}}"#,
            )
            .unwrap();
            p.add_service_text("titles", "t{$x} :- cds/catalog{cd{title{$x}}}")
                .unwrap();
        }
        {
            let p = net.add_peer("hub");
            p.add_document_text("feed", "feed{@store.titles}").unwrap();
            p.add_service_text("relay", "got{$x} :- feed/feed{t{$x}}").unwrap();
        }
        {
            let p = net.add_peer("portal");
            p.add_document_text("page", "page{@hub.relay}").unwrap();
        }
        net.run(100).unwrap();
        net.canonical_key()
    }

    #[test]
    fn threaded_run_matches_deterministic_simulator() {
        let reference = reference_key();
        // Several runs: thread interleavings differ, the fixpoint must not.
        for attempt in 0..3 {
            let out = run_threaded(build_peers(), 2_000)
                .unwrap_or_else(|e| panic!("attempt {attempt}: {e}"));
            assert_eq!(
                out.canonical_key(),
                reference,
                "attempt {attempt}: threaded fixpoint differs"
            );
            assert!(out.stats.messages >= 2);
        }
    }

    #[test]
    fn batch_snapshots_are_reused_until_a_commit_intervenes() {
        let out = run_threaded(build_peers(), 2_000).unwrap();
        assert_eq!(out.canonical_key(), reference_key());
        // Freezes happen (batches were served)…
        assert!(
            out.stats.snapshot_freezes >= 1,
            "no snapshot was ever frozen: {:?}",
            out.stats
        );
        // …but the store peer never commits (nothing calls into its
        // documents), so its repeat pulls from the hub are answered
        // from the cached snapshot: at least one reuse is guaranteed
        // by the protocol, whatever the interleaving.
        assert!(
            out.stats.snapshot_reuses >= 1,
            "every batch re-froze: {:?}",
            out.stats
        );
    }

    #[test]
    fn traced_run_ships_per_peer_journals() {
        let out = run_threaded_traced(build_peers(), 2_000, true).unwrap();
        assert_eq!(out.canonical_key(), reference_key());
        // Every peer shipped a journal; the provider logged evaluations
        // and the callers logged their pulls.
        assert_eq!(out.journals.len(), 3);
        let store = &out.journals[&Sym::intern("store")];
        assert!(store.iter().any(|e| matches!(
            e.kind,
            EventKind::PeerEval { service, .. }
                if service == Sym::intern("titles")
        )));
        let portal = &out.journals[&Sym::intern("portal")];
        assert!(portal.iter().any(|e| matches!(
            e.kind,
            EventKind::MsgSend { to, kind: MsgKind::Call, .. }
                if to == Sym::intern("hub")
        )));
        // Per-peer ordering is strict.
        for events in out.journals.values() {
            assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        }
        // Untraced runs ship no journals.
        let plain = run_threaded(build_peers(), 2_000).unwrap();
        assert!(plain.journals.is_empty());
    }

    #[test]
    fn trace_ids_reconstruct_a_pull_across_peer_journals() {
        let out = run_threaded_traced(build_peers(), 2_000, true).unwrap();
        let hub = &out.journals[&Sym::intern("hub")];
        let store = &out.journals[&Sym::intern("store")];
        // Pick one of hub's pulls of the store: its Call send carries a
        // fresh nonzero trace id...
        let pull = hub
            .iter()
            .find(|e| {
                matches!(
                    e.kind,
                    EventKind::MsgSend { to, kind: MsgKind::Call, .. }
                        if to == Sym::intern("store")
                ) && e.trace != 0
            })
            .expect("hub pulled the store with a trace id");
        let id = pull.trace;
        // ...the provider's receive, evaluation, and response send all
        // carry the same id...
        assert!(store.iter().any(|e| e.trace == id
            && matches!(e.kind, EventKind::MsgRecv { kind: MsgKind::Call, .. })));
        assert!(store.iter().any(|e| e.trace == id
            && matches!(
                e.kind,
                EventKind::PeerEval { service, .. } if service == Sym::intern("titles")
            )));
        assert!(store.iter().any(|e| e.trace == id
            && matches!(e.kind, EventKind::MsgSend { kind: MsgKind::Response, .. })));
        // ...and the caller's response receive closes the loop.
        assert!(hub.iter().any(|e| e.trace == id
            && matches!(e.kind, EventKind::MsgRecv { kind: MsgKind::Response, .. })));
        // Ids are network-unique: portal's pulls of the hub never share
        // an id with hub's pulls of the store.
        let portal = &out.journals[&Sym::intern("portal")];
        for e in portal {
            if matches!(e.kind, EventKind::MsgSend { kind: MsgKind::Call, .. }) {
                assert_ne!(e.trace, 0, "pulls are always trace-stamped");
                assert_ne!(e.trace, id, "trace ids are unique per pull");
            }
        }
    }

    #[test]
    fn parallel_peer_evaluation_matches_sequential_fixpoint() {
        // A star: many callers pull the same provider, so the provider
        // thread actually accumulates call batches for its worker pool.
        fn star_peers() -> Vec<Peer> {
            let mut store = standalone_peer("store");
            store
                .add_document_text(
                    "cds",
                    r#"catalog{cd{title{"Body and Soul"}}, cd{title{"So What"}}}"#,
                )
                .unwrap();
            store
                .add_service_text("titles", "t{$x} :- cds/catalog{cd{title{$x}}}")
                .unwrap();
            let mut peers = vec![store];
            for i in 0..4 {
                let mut caller = standalone_peer(&format!("caller{i}"));
                caller
                    .add_document_text("page", "page{@store.titles}")
                    .unwrap();
                peers.push(caller);
            }
            peers
        }
        let reference = {
            let mut net = Network::new(Mode::Pull, None);
            {
                let p = net.add_peer("store");
                p.add_document_text(
                    "cds",
                    r#"catalog{cd{title{"Body and Soul"}}, cd{title{"So What"}}}"#,
                )
                .unwrap();
                p.add_service_text("titles", "t{$x} :- cds/catalog{cd{title{$x}}}")
                    .unwrap();
            }
            for i in 0..4 {
                let p = net.add_peer(&format!("caller{i}"));
                p.add_document_text("page", "page{@store.titles}").unwrap();
            }
            net.run(100).unwrap();
            net.canonical_key()
        };
        for n in [1, 2, 4] {
            let out = run_threaded_config(
                star_peers(),
                ThreadedConfig {
                    parallelism: Parallelism::Workers(n),
                    ..ThreadedConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("Workers({n}): {e}"));
            assert_eq!(
                out.canonical_key(),
                reference,
                "Workers({n}): parallel peer fixpoint differs"
            );
        }
    }

    #[test]
    fn quiescence_detected_promptly_on_static_network() {
        let mut solo = standalone_peer("solo");
        solo.add_document_text("d", r#"a{"static"}"#).unwrap();
        let out = run_threaded(vec![solo], 2_000).unwrap();
        assert_eq!(out.stats.messages, 0);
        assert!(out.stats.waves >= 2);
    }
}
