//! The simulated AXML peer network.
//!
//! Function nodes carry **peer-qualified** names `provider.service`.
//! Invoking one sends a `Call` message carrying the call's `input`
//! parameters and `context`; the provider evaluates its local positive
//! query against its *own* documents (plus the shipped input/context)
//! and replies with a forest, which the caller appends as siblings of
//! the call node and reduces — exactly the single-system semantics of
//! §2.2, distributed.
//!
//! Two propagation modes (§2.2's equivalent pull and push views):
//!
//! * **Pull** — every round, every call node re-requests; quiescence is
//!   reached when a full round brings no change anywhere.
//! * **Push** — the first request subscribes the call node at the
//!   provider; afterwards the provider re-evaluates and pushes only when
//!   one of its documents changed. Far fewer messages on stable data.

use axml_core::error::{AxmlError, Result};
use axml_core::eval::{snapshot, Env};
use axml_core::forest::Forest;
use axml_core::provenance::{
    query_witnesses, InvocationRecord, Origin, Provenance, ProvenanceStore,
};
use axml_core::query::{parse_query, Query};
use axml_core::reduce::{canonical_key, reduce_in_place, CanonKey};
use axml_core::subsume::SubMemo;
use axml_core::sym::{FxHashMap, Sym};
use axml_core::system::{context_sym, input_sym};
use axml_core::trace::{EventKind, Journal, MsgKind, TraceEvent, Tracer};
use axml_core::tree::{Marking, NodeId, Tree};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// One peer: named documents plus locally-hosted positive services.
#[derive(Clone)]
pub struct Peer {
    /// The peer's name.
    pub name: Sym,
    docs: FxHashMap<Sym, Tree>,
    doc_order: Vec<Sym>,
    services: FxHashMap<Sym, Query>,
}

impl Peer {
    pub(crate) fn new(name: Sym) -> Peer {
        Peer {
            name,
            docs: FxHashMap::default(),
            doc_order: Vec::new(),
            services: FxHashMap::default(),
        }
    }

    /// Add a document (compact syntax).
    pub fn add_document_text(&mut self, name: &str, src: &str) -> Result<()> {
        let mut t = axml_core::parse::parse_document(src)?;
        reduce_in_place(&mut t);
        let name = Sym::intern(name);
        if self.docs.insert(name, t).is_some() {
            return Err(AxmlError::DuplicateDocument(name));
        }
        self.doc_order.push(name);
        Ok(())
    }

    /// Host a service defined by a positive query over this peer's
    /// documents (plus `input`/`context` shipped by callers).
    pub fn add_service_text(&mut self, name: &str, query: &str) -> Result<()> {
        let name = Sym::intern(name);
        if self
            .services
            .insert(name, parse_query(query)?)
            .is_some()
        {
            return Err(AxmlError::DuplicateService(name));
        }
        Ok(())
    }

    /// Read a document.
    pub fn doc(&self, name: &str) -> Option<&Tree> {
        self.docs.get(&Sym::intern(name))
    }

    /// Document names in registration order.
    pub fn doc_names(&self) -> &[Sym] {
        &self.doc_order
    }

    /// Read a document by interned name (the placement layer resolves
    /// documents through `DocId`s, which carry `Sym`s).
    pub(crate) fn doc_tree(&self, name: Sym) -> Option<&Tree> {
        self.docs.get(&name)
    }

    /// Mutable access to a document tree (the placement layer's commit
    /// phase grafts responses directly into the owning tenant's doc).
    pub(crate) fn doc_tree_mut(&mut self, name: Sym) -> Option<&mut Tree> {
        self.docs.get_mut(&name)
    }

    /// An immutable snapshot of this peer's current state.
    ///
    /// O(1) in document size: [`Tree`] is a copy-on-write persistent
    /// structure, so cloning the peer bumps a few `Arc`s per document
    /// and shares every node (and any built indexes) with the live
    /// peer until it next mutates. The threaded runtime answers whole
    /// call batches from one snapshot, so every response in a batch is
    /// stamped with exactly the state that produced it.
    pub fn snapshot(&self) -> PeerSnapshot {
        PeerSnapshot(Arc::new(self.clone()))
    }

    /// Evaluate a locally-hosted service for the given input/context.
    pub(crate) fn evaluate(&self, service: Sym, input: &Tree, context: &Tree) -> Result<Forest> {
        let q = self
            .services
            .get(&service)
            .ok_or(AxmlError::UnknownFunction(service))?;
        let mut env = Env::new();
        for d in &self.doc_order {
            env.insert(*d, &self.docs[d]);
        }
        env.insert(input_sym(), input);
        env.insert(context_sym(), context);
        snapshot(q, &env)
    }

    /// Graft a response forest beside the call node, and stamp every grafted node
    /// with `origin` into `prov` — the caller-side half of cross-peer
    /// lineage (the origin names the remote invocation that produced
    /// the response).
    pub(crate) fn deliver_with(
        &mut self,
        doc: Sym,
        node: NodeId,
        forest: &Forest,
        prov: Provenance<'_>,
        origin: Origin,
    ) -> bool {
        let Some(tree) = self.docs.get_mut(&doc) else {
            return false;
        };
        graft_response(tree, doc, node, forest.trees(), prov, origin)
    }

    /// Provider-side witnesses of a hosted service: the nodes of this
    /// peer's documents its body atoms embed into (see
    /// [`axml_core::provenance::query_witnesses`]).
    pub(crate) fn witnesses(&self, service: Sym) -> Vec<(Sym, NodeId)> {
        match self.services.get(&service) {
            Some(q) => query_witnesses(q, |d| self.docs.get(&d)),
            None => Vec::new(),
        }
    }

    /// Stamp all current nodes of this peer's documents as seed data.
    pub(crate) fn seed_provenance(&self, store: &ProvenanceStore) {
        for d in &self.doc_order {
            store.seed_document(*d, &self.docs[d]);
        }
    }

    /// Deterministic digest of this peer's documents.
    pub(crate) fn digest(&self) -> Vec<(Sym, CanonKey)> {
        self.doc_order
            .iter()
            .map(|d| (*d, canonical_key(&self.docs[d])))
            .collect()
    }

    /// Build `input`/`context` for a call node, if it is still live.
    pub(crate) fn call_arguments(&self, doc: Sym, node: NodeId) -> Option<(Tree, Tree)> {
        let tree = self.docs.get(&doc)?;
        if !tree.is_alive(node) {
            return None;
        }
        let parent = tree.parent(node)?;
        let mut input = Tree::with_label("input");
        let iroot = input.root();
        tree.copy_children_into(node, &mut input, iroot);
        Some((input, tree.subtree(parent)))
    }

    /// Live function nodes across this peer's documents.
    pub(crate) fn function_nodes(&self) -> Vec<(Sym, NodeId, Sym)> {
        let mut out = Vec::new();
        for d in &self.doc_order {
            let t = &self.docs[d];
            for n in t.iter_live(t.root()) {
                if let Marking::Func(f) = t.marking(n) {
                    out.push((*d, n, f));
                }
            }
        }
        out
    }
}

/// Graft response trees beside a live call node: each tree that is not
/// already subsumed by an existing sibling becomes a new child of the
/// call node's parent, every grafted node is stamped with `origin` in
/// `prov`, and the document is reduced once if anything landed.
/// Returns whether the document changed.
///
/// This is the single delivery primitive shared by [`Peer::deliver_with`]
/// (the flat network's caller side) and the sharded placement layer's
/// commit phase (`crate::placement`), so both propagate responses with
/// bit-identical semantics — which is what lets the differential suite
/// compare their fixpoints node-for-node.
pub(crate) fn graft_response(
    tree: &mut Tree,
    doc: Sym,
    node: NodeId,
    trees: &[Tree],
    prov: Provenance<'_>,
    origin: Origin,
) -> bool {
    if !tree.is_alive(node) {
        return false;
    }
    let Some(parent) = tree.parent(node) else {
        return false;
    };
    let mut grafted = false;
    for r in trees {
        let mut memo = SubMemo::new();
        let already = tree
            .children(parent)
            .iter()
            .any(|&c| memo.subsumed_at(r, r.root(), tree, c));
        if !already {
            let new_root = tree.graft(parent, r).expect("parent is alive");
            grafted = true;
            if prov.enabled() {
                let fresh: Vec<NodeId> = tree.iter_live(new_root).collect();
                prov.with(|st| {
                    for nid in fresh {
                        st.stamp(doc, nid, origin);
                    }
                });
            }
        }
    }
    if grafted {
        reduce_in_place(tree);
    }
    grafted
}

/// An O(1) immutable snapshot of a [`Peer`] (see [`Peer::snapshot`]).
///
/// Dereferences to [`Peer`], so everything read-only — `evaluate`,
/// `digest`, `witnesses` — works unchanged against the frozen state.
/// Cheap to clone and `Send + Sync`: worker threads evaluating a call
/// batch share one snapshot while the live peer stays free to mutate.
#[derive(Clone)]
pub struct PeerSnapshot(Arc<Peer>);

impl std::ops::Deref for PeerSnapshot {
    type Target = Peer;
    fn deref(&self) -> &Peer {
        &self.0
    }
}

/// Propagation mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Callers re-request every round.
    Pull,
    /// Callers subscribe once; providers push on change.
    Push,
}

/// Message and work accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetworkStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Call/request messages sent.
    pub calls_sent: usize,
    /// Response/push messages delivered.
    pub responses: usize,
    /// Responses that actually added data somewhere.
    pub productive_responses: usize,
    /// Service evaluations at providers.
    pub evaluations: usize,
}

/// A subscription (push mode): re-deliver to this call site when the
/// provider's data changes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Subscription {
    caller: Sym,
    doc: Sym,
    node: NodeId,
    provider: Sym,
    service: Sym,
}

/// The network of peers.
pub struct Network {
    peers: Vec<Peer>,
    index: FxHashMap<Sym, usize>,
    mode: Mode,
    rng: Option<StdRng>,
    subs: Vec<Subscription>,
    /// Canonical keys of each peer's docs at the last push round.
    last_keys: FxHashMap<Sym, Vec<(Sym, CanonKey)>>,
    /// Attached trace journal (see [`enable_tracing`](Network::enable_tracing)).
    journal: Option<Journal>,
    /// Per-peer provenance stores (see
    /// [`enable_provenance`](Network::enable_provenance)).
    provenance: Option<FxHashMap<Sym, ProvenanceStore>>,
    /// Global stats.
    pub stats: NetworkStats,
}

impl Network {
    /// An empty network in the given mode; `seed` randomizes delivery
    /// order (None = deterministic order).
    pub fn new(mode: Mode, seed: Option<u64>) -> Network {
        Network {
            peers: Vec::new(),
            index: FxHashMap::default(),
            mode,
            rng: seed.map(StdRng::seed_from_u64),
            subs: Vec::new(),
            last_keys: FxHashMap::default(),
            journal: None,
            provenance: None,
            stats: NetworkStats::default(),
        }
    }

    /// Start recording a structured event journal of every subsequent
    /// round: message send/recv, provider evaluations (with latency),
    /// round boundaries. See [`axml_core::trace`].
    pub fn enable_tracing(&mut self) {
        self.journal = Some(Journal::new());
    }

    /// Detach and return the recorded events (empty if tracing was
    /// never enabled). Tracing stops.
    pub fn take_journal(&mut self) -> Vec<TraceEvent> {
        self.journal
            .take()
            .map(Journal::into_events)
            .unwrap_or_default()
    }

    /// Start recording per-node lineage: one [`ProvenanceStore`] per
    /// peer (mirroring the per-peer journals of the threaded backend).
    /// Current document contents are stamped as seed data; every
    /// subsequently delivered response stamps its grafted nodes with an
    /// [`Origin::Remote`] naming the provider invocation, which is
    /// logged in the *provider's* store. Call **after** adding peers.
    pub fn enable_provenance(&mut self) {
        let stores: FxHashMap<Sym, ProvenanceStore> = self
            .peers
            .iter()
            .map(|p| {
                let store = ProvenanceStore::new();
                p.seed_provenance(&store);
                (p.name, store)
            })
            .collect();
        self.provenance = Some(stores);
    }

    /// Access one peer's provenance store (None before
    /// [`Network::enable_provenance`]).
    pub fn provenance_store(&self, name: &str) -> Option<&ProvenanceStore> {
        self.provenance.as_ref()?.get(&Sym::intern(name))
    }

    /// Detach and return the per-peer provenance stores (empty if
    /// provenance was never enabled). Recording stops.
    pub fn take_provenance(&mut self) -> FxHashMap<Sym, ProvenanceStore> {
        self.provenance.take().unwrap_or_default()
    }

    /// Add a peer and get a handle to populate it.
    pub fn add_peer(&mut self, name: &str) -> &mut Peer {
        let sym = Sym::intern(name);
        let idx = self.peers.len();
        self.peers.push(Peer::new(sym));
        self.index.insert(sym, idx);
        &mut self.peers[idx]
    }

    /// Access a peer.
    pub fn peer(&self, name: &str) -> Option<&Peer> {
        self.index.get(&Sym::intern(name)).map(|&i| &self.peers[i])
    }

    /// Split `provider.service` into its halves.
    fn resolve(&self, qualified: Sym) -> Result<(usize, Sym)> {
        let s = qualified.as_str();
        let Some((peer, svc)) = s.split_once('.') else {
            return Err(AxmlError::UnknownFunction(qualified));
        };
        let pidx = *self
            .index
            .get(&Sym::intern(peer))
            .ok_or(AxmlError::UnknownFunction(qualified))?;
        Ok((pidx, Sym::intern(svc)))
    }

    /// Evaluate `service` at provider `pidx` for the given input/context.
    fn evaluate(
        &mut self,
        pidx: usize,
        service: Sym,
        input: &Tree,
        context: &Tree,
    ) -> Result<Forest> {
        self.stats.evaluations += 1;
        self.peers[pidx].evaluate(service, input, context)
    }

    /// One fair round. Returns true if any document changed.
    fn round(&mut self) -> Result<bool> {
        // The journal (and the provenance stores) are taken out for the
        // duration of the round so their shared borrows cannot conflict
        // with `&mut self` calls (and survive `?` early returns in the
        // inner body).
        let journal = self.journal.take();
        let tracer = match journal.as_ref() {
            Some(j) => Tracer::new(j),
            None => Tracer::disabled(),
        };
        let stores = self.provenance.take();
        let out = self.round_inner(tracer, stores.as_ref());
        self.journal = journal;
        self.provenance = stores;
        out
    }

    fn round_inner(
        &mut self,
        tracer: Tracer<'_>,
        stores: Option<&FxHashMap<Sym, ProvenanceStore>>,
    ) -> Result<bool> {
        let round = self.stats.rounds as u64;
        tracer.emit(|| EventKind::RoundStart { round });
        self.stats.rounds += 1;
        let mut changed = false;

        // Gather the call sites to serve this round.
        let mut work: Vec<(Sym, Sym, NodeId, Sym)> = Vec::new(); // (caller, doc, node, qualified)
        match self.mode {
            Mode::Pull => {
                for p in &self.peers {
                    for (d, n, f) in p.function_nodes() {
                        work.push((p.name, d, n, f));
                    }
                }
            }
            Mode::Push => {
                // New, unsubscribed call nodes always fire (subscribe).
                for p in &self.peers {
                    for (d, n, f) in p.function_nodes() {
                        let sub_exists = self.subs.iter().any(|s| {
                            s.caller == p.name && s.doc == d && s.node == n
                        });
                        if !sub_exists {
                            work.push((p.name, d, n, f));
                        }
                    }
                }
                // Subscribed nodes fire only if their provider changed.
                let dirty: Vec<Sym> = self
                    .peers
                    .iter()
                    .filter(|p| self.last_keys.get(&p.name) != Some(&p.digest()))
                    .map(|p| p.name)
                    .collect();
                for s in &self.subs {
                    if dirty.contains(&s.provider) {
                        let qualified =
                            Sym::intern(&format!("{}.{}", s.provider, s.service));
                        work.push((s.caller, s.doc, s.node, qualified));
                    }
                }
                // Snapshot provider keys for the next round.
                self.last_keys = self
                    .peers
                    .iter()
                    .map(|p| (p.name, p.digest()))
                    .collect();
            }
        }

        if let Some(rng) = self.rng.as_mut() {
            work.shuffle(rng);
        }

        for (caller, doc, node, qualified) in work {
            let cidx = self.index[&caller];
            // The node may have been merged away by an earlier reduction.
            let Some((input, context)) = self.peers[cidx].call_arguments(doc, node) else {
                continue;
            };
            let (pidx, svc) = self.resolve(qualified)?;
            let provider = self.peers[pidx].name;
            self.stats.calls_sent += 1;
            tracer.emit(|| EventKind::MsgSend {
                from: caller,
                to: provider,
                kind: MsgKind::Call,
            });
            tracer.emit(|| EventKind::MsgRecv {
                peer: provider,
                kind: MsgKind::Call,
            });
            let started = tracer.enabled().then(Instant::now);
            let forest = self.evaluate(pidx, svc, &input, &context)?;
            tracer.emit(|| EventKind::PeerEval {
                peer: provider,
                service: svc,
                dur_ns: started
                    .map(|t| t.elapsed().as_nanos() as u64)
                    .unwrap_or(0),
            });
            // Provider-side lineage: log the remote invocation (with
            // the witnesses it read from the provider's documents) in
            // the provider's store; the response carries its seq.
            let remote_seq = stores
                .and_then(|m| m.get(&provider))
                .map(|store| {
                    store.begin_invocation(InvocationRecord {
                        seq: 0,
                        service: svc,
                        doc,
                        node,
                        round,
                        doc_version: self.peers[cidx]
                            .docs
                            .get(&doc)
                            .map(|t| t.mutation_count())
                            .unwrap_or(0),
                        peer: Some(provider),
                        inputs: self.peers[pidx].witnesses(svc),
                    })
                });
            self.stats.responses += 1;
            tracer.emit(|| EventKind::MsgSend {
                from: provider,
                to: caller,
                kind: MsgKind::Response,
            });
            tracer.emit(|| EventKind::MsgRecv {
                peer: caller,
                kind: MsgKind::Response,
            });
            if self.mode == Mode::Push {
                let sub = Subscription {
                    caller,
                    doc,
                    node,
                    provider: self.peers[pidx].name,
                    service: svc,
                };
                if !self.subs.contains(&sub) {
                    self.subs.push(sub);
                }
            }
            // Caller-side lineage: stamp every node grafted from the
            // response with the remote invocation that produced it.
            let caller_prov = stores
                .and_then(|m| m.get(&caller))
                .map(Provenance::new)
                .unwrap_or_else(Provenance::disabled);
            let origin = Origin::Remote {
                provider,
                service: svc,
                seq: remote_seq.unwrap_or(0),
                round,
            };
            if self.peers[cidx].deliver_with(doc, node, &forest, caller_prov, origin) {
                self.stats.productive_responses += 1;
                changed = true;
            }
        }
        tracer.emit(|| EventKind::RoundEnd { round, changed });
        Ok(changed)
    }

    /// Run rounds until global quiescence or the round budget.
    /// Returns true if quiescence was reached.
    pub fn run(&mut self, max_rounds: usize) -> Result<bool> {
        for _ in 0..max_rounds {
            let changed = self.round()?;
            if !changed && self.no_pending_work() {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Oracle quiescence check: in push mode, unsubscribed calls are
    /// pending work even if the last round was quiet.
    fn no_pending_work(&self) -> bool {
        match self.mode {
            Mode::Pull => true,
            Mode::Push => self.peers.iter().all(|p| {
                p.function_nodes().iter().all(|(d, n, _)| {
                    self.subs
                        .iter()
                        .any(|s| s.caller == p.name && s.doc == *d && s.node == *n)
                })
            }),
        }
    }

    /// Canonical key of the whole network state (for confluence checks).
    pub fn canonical_key(&self) -> Vec<(Sym, Sym, CanonKey)> {
        let mut out = Vec::new();
        for p in &self.peers {
            for d in &p.doc_order {
                out.push((p.name, *d, canonical_key(&p.docs[d])));
            }
        }
        out.sort_unstable();
        out
    }

    /// Peer names.
    pub fn peer_names(&self) -> Vec<Sym> {
        self.peers.iter().map(|p| p.name).collect()
    }

    /// Per-peer change indicator used by the distributed termination
    /// detector: the canonical keys of one peer's documents.
    pub fn peer_state_key(&self, name: Sym) -> Vec<(Sym, CanonKey)> {
        self.peers[self.index[&name]].digest()
    }

    /// Run exactly one round (building block for the termination
    /// detector experiments).
    pub fn step_round(&mut self) -> Result<bool> {
        self.round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_core::subsume::equivalent;

    /// Two peers: a portal pulling reviews from a store.
    fn portal_network(mode: Mode, seed: Option<u64>) -> Network {
        let mut net = Network::new(mode, seed);
        let store = net.add_peer("store");
        store
            .add_document_text("cds", r#"catalog{cd{title{"Body and Soul"}}, cd{title{"So What"}}}"#)
            .unwrap();
        store
            .add_service_text("titles", "t{$x} :- cds/catalog{cd{title{$x}}}")
            .unwrap();
        let portal = net.add_peer("portal");
        portal
            .add_document_text("dir", "directory{@store.titles}")
            .unwrap();
        net
    }

    #[test]
    fn pull_mode_collects_remote_data() {
        let mut net = portal_network(Mode::Pull, None);
        assert!(net.run(100).unwrap());
        let dir = net.peer("portal").unwrap().doc("dir").unwrap();
        let expected = axml_core::parse::parse_tree(
            r#"directory{@store.titles, t{"Body and Soul"}, t{"So What"}}"#,
        )
        .unwrap();
        assert!(equivalent(dir, &expected), "got {dir}");
    }

    #[test]
    fn push_and_pull_reach_the_same_state() {
        let mut pull = portal_network(Mode::Pull, None);
        pull.run(100).unwrap();
        let mut push = portal_network(Mode::Push, None);
        push.run(100).unwrap();
        assert_eq!(pull.canonical_key(), push.canonical_key());
    }

    #[test]
    fn push_mode_sends_fewer_messages_on_stable_data() {
        let mut pull = portal_network(Mode::Pull, None);
        // Force several extra rounds to model continued polling.
        for _ in 0..5 {
            pull.step_round().unwrap();
        }
        let mut push = portal_network(Mode::Push, None);
        for _ in 0..5 {
            push.step_round().unwrap();
        }
        assert!(
            push.stats.calls_sent < pull.stats.calls_sent,
            "push {} vs pull {}",
            push.stats.calls_sent,
            pull.stats.calls_sent
        );
    }

    #[test]
    fn confluence_across_delivery_orders() {
        let mut reference = portal_network(Mode::Pull, None);
        reference.run(100).unwrap();
        for seed in [1u64, 7, 2024] {
            let mut net = portal_network(Mode::Pull, Some(seed));
            assert!(net.run(100).unwrap());
            assert_eq!(net.canonical_key(), reference.canonical_key());
        }
    }

    #[test]
    fn three_peer_chain_and_intensional_answers() {
        // c asks b; b's answer itself contains a call to a — intensional
        // data travels between peers (the §1 portal story).
        let mut net = Network::new(Mode::Pull, None);
        let a = net.add_peer("a");
        a.add_document_text("base", r#"r{v{"42"}}"#).unwrap();
        a.add_service_text("get", "w{$x} :- base/r{v{$x}}").unwrap();
        let b = net.add_peer("b");
        b.add_document_text("mid", "m{hint}").unwrap();
        // b's answer ships a *call to a.get*, not the data itself.
        b.add_service_text("relay", "wrap{@a.get} :- mid/m{hint}").unwrap();
        let c = net.add_peer("c");
        c.add_document_text("out", "o{@b.relay}").unwrap();
        assert!(net.run(100).unwrap());
        let out = net.peer("c").unwrap().doc("out").unwrap();
        let expected = axml_core::parse::parse_tree(
            r#"o{@b.relay, wrap{@a.get, w{"42"}}}"#,
        )
        .unwrap();
        assert!(equivalent(out, &expected), "got {out}");
    }

    #[test]
    fn recursive_distributed_closure() {
        // Distributed transitive closure: the portal joins its own
        // accumulated answers (Example 3.2 across two peers).
        let mut net = Network::new(Mode::Pull, None);
        let store = net.add_peer("store");
        store
            .add_document_text(
                "edges",
                r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, t{from{"3"},to{"4"}}}"#,
            )
            .unwrap();
        store
            .add_service_text("base", "t{from{$x},to{$y}} :- edges/r{t{from{$x},to{$y}}}")
            .unwrap();
        let portal = net.add_peer("portal");
        portal
            .add_document_text("acc", "r{@store.base, @portal.join}")
            .unwrap();
        portal
            .add_service_text(
                "join",
                "t{from{$x},to{$y}} :- acc/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
            )
            .unwrap();
        assert!(net.run(100).unwrap());
        let acc = net.peer("portal").unwrap().doc("acc").unwrap();
        let tuples = acc
            .children(acc.root())
            .iter()
            .filter(|&&n| acc.marking(n) == Marking::label("t"))
            .count();
        assert_eq!(tuples, 6);
    }

    #[test]
    fn journal_records_message_traffic() {
        let mut net = portal_network(Mode::Pull, None);
        net.enable_tracing();
        assert!(net.run(100).unwrap());
        let events = net.take_journal();
        assert!(!events.is_empty());
        let store = Sym::intern("store");
        let portal = Sym::intern("portal");
        // The portal called the store and got a response back.
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::MsgSend { from, to, kind: MsgKind::Call }
                if from == portal && to == store
        )));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::MsgSend { from, to, kind: MsgKind::Response }
                if from == store && to == portal
        )));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::PeerEval { peer, .. } if peer == store
        )));
        // Rounds bracket the traffic, and the final round is quiet.
        assert!(matches!(events[0].kind, EventKind::RoundStart { round: 0 }));
        let last_end = events
            .iter()
            .rev()
            .find_map(|e| match e.kind {
                EventKind::RoundEnd { changed, .. } => Some(changed),
                _ => None,
            })
            .unwrap();
        assert!(!last_end);
        // Tracing detaches with the journal.
        assert!(net.take_journal().is_empty());
    }

    #[test]
    fn untraced_network_has_no_journal() {
        let mut net = portal_network(Mode::Pull, None);
        net.run(100).unwrap();
        assert!(net.take_journal().is_empty());
    }

    #[test]
    fn unknown_peer_errors() {
        let mut net = Network::new(Mode::Pull, None);
        let p = net.add_peer("solo");
        p.add_document_text("d", "a{@ghost.svc}").unwrap();
        assert!(net.run(10).is_err());
    }
}
