//! Sharded scale-out: consistent-hash document placement with
//! push-mode delta propagation.
//!
//! The paper's confluence theorem (Thm 2.1) makes peer placement
//! *semantically transparent*: any assignment of documents to peers —
//! and any fair schedule over them — reaches the same fixpoint. That
//! is exactly the license to choose placement for throughput. This
//! module exploits it to colocate thousands of small independent AXML
//! systems ("tenants") on a fixed pool of physical peers:
//!
//! * [`Ring`] — consistent hashing of placement keys onto peers, with
//!   configurable virtual nodes and a deterministic seed, so a peer
//!   join/leave remaps only the keys adjacent to its ring points;
//! * [`ShardedNetwork`] — tenants (logical peers: documents plus
//!   hosted services) placed whole onto physical peers, one fair
//!   round at a time, with the evaluation phase parallel across
//!   peers and commits applied in one global canonical order;
//! * **push-mode delta propagation** — when a provider tenant's
//!   documents change, its owner peer pushes a [`MsgKind::DeltaPush`]
//!   message carrying per-document delta stamps
//!   (`id`/`version`/`mutation_count`) plus *only the response trees
//!   the subscriber has not seen yet*, instead of re-shipping the full
//!   re-evaluated call response. The subscriber's subsumption check
//!   (the same `graft_response` primitive the flat network uses)
//!   guarantees the suppressed trees would not have grafted anyway, so
//!   the fixpoint is bit-for-bit the full-response one while the wire
//!   carries strictly fewer bytes on re-pushes;
//! * **rebalancing** — [`ShardedNetwork::join_peer`] /
//!   [`ShardedNetwork::leave_peer`] recompute the ring between rounds
//!   and migrate documents as O(1) COW snapshot handles (PR 9's
//!   persistent trees), counting moves and modeled wire bytes.
//!
//! ## Why placement cannot change observable behaviour
//!
//! Every placement-sensitive choice is pinned to *tenant-level* state:
//! the round's work list is gathered in canonical tenant order, the
//! push dirty-check compares per-tenant digests, subscriptions and
//! seen-tree sets are keyed by `(tenant, doc, node)`, evaluation reads
//! the provider tenant's own documents (round-start state), and
//! commits land in work-list order. Physical peers only decide *which
//! thread* evaluates a call and *what crosses the simulated wire* —
//! so fixpoints, journals (modulo peer-lane ids), and provenance DAGs
//! are identical for any peer count, and across a mid-run rebalance.
//! `tests/sharded_placement.rs` pins all three properties.

use crate::network::{graft_response, Peer};
use axml_core::error::{AxmlError, Result};
use axml_core::forest::Forest;
use axml_core::provenance::{InvocationRecord, Origin, Provenance, ProvenanceStore};
use axml_core::reduce::{canonical_key, CanonKey};
use axml_core::sym::{FxHashMap, Sym};
use axml_core::trace::{EventKind, Journal, MsgKind, TraceEvent, Tracer};
use axml_core::tree::{NodeId, Tree};
use std::collections::HashSet;
use std::time::Instant;

/// A placed document's identity: which tenant it belongs to and its
/// name inside that tenant. Placement keys are derived from these —
/// by default the tenant component alone, so a tenant's documents
/// colocate (per-tenant isolation by placement).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DocId {
    /// The owning tenant (logical peer).
    pub tenant: Sym,
    /// The document's name within the tenant.
    pub doc: Sym,
}

impl DocId {
    /// The consistent-hash key for this document under tenant-granular
    /// placement: the tenant id, so all of a tenant's documents map to
    /// one peer.
    pub fn placement_key(&self) -> &str {
        self.tenant.as_str()
    }

    /// The fully-qualified key (`tenant/doc`) for document-granular
    /// placement experiments over the same [`Ring`].
    pub fn qualified_key(&self) -> String {
        format!("{}/{}", self.tenant, self.doc)
    }
}

/// Seeded FNV-1a 64-bit hash — deterministic across runs and
/// platforms, no dependencies. The seed perturbs the offset basis so
/// two rings with different seeds produce independent layouts.
fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Finalizer (murmur3-style): FNV alone avalanches poorly on the
    // short, similar keys tenant ids tend to be, which would clump
    // ring points and skew placement shares.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A consistent-hash ring of peers.
///
/// Each peer contributes `vnodes` points at
/// `hash(seed, "peer#<i>")`; a key is owned by the peer of the first
/// ring point at or after `hash(seed, key)` (wrapping). Virtual nodes
/// smooth the per-peer share toward `1/n`; determinism comes from the
/// seeded hash, so a ring rebuilt with the same peers and seed places
/// every key identically.
#[derive(Clone, Debug)]
pub struct Ring {
    vnodes: u32,
    seed: u64,
    /// Sorted `(point, peer)` pairs.
    points: Vec<(u64, Sym)>,
    peers: Vec<Sym>,
}

impl Ring {
    /// An empty ring with `vnodes` virtual nodes per peer and a
    /// deterministic hash `seed`.
    pub fn new(vnodes: u32, seed: u64) -> Ring {
        Ring {
            vnodes: vnodes.max(1),
            seed,
            points: Vec::new(),
            peers: Vec::new(),
        }
    }

    /// Add a peer's virtual nodes. Duplicate adds are ignored.
    pub fn add_peer(&mut self, peer: Sym) {
        if self.peers.contains(&peer) {
            return;
        }
        self.peers.push(peer);
        for i in 0..self.vnodes {
            let key = format!("{peer}#{i}");
            self.points.push((fnv1a64(self.seed, key.as_bytes()), peer));
        }
        // Ties broken by peer name so the layout is total and
        // insertion-order independent.
        self.points.sort_unstable();
    }

    /// Remove a peer's virtual nodes. Unknown peers are ignored.
    pub fn remove_peer(&mut self, peer: Sym) {
        self.peers.retain(|&p| p != peer);
        self.points.retain(|&(_, p)| p != peer);
    }

    /// The peers currently on the ring, in join order.
    pub fn peers(&self) -> &[Sym] {
        &self.peers
    }

    /// The owner of `key`: the peer of the first ring point at or
    /// after `hash(key)`, wrapping past the top. `None` on an empty
    /// ring.
    pub fn owner(&self, key: &str) -> Option<Sym> {
        if self.points.is_empty() {
            return None;
        }
        let h = fnv1a64(self.seed, key.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, peer) = self.points[idx % self.points.len()];
        Some(peer)
    }
}

/// Per-peer placement gauges, exposed through the server's `stats`
/// frame and Prometheus exposition (stable, name-sorted ordering).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeerGauges {
    /// Documents currently placed on (owned by) this peer.
    pub docs_placed: u64,
    /// Push messages this peer sent to remote subscribers.
    pub deltas_pushed: u64,
    /// Payload bytes of those pushes (delta-filtered when the network
    /// runs in delta-push mode).
    pub bytes_pushed: u64,
    /// Documents that migrated *onto* this peer during rebalances.
    pub rebalance_moves: u64,
}

/// Network-wide work and wire accounting for a sharded run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Call activations (work items served).
    pub calls_sent: usize,
    /// Responses/pushes delivered to call sites.
    pub responses: usize,
    /// Deliveries that actually added data somewhere.
    pub productive_responses: usize,
    /// Service evaluations at provider tenants.
    pub evaluations: usize,
    /// Deliveries where caller and provider shared a peer (no wire).
    pub local_deliveries: usize,
    /// Deliveries that crossed between peers.
    pub remote_deliveries: usize,
    /// Bytes of remote call requests (input + context payloads).
    pub wire_call_bytes: usize,
    /// Actual bytes of remote response/push payloads under the
    /// configured propagation mode (delta-filtered trees plus stamp
    /// overhead in delta-push mode; full forests otherwise).
    pub wire_push_bytes: usize,
    /// Counterfactual bytes the same remote deliveries would have
    /// cost under full-response propagation (always accumulated, so a
    /// delta-push run reports its own savings).
    pub full_push_bytes: usize,
    /// Documents migrated by rebalances.
    pub rebalance_moves: usize,
    /// Modeled bytes of those migrations (document text; the in-
    /// process move itself is an O(1) COW handle transfer).
    pub rebalance_bytes: usize,
}

/// Modeled size of the per-document stamp a [`MsgKind::DeltaPush`]
/// message carries: `(id, version, mutation_count)` as three `u64`s.
const DELTA_STAMP_BYTES: usize = 24;

/// How a [`ShardedNetwork`] propagates and evaluates.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Virtual nodes per peer on the [`Ring`].
    pub vnodes: u32,
    /// Deterministic ring hash seed.
    pub seed: u64,
    /// Push per-subscription *delta* payloads (stamps + unseen trees)
    /// instead of full re-evaluated responses. Fixpoints are
    /// identical either way; only wire bytes differ.
    pub push_deltas: bool,
    /// Evaluate each round's work in parallel across peers (one
    /// thread per peer with work). Commits stay in canonical order,
    /// so this never changes observable behaviour.
    pub parallel: bool,
}

impl Default for ShardedConfig {
    fn default() -> ShardedConfig {
        ShardedConfig {
            vnodes: 16,
            seed: 0xA731,
            push_deltas: true,
            parallel: true,
        }
    }
}

/// A tenant-level subscription: re-deliver to this call site whenever
/// the provider tenant's documents change. Placement-free — the same
/// subscriptions arise for any peer count.
#[derive(Clone, PartialEq, Eq, Debug)]
struct ShardSub {
    tenant: Sym,
    doc: Sym,
    node: NodeId,
    provider: Sym,
    service: Sym,
}

/// One unit of round work, fully resolved and argument-frozen at
/// round start.
struct ReadyItem {
    caller: Sym,
    doc: Sym,
    node: NodeId,
    provider: Sym,
    provider_idx: usize,
    service: Sym,
    /// First activation (subscribe) vs. subscription re-push.
    fresh: bool,
    input: Tree,
    context: Tree,
}

/// A network of physical peers hosting consistent-hash-placed tenants.
///
/// Tenants are logical peers ([`Peer`]): named documents plus hosted
/// services, addressed in call nodes as `@tenant.service`. The ring
/// places each tenant whole onto one physical peer; rounds follow the
/// flat network's push semantics at tenant granularity, with
/// evaluation parallel across peers and delta-push propagation on the
/// simulated wire.
pub struct ShardedNetwork {
    cfg: ShardedConfig,
    ring: Ring,
    tenants: Vec<Peer>,
    tindex: FxHashMap<Sym, usize>,
    /// Physical peer names in join order.
    peers: Vec<Sym>,
    /// tenant → owning peer, derived from the ring.
    placement: FxHashMap<Sym, Sym>,
    gauges: FxHashMap<Sym, PeerGauges>,
    subs: Vec<ShardSub>,
    /// Per-tenant digests at the last round (push dirty check).
    last_digests: FxHashMap<Sym, Vec<(Sym, CanonKey)>>,
    /// Per call site: canonical keys of response trees already
    /// delivered (the delta-push filter).
    seen: FxHashMap<(Sym, Sym, NodeId), HashSet<CanonKey>>,
    journal: Option<Journal>,
    /// One provenance store per *tenant* — lineage is logical, so the
    /// recorded DAGs are placement-independent.
    provenance: Option<FxHashMap<Sym, ProvenanceStore>>,
    /// Bumped by every placement change (join/leave); the sharded
    /// termination detector voids its quiet streak when it moves.
    epoch: u64,
    /// Global stats.
    pub stats: ShardStats,
}

impl ShardedNetwork {
    /// An empty sharded network.
    pub fn new(cfg: ShardedConfig) -> ShardedNetwork {
        ShardedNetwork {
            ring: Ring::new(cfg.vnodes, cfg.seed),
            cfg,
            tenants: Vec::new(),
            tindex: FxHashMap::default(),
            peers: Vec::new(),
            placement: FxHashMap::default(),
            gauges: FxHashMap::default(),
            subs: Vec::new(),
            last_digests: FxHashMap::default(),
            seen: FxHashMap::default(),
            journal: None,
            provenance: None,
            epoch: 0,
            stats: ShardStats::default(),
        }
    }

    /// Add a physical peer and rebalance tenants onto it. Adding peers
    /// before any tenants is free; afterwards, every tenant whose ring
    /// owner changes migrates (O(1) COW handle moves, counted in
    /// [`ShardStats::rebalance_moves`] / [`PeerGauges::rebalance_moves`]).
    pub fn join_peer(&mut self, name: &str) {
        let sym = Sym::intern(name);
        if self.peers.contains(&sym) {
            return;
        }
        self.peers.push(sym);
        self.gauges.entry(sym).or_default();
        self.ring.add_peer(sym);
        self.rebalance();
    }

    /// Remove a physical peer; its tenants migrate to their new ring
    /// owners. Removing the last peer is rejected while tenants exist.
    pub fn leave_peer(&mut self, name: &str) -> Result<()> {
        let sym = Sym::intern(name);
        if !self.peers.contains(&sym) {
            return Ok(());
        }
        if self.peers.len() == 1 && !self.tenants.is_empty() {
            return Err(AxmlError::PlacementUnderflow);
        }
        self.peers.retain(|&p| p != sym);
        self.ring.remove_peer(sym);
        self.rebalance();
        Ok(())
    }

    /// Recompute tenant → peer placement from the ring, counting moves
    /// and modeled migration bytes. Bumps the placement epoch when
    /// anything actually moved (or on first placement).
    fn rebalance(&mut self) {
        let mut changed = false;
        for t in &self.tenants {
            let Some(new_owner) = self.ring.owner(t.name.as_str()) else {
                continue;
            };
            let old = self.placement.insert(t.name, new_owner);
            if old != Some(new_owner) {
                changed = true;
                if old.is_some() {
                    // A real migration: the documents move as O(1)
                    // persistent-tree handles; the wire model charges
                    // their rendered size.
                    let docs = t.doc_names().len();
                    self.stats.rebalance_moves += docs;
                    let g = self.gauges.entry(new_owner).or_default();
                    g.rebalance_moves += docs as u64;
                    for &d in t.doc_names() {
                        if let Some(tree) = t.doc_tree(d) {
                            self.stats.rebalance_bytes += tree.to_string().len();
                        }
                    }
                }
            }
        }
        if changed {
            self.epoch += 1;
        }
    }

    /// Register a tenant (a logical peer) and get a handle to populate
    /// it. The tenant is placed on the ring immediately; at least one
    /// physical peer must have joined first.
    pub fn add_tenant(&mut self, name: &str) -> &mut Peer {
        assert!(
            !self.peers.is_empty(),
            "join at least one peer before adding tenants"
        );
        let sym = Sym::intern(name);
        let idx = self.tenants.len();
        self.tenants.push(Peer::new(sym));
        self.tindex.insert(sym, idx);
        let owner = self.ring.owner(sym.as_str()).expect("ring is non-empty");
        self.placement.insert(sym, owner);
        &mut self.tenants[idx]
    }

    /// Access a tenant.
    pub fn tenant(&self, name: &str) -> Option<&Peer> {
        self.tindex
            .get(&Sym::intern(name))
            .map(|&i| &self.tenants[i])
    }

    /// The physical peer currently owning `tenant`.
    pub fn owner_of(&self, tenant: &str) -> Option<Sym> {
        self.placement.get(&Sym::intern(tenant)).copied()
    }

    /// Physical peer names in join order.
    pub fn peer_names(&self) -> &[Sym] {
        &self.peers
    }

    /// Tenant names in registration (canonical) order.
    pub fn tenant_names(&self) -> Vec<Sym> {
        self.tenants.iter().map(|t| t.name).collect()
    }

    /// The placement epoch: bumped by every join/leave that moved a
    /// tenant. The sharded termination detector restarts its quiet
    /// streak when this changes between waves.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-peer placement gauges in stable (name-sorted) order.
    /// `docs_placed` is computed from the live placement, so it stays
    /// correct as tenants gain documents and rebalances move them.
    pub fn peer_gauges(&self) -> Vec<(Sym, PeerGauges)> {
        let mut placed: FxHashMap<Sym, u64> = FxHashMap::default();
        for t in &self.tenants {
            if let Some(&owner) = self.placement.get(&t.name) {
                *placed.entry(owner).or_default() += t.doc_names().len() as u64;
            }
        }
        let mut out: Vec<(Sym, PeerGauges)> = self
            .peers
            .iter()
            .map(|&p| {
                let mut g = self.gauges.get(&p).copied().unwrap_or_default();
                g.docs_placed = placed.get(&p).copied().unwrap_or(0);
                (p, g)
            })
            .collect();
        out.sort_unstable_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        out
    }

    /// Start recording a structured event journal (see
    /// [`axml_core::trace`]). Message events use physical peer names
    /// as lanes; everything else is placement-independent.
    pub fn enable_tracing(&mut self) {
        self.journal = Some(Journal::new());
    }

    /// Detach and return the recorded events (empty if tracing was
    /// never enabled). Tracing stops.
    pub fn take_journal(&mut self) -> Vec<TraceEvent> {
        self.journal
            .take()
            .map(Journal::into_events)
            .unwrap_or_default()
    }

    /// Start recording per-node lineage: one [`ProvenanceStore`] per
    /// *tenant*, seeded with current document contents. Because
    /// invocations are logged in canonical commit order with
    /// tenant-level origins, the recorded DAGs are identical for any
    /// placement. Call **after** adding tenants.
    pub fn enable_provenance(&mut self) {
        let stores: FxHashMap<Sym, ProvenanceStore> = self
            .tenants
            .iter()
            .map(|t| {
                let store = ProvenanceStore::new();
                t.seed_provenance(&store);
                (t.name, store)
            })
            .collect();
        self.provenance = Some(stores);
    }

    /// Access one tenant's provenance store (None before
    /// [`ShardedNetwork::enable_provenance`]).
    pub fn provenance_store(&self, tenant: &str) -> Option<&ProvenanceStore> {
        self.provenance.as_ref()?.get(&Sym::intern(tenant))
    }

    /// Detach and return the per-tenant provenance stores (empty if
    /// provenance was never enabled). Recording stops.
    pub fn take_provenance(&mut self) -> FxHashMap<Sym, ProvenanceStore> {
        self.provenance.take().unwrap_or_default()
    }

    /// Split `tenant.service` into resolved halves.
    fn resolve(&self, qualified: Sym) -> Result<(usize, Sym)> {
        let s = qualified.as_str();
        let Some((tenant, svc)) = s.split_once('.') else {
            return Err(AxmlError::UnknownFunction(qualified));
        };
        let tidx = *self
            .tindex
            .get(&Sym::intern(tenant))
            .ok_or(AxmlError::UnknownFunction(qualified))?;
        Ok((tidx, Sym::intern(svc)))
    }

    /// One fair round. Returns true if any document changed.
    fn round(&mut self) -> Result<bool> {
        let journal = self.journal.take();
        let tracer = match journal.as_ref() {
            Some(j) => Tracer::new(j),
            None => Tracer::disabled(),
        };
        let stores = self.provenance.take();
        let out = self.round_inner(tracer, stores.as_ref());
        self.journal = journal;
        self.provenance = stores;
        out
    }

    fn round_inner(
        &mut self,
        tracer: Tracer<'_>,
        stores: Option<&FxHashMap<Sym, ProvenanceStore>>,
    ) -> Result<bool> {
        let round = self.stats.rounds as u64;
        tracer.emit(|| EventKind::RoundStart { round });
        self.stats.rounds += 1;

        // ── Gather ─────────────────────────────────────────────────
        // Work arises exactly as in the flat network's push mode, but
        // at tenant granularity: unsubscribed call nodes always fire
        // (and subscribe); subscribed sites re-fire iff their provider
        // tenant's digest moved. Tenant registration order makes the
        // list canonical — the same for every placement.
        let mut raw: Vec<(Sym, Sym, NodeId, Sym, Sym, bool)> = Vec::new();
        for t in &self.tenants {
            for (d, n, f) in t.function_nodes() {
                let sub_exists = self
                    .subs
                    .iter()
                    .any(|s| s.tenant == t.name && s.doc == d && s.node == n);
                if !sub_exists {
                    // Resolution deferred below (needs &self).
                    raw.push((t.name, d, n, f, Sym::intern(""), true));
                }
            }
        }
        let dirty: Vec<Sym> = self
            .tenants
            .iter()
            .filter(|t| self.last_digests.get(&t.name) != Some(&t.digest()))
            .map(|t| t.name)
            .collect();
        for s in &self.subs {
            if dirty.contains(&s.provider) {
                raw.push((s.tenant, s.doc, s.node, s.provider, s.service, false));
            }
        }
        self.last_digests = self
            .tenants
            .iter()
            .map(|t| (t.name, t.digest()))
            .collect();

        // ── Resolve + freeze arguments (round-start state) ─────────
        let mut items: Vec<ReadyItem> = Vec::new();
        for (caller, doc, node, a, b, fresh) in raw {
            let (provider_idx, service) = if fresh {
                self.resolve(a)? // `a` is the qualified name
            } else {
                (self.tindex[&a], b) // `a`/`b` are provider/service
            };
            let cidx = self.tindex[&caller];
            let Some((input, context)) = self.tenants[cidx].call_arguments(doc, node)
            else {
                continue; // merged away by an earlier reduction
            };
            items.push(ReadyItem {
                caller,
                doc,
                node,
                provider: self.tenants[provider_idx].name,
                provider_idx,
                service,
                fresh,
                input,
                context,
            });
        }

        // ── Evaluate ───────────────────────────────────────────────
        // Each provider tenant evaluates against its *round-start*
        // documents (no commits have happened yet this round), so the
        // phase is embarrassingly parallel across physical peers. The
        // per-peer grouping is exactly what a real deployment would
        // do; on one peer it degenerates to the sequential loop.
        let results = self.evaluate_items(&items)?;
        self.stats.evaluations += items.len();

        // ── Commit (canonical order) ───────────────────────────────
        let mut changed = false;
        for (item, (forest, eval_ns)) in items.iter().zip(results) {
            let caller_peer = self.placement[&item.caller];
            let provider_peer = self.placement[&item.provider];
            let remote = caller_peer != provider_peer;
            self.stats.calls_sent += 1;
            tracer.emit(|| EventKind::MsgSend {
                from: caller_peer,
                to: provider_peer,
                kind: MsgKind::Call,
            });
            tracer.emit(|| EventKind::MsgRecv {
                peer: provider_peer,
                kind: MsgKind::Call,
            });
            tracer.emit(|| EventKind::PeerEval {
                peer: provider_peer,
                service: item.service,
                dur_ns: eval_ns,
            });
            if remote {
                self.stats.wire_call_bytes +=
                    item.input.to_string().len() + item.context.to_string().len();
            }

            // Provider-side lineage, logged in the provider *tenant's*
            // store: seqs are assigned in canonical commit order, so
            // they are placement-independent.
            let cidx = self.tindex[&item.caller];
            let remote_seq = stores.and_then(|m| m.get(&item.provider)).map(|store| {
                store.begin_invocation(InvocationRecord {
                    seq: 0,
                    service: item.service,
                    doc: item.doc,
                    node: item.node,
                    round,
                    doc_version: self.tenants[cidx]
                        .doc_tree(item.doc)
                        .map(|t| t.mutation_count())
                        .unwrap_or(0),
                    peer: Some(item.provider),
                    inputs: self.tenants[item.provider_idx].witnesses(item.service),
                })
            });

            // Delta filter: suppress trees this call site has already
            // been sent. Subsumption at the caller makes re-sending
            // them a no-op, so suppressing them cannot change the
            // fixpoint — it only shrinks the wire payload.
            let site = (item.caller, item.doc, item.node);
            let seen = self.seen.entry(site).or_default();
            let full_bytes: usize = forest
                .trees()
                .iter()
                .map(|t| t.to_string().len())
                .sum();
            let deliver: Vec<Tree> = if self.cfg.push_deltas {
                forest
                    .trees()
                    .iter()
                    .filter(|t| !seen.contains(&canonical_key(t)))
                    .cloned()
                    .collect()
            } else {
                forest.trees().to_vec()
            };
            for t in forest.trees() {
                seen.insert(canonical_key(t));
            }
            let payload_bytes: usize = if self.cfg.push_deltas {
                deliver.iter().map(|t| t.to_string().len()).sum::<usize>()
                    + DELTA_STAMP_BYTES
            } else {
                full_bytes
            };

            let push_kind = if item.fresh || !self.cfg.push_deltas {
                MsgKind::Response
            } else {
                MsgKind::DeltaPush
            };
            self.stats.responses += 1;
            tracer.emit(|| EventKind::MsgSend {
                from: provider_peer,
                to: caller_peer,
                kind: push_kind,
            });
            tracer.emit(|| EventKind::MsgRecv {
                peer: caller_peer,
                kind: push_kind,
            });
            if remote {
                self.stats.remote_deliveries += 1;
                self.stats.wire_push_bytes += payload_bytes;
                self.stats.full_push_bytes += full_bytes;
                if !item.fresh {
                    let g = self.gauges.entry(provider_peer).or_default();
                    g.deltas_pushed += 1;
                    g.bytes_pushed += payload_bytes as u64;
                }
            } else {
                self.stats.local_deliveries += 1;
            }

            if item.fresh {
                let sub = ShardSub {
                    tenant: item.caller,
                    doc: item.doc,
                    node: item.node,
                    provider: item.provider,
                    service: item.service,
                };
                if !self.subs.contains(&sub) {
                    self.subs.push(sub);
                }
            }

            // Caller-side delivery: the same graft/subsume/reduce
            // primitive as the flat network, stamping lineage into the
            // caller *tenant's* store.
            let caller_prov = stores
                .and_then(|m| m.get(&item.caller))
                .map(Provenance::new)
                .unwrap_or_else(Provenance::disabled);
            let origin = Origin::Remote {
                provider: item.provider,
                service: item.service,
                seq: remote_seq.unwrap_or(0),
                round,
            };
            let Some(tree) = self.tenants[cidx].doc_tree_mut(item.doc) else {
                continue;
            };
            if graft_response(tree, item.doc, item.node, &deliver, caller_prov, origin)
            {
                self.stats.productive_responses += 1;
                changed = true;
            }
        }
        tracer.emit(|| EventKind::RoundEnd { round, changed });
        Ok(changed)
    }

    /// Evaluate every work item against round-start tenant state,
    /// parallel across physical peers when configured. Returns, per
    /// item, the result forest and the evaluation latency.
    fn evaluate_items(&self, items: &[ReadyItem]) -> Result<Vec<(Forest, u64)>> {
        // One evaluation's outcome plus its wall-clock nanoseconds.
        type EvalSlot = (Result<Forest>, u64);
        let tenants = &self.tenants;
        let eval_one = |it: &ReadyItem| -> EvalSlot {
            let started = Instant::now();
            let out = tenants[it.provider_idx].evaluate(it.service, &it.input, &it.context);
            (out, started.elapsed().as_nanos() as u64)
        };

        // Group item indices by the provider's physical peer.
        let mut lanes: FxHashMap<Sym, Vec<usize>> = FxHashMap::default();
        for (i, it) in items.iter().enumerate() {
            lanes.entry(self.placement[&it.provider]).or_default().push(i);
        }
        let mut slots: Vec<Option<EvalSlot>> =
            (0..items.len()).map(|_| None).collect();
        if self.cfg.parallel && lanes.len() > 1 {
            let merged: Vec<Vec<(usize, EvalSlot)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = lanes
                        .values()
                        .map(|idxs| {
                            scope.spawn(|| {
                                idxs.iter()
                                    .map(|&i| (i, eval_one(&items[i])))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("eval lane")).collect()
                });
            for lane in merged {
                for (i, r) in lane {
                    slots[i] = Some(r);
                }
            }
        } else {
            for (i, it) in items.iter().enumerate() {
                slots[i] = Some(eval_one(it));
            }
        }
        // Surface the first error in canonical item order, so error
        // behaviour is placement-independent too.
        let mut out = Vec::with_capacity(items.len());
        for slot in slots {
            let (forest, ns) = slot.expect("every item evaluated");
            out.push((forest?, ns));
        }
        Ok(out)
    }

    /// Run rounds until global quiescence or the round budget.
    /// Returns true if quiescence was reached.
    pub fn run(&mut self, max_rounds: usize) -> Result<bool> {
        for _ in 0..max_rounds {
            let changed = self.round()?;
            if !changed && self.no_pending_work() {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Run exactly one round (building block for termination
    /// detection and rebalance experiments).
    pub fn step_round(&mut self) -> Result<bool> {
        self.round()
    }

    /// Oracle quiescence check: unsubscribed call sites are pending
    /// work even if the last round was quiet.
    pub fn no_pending_work(&self) -> bool {
        self.tenants.iter().all(|t| {
            t.function_nodes().iter().all(|(d, n, _)| {
                self.subs
                    .iter()
                    .any(|s| s.tenant == t.name && s.doc == *d && s.node == *n)
            })
        })
    }

    /// Canonical key of the whole network state, `(tenant, doc, key)`
    /// sorted — directly comparable with [`crate::Network::canonical_key`]
    /// when tenants mirror flat peers.
    pub fn canonical_key(&self) -> Vec<(Sym, Sym, CanonKey)> {
        let mut out = Vec::new();
        for t in &self.tenants {
            for &d in t.doc_names() {
                if let Some(tree) = t.doc_tree(d) {
                    out.push((t.name, d, canonical_key(tree)));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Per-tenant change indicator for the sharded termination
    /// detector: the canonical keys of one tenant's documents.
    pub fn tenant_state_key(&self, tenant: Sym) -> Vec<(Sym, CanonKey)> {
        self.tenants[self.tindex[&tenant]].digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Mode, Network};

    fn ring_of(names: &[&str], vnodes: u32, seed: u64) -> Ring {
        let mut r = Ring::new(vnodes, seed);
        for n in names {
            r.add_peer(Sym::intern(n));
        }
        r
    }

    #[test]
    fn ring_is_deterministic_and_insertion_order_independent() {
        let a = ring_of(&["p0", "p1", "p2"], 32, 7);
        let b = ring_of(&["p2", "p0", "p1"], 32, 7);
        for i in 0..500 {
            let key = format!("tenant-{i}");
            assert_eq!(a.owner(&key), b.owner(&key));
        }
    }

    #[test]
    fn ring_spreads_keys_and_vnodes_smooth_the_shares() {
        let r = ring_of(&["p0", "p1", "p2", "p3"], 64, 11);
        let mut counts: FxHashMap<Sym, usize> = FxHashMap::default();
        for i in 0..2000 {
            let owner = r.owner(&format!("tenant-{i}")).unwrap();
            *counts.entry(owner).or_default() += 1;
        }
        assert_eq!(counts.len(), 4, "every peer owns something");
        for (&p, &c) in &counts {
            assert!(c > 2000 / 16, "peer {p} owns only {c} of 2000 keys");
        }
    }

    #[test]
    fn removing_a_peer_only_remaps_its_own_keys() {
        let full = ring_of(&["p0", "p1", "p2", "p3"], 32, 3);
        let mut reduced = full.clone();
        reduced.remove_peer(Sym::intern("p3"));
        for i in 0..1000 {
            let key = format!("tenant-{i}");
            let before = full.owner(&key).unwrap();
            if before != Sym::intern("p3") {
                assert_eq!(reduced.owner(&key), Some(before), "key {key} moved");
            } else {
                assert_ne!(reduced.owner(&key), Some(before));
            }
        }
    }

    /// A two-tenant producer/consumer pair: the producer grows a
    /// transitive closure locally; the consumer subscribes to its
    /// `feed`.
    fn pair(net: &mut ShardedNetwork, p: &str, c: &str) {
        let producer = net.add_tenant(p);
        producer
            .add_document_text(
                "acc",
                &format!(
                    r#"r{{t{{from{{"1"}},to{{"2"}}}}, t{{from{{"2"}},to{{"3"}}}}, t{{from{{"3"}},to{{"4"}}}}, @{p}.join}}"#
                ),
            )
            .unwrap();
        producer
            .add_service_text(
                "join",
                "t{from{$x},to{$y}} :- acc/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
            )
            .unwrap();
        producer
            .add_service_text("feed", "t{from{$x},to{$y}} :- acc/r{t{from{$x},to{$y}}}")
            .unwrap();
        let consumer = net.add_tenant(c);
        consumer
            .add_document_text("inbox", &format!("box{{@{p}.feed}}"))
            .unwrap();
    }

    fn sharded(peers: usize, push_deltas: bool) -> ShardedNetwork {
        let mut net = ShardedNetwork::new(ShardedConfig {
            push_deltas,
            ..ShardedConfig::default()
        });
        for i in 0..peers {
            net.join_peer(&format!("peer-{i}"));
        }
        for k in 0..3 {
            pair(&mut net, &format!("prod-{k}"), &format!("cons-{k}"));
        }
        net
    }

    #[test]
    fn fixpoint_is_placement_independent() {
        let mut reference = sharded(1, true);
        assert!(reference.run(100).unwrap());
        for peers in [2usize, 3, 4, 7] {
            let mut net = sharded(peers, true);
            assert!(net.run(100).unwrap());
            assert_eq!(net.canonical_key(), reference.canonical_key(), "{peers} peers");
        }
    }

    #[test]
    fn delta_push_and_full_response_agree_and_deltas_are_smaller() {
        let mut delta = sharded(4, true);
        assert!(delta.run(100).unwrap());
        let mut full = sharded(4, false);
        assert!(full.run(100).unwrap());
        assert_eq!(delta.canonical_key(), full.canonical_key());
        // Same counterfactual volume, strictly smaller actual volume:
        // the producer re-pushes a growing closure whose prefix the
        // consumer has already seen.
        assert_eq!(delta.stats.full_push_bytes, full.stats.full_push_bytes);
        if delta.stats.remote_deliveries > 0 {
            assert!(
                delta.stats.wire_push_bytes < delta.stats.full_push_bytes,
                "delta {} vs full {}",
                delta.stats.wire_push_bytes,
                delta.stats.full_push_bytes
            );
        }
    }

    #[test]
    fn sharded_matches_the_flat_network() {
        // One flat peer per tenant runs the *same document text*.
        let mut flat = Network::new(Mode::Push, None);
        for k in 0..3 {
            let (p, c) = (format!("prod-{k}"), format!("cons-{k}"));
            let producer = flat.add_peer(&p);
            producer
                .add_document_text(
                    "acc",
                    &format!(
                        r#"r{{t{{from{{"1"}},to{{"2"}}}}, t{{from{{"2"}},to{{"3"}}}}, t{{from{{"3"}},to{{"4"}}}}, @{p}.join}}"#
                    ),
                )
                .unwrap();
            producer
                .add_service_text(
                    "join",
                    "t{from{$x},to{$y}} :- acc/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
                )
                .unwrap();
            producer
                .add_service_text(
                    "feed",
                    "t{from{$x},to{$y}} :- acc/r{t{from{$x},to{$y}}}",
                )
                .unwrap();
            let consumer = flat.add_peer(&c);
            consumer
                .add_document_text("inbox", &format!("box{{@{p}.feed}}"))
                .unwrap();
        }
        assert!(flat.run(100).unwrap());
        let mut net = sharded(2, true);
        assert!(net.run(100).unwrap());
        assert_eq!(net.canonical_key(), flat.canonical_key());
    }

    #[test]
    fn mid_run_join_rebalances_without_changing_the_fixpoint() {
        let mut reference = sharded(2, true);
        assert!(reference.run(100).unwrap());

        let mut net = sharded(2, true);
        net.step_round().unwrap();
        net.step_round().unwrap();
        let epoch_before = net.epoch();
        net.join_peer("late");
        assert!(net.epoch() >= epoch_before, "epoch never regresses");
        assert!(net.run(100).unwrap());
        assert_eq!(net.canonical_key(), reference.canonical_key());
        // The join landed somewhere: placement covers every tenant.
        for t in net.tenant_names() {
            assert!(net.owner_of(t.as_str()).is_some());
        }
    }

    #[test]
    fn colocated_tenants_stay_isolated() {
        // Two tenants with *identical* doc and service names but
        // different data, forced onto one peer: neither leaks into the
        // other's evaluation env.
        let mut net = ShardedNetwork::new(ShardedConfig::default());
        net.join_peer("only");
        for (t, v) in [("alpha", "1"), ("beta", "2")] {
            let tenant = net.add_tenant(t);
            tenant
                .add_document_text("base", &format!(r#"r{{v{{"{v}"}}}}"#))
                .unwrap();
            tenant
                .add_service_text("get", "w{$x} :- base/r{v{$x}}")
                .unwrap();
            tenant
                .add_document_text("out", &format!("o{{@{t}.get}}"))
                .unwrap();
        }
        assert!(net.run(50).unwrap());
        let a = net.tenant("alpha").unwrap().doc("out").unwrap();
        let b = net.tenant("beta").unwrap().doc("out").unwrap();
        let ea = axml_core::parse::parse_tree(r#"o{@alpha.get, w{"1"}}"#).unwrap();
        let eb = axml_core::parse::parse_tree(r#"o{@beta.get, w{"2"}}"#).unwrap();
        assert!(axml_core::subsume::equivalent(a, &ea), "got {a}");
        assert!(axml_core::subsume::equivalent(b, &eb), "got {b}");
    }

    #[test]
    fn gauges_are_stable_and_cover_all_peers() {
        let mut net = sharded(4, true);
        net.run(100).unwrap();
        let gauges = net.peer_gauges();
        assert_eq!(gauges.len(), 4);
        let names: Vec<&str> = gauges.iter().map(|(p, _)| p.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "name-sorted ordering");
        let placed: u64 = gauges.iter().map(|(_, g)| g.docs_placed).sum();
        assert_eq!(placed, 6, "3 pairs × 2 docs, all placed");
    }
}
