//! Distributed termination detection (§6): "each peer may know that it
//! reached a fixpoint, but a distributed mechanism is needed to detect
//! termination for the global, distributed system."
//!
//! The detector is a two-phase polling protocol in the style of
//! Dijkstra's ring algorithm: a coordinator polls every peer for a
//! digest of its local state (the canonical keys of its documents);
//! global termination is announced only after **two consecutive polling
//! waves observe identical digests on every peer with no round activity
//! in between** — one quiet wave is not enough, because a message in
//! flight between waves can reactivate an already-polled peer (the
//! classical laggard problem the two-phase scheme exists for).

use crate::network::Network;
use axml_core::error::Result;
use axml_core::reduce::CanonKey;
use axml_core::sym::Sym;

/// The detector's verdict for one run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Two consecutive quiet waves: globally terminated.
    Terminated {
        /// Rounds executed before the detector fired.
        rounds: usize,
        /// Polling waves used.
        waves: usize,
    },
    /// Budget exhausted first.
    Undecided,
}

/// Digest of every peer's state.
fn poll_wave(net: &Network) -> Vec<(Sym, Vec<(Sym, CanonKey)>)> {
    net.peer_names()
        .into_iter()
        .map(|p| (p, net.peer_state_key(p)))
        .collect()
}

/// Drive the network one round at a time, interleaving polling waves,
/// until the detector announces termination or `max_rounds` pass.
pub fn detect_termination(net: &mut Network, max_rounds: usize) -> Result<Verdict> {
    let mut prev_digest = None;
    for round in 0..max_rounds {
        let changed = net.step_round()?;
        let digest = poll_wave(net);
        if !changed && prev_digest.as_ref() == Some(&digest) {
            // Second consecutive quiet wave with identical digests.
            // One polling wave runs per round, so the counts coincide.
            return Ok(Verdict::Terminated {
                rounds: round + 1,
                waves: round + 1,
            });
        }
        prev_digest = if changed { None } else { Some(digest) };
    }
    Ok(Verdict::Undecided)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Mode;

    fn tc_network() -> Network {
        let mut net = Network::new(Mode::Pull, None);
        let store = net.add_peer("store");
        store
            .add_document_text(
                "edges",
                r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}}"#,
            )
            .unwrap();
        store
            .add_service_text("base", "t{from{$x},to{$y}} :- edges/r{t{from{$x},to{$y}}}")
            .unwrap();
        let portal = net.add_peer("portal");
        portal
            .add_document_text("acc", "r{@store.base, @portal.join}")
            .unwrap();
        portal
            .add_service_text(
                "join",
                "t{from{$x},to{$y}} :- acc/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
            )
            .unwrap();
        net
    }

    #[test]
    fn detector_agrees_with_oracle() {
        let mut net = tc_network();
        let verdict = detect_termination(&mut net, 200).unwrap();
        match verdict {
            Verdict::Terminated { rounds, waves } => {
                assert!(rounds >= 2);
                assert!(waves >= rounds);
                // Oracle check: one more round really brings nothing.
                assert!(!net.step_round().unwrap());
            }
            Verdict::Undecided => panic!("detector failed on a terminating network"),
        }
    }

    #[test]
    fn detector_stays_undecided_on_divergent_networks() {
        // Example 2.1 hosted on a peer calling itself.
        let mut net = Network::new(Mode::Pull, None);
        let p = net.add_peer("p");
        p.add_document_text("d", "a{@p.f}").unwrap();
        p.add_service_text("f", "a{@p.f} :-").unwrap();
        let verdict = detect_termination(&mut net, 15).unwrap();
        assert_eq!(verdict, Verdict::Undecided);
    }

    #[test]
    fn one_quiet_wave_is_not_enough() {
        // A chain a→b→c: after c's data lands at b there is a quiet-ish
        // wave at a before b's enriched answer reaches it. The detector
        // must not fire on the first quiet observation.
        let mut net = Network::new(Mode::Pull, None);
        let c = net.add_peer("c");
        c.add_document_text("base", r#"r{v{"1"}}"#).unwrap();
        c.add_service_text("get", "w{$x} :- base/r{v{$x}}").unwrap();
        let b = net.add_peer("b");
        b.add_document_text("mid", "m{@c.get}").unwrap();
        b.add_service_text("relay", "got{$x} :- mid/m{w{$x}}").unwrap();
        let a = net.add_peer("a");
        a.add_document_text("out", "o{@b.relay}").unwrap();
        let verdict = detect_termination(&mut net, 100).unwrap();
        assert!(matches!(verdict, Verdict::Terminated { .. }));
        let out = net.peer("a").unwrap().doc("out").unwrap();
        let expected =
            axml_core::parse::parse_tree(r#"o{@b.relay, got{"1"}}"#).unwrap();
        assert!(axml_core::subsume::equivalent(out, &expected), "got {out}");
    }
}
