//! Distributed termination detection (§6): "each peer may know that it
//! reached a fixpoint, but a distributed mechanism is needed to detect
//! termination for the global, distributed system."
//!
//! The detector is a two-phase polling protocol in the style of
//! Dijkstra's ring algorithm: a coordinator polls every peer for a
//! digest of its local state (the canonical keys of its documents);
//! global termination is announced only after **two consecutive polling
//! waves observe identical digests on every peer with no round activity
//! in between** — one quiet wave is not enough, because a message in
//! flight between waves can reactivate an already-polled peer (the
//! classical laggard problem the two-phase scheme exists for).

use crate::network::Network;
use crate::placement::ShardedNetwork;
use axml_core::error::Result;
use axml_core::reduce::CanonKey;
use axml_core::sym::Sym;

/// The detector's verdict for one run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Two consecutive quiet waves: globally terminated.
    Terminated {
        /// Rounds executed before the detector fired.
        rounds: usize,
        /// Polling waves used.
        waves: usize,
    },
    /// Budget exhausted first.
    Undecided,
}

/// Digest of every peer's state.
fn poll_wave(net: &Network) -> Vec<(Sym, Vec<(Sym, CanonKey)>)> {
    net.peer_names()
        .into_iter()
        .map(|p| (p, net.peer_state_key(p)))
        .collect()
}

/// Drive the network one round at a time, interleaving polling waves,
/// until the detector announces termination or `max_rounds` pass.
pub fn detect_termination(net: &mut Network, max_rounds: usize) -> Result<Verdict> {
    let mut prev_digest = None;
    for round in 0..max_rounds {
        let changed = net.step_round()?;
        let digest = poll_wave(net);
        if !changed && prev_digest.as_ref() == Some(&digest) {
            // Second consecutive quiet wave with identical digests.
            // One polling wave runs per round, so the counts coincide.
            return Ok(Verdict::Terminated {
                rounds: round + 1,
                waves: round + 1,
            });
        }
        prev_digest = if changed { None } else { Some(digest) };
    }
    Ok(Verdict::Undecided)
}

/// Digest of every tenant's state on a sharded network. Tenant-level,
/// so the digest is placement-independent — a wave taken before and
/// after a rebalance of *unchanged* documents reads the same.
fn poll_wave_sharded(net: &ShardedNetwork) -> Vec<(Sym, Vec<(Sym, CanonKey)>)> {
    net.tenant_names()
        .into_iter()
        .map(|t| (t, net.tenant_state_key(t)))
        .collect()
}

/// [`detect_termination`] for a [`ShardedNetwork`], sound under
/// mid-run rebalancing: `hook` runs before every round (the test/
/// experiment harness uses it to join or remove peers), and any
/// placement-epoch movement **voids the quiet streak**. The void is
/// what keeps the two-phase argument intact — a migration re-homes
/// in-flight deliveries, so a wave observed across one is not evidence
/// that the system was quiet *at a single placement*; the detector
/// must re-establish two quiet waves inside the new epoch before it
/// may announce.
pub fn detect_termination_sharded_with(
    net: &mut ShardedNetwork,
    max_rounds: usize,
    mut hook: impl FnMut(&mut ShardedNetwork, usize),
) -> Result<Verdict> {
    let mut prev_digest = None;
    let mut prev_epoch = net.epoch();
    for round in 0..max_rounds {
        hook(net, round);
        let changed = net.step_round()?;
        let digest = poll_wave_sharded(net);
        let epoch = net.epoch();
        let quiet = !changed
            && epoch == prev_epoch
            && prev_digest.as_ref() == Some(&digest)
            && net.no_pending_work();
        if quiet {
            return Ok(Verdict::Terminated {
                rounds: round + 1,
                waves: round + 1,
            });
        }
        prev_digest = if changed || epoch != prev_epoch {
            None
        } else {
            Some(digest)
        };
        prev_epoch = epoch;
    }
    Ok(Verdict::Undecided)
}

/// [`detect_termination_sharded_with`] without a rebalance schedule.
pub fn detect_termination_sharded(
    net: &mut ShardedNetwork,
    max_rounds: usize,
) -> Result<Verdict> {
    detect_termination_sharded_with(net, max_rounds, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Mode;

    fn tc_network() -> Network {
        let mut net = Network::new(Mode::Pull, None);
        let store = net.add_peer("store");
        store
            .add_document_text(
                "edges",
                r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}}"#,
            )
            .unwrap();
        store
            .add_service_text("base", "t{from{$x},to{$y}} :- edges/r{t{from{$x},to{$y}}}")
            .unwrap();
        let portal = net.add_peer("portal");
        portal
            .add_document_text("acc", "r{@store.base, @portal.join}")
            .unwrap();
        portal
            .add_service_text(
                "join",
                "t{from{$x},to{$y}} :- acc/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
            )
            .unwrap();
        net
    }

    #[test]
    fn detector_agrees_with_oracle() {
        let mut net = tc_network();
        let verdict = detect_termination(&mut net, 200).unwrap();
        match verdict {
            Verdict::Terminated { rounds, waves } => {
                assert!(rounds >= 2);
                assert!(waves >= rounds);
                // Oracle check: one more round really brings nothing.
                assert!(!net.step_round().unwrap());
            }
            Verdict::Undecided => panic!("detector failed on a terminating network"),
        }
    }

    #[test]
    fn detector_stays_undecided_on_divergent_networks() {
        // Example 2.1 hosted on a peer calling itself.
        let mut net = Network::new(Mode::Pull, None);
        let p = net.add_peer("p");
        p.add_document_text("d", "a{@p.f}").unwrap();
        p.add_service_text("f", "a{@p.f} :-").unwrap();
        let verdict = detect_termination(&mut net, 15).unwrap();
        assert_eq!(verdict, Verdict::Undecided);
    }

    fn sharded_pair_net(peers: usize) -> ShardedNetwork {
        let mut net = ShardedNetwork::new(crate::placement::ShardedConfig::default());
        for i in 0..peers {
            net.join_peer(&format!("peer-{i}"));
        }
        for k in 0..2 {
            let p = format!("prod-{k}");
            let producer = net.add_tenant(&p);
            producer
                .add_document_text(
                    "acc",
                    &format!(
                        r#"r{{t{{from{{"1"}},to{{"2"}}}}, t{{from{{"2"}},to{{"3"}}}}, @{p}.join}}"#
                    ),
                )
                .unwrap();
            producer
                .add_service_text(
                    "join",
                    "t{from{$x},to{$y}} :- acc/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
                )
                .unwrap();
            producer
                .add_service_text(
                    "feed",
                    "t{from{$x},to{$y}} :- acc/r{t{from{$x},to{$y}}}",
                )
                .unwrap();
            let consumer = net.add_tenant(&format!("cons-{k}"));
            consumer
                .add_document_text("inbox", &format!("box{{@{p}.feed}}"))
                .unwrap();
        }
        net
    }

    #[test]
    fn sharded_detector_agrees_with_oracle() {
        let mut net = sharded_pair_net(2);
        let verdict = detect_termination_sharded(&mut net, 200).unwrap();
        match verdict {
            Verdict::Terminated { rounds, .. } => {
                assert!(rounds >= 2);
                assert!(!net.step_round().unwrap(), "oracle: truly quiet");
            }
            Verdict::Undecided => panic!("detector failed on a terminating network"),
        }
    }

    #[test]
    fn rebalance_voids_the_quiet_streak() {
        // Baseline: how many rounds without any rebalance.
        let mut base = sharded_pair_net(2);
        let Verdict::Terminated { rounds: base_rounds, .. } =
            detect_termination_sharded(&mut base, 200).unwrap()
        else {
            panic!("baseline undecided");
        };

        // Join a peer exactly when the detector is one quiet wave from
        // announcing: the epoch bump must void the streak, costing at
        // least one extra quiet wave inside the new placement.
        let join_at = base_rounds - 1;
        let mut net = sharded_pair_net(2);
        let verdict =
            detect_termination_sharded_with(&mut net, 200, |n, round| {
                if round == join_at {
                    n.join_peer("late");
                }
            })
            .unwrap();
        match verdict {
            Verdict::Terminated { rounds, .. } => {
                assert!(
                    rounds > base_rounds,
                    "join at {join_at} must delay announcement ({rounds} vs {base_rounds})"
                );
                assert!(!net.step_round().unwrap(), "oracle: truly quiet");
                // And the fixpoint is the placement-independent one.
                assert_eq!(net.canonical_key(), base.canonical_key());
            }
            Verdict::Undecided => panic!("detector failed across a rebalance"),
        }
    }

    #[test]
    fn one_quiet_wave_is_not_enough() {
        // A chain a→b→c: after c's data lands at b there is a quiet-ish
        // wave at a before b's enriched answer reaches it. The detector
        // must not fire on the first quiet observation.
        let mut net = Network::new(Mode::Pull, None);
        let c = net.add_peer("c");
        c.add_document_text("base", r#"r{v{"1"}}"#).unwrap();
        c.add_service_text("get", "w{$x} :- base/r{v{$x}}").unwrap();
        let b = net.add_peer("b");
        b.add_document_text("mid", "m{@c.get}").unwrap();
        b.add_service_text("relay", "got{$x} :- mid/m{w{$x}}").unwrap();
        let a = net.add_peer("a");
        a.add_document_text("out", "o{@b.relay}").unwrap();
        let verdict = detect_termination(&mut net, 100).unwrap();
        assert!(matches!(verdict, Verdict::Terminated { .. }));
        let out = net.peer("a").unwrap().doc("out").unwrap();
        let expected =
            axml_core::parse::parse_tree(r#"o{@b.relay, got{"1"}}"#).unwrap();
        assert!(axml_core::subsume::equivalent(out, &expected), "got {out}");
    }
}
