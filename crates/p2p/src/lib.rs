//! # axml-p2p — simulated peer-to-peer AXML data management
//!
//! The paper frames AXML as "a powerful framework for distributed data
//! management" over P2P networks (§1, §6): peers host documents and
//! offer AXML services to one another; calls are activated repeatedly in
//! a *pull* mode, or providers *push* new results to their callers — two
//! essentially equivalent views of the same streams of data (§2.2
//! remark). §6 also notes that detecting termination of the distributed
//! system needs a dedicated mechanism, since each peer only sees its own
//! fixpoint.
//!
//! This crate simulates that setting deterministically:
//!
//! * [`network`] — peers, peer-qualified service names (`peer.svc`),
//!   message-counted request/response (pull) and subscription (push)
//!   propagation, with randomizable delivery order for the confluence
//!   experiments;
//! * [`termination`] — a polling-based distributed quiescence detector
//!   validated against the simulator's global oracle;
//! * [`threaded`] — truly concurrent peers on OS threads, with a
//!   double-wave quiescence coordinator;
//! * [`placement`] — sharded scale-out: consistent-hash placement of
//!   tenants (small independent AXML systems) onto a physical peer
//!   ring, push-mode delta propagation of document changes, and
//!   rebalancing on peer join/leave with O(1) COW document migration.
//!
//! Both backends can record structured trace journals of their message
//! traffic and provider evaluations — see [`axml_core::trace`],
//! [`Network::enable_tracing`] and [`threaded::run_threaded_traced`] —
//! and per-peer provenance stores that stamp cross-peer lineage onto
//! delivered nodes — see [`axml_core::provenance`],
//! [`Network::enable_provenance`] and [`threaded::run_threaded_full`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod placement;
pub mod termination;
pub mod threaded;

pub use network::{Mode, Network, NetworkStats, Peer, PeerSnapshot};
pub use placement::{
    DocId, PeerGauges, Ring, ShardStats, ShardedConfig, ShardedNetwork,
};
pub use termination::{
    detect_termination, detect_termination_sharded,
    detect_termination_sharded_with, Verdict,
};
pub use threaded::{
    run_threaded, run_threaded_config, run_threaded_full, run_threaded_traced,
    standalone_peer, ThreadedConfig, ThreadedOutcome,
};
