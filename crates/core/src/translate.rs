//! The ψ translation (Proposition 5.1): compile regular path expressions
//! away, yielding a plain positive system and query with the same full
//! query result.
//!
//! Following the paper's proof sketch, for each path-expression
//! occurrence the translation:
//!
//! 1. builds the ε-free NFA of the expression;
//! 2. **adds to the documents** nodes representing the automaton states
//!    relevant to each node — realized as per-node service calls whose
//!    results are annotation subtrees `axannJ{axst{"sK"}, payload…}`;
//! 3. defines **one service per automaton move** `δ(q, a) = p`: "a query
//!    that tests if the given (context) node has a child of state p and
//!    whose label is a, and if so returns the state q", plus one *seed*
//!    service per accepting state ("the final state is stored in all
//!    nodes of the tree") that also checks the path node's continuation
//!    pattern at the endpoint;
//! 4. propagates, along with states, the bindings the continuation needs
//!    ("the label of the node at the end of the path" for simple
//!    queries, "the node's subtree" — a tree variable — for non-simple
//!    ones);
//! 5. rewrites the query: each path node becomes a plain match on the
//!    anchor's annotation carrying the automaton's **start** state.
//!
//! The translation is PTIME, preserves simplicity (simple in → simple
//! out: seeds and moves copy only marking variables), and preserves the
//! full query result up to erasure of the annotation namespace
//! ([`strip_annotations`]). Label/function variables in user queries and
//! services receive inequality guards so they never capture annotation
//! nodes — keeping the original system's behaviour intact.
//!
//! **Scope deviation from the paper.** Prop 5.1's sketch says non-simple
//! queries propagate "the node's subtree" with a tree variable. A tree
//! variable, however, cannot be guarded by inequalities (Def 3.1 (3)),
//! so a tree-variable payload would copy the very annotation subtrees
//! the translation plants, creating unbounded annotation-of-annotation
//! growth. We therefore implement ψ for **simple** positive+reg queries
//! (the carrier of every decidability result in the paper); non-simple
//! positive+reg queries are supported by the direct evaluator
//! ([`crate::pathexpr::snapshot_reg`]). See DESIGN.md.

use crate::error::{AxmlError, Result};
use crate::pattern::{PItem, Pattern, PNodeId};
use crate::pathexpr::{RItem, RegPattern, RegQuery, RNodeId};
use crate::query::{parse_query, Operand, Query, VarKind};
use crate::sym::{FxHashMap, FxHashSet, Sym};
use crate::system::System;
use crate::tree::{Marking, NodeId, Tree};
use axml_automata::nfa::Move;
use axml_automata::{Nfa, StateId};
use std::fmt::Write as _;

/// Output of the ψ translation.
pub struct Translation {
    /// The translated (plain positive) system `I'`.
    pub system: System,
    /// The translated (plain positive) query `q'`.
    pub query: Query,
    /// Mapping of the original documents' function nodes to their node
    /// ids in the translated documents — Prop 5.1's "mapping over
    /// function nodes" for transporting q-unneeded sets.
    pub call_map: FxHashMap<(Sym, NodeId), NodeId>,
    /// Statistics.
    pub stats: TranslationStats,
}

/// Size accounting for experiment X10.
#[derive(Clone, Copy, Debug, Default)]
pub struct TranslationStats {
    /// Path-expression occurrences translated.
    pub occurrences: usize,
    /// Automaton states across all occurrences (ε-free, reachable).
    pub states: usize,
    /// Annotation services added.
    pub services_added: usize,
    /// Annotation call nodes planted in documents.
    pub calls_planted: usize,
}

const ANN_PREFIX: &str = "axann";
const STATE_LABEL: &str = "axst";
const BINDER_PREFIX: &str = "axv-";
const SVC_PREFIX: &str = "axsvc";

/// Is `name` in the namespace reserved by the translation?
pub fn is_reserved(name: &str) -> bool {
    name.starts_with(ANN_PREFIX)
        || name == STATE_LABEL
        || name.starts_with(BINDER_PREFIX)
        || name.starts_with(SVC_PREFIX)
        || name.starts_with("axroot")
        || name.starts_with("axany")
}

/// Remove all annotation subtrees (reserved labels and planted calls)
/// from a tree — the erasure under which Prop 5.1 (3)'s result equality
/// holds.
pub fn strip_annotations(t: &Tree) -> Tree {
    fn keep(m: Marking) -> bool {
        !is_reserved(m.sym().as_str()) || matches!(m, Marking::Value(_))
    }
    fn go(src: &Tree, sn: NodeId, dst: &mut Tree, dn: NodeId) {
        for &c in src.children(sn) {
            if !keep(src.marking(c)) {
                continue;
            }
            let nc = dst
                .add_child(dn, src.marking(c))
                .expect("structure preserved");
            go(src, c, dst, nc);
        }
    }
    let mut out = Tree::new(t.marking(t.root()));
    let root = out.root();
    go(t, t.root(), &mut out, root);
    out
}

/// One translated path occurrence.
struct Occurrence {
    ann_label: String,
    start_state: String,
    /// (variable, kind) pairs the continuation exports.
    payload: Vec<(Sym, VarKind)>,
    /// Generated service definitions (name, query text).
    services: Vec<(String, String)>,
}

struct Translator {
    occurrences: Vec<Occurrence>,
    reserved_labels: Vec<String>,
    service_names: Vec<String>,
}

impl Translator {
    fn sigil(kind: VarKind, v: Sym) -> String {
        match kind {
            VarKind::Label => format!("?{v}"),
            VarKind::Func => format!("@?{v}"),
            VarKind::Value => format!("${v}"),
            VarKind::Tree => format!("#{v}"),
        }
    }

    /// Binder subpattern text `axv-x{$x}` for a payload variable.
    fn binder(kind: VarKind, v: Sym) -> String {
        format!("{BINDER_PREFIX}{v}{{{}}}", Translator::sigil(kind, v))
    }

    fn state_name(s: StateId) -> String {
        format!("s{}", s.0)
    }

    /// Translate one path occurrence; returns the replacement pattern
    /// text for the query side.
    fn add_occurrence(
        &mut self,
        regex: &axml_automata::Regex<Sym>,
        continuation: Vec<(String, Vec<(Sym, VarKind)>)>,
    ) -> String {
        let j = self.occurrences.len();
        let ann = format!("{ANN_PREFIX}{j}");
        let nfa = Nfa::from_regex(regex).without_epsilon();
        let reachable = nfa.reachable_states();
        let payload: Vec<(Sym, VarKind)> = {
            let mut seen = FxHashSet::default();
            continuation
                .iter()
                .flat_map(|(_, vars)| vars.iter().copied())
                .filter(|(v, _)| seen.insert(*v))
                .collect()
        };
        let binders: String = payload
            .iter()
            .map(|&(v, k)| format!(", {}", Translator::binder(k, v)))
            .collect();

        let mut services: Vec<(String, String)> = Vec::new();
        // Seed services: one per accepting (reachable) state. The seed
        // runs at the path endpoint; its body checks the continuation.
        for &acc in nfa.accept.iter().filter(|s| reachable.contains(s)) {
            let name = format!("{SVC_PREFIX}{j}-seed-{}", Translator::state_name(acc));
            let conts: String = continuation
                .iter()
                .map(|(text, _)| text.clone())
                .collect::<Vec<_>>()
                .join(", ");
            let body = if conts.is_empty() {
                "context/?axroot".to_string()
            } else {
                format!("context/?axroot{{{conts}}}")
            };
            let head = format!(
                "{ann}{{{STATE_LABEL}{{\"{}\"}}{binders}}}",
                Translator::state_name(acc)
            );
            services.push((name, format!("{head} :- {body}")));
        }
        // Move services: one per labeled transition from a reachable
        // state.
        for (k, (from, mv, to)) in nfa
            .transitions()
            .iter()
            .filter(|(from, _, _)| reachable.contains(from))
            .enumerate()
        {
            let name = format!("{SVC_PREFIX}{j}-m{k}");
            let inner = format!(
                "{ann}{{{STATE_LABEL}{{\"{}\"}}{binders}}}",
                Translator::state_name(*to)
            );
            let head = format!(
                "{ann}{{{STATE_LABEL}{{\"{}\"}}{binders}}}",
                Translator::state_name(*from)
            );
            let (step, guards) = match mv {
                Move::Label(l) => (l.to_string(), String::new()),
                Move::Any => ("?axany".to_string(), self.wildcard_guards("axany")),
                Move::Epsilon => unreachable!("ε-free automaton"),
            };
            services.push((
                name,
                format!("{head} :- context/?axroot{{{step}{{{inner}}}}}{guards}"),
            ));
        }

        let start = Translator::state_name(nfa.start);
        let replacement = format!(
            "{ann}{{{STATE_LABEL}{{\"{start}\"}}{binders}}}"
        );
        self.reserved_labels.push(ann.clone());
        self.service_names
            .extend(services.iter().map(|(n, _)| n.clone()));
        self.occurrences.push(Occurrence {
            ann_label: ann,
            start_state: start,
            payload,
            services,
        });
        replacement
    }

    /// Inequality guards keeping a wildcard label variable out of the
    /// annotation namespace. Guards reference annotation labels of *all*
    /// occurrences, so they are patched (regenerated) after every
    /// occurrence is known — see [`translate`]'s second pass.
    fn wildcard_guards(&self, var: &str) -> String {
        let mut out = String::new();
        let _ = write!(out, ", ?{var} != {STATE_LABEL}");
        for j in 0..=self.occurrences.len() {
            let _ = write!(out, ", ?{var} != {ANN_PREFIX}{j}");
        }
        out
    }
}


/// Recursively transform a reg-pattern node into plain pattern text,
/// registering occurrences for every path item (innermost first).
fn transform_rnode(tr: &mut Translator, rp: &RegPattern, rn: RNodeId) -> (String, Vec<(Sym, VarKind)>) {
    match rp.item(rn) {
        RItem::Plain(item) => {
            let mut vars = Vec::new();
            match item {
                PItem::LabelVar(v) => vars.push((*v, VarKind::Label)),
                PItem::FuncVar(v) => vars.push((*v, VarKind::Func)),
                PItem::ValueVar(v) => vars.push((*v, VarKind::Value)),
                PItem::TreeVar(v) => vars.push((*v, VarKind::Tree)),
                PItem::Const(_) => {}
            }
            let mut kids = Vec::new();
            for &rc in rp.children(rn) {
                let (text, v) = transform_rnode(tr, rp, rc);
                vars.extend(v);
                kids.push(text);
            }
            let text = if kids.is_empty() {
                format!("{item}")
            } else {
                format!("{item}{{{}}}", kids.join(","))
            };
            (text, vars)
        }
        RItem::Path(regex) => {
            let mut conts = Vec::new();
            let mut vars = Vec::new();
            for &rc in rp.children(rn) {
                let (text, v) = transform_rnode(tr, rp, rc);
                vars.extend(v.clone());
                conts.push((text, v));
            }
            let replacement = tr.add_occurrence(regex, conts);
            (replacement, vars)
        }
    }
}

/// Check that no user name collides with the reserved namespace.
fn check_reserved(sys: &System, q: &RegQuery) -> Result<()> {
    let check_sym = |s: Sym| -> Result<()> {
        if is_reserved(s.as_str()) {
            Err(AxmlError::ReservedName(s))
        } else {
            Ok(())
        }
    };
    for &d in sys.doc_names() {
        let t = sys.doc(d).expect("stored");
        for n in t.iter_live(t.root()) {
            check_sym(t.marking(n).sym())?;
        }
    }
    for &f in sys.service_names() {
        check_sym(f)?;
    }
    for v in q.head.variables() {
        check_sym(v)?;
    }
    for (_, p) in &q.body {
        for v in p.variables() {
            check_sym(v)?;
        }
    }
    Ok(())
}

/// Guards excluding every reserved label from a label variable, and
/// every planted service from a function variable.
fn guards_for_query(q: &Query, tr: &Translator) -> Vec<(Operand, Operand)> {
    let mut out = Vec::new();
    let kinds = q.var_kinds();
    let mut body_vars: FxHashSet<Sym> = FxHashSet::default();
    for a in &q.body {
        body_vars.extend(a.pattern.variables());
    }
    for (v, k) in kinds {
        if !body_vars.contains(&v) {
            continue;
        }
        match k {
            VarKind::Label => {
                out.push((
                    Operand::Var(v),
                    Operand::Const(Marking::label(STATE_LABEL)),
                ));
                for occ in &tr.occurrences {
                    out.push((
                        Operand::Var(v),
                        Operand::Const(Marking::label(&occ.ann_label)),
                    ));
                }
            }
            VarKind::Func => {
                for name in &tr.service_names {
                    out.push((Operand::Var(v), Operand::Const(Marking::func(name))));
                }
            }
            _ => {}
        }
    }
    out
}

/// Plant one call per annotation service under every label node of `t`
/// (and remember where original function nodes went).
fn plant_calls(
    t: &Tree,
    tr: &Translator,
    stats: &mut TranslationStats,
) -> (Tree, FxHashMap<NodeId, NodeId>) {
    let mut out = Tree::new(t.marking(t.root()));
    let mut map = FxHashMap::default();
    map.insert(t.root(), out.root());
    let mut stack = vec![(t.root(), out.root())];
    while let Some((sn, dn)) = stack.pop() {
        if matches!(t.marking(sn), Marking::Label(_)) {
            for name in &tr.service_names {
                out.add_child(dn, Marking::func(name))
                    .expect("labels accept children");
                stats.calls_planted += 1;
            }
        }
        for &c in t.children(sn) {
            let nc = out
                .add_child(dn, t.marking(c))
                .expect("copy preserves shape");
            map.insert(c, nc);
            stack.push((c, nc));
        }
    }
    (out, map)
}

/// Plant annotation calls under every label node (constant or variable)
/// of a service head, so data created at run time gets annotated too.
fn plant_calls_in_head(head: &Pattern, tr: &Translator) -> Pattern {
    fn go(src: &Pattern, sn: PNodeId, dst: &mut Pattern, dn: PNodeId, tr: &Translator) {
        let plant = matches!(
            src.item(sn),
            PItem::Const(Marking::Label(_)) | PItem::LabelVar(_)
        );
        if plant {
            for name in &tr.service_names {
                dst.add_child(dn, PItem::Const(Marking::func(name)))
                    .expect("labels accept children");
            }
        }
        for &c in src.children(sn) {
            let nc = dst
                .add_child(dn, src.item(c).clone())
                .expect("copy preserves shape");
            go(src, c, dst, nc, tr);
        }
    }
    let mut out = Pattern::new(head.item(head.root()).clone());
    let root = out.root();
    go(head, head.root(), &mut out, root, tr);
    out
}

/// ψ: translate a positive system plus a positive+reg query into a plain
/// positive system and query with the same result (Prop 5.1), up to
/// [`strip_annotations`] erasure.
pub fn translate(sys: &System, q: &RegQuery) -> Result<Translation> {
    if !sys.is_positive() {
        return Err(AxmlError::NotSimple(Sym::intern("<black-box>")));
    }
    if !q.is_simple() {
        return Err(AxmlError::NotSimple(Sym::intern("<query>")));
    }
    check_reserved(sys, q)?;
    let mut tr = Translator {
        occurrences: Vec::new(),
        reserved_labels: Vec::new(),
        service_names: Vec::new(),
    };

    // Pass 1: transform the query body, discovering occurrences.
    let mut body_texts: Vec<(Sym, String)> = Vec::new();
    for (doc, p) in &q.body {
        let (text, _) = transform_rnode(&mut tr, p, p.root());
        body_texts.push((*doc, text));
    }
    let mut stats = TranslationStats {
        occurrences: tr.occurrences.len(),
        ..TranslationStats::default()
    };

    // Pass 2: regenerate wildcard guards now that all annotation labels
    // are known (services were created with partial guard lists when
    // occurrences were still being discovered — rebuilt here).
    let occ_count = tr.occurrences.len();
    let full_guards: String = {
        let mut s = format!(", ?axany != {STATE_LABEL}");
        for j in 0..occ_count {
            let _ = write!(s, ", ?axany != {ANN_PREFIX}{j}");
        }
        s
    };
    for occ in &mut tr.occurrences {
        for (_, qtext) in &mut occ.services {
            if let Some(idx) = qtext.find(", ?axany !=") {
                qtext.truncate(idx);
                qtext.push_str(&full_guards);
            }
        }
    }

    // Build the translated system.
    let mut out = System::new();
    let mut call_map: FxHashMap<(Sym, NodeId), NodeId> = FxHashMap::default();
    for &d in sys.doc_names() {
        let t = sys.doc(d).expect("stored");
        let (planted, map) = plant_calls(t, &tr, &mut stats);
        for n in t.function_nodes() {
            if let Some(&nn) = map.get(&n) {
                call_map.insert((d, n), nn);
            }
        }
        out.add_document(d.as_str(), planted)?;
    }
    // Original services: heads planted, label/function variables guarded.
    for &f in sys.service_names() {
        let orig = sys.service_query(f).expect("positive system");
        let mut guarded = orig.clone();
        guarded.head = plant_calls_in_head(&orig.head, &tr);
        guarded.ineqs.extend(guards_for_query(orig, &tr));
        out.add_service(f.as_str(), guarded)?;
    }
    // Annotation services.
    for occ in &tr.occurrences {
        for (name, qtext) in &occ.services {
            let parsed = parse_query(qtext)?;
            out.add_service(name, parsed)?;
            stats.services_added += 1;
        }
        stats.states += occ
            .services
            .iter()
            .filter(|(n, _)| n.contains("-seed-"))
            .count();
        let _ = &occ.start_state;
        let _ = &occ.payload;
    }

    // The translated query.
    let mut qtext = String::new();
    let _ = write!(qtext, "{} :- ", q.head);
    let parts: Vec<String> = body_texts
        .iter()
        .map(|(d, t)| format!("{d}/{t}"))
        .collect();
    qtext.push_str(&parts.join(", "));
    for (l, r) in &q.ineqs {
        let _ = write!(qtext, ", {l} != {r}");
    }
    let mut tq = parse_query(&qtext)?;
    tq.ineqs.extend(guards_for_query(&tq, &tr));

    Ok(Translation {
        system: out,
        query: tq,
        call_map,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, EngineConfig, RunStatus};
    use crate::eval::{snapshot, Env};
    use crate::forest::Forest;
    use crate::pathexpr::{parse_reg_query, snapshot_reg};

    /// Evaluate the *full* result of a reg query directly: run the
    /// original system to fixpoint, then walk with the NFA.
    fn direct_full(mut sys: System, q: &RegQuery) -> Forest {
        let (status, _) = run(&mut sys, &EngineConfig::default()).unwrap();
        assert_eq!(status, RunStatus::Terminated);
        let mut env = Env::new();
        for &d in sys.doc_names() {
            env.insert(d, sys.doc(d).unwrap());
        }
        snapshot_reg(q, &env).unwrap()
    }

    /// Evaluate via ψ: translate, run the translated system to fixpoint,
    /// snapshot the translated query, strip annotations.
    fn translated_full(sys: &System, q: &RegQuery) -> (Forest, TranslationStats) {
        let tr = translate(sys, q).unwrap();
        let mut tsys = tr.system;
        let (status, _) = run(&mut tsys, &EngineConfig::default()).unwrap();
        assert_eq!(status, RunStatus::Terminated, "translated system diverged");
        let mut env = Env::new();
        for &d in tsys.doc_names() {
            env.insert(d, tsys.doc(d).unwrap());
        }
        let raw = snapshot(&tr.query, &env).unwrap();
        let stripped: Forest = raw.trees().iter().map(strip_annotations).collect();
        (stripped.reduce(), tr.stats)
    }

    fn check_equal(sys: System, qtext: &str) {
        let q = parse_reg_query(qtext).unwrap();
        let direct = direct_full(sys.clone(), &q).reduce();
        let (via_psi, _) = translated_full(&sys, &q);
        assert!(
            direct.equivalent(&via_psi),
            "ψ mismatch for {qtext}:\ndirect: {:?}\npsi: {:?}",
            direct.trees().iter().map(|t| t.to_string()).collect::<Vec<_>>(),
            via_psi.trees().iter().map(|t| t.to_string()).collect::<Vec<_>>()
        );
    }

    fn static_sys() -> System {
        let mut sys = System::new();
        sys.add_document_text(
            "d",
            r#"lib{
                shelf{box{cd{title{"A"}}}, cd{title{"B"}}},
                cd{title{"C"}},
                misc{dvd{title{"D"}}}
            }"#,
        )
        .unwrap();
        sys
    }

    #[test]
    fn psi_preserves_results_on_static_documents() {
        check_equal(static_sys(), "t{$x} :- d/lib{<shelf.box.cd>{title{$x}}}");
        check_equal(static_sys(), "t{$x} :- d/lib{<_*.cd>{title{$x}}}");
        check_equal(
            static_sys(),
            "t{$x} :- d/lib{<(shelf|misc).(box|dvd)*.(cd|dvd)>{title{$x}}}",
        );
        check_equal(static_sys(), "t{$x} :- d/lib{<cd?>{title{$x}}}");
    }

    #[test]
    fn psi_preserves_results_with_active_services() {
        // The document grows at run time; planted head calls keep the
        // annotations complete.
        let mut sys = System::new();
        sys.add_document_text("src", r#"r{item{"X"}, item{"Y"}}"#).unwrap();
        sys.add_document_text("d", "lib{@fill}").unwrap();
        sys.add_service_text("fill", "shelf{cd{title{$t}}} :- src/r{item{$t}}")
            .unwrap();
        check_equal(sys, "t{$x} :- d/lib{<shelf.cd>{title{$x}}}");
    }

    #[test]
    fn psi_preserves_simplicity() {
        let q = parse_reg_query("t{$x} :- d/lib{<_*.cd>{title{$x}}}").unwrap();
        assert!(q.is_simple());
        let tr = translate(&static_sys(), &q).unwrap();
        assert!(tr.system.is_simple());
        assert!(tr.query.is_simple());
    }

    #[test]
    fn psi_rejects_non_simple_queries() {
        // Tree-variable payloads would copy annotation subtrees and
        // regress (see module docs): ψ is scoped to simple queries.
        let q = parse_reg_query("t{#X} :- d/lib{<_*.cd>{#X}}").unwrap();
        assert!(!q.is_simple());
        assert!(matches!(
            translate(&static_sys(), &q),
            Err(AxmlError::NotSimple(_))
        ));
    }

    #[test]
    fn reserved_names_rejected() {
        let mut sys = System::new();
        sys.add_document_text("d", "axann0{x}").unwrap();
        let q = parse_reg_query("t :- d/axann0{<x*>}").unwrap();
        assert!(matches!(
            translate(&sys, &q),
            Err(AxmlError::ReservedName(_))
        ));
    }

    #[test]
    fn stats_accounting() {
        let q = parse_reg_query("t{$x} :- d/lib{<_*.cd>{title{$x}}}").unwrap();
        let tr = translate(&static_sys(), &q).unwrap();
        assert_eq!(tr.stats.occurrences, 1);
        assert!(tr.stats.services_added >= 2); // >= 1 seed + >= 1 move
        assert!(tr.stats.calls_planted > 0);
    }

    #[test]
    fn call_map_covers_original_calls() {
        let mut sys = System::new();
        sys.add_document_text("d", "lib{@fill}").unwrap();
        sys.add_service_text("fill", "cd{title{\"Z\"}} :-").unwrap();
        let q = parse_reg_query("t{$x} :- d/lib{<cd>{title{$x}}}").unwrap();
        let tr = translate(&sys, &q).unwrap();
        assert_eq!(tr.call_map.len(), 1);
        let d = Sym::intern("d");
        let (_, new_node) = tr.call_map.iter().next().map(|(&(a, b), &c)| ((a, b), c)).unwrap();
        let tdoc = tr.system.doc(d).unwrap();
        assert_eq!(tdoc.marking(new_node), Marking::func("fill"));
    }

    #[test]
    fn strip_annotations_roundtrip() {
        let q = parse_reg_query("t{$x} :- d/lib{<cd>{title{$x}}}").unwrap();
        let tr = translate(&static_sys(), &q).unwrap();
        let d = Sym::intern("d");
        let planted = tr.system.doc(d).unwrap();
        let stripped = strip_annotations(planted);
        let original = static_sys();
        assert!(crate::subsume::equivalent(
            &stripped,
            original.doc(d).unwrap()
        ));
    }
}
