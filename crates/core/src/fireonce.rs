//! Fire-once semantics (§4, "Fire-once semantics").
//!
//! An alternative semantics where each service call is invoked exactly
//! once, returning a single answer. The paper's observations, all
//! reproduced by the tests and experiment X12:
//!
//! * the semantics is well-defined (each call fires once; new calls
//!   brought by results also fire once);
//! * it may derive **less** data than the positive semantics — in
//!   Example 3.2 the recursive rule is evaluated once, so the transitive
//!   closure is not computed;
//! * for **acyclic** systems the fire-once and positive semantics
//!   coincide: firing in dependency order, one invocation per call
//!   suffices.
//!
//! The paper gates invocations on query stability. We realize the same
//! effect structurally: when the dependency graph (Definition 3.2) is
//! acyclic, calls fire in topological order of their function names —
//! i.e. a call fires only when everything it depends on is complete
//! (stable). On cyclic systems no such order exists; calls fire in
//! document order, which is where data loss relative to the positive
//! semantics appears.

use crate::depgraph::{DepGraph, DepNode};
use crate::error::Result;
use crate::invoke::invoke_node;
use crate::sym::{FxHashMap, FxHashSet, Sym};
use crate::system::System;
use crate::tree::{Marking, NodeId};

/// Statistics of a fire-once run.
#[derive(Clone, Debug, Default)]
pub struct FireOnceStats {
    /// Calls fired (each exactly once).
    pub fired: usize,
    /// Calls whose single invocation was productive.
    pub productive: usize,
    /// Was a dependency (topological) firing order available?
    pub topological: bool,
}

/// Run the system under fire-once semantics: every function node is
/// invoked exactly once; function nodes created by results are also
/// fired once. Stops when no unfired call remains.
pub fn run_fire_once(sys: &mut System, max_fired: usize) -> Result<FireOnceStats> {
    let dep = DepGraph::build(sys);
    let topo = dep.topo_order();
    let mut stats = FireOnceStats {
        topological: topo.is_some(),
        ..FireOnceStats::default()
    };
    // Rank functions by dependency depth (dependencies first) when
    // possible; otherwise keep discovery order.
    let rank: FxHashMap<Sym, usize> = match &topo {
        Some(order) => order
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n {
                DepNode::Func(f) => Some((*f, i)),
                DepNode::Doc(_) => None,
            })
            .collect(),
        None => FxHashMap::default(),
    };

    let mut fired: FxHashSet<(Sym, NodeId)> = FxHashSet::default();
    loop {
        let mut pending: Vec<(Sym, NodeId)> = sys
            .function_nodes()
            .into_iter()
            .filter(|occ| !fired.contains(occ))
            .collect();
        if pending.is_empty() || stats.fired >= max_fired {
            return Ok(stats);
        }
        pending.sort_by_key(|&(d, n)| {
            let f = sys
                .doc(d)
                .map(|t| t.marking(n))
                .and_then(|m| match m {
                    Marking::Func(f) => Some(f),
                    _ => None,
                });
            (f.and_then(|f| rank.get(&f).copied()).unwrap_or(usize::MAX), d, n)
        });
        for (d, n) in pending {
            if stats.fired >= max_fired {
                return Ok(stats);
            }
            if !sys.doc(d).map(|t| t.is_alive(n)).unwrap_or(false) {
                fired.insert((d, n)); // merged away; its twin carries the data
                continue;
            }
            let outcome = invoke_node(sys, d, n)?;
            fired.insert((d, n));
            stats.fired += 1;
            if outcome.changed {
                stats.productive += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, EngineConfig};
    use crate::sym::Sym;

    fn tc_system() -> System {
        let mut sys = System::new();
        sys.add_document_text(
            "d0",
            r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, t{from{"3"},to{"4"}}}"#,
        )
        .unwrap();
        sys.add_document_text("d1", "r{@g,@f}").unwrap();
        sys.add_service_text("g", "t{from{$x},to{$y}} :- d0/r{t{from{$x},to{$y}}}")
            .unwrap();
        sys.add_service_text(
            "f",
            "t{from{$x},to{$y}} :- d1/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
        )
        .unwrap();
        sys
    }

    fn count_tuples(sys: &System) -> usize {
        let d1 = sys.doc(Sym::intern("d1")).unwrap();
        d1.children(d1.root())
            .iter()
            .filter(|&&n| d1.marking(n) == Marking::label("t"))
            .count()
    }

    #[test]
    fn fire_once_loses_transitive_closure() {
        // §4: "the fire-once semantics would not compute the transitive
        // closure. (The recursive rule will not be evaluated.)"
        let mut fire_once = tc_system();
        let stats = run_fire_once(&mut fire_once, 10_000).unwrap();
        assert!(!stats.topological); // recursive system is cyclic
        let mut positive = tc_system();
        run(&mut positive, &EngineConfig::default()).unwrap();
        let fo = count_tuples(&fire_once);
        let full = count_tuples(&positive);
        assert_eq!(full, 6);
        assert!(fo < full, "fire-once derived {fo}, positive {full}");
        // Fire-once derives a subset (it is still sound).
        assert!(fire_once.subsumed_by(&positive));
    }

    #[test]
    fn fire_once_coincides_on_acyclic_systems() {
        let build = || {
            let mut sys = System::new();
            sys.add_document_text("base", r#"r{v{"1"},v{"2"}}"#).unwrap();
            sys.add_document_text("mid", "m{@copy}").unwrap();
            sys.add_document_text("top", "t{@wrap}").unwrap();
            sys.add_service_text("copy", "v{$x} :- base/r{v{$x}}").unwrap();
            sys.add_service_text("wrap", "w{$x} :- mid/m{v{$x}}").unwrap();
            sys
        };
        let mut fo = build();
        let stats = run_fire_once(&mut fo, 10_000).unwrap();
        assert!(stats.topological);
        let mut pos = build();
        run(&mut pos, &EngineConfig::default()).unwrap();
        assert!(
            fo.equivalent_to(&pos),
            "fire-once != positive on acyclic system"
        );
        // And each call fired exactly once.
        assert_eq!(stats.fired, 2);
    }

    #[test]
    fn calls_in_results_also_fire_once() {
        // f produces a call to h; h produces data. Both fire once.
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "mid{@h} :-").unwrap();
        sys.add_service_text("h", r#"leaf{"x"} :-"#).unwrap();
        let stats = run_fire_once(&mut sys, 10_000).unwrap();
        assert_eq!(stats.fired, 2);
        let d = sys.doc(Sym::intern("d")).unwrap();
        let expected =
            crate::parse::parse_tree(r#"a{@f, mid{@h, leaf{"x"}}}"#).unwrap();
        assert!(crate::subsume::equivalent(d, &expected));
    }

    #[test]
    fn fire_once_terminates_on_example_2_1_style_growth() {
        // Under positive semantics Example 2.1 never terminates; under
        // fire-once each fresh f fires once, and the budget caps the
        // cascade of newly created calls.
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "a{@f} :-").unwrap();
        let stats = run_fire_once(&mut sys, 20).unwrap();
        assert_eq!(stats.fired, 20); // budget-capped: fresh calls keep coming
    }
}
