//! Tree subsumption (Definition 2.2) and equivalence.
//!
//! `d1 ⊆ d2` iff there is a mapping `h` from the nodes of `d1` to those of
//! `d2` that sends root to root, preserves the parent-child relation, and
//! preserves markings. Because `h` need not be injective, subsumption
//! coincides with *tree simulation*: a node `u` embeds below `v` iff their
//! markings agree and every child of `u` embeds below some child of `v`.
//! This gives the PTIME bound of Proposition 2.1 (3) via the simulation
//! construction the paper cites (Henzinger–Henzinger–Kopke).

use crate::sym::FxHashMap;
use crate::tree::{NodeId, Tree};
use std::cmp::Ordering;

/// Memoized subsumption checker. Entries are keyed by tree identity
/// ([`Tree::id`]) alongside node ids, so one memo may be shared across
/// any number of tree pairs — e.g. checking every tree of a result
/// forest against the same document's children during an invocation.
///
/// Memo entries are valid as long as the compared subtrees do not change;
/// [`mod@crate::reduce`] guarantees this by working in post-order, and
/// grafting preserves it because a graft only appends *new* children
/// under the graft point.
pub struct SubMemo {
    memo: FxHashMap<(TreeNode, TreeNode), bool>,
}

/// A node addressed across trees: `(tree id, node id)`.
type TreeNode = (u64, NodeId);

impl SubMemo {
    /// Fresh, empty memo.
    pub fn new() -> SubMemo {
        SubMemo {
            memo: FxHashMap::default(),
        }
    }

    /// Does the subtree of `a` at `na` embed into the subtree of `b` at
    /// `nb` (i.e. `a|na ⊆ b|nb`)?
    pub fn subsumed_at(&mut self, a: &Tree, na: NodeId, b: &Tree, nb: NodeId) -> bool {
        let key = ((a.id(), na), (b.id(), nb));
        if let Some(&r) = self.memo.get(&key) {
            return r;
        }
        let result = if a.marking(na) != b.marking(nb) {
            false
        } else {
            a.children(na).iter().all(|&ca| {
                // A child can only embed below a sibling with the same
                // marking, so narrow the candidate set first: probe the
                // child-label index when `b` has one built, otherwise
                // scan-filter by marking. Either way the recursion never
                // visits a pair it would reject on markings alone.
                let m = a.marking(ca);
                match b.indexed_children_if_built(nb, m) {
                    Some(cbs) => cbs.iter().any(|&cb| self.subsumed_at(a, ca, b, cb)),
                    None => b
                        .children(nb)
                        .iter()
                        .filter(|&&cb| b.marking(cb) == m)
                        .any(|&cb| self.subsumed_at(a, ca, b, cb)),
                }
            })
        };
        self.memo.insert(key, result);
        result
    }

    /// Number of memoized node pairs (useful for complexity experiments).
    pub fn pairs_explored(&self) -> usize {
        self.memo.len()
    }
}

impl Default for SubMemo {
    fn default() -> Self {
        SubMemo::new()
    }
}

/// `a ⊆ b`: the whole tree `a` is subsumed by `b`.
pub fn subsumed(a: &Tree, b: &Tree) -> bool {
    SubMemo::new().subsumed_at(a, a.root(), b, b.root())
}

/// `a ≡ b`: mutual subsumption (the paper's document equivalence).
pub fn equivalent(a: &Tree, b: &Tree) -> bool {
    subsumed(a, b) && subsumed(b, a)
}

/// Compare two trees under the subsumption preorder.
///
/// Returns `Some(Ordering::Equal)` for equivalent trees,
/// `Some(Less)`/`Some(Greater)` for strict subsumption, and `None` for
/// incomparable trees.
pub fn compare(a: &Tree, b: &Tree) -> Option<Ordering> {
    let ab = subsumed(a, b);
    let ba = subsumed(b, a);
    match (ab, ba) {
        (true, true) => Some(Ordering::Equal),
        (true, false) => Some(Ordering::Less),
        (false, true) => Some(Ordering::Greater),
        (false, false) => None,
    }
}

/// Subsumption between two subtrees *of the same tree* (used by in-place
/// reduction for sibling pruning).
pub fn subsumed_within(t: &Tree, x: NodeId, y: NodeId, memo: &mut SubMemo) -> bool {
    memo.subsumed_at(t, x, t, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;

    fn t(s: &str) -> Tree {
        parse_tree(s).unwrap()
    }

    #[test]
    fn reflexive() {
        let a = t("a{b{c,c},b{c,d,d}}");
        assert!(subsumed(&a, &a));
    }

    #[test]
    fn paper_example_b_cc_into_b_cdd() {
        // The paper: a{b{c,c},b{c,d,d}} is not reduced since b{c,c} ⊆ b{c,d,d}.
        assert!(subsumed(&t("b{c,c}"), &t("b{c,d,d}")));
        assert!(!subsumed(&t("b{c,d,d}"), &t("b{c,c}")));
    }

    #[test]
    fn non_injective_mapping_allowed() {
        // Two c-children may map onto the single c-child.
        assert!(subsumed(&t("a{c,c}"), &t("a{c}")));
        assert!(equivalent(&t("a{c,c}"), &t("a{c}")));
    }

    #[test]
    fn markings_must_match() {
        assert!(!subsumed(&t("a"), &t("b")));
        assert!(!subsumed(&t(r#"a{"1"}"#), &t("a{x}")));
        // Function names are compared by name, not semantics (§2.1 remark).
        assert!(!subsumed(&t(r#"a{@f{"5"}}"#), &t(r#"a{@g{"5"}}"#)));
        assert!(subsumed(&t(r#"a{@f{"5"}}"#), &t(r#"a{@f{"5"}}"#)));
    }

    #[test]
    fn deeper_into_shallower_fails() {
        assert!(!subsumed(&t("a{b{c}}"), &t("a{b}")));
        assert!(subsumed(&t("a{b}"), &t("a{b{c}}")));
    }

    #[test]
    fn compare_orderings() {
        assert_eq!(compare(&t("a{b}"), &t("a{b{c}}")), Some(Ordering::Less));
        assert_eq!(compare(&t("a{b{c}}"), &t("a{b}")), Some(Ordering::Greater));
        assert_eq!(compare(&t("a{c,c}"), &t("a{c}")), Some(Ordering::Equal));
        assert_eq!(compare(&t("a{b}"), &t("a{c}")), None);
    }

    #[test]
    fn transitivity_spot_check() {
        let x = t("a{b}");
        let y = t("a{b,c}");
        let z = t("a{b,c,d{e}}");
        assert!(subsumed(&x, &y) && subsumed(&y, &z) && subsumed(&x, &z));
    }

    #[test]
    fn memo_is_polynomial() {
        // A pathological wide tree: memo size stays <= |T1|*|T2|.
        let mut s = String::from("a{");
        s.push_str(&vec!["b{c,d}"; 30].join(","));
        s.push('}');
        let big = t(&s);
        let mut memo = SubMemo::new();
        assert!(memo.subsumed_at(&big, big.root(), &big, big.root()));
        assert!(memo.pairs_explored() <= big.node_count() * big.node_count());
    }
}
