//! Monotone AXML systems (Definition 2.3): named documents plus the
//! services their function nodes call.

use crate::error::{AxmlError, Result};
use crate::query::parse_query;
use crate::query::Query;
use crate::reduce::{canonical_key, reduce_in_place, CanonKey};
use crate::service::{BlackBoxService, QueryService, ServiceRef};
use crate::subsume::subsumed;
use crate::sym::{FxHashMap, Sym};
use crate::tree::{Marking, Tree};
use std::sync::Arc;

/// The reserved document name `input` (call parameters).
pub fn input_sym() -> Sym {
    Sym::intern("input")
}

/// The reserved document name `context` (the call's parent subtree).
pub fn context_sym() -> Sym {
    Sym::intern("context")
}

/// A monotone AXML system `(D, F, I)`: the named documents `I`, the
/// function names `F`, and their service definitions.
///
/// ```
/// use axml_core::system::System;
/// use axml_core::Sym;
///
/// let mut sys = System::new();
/// sys.add_document_text("store", r#"catalog{cd{title{"Kind of Blue"}}, @reviews}"#)?;
/// sys.add_service_text("reviews", "review{$t} :- store/catalog{cd{title{$t}}}")?;
///
/// // One live function node: the @reviews call in `store`.
/// let calls = sys.function_nodes();
/// assert_eq!(calls.len(), 1);
/// assert_eq!(calls[0].0, Sym::intern("store"));
/// assert_eq!(sys.doc_names(), [Sym::intern("store")]);
/// # Ok::<(), axml_core::AxmlError>(())
/// ```
#[derive(Clone, Default)]
pub struct System {
    doc_order: Vec<Sym>,
    docs: FxHashMap<Sym, Tree>,
    service_order: Vec<Sym>,
    services: FxHashMap<Sym, ServiceRef>,
}

impl System {
    /// Empty system.
    pub fn new() -> System {
        System::default()
    }

    /// Add a document. The tree is reduced on entry (the paper identifies
    /// documents with their reduced representatives).
    pub fn add_document(&mut self, name: &str, mut tree: Tree) -> Result<()> {
        let name = Sym::intern(name);
        if name == input_sym() || name == context_sym() {
            return Err(AxmlError::ReservedDocumentName(name));
        }
        if self.docs.contains_key(&name) {
            return Err(AxmlError::DuplicateDocument(name));
        }
        tree.validate_document_root()?;
        reduce_in_place(&mut tree);
        self.doc_order.push(name);
        self.docs.insert(name, tree);
        Ok(())
    }

    /// Parse and add a document in compact syntax.
    pub fn add_document_text(&mut self, name: &str, src: &str) -> Result<()> {
        self.add_document(name, crate::parse::parse_document(src)?)
    }

    /// Register a positive service defined by a query.
    pub fn add_service(&mut self, name: &str, query: Query) -> Result<()> {
        self.add_service_ref(name, Arc::new(QueryService::new(query)))
    }

    /// Parse a query and register it as a positive service.
    pub fn add_service_text(&mut self, name: &str, query_src: &str) -> Result<()> {
        self.add_service(name, parse_query(query_src)?)
    }

    /// Register a black-box monotone service.
    pub fn add_black_box(&mut self, name: &str, svc: BlackBoxService) -> Result<()> {
        self.add_service_ref(name, Arc::new(svc))
    }

    /// Register any service implementation.
    pub fn add_service_ref(&mut self, name: &str, svc: ServiceRef) -> Result<()> {
        let name = Sym::intern(name);
        if self.services.contains_key(&name) {
            return Err(AxmlError::DuplicateService(name));
        }
        self.service_order.push(name);
        self.services.insert(name, svc);
        Ok(())
    }

    /// Document names, in insertion order.
    pub fn doc_names(&self) -> &[Sym] {
        &self.doc_order
    }

    /// Service (function) names, in insertion order.
    pub fn service_names(&self) -> &[Sym] {
        &self.service_order
    }

    /// Fetch a document.
    pub fn doc(&self, name: Sym) -> Option<&Tree> {
        self.docs.get(&name)
    }

    /// Fetch a document mutably (used by the engine).
    pub fn doc_mut(&mut self, name: Sym) -> Option<&mut Tree> {
        self.docs.get_mut(&name)
    }

    /// A document's mutation counter (see [`Tree::mutation_count`]):
    /// strictly increases with every graft that survives reduction, so
    /// callers can cheaply detect "has this document changed since I
    /// last looked?" without diffing trees. Deterministic run-to-run
    /// (unlike the MVCC stamp [`Tree::version`]), so it is safe to
    /// report on the wire and in trace events.
    pub fn doc_version(&self, name: Sym) -> Option<u64> {
        self.docs.get(&name).map(Tree::mutation_count)
    }

    /// A monotone version for the whole system: the sum of all document
    /// mutation counts. Any rewriting step strictly increases it;
    /// equality of two observations means no document changed in
    /// between. Deterministic run-to-run, unlike the per-document MVCC
    /// stamps ([`Tree::version`]).
    pub fn version(&self) -> u64 {
        self.docs.values().map(Tree::mutation_count).sum()
    }

    /// Fetch a service.
    pub fn service(&self, name: Sym) -> Option<&ServiceRef> {
        self.services.get(&name)
    }

    /// The defining query of service `name`, if positive.
    pub fn service_query(&self, name: Sym) -> Option<&Query> {
        self.services.get(&name).and_then(|s| s.query())
    }

    /// Check well-formedness: every function name occurring in a document
    /// or in a positive service definition has a registered service, and
    /// every document name referenced by a positive service is either a
    /// stored document or reserved.
    pub fn validate(&self) -> Result<()> {
        for name in &self.doc_order {
            let t = &self.docs[name];
            for n in t.iter_live(t.root()) {
                if let Marking::Func(f) = t.marking(n) {
                    if !self.services.contains_key(&f) {
                        return Err(AxmlError::UnknownFunction(f));
                    }
                }
            }
        }
        for name in &self.service_order {
            if let Some(q) = self.services[name].query() {
                for f in q.function_names() {
                    if !self.services.contains_key(&f) {
                        return Err(AxmlError::UnknownFunction(f));
                    }
                }
                for d in q.doc_names() {
                    if d != input_sym() && d != context_sym() && !self.docs.contains_key(&d) {
                        return Err(AxmlError::UnknownDocument(d));
                    }
                }
            }
        }
        Ok(())
    }

    /// Is every service positively defined (a query)?
    pub fn is_positive(&self) -> bool {
        self.service_order
            .iter()
            .all(|s| self.services[s].query().is_some())
    }

    /// Is this a *simple* positive system — every service a query with no
    /// tree variables (§3.2)? Such systems have regular semantics
    /// (Lemma 3.2) and decidable termination (Thm 3.3).
    pub fn is_simple(&self) -> bool {
        self.service_order
            .iter()
            .all(|s| self.services[s].query().map(Query::is_simple).unwrap_or(false))
    }

    /// First service whose definition breaks simplicity, if any.
    pub fn non_simple_witness(&self) -> Option<Sym> {
        self.service_order
            .iter()
            .copied()
            .find(|s| !self.services[s].query().map(Query::is_simple).unwrap_or(false))
    }

    /// Total live nodes across documents.
    pub fn node_count(&self) -> usize {
        self.doc_order
            .iter()
            .map(|d| self.docs[d].node_count())
            .sum()
    }

    /// All live function nodes across documents, as (document, node) pairs
    /// in deterministic (insertion, preorder) order.
    pub fn function_nodes(&self) -> Vec<(Sym, crate::tree::NodeId)> {
        let mut out = Vec::new();
        for d in &self.doc_order {
            for n in self.docs[d].function_nodes() {
                out.push((*d, n));
            }
        }
        out
    }

    /// Canonical key of the whole system: the sorted list of
    /// (name, canonical document) pairs. Two runs of the engine reached
    /// equivalent systems iff their keys agree — the confluence check of
    /// Theorem 2.1.
    pub fn canonical_key(&self) -> Vec<(Sym, CanonKey)> {
        let mut keys: Vec<(Sym, CanonKey)> = self
            .doc_order
            .iter()
            .map(|d| (*d, canonical_key(&self.docs[d])))
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Pointwise document subsumption `self ⊆ other` (documents compared
    /// by name).
    pub fn subsumed_by(&self, other: &System) -> bool {
        self.doc_order.iter().all(|d| match other.docs.get(d) {
            Some(o) => subsumed(&self.docs[d], o),
            None => false,
        })
    }

    /// Mutual pointwise subsumption.
    pub fn equivalent_to(&self, other: &System) -> bool {
        self.subsumed_by(other) && other.subsumed_by(self)
    }

    /// Take an O(1) MVCC snapshot of the system's current state.
    ///
    /// `System: Clone` is already cheap — every [`Tree`] clone is two
    /// `Arc` bumps (see the copy-on-write notes on [`Tree`]) — and the
    /// snapshot wraps that clone in an `Arc` so it can be handed to any
    /// number of concurrent readers (server query/stats frames, engine
    /// workers, p2p peers) for one more pointer bump each. The snapshot
    /// is fully immutable: writers that keep mutating the original
    /// diverge via path copying and never disturb it, and every
    /// document keeps its `(id, version)` handle so snapshot-side
    /// evaluation shares match/program caches with the live system.
    pub fn snapshot(&self) -> SystemSnapshot {
        SystemSnapshot(Arc::new(self.clone()))
    }
}

/// An immutable, shareable snapshot of a [`System`] — the MVCC handle
/// readers evaluate against while a writer commits rounds.
///
/// Dereferences to [`System`], so every read-only API (queries,
/// canonical keys, stats probes) works on a snapshot unchanged.
/// Cloning a snapshot is one `Arc` bump.
#[derive(Clone, Debug)]
pub struct SystemSnapshot(Arc<System>);

impl std::ops::Deref for SystemSnapshot {
    type Target = System;

    fn deref(&self) -> &System {
        &self.0
    }
}

impl SystemSnapshot {
    /// The snapshot's state as a plain shared reference (convenience for
    /// APIs that want an explicit `&System`).
    pub fn system(&self) -> &System {
        &self.0
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "System {{")?;
        for d in &self.doc_order {
            writeln!(f, "  {d}/{}", self.docs[d])?;
        }
        for s in &self.service_order {
            writeln!(f, "  {s} : {}", self.services[s].describe())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;

    fn example_3_2() -> System {
        // I(d0) = r{t{1,2},t{2,3},t{3,4}}  (encoded with from/to)
        // I(d1) = r{g,f}
        // g : t{x,y} :- d0/r{t{x,y}}
        // f : t{x,y} :- d1/r{t{x,z},t{z,y}}
        let mut sys = System::new();
        sys.add_document_text(
            "d0",
            r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, t{from{"3"},to{"4"}}}"#,
        )
        .unwrap();
        sys.add_document_text("d1", "r{@g,@f}").unwrap();
        sys.add_service_text(
            "g",
            "t{from{$x},to{$y}} :- d0/r{t{from{$x},to{$y}}}",
        )
        .unwrap();
        sys.add_service_text(
            "f",
            "t{from{$x},to{$y}} :- d1/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
        )
        .unwrap();
        sys
    }

    #[test]
    fn build_and_validate_example() {
        let sys = example_3_2();
        sys.validate().unwrap();
        assert!(sys.is_positive());
        assert!(sys.is_simple());
        assert_eq!(sys.function_nodes().len(), 2);
    }

    #[test]
    fn reserved_names_rejected() {
        let mut sys = System::new();
        let t = parse_tree("a").unwrap();
        assert!(matches!(
            sys.add_document("input", t.clone()),
            Err(AxmlError::ReservedDocumentName(_))
        ));
        assert!(matches!(
            sys.add_document("context", t),
            Err(AxmlError::ReservedDocumentName(_))
        ));
    }

    #[test]
    fn duplicates_rejected() {
        let mut sys = System::new();
        sys.add_document_text("d", "a").unwrap();
        assert!(matches!(
            sys.add_document_text("d", "b"),
            Err(AxmlError::DuplicateDocument(_))
        ));
        sys.add_service_text("f", "a :-").unwrap();
        assert!(matches!(
            sys.add_service_text("f", "b :-"),
            Err(AxmlError::DuplicateService(_))
        ));
    }

    #[test]
    fn validate_catches_unknown_function() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@nosvc}").unwrap();
        assert!(matches!(
            sys.validate(),
            Err(AxmlError::UnknownFunction(_))
        ));
    }

    #[test]
    fn validate_catches_unknown_document_in_query() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "r{$x} :- nodoc/a{$x}").unwrap();
        assert!(matches!(
            sys.validate(),
            Err(AxmlError::UnknownDocument(_))
        ));
        // input/context are always allowed.
        let mut sys2 = System::new();
        sys2.add_document_text("d", "a{@f}").unwrap();
        sys2.add_service_text("f", "r{$x} :- input/input{$x}, context/a{$x}")
            .unwrap();
        sys2.validate().unwrap();
    }

    #[test]
    fn documents_reduced_on_entry() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{b{c,c},b{c,d,d}}").unwrap();
        assert_eq!(sys.doc(Sym::intern("d")).unwrap().node_count(), 4);
    }

    #[test]
    fn simplicity_detection() {
        let mut sys = example_3_2();
        assert!(sys.is_simple());
        sys.add_service_text("h", "a{a{#X}} :- context/a{a{#X}}")
            .unwrap();
        assert!(!sys.is_simple());
        assert_eq!(sys.non_simple_witness(), Some(Sym::intern("h")));
    }

    #[test]
    fn versions_track_rewriting_steps() {
        let mut sys = example_3_2();
        let d1 = Sym::intern("d1");
        let before_doc = sys.doc_version(d1).unwrap();
        let before_sys = sys.version();
        let (d, n) = sys
            .function_nodes()
            .into_iter()
            .find(|&(d, n)| {
                d == d1 && sys.doc(d).unwrap().marking(n) == Marking::func("g")
            })
            .unwrap();
        crate::invoke::invoke_node(&mut sys, d, n).unwrap();
        assert!(sys.doc_version(d1).unwrap() > before_doc);
        assert!(sys.version() > before_sys);
        // A no-op re-invocation leaves every version unchanged.
        let stable = sys.version();
        crate::invoke::invoke_node(&mut sys, d, n).unwrap();
        assert_eq!(sys.version(), stable);
    }

    #[test]
    fn snapshot_is_immutable_while_writer_advances() {
        let mut sys = example_3_2();
        let snap = sys.snapshot();
        let key0 = snap.canonical_key();
        let v0 = snap.version();
        let calls = sys.function_nodes();
        for (d, n) in calls {
            crate::invoke::invoke_node(&mut sys, d, n).unwrap();
        }
        assert!(sys.version() > v0, "the writer moved on");
        assert_eq!(snap.version(), v0, "the snapshot did not");
        assert_eq!(snap.canonical_key(), key0);
        // Snapshots are cheap to fan out and agree with their source.
        let again = snap.clone();
        assert_eq!(again.canonical_key(), key0);
        assert_eq!(sys.snapshot().canonical_key(), sys.canonical_key());
    }

    #[test]
    fn canonical_key_detects_equivalence() {
        let a = example_3_2();
        let mut b = example_3_2();
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert!(a.equivalent_to(&b));
        let d1 = Sym::intern("d1");
        let extra = parse_tree("x").unwrap();
        let doc = b.doc_mut(d1).unwrap();
        let root = doc.root();
        doc.graft(root, &extra).unwrap();
        assert_ne!(a.canonical_key(), b.canonical_key());
        assert!(a.subsumed_by(&b));
        assert!(!b.subsumed_by(&a));
    }
}
