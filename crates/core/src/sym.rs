//! String interning and a fast, dependency-free hasher.
//!
//! Every label, function name, and atomic value in an AXML tree is an
//! interned symbol ([`Sym`]). Interning makes marking comparison an integer
//! comparison, which the subsumption and reduction algorithms (run millions
//! of times per rewriting) depend on.
//!
//! Interned strings live for the lifetime of the process: the interner
//! leaks each distinct string once so that [`Sym::as_str`] can hand out
//! `&'static str` without locking. The set of distinct markings in an AXML
//! workload is small (labels, service names, atomic values of the system),
//! so this is bounded in practice.
//!
//! The interner is safe to use from any number of threads — the parallel
//! engine's workers and the p2p peer threads intern and resolve symbols
//! concurrently. Reads take a shared `RwLock` guard; an insert upgrades
//! to the write lock and re-checks under it (double-checked), so two
//! threads racing to intern the same string always agree on one id. The
//! lock is the in-repo `parking_lot` shim, which recovers rather than
//! propagates poison, so a panicking worker can never wedge the interner
//! for the rest of the process.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::OnceLock;

/// An interned string. Cheap to copy, hash, and compare.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Sym {
    /// Intern `s`, returning its symbol. Idempotent, and safe to call
    /// from concurrent threads: racing interns of the same string agree
    /// on the same id (the insert re-checks under the write lock).
    pub fn intern(s: &str) -> Sym {
        let int = interner();
        if let Some(&id) = int.read().map.get(s) {
            return Sym(id);
        }
        let mut w = int.write();
        if let Some(&id) = w.map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = w.strings.len() as u32;
        w.strings.push(leaked);
        w.map.insert(leaked, id);
        Sym(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().strings[self.0 as usize]
    }

    /// The raw interner index (stable for the process lifetime).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

/// A fast multiply-xor hasher in the style of `rustc-hash`'s FxHasher,
/// written in-repo to stay within the sanctioned dependency set.
///
/// Not HashDoS-resistant; AXML workloads hash internal ids and interned
/// symbols, not attacker-controlled keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Sym::intern("directory");
        let b = Sym::intern("directory");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "directory");
    }

    #[test]
    fn distinct_strings_distinct_syms() {
        assert_ne!(Sym::intern("a"), Sym::intern("b"));
    }

    #[test]
    fn display_and_debug() {
        let s = Sym::intern("rating");
        assert_eq!(format!("{s}"), "rating");
        assert_eq!(format!("{s:?}"), "Sym(\"rating\")");
    }

    #[test]
    fn fxhash_differs_on_inputs() {
        let mut h1 = FxHasher::default();
        h1.write_u64(1);
        let mut h2 = FxHasher::default();
        h2.write_u64(2);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn fxhash_handles_byte_remainders() {
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefghi"); // 8 + 1 bytes
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefghj");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn concurrent_intern_stress() {
        // Many threads intern overlapping string sets while others
        // resolve: every thread must observe one consistent id per
        // string and `as_str` must round-trip, with no panic or
        // deadlock. (The worker pool and p2p peers do exactly this.)
        const THREADS: usize = 8;
        const STRINGS: usize = 200;
        let ids: Vec<Vec<(String, Sym)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    s.spawn(move || {
                        let mut out = Vec::with_capacity(STRINGS);
                        for i in 0..STRINGS {
                            // Offset start so threads collide on a
                            // shifting frontier of brand-new strings.
                            let i = (i + t * 31) % STRINGS;
                            let key = format!("stress-sym-{i}");
                            let sym = Sym::intern(&key);
                            assert_eq!(sym.as_str(), key);
                            assert_eq!(Sym::intern(&key), sym);
                            out.push((key, sym));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut canon: HashMap<String, Sym> = HashMap::new();
        for thread_ids in ids {
            for (key, sym) in thread_ids {
                assert_eq!(*canon.entry(key).or_insert(sym), sym);
            }
        }
        assert_eq!(canon.len(), STRINGS);
    }

    #[test]
    fn sym_ordering_is_stable() {
        let a = Sym::intern("zzz-order-1");
        let b = Sym::intern("zzz-order-2");
        // Interner order, not lexicographic: first interned sorts first.
        assert!(a < b);
    }
}
