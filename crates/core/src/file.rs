//! A textual file format for AXML systems — the compact tree syntax
//! plus `doc`/`service` declarations. This is the persistence and
//! exchange format used by the `axml` CLI and the examples.
//!
//! ```text
//! # the jazz portal (comments run to end of line)
//! doc dir = directory{
//!     cd{title{"Body and Soul"}, @GetRating{"Body and Soul"}}
//! }
//!
//! doc ratings = db{entry{name{"Body and Soul"}, stars{"****"}}}
//!
//! service GetRating =
//!     rating{$s} :- input/input{$n}, ratings/db{entry{name{$n}, stars{$s}}}
//! ```
//!
//! Declarations are separated by blank-line-insensitive scanning: a
//! declaration ends where the next `doc`/`service` keyword starts at
//! brace depth zero.

use crate::error::{AxmlError, Result};
use crate::system::System;
use std::fmt::Write as _;

/// Serialize a system to the declaration format. Positive services are
/// written out; black-box services cannot be serialized and produce an
/// error naming the offender.
pub fn to_text(sys: &System) -> Result<String> {
    let mut out = String::new();
    for &d in sys.doc_names() {
        let tree = sys.doc(d).expect("stored");
        let _ = writeln!(out, "doc {d} = {tree}");
    }
    for &f in sys.service_names() {
        match sys.service_query(f) {
            Some(q) => {
                let _ = writeln!(out, "service {f} = {q}");
            }
            None => return Err(AxmlError::NotSimple(f)),
        }
    }
    Ok(out)
}

/// Strip `#` comments (outside string literals).
fn strip_comments(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    for line in src.lines() {
        let mut in_str = false;
        let mut cut = line.len();
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' if in_str => i += 1,
                b'"' => in_str = !in_str,
                b'#' if !in_str => {
                    cut = i;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        out.push_str(&line[..cut]);
        out.push('\n');
    }
    out
}

/// Parse the declaration format into a system.
pub fn from_text(src: &str) -> Result<System> {
    let src = strip_comments(src);
    let mut sys = System::new();
    // Tokenize into declarations: find `doc`/`service` keywords at
    // depth 0.
    let bytes = src.as_bytes();
    let mut decls: Vec<(usize, usize)> = Vec::new(); // (start, end)
    let mut depth = 0i32;
    let mut in_str = false;
    let mut i = 0;
    let mut starts: Vec<usize> = Vec::new();
    while i < bytes.len() {
        let b = bytes[i];
        if in_str {
            if b == b'\\' {
                i += 1;
            } else if b == b'"' {
                in_str = false;
            }
        } else {
            match b {
                b'"' => in_str = true,
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ if depth == 0 => {
                    let word_start = i == 0 || bytes[i - 1].is_ascii_whitespace();
                    if word_start
                        && (src[i..].starts_with("doc ")
                            || src[i..].starts_with("doc\t")
                            || src[i..].starts_with("service ")
                            || src[i..].starts_with("service\t"))
                    {
                        starts.push(i);
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    for (k, &s) in starts.iter().enumerate() {
        let e = starts.get(k + 1).copied().unwrap_or(src.len());
        decls.push((s, e));
    }
    // Anything before the first declaration must be whitespace.
    let head_end = starts.first().copied().unwrap_or(src.len());
    if !src[..head_end].trim().is_empty() {
        return Err(AxmlError::Parse {
            pos: 0,
            msg: "expected `doc` or `service` declaration".into(),
        });
    }

    for (s, e) in decls {
        let decl = src[s..e].trim();
        let (kw, rest) = decl.split_at(if decl.starts_with("doc") { 3 } else { 7 });
        let rest = rest.trim_start();
        let Some(eq) = rest.find('=') else {
            return Err(AxmlError::Parse {
                pos: s,
                msg: format!("missing '=' in {kw} declaration"),
            });
        };
        let name = rest[..eq].trim();
        let body = rest[eq + 1..].trim();
        match kw {
            "doc" => sys.add_document_text(name, body)?,
            "service" => sys.add_service_text(name, body)?,
            _ => unreachable!("keyword match is exhaustive"),
        }
    }
    Ok(sys)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PORTAL: &str = r#"
        # the jazz portal
        doc dir = directory{
            cd{title{"Body and Soul"}, @GetRating{"Body and Soul"}}   # intensional
        }
        doc ratings = db{entry{name{"Body and Soul"}, stars{"****"}}}
        service GetRating =
            rating{$s} :- input/input{$n}, ratings/db{entry{name{$n}, stars{$s}}}
    "#;

    #[test]
    fn parse_portal_file() {
        let sys = from_text(PORTAL).unwrap();
        sys.validate().unwrap();
        assert_eq!(sys.doc_names().len(), 2);
        assert_eq!(sys.service_names().len(), 1);
    }

    #[test]
    fn roundtrip() {
        let sys = from_text(PORTAL).unwrap();
        let text = to_text(&sys).unwrap();
        let back = from_text(&text).unwrap();
        assert!(sys.equivalent_to(&back));
        assert_eq!(
            sys.service_query("GetRating".into()).unwrap().to_string(),
            back.service_query("GetRating".into()).unwrap().to_string()
        );
    }

    #[test]
    fn comments_do_not_break_strings() {
        let sys = from_text(r#"doc d = a{"has # inside"}"#).unwrap();
        let d = sys.doc("d".into()).unwrap();
        assert_eq!(d.to_string(), r#"a{"has # inside"}"#);
    }

    #[test]
    fn garbage_prefix_rejected() {
        assert!(from_text("nonsense doc d = a").is_err());
    }

    #[test]
    fn keywords_inside_trees_are_not_declarations() {
        // `doc` as a label inside a tree must not split the declaration.
        let sys = from_text("doc d = a{doc{service}}").unwrap();
        assert_eq!(sys.doc_names().len(), 1);
    }

    #[test]
    fn black_box_systems_cannot_serialize() {
        let mut sys = System::new();
        sys.add_document_text("d", "a").unwrap();
        sys.add_black_box(
            "bb",
            crate::service::BlackBoxService::constant("c", crate::forest::Forest::new()),
        )
        .unwrap();
        assert!(to_text(&sys).is_err());
    }

    #[test]
    fn run_loaded_system() {
        let mut sys = from_text(PORTAL).unwrap();
        let (status, _) =
            crate::engine::run(&mut sys, &crate::engine::EngineConfig::default()).unwrap();
        assert_eq!(status, crate::engine::RunStatus::Terminated);
        let dir = sys.doc("dir".into()).unwrap();
        assert!(dir.to_string().contains("rating"));
    }
}
