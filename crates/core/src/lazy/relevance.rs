//! Weak (PTIME) relevance analysis — §4's "Weaker properties".
//!
//! The exact q-unneeded / q-stability properties are undecidable in
//! general and NEXPTIME-hard for simple systems, so the paper proposes
//! *weak* counterparts that ignore service semantics and view calls as
//! monotone black boxes. They are **sound over-approximations**:
//!
//! * if a call is not *weakly relevant*, it is q-unneeded;
//! * *weak stability* (no weakly relevant call) implies q-stability.
//!
//! A call `v` is weakly relevant when fresh data appended as a sibling of
//! `v` (that is where invocation results land) could extend or multiply a
//! match of a goal pattern — i.e. some goal pattern prefix-embeds into
//! the document with a non-leaf pattern node landing on `v`'s parent —
//! or when `v` feeds such a call transitively through another service's
//! body. Goals start at the query's body atoms and propagate through the
//! bodies of (queries of) relevant services, including their `input`/
//! `context` atoms anchored at the relevant call sites. Function names
//! produced by relevant heads propagate too (their fresh calls will be
//! invoked by the lazy evaluator). Black-box services make everything
//! relevant — on the open Web we cannot see their definitions (§4).

use crate::pattern::{PItem, Pattern, PNodeId};
use crate::query::Query;
use crate::sym::{FxHashSet, Sym};
use crate::system::{context_sym, input_sym, System};
use crate::tree::{Marking, NodeId, Tree};

/// The result of a weak relevance analysis.
#[derive(Clone, Debug, Default)]
pub struct Relevance {
    /// Call occurrences that may contribute to the query.
    pub relevant_calls: FxHashSet<(Sym, NodeId)>,
    /// Function names that may contribute (including producible ones).
    pub relevant_functions: FxHashSet<Sym>,
    /// True when a black-box service forced the analysis to give up and
    /// mark everything relevant.
    pub gave_up: bool,
}

impl Relevance {
    /// Every call marked relevant — the analysis' over-approximation of
    /// the *needed* calls; its complement is guaranteed q-unneeded.
    pub fn is_relevant(&self, doc: Sym, node: NodeId) -> bool {
        self.relevant_calls.contains(&(doc, node))
    }

    /// The live calls of `sys` this analysis proves q-unneeded: every
    /// function node *not* in [`Relevance::relevant_calls`]. Sorted by
    /// document name then node id so explanations render
    /// deterministically (the provenance layer's `explain_answer`
    /// surfaces this list per answer).
    pub fn unneeded_calls(&self, sys: &System) -> Vec<(Sym, NodeId)> {
        let mut out: Vec<(Sym, NodeId)> = sys
            .function_nodes()
            .into_iter()
            .filter(|&(d, n)| !self.is_relevant(d, n))
            .collect();
        out.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()).then(a.1 .0.cmp(&b.1 .0)));
        out
    }
}

/// Can pattern item `it` match marking `m`?
fn item_compatible(it: &PItem, m: Marking) -> bool {
    match it {
        PItem::Const(c) => *c == m,
        PItem::LabelVar(_) => matches!(m, Marking::Label(_)),
        PItem::FuncVar(_) => matches!(m, Marking::Func(_)),
        PItem::ValueVar(_) => matches!(m, Marking::Value(_)),
        PItem::TreeVar(_) => true,
    }
}

/// Prefix-embedding pairs of `p` into `t`, starting from the given root
/// pairs: all (pattern node, tree node) pairs reachable by matching
/// parent-child steps with compatible items, *ignoring* whether the
/// pattern completes below. New sibling data at a tree node `n` matters
/// iff some pair `(pp, n)` exists with `pp` non-leaf.
fn prefix_pairs(
    p: &Pattern,
    t: &Tree,
    seeds: &[(PNodeId, NodeId)],
) -> Vec<(PNodeId, NodeId)> {
    let mut seen: FxHashSet<(PNodeId, NodeId)> = FxHashSet::default();
    let mut stack: Vec<(PNodeId, NodeId)> = Vec::new();
    for &(pp, tn) in seeds {
        if item_compatible(p.item(pp), t.marking(tn)) && seen.insert((pp, tn)) {
            stack.push((pp, tn));
        }
    }
    while let Some((pp, tn)) = stack.pop() {
        for &pc in p.children(pp) {
            for &tc in t.children(tn) {
                if item_compatible(p.item(pc), t.marking(tc)) && seen.insert((pc, tc)) {
                    stack.push((pc, tc));
                }
            }
        }
    }
    seen.into_iter().collect()
}

/// Mark calls made relevant by one goal pattern prefix-embedded from the
/// given seeds. Returns newly-relevant call occurrences.
fn relevant_from_goal(
    doc: Sym,
    p: &Pattern,
    t: &Tree,
    seeds: &[(PNodeId, NodeId)],
    out: &mut FxHashSet<(Sym, NodeId)>,
) -> bool {
    let mut changed = false;
    for (pp, tn) in prefix_pairs(p, t, seeds) {
        if p.children(pp).is_empty() {
            continue; // leaf pattern node: new children below tn cannot matter
        }
        for &c in t.children(tn) {
            if t.marking(c).is_func() && out.insert((doc, c)) {
                changed = true;
            }
        }
    }
    changed
}

/// Compute the weak relevance analysis for query `q` over `sys`.
pub fn weak_relevance(sys: &System, q: &Query) -> Relevance {
    let mut rel = Relevance::default();

    // A goal is (document, pattern, anchoring). Top-level query goals are
    // anchored at document roots.
    loop {
        let mut changed = false;

        // 1. Goals of the query itself.
        for atom in &q.body {
            if atom.doc == input_sym() || atom.doc == context_sym() {
                continue; // top-level queries have no call site
            }
            if let Some(t) = sys.doc(atom.doc) {
                let seeds = [(atom.pattern.root(), t.root())];
                changed |= relevant_from_goal(
                    atom.doc,
                    &atom.pattern,
                    t,
                    &seeds,
                    &mut rel.relevant_calls,
                );
            }
        }

        // 2. Relevant functions: names of relevant calls.
        let call_fns: Vec<Sym> = rel
            .relevant_calls
            .iter()
            .filter_map(|&(d, n)| {
                sys.doc(d).and_then(|t| {
                    if t.is_alive(n) {
                        match t.marking(n) {
                            Marking::Func(f) => Some(f),
                            _ => None,
                        }
                    } else {
                        None
                    }
                })
            })
            .collect();
        for f in call_fns {
            if rel.relevant_functions.insert(f) {
                changed = true;
            }
        }

        // 3. Propagate through relevant services' definitions.
        let fns: Vec<Sym> = rel.relevant_functions.iter().copied().collect();
        for f in fns {
            let Some(svc) = sys.service(f) else { continue };
            let Some(fq) = svc.query() else {
                // Black box: assume everything can matter.
                rel.gave_up = true;
                for (d, n) in sys.function_nodes() {
                    rel.relevant_calls.insert((d, n));
                }
                for &g in sys.service_names() {
                    rel.relevant_functions.insert(g);
                }
                return rel;
            };
            // 3a. Body atoms over stored documents become goals.
            for atom in &fq.body {
                if atom.doc != input_sym() && atom.doc != context_sym() {
                    if let Some(t) = sys.doc(atom.doc) {
                        let seeds = [(atom.pattern.root(), t.root())];
                        changed |= relevant_from_goal(
                            atom.doc,
                            &atom.pattern,
                            t,
                            &seeds,
                            &mut rel.relevant_calls,
                        );
                    }
                }
            }
            // 3b. input/context atoms are anchored at each relevant call
            // site of f.
            let sites: Vec<(Sym, NodeId)> = rel
                .relevant_calls
                .iter()
                .copied()
                .filter(|&(d, n)| {
                    sys.doc(d)
                        .map(|t| t.is_alive(n) && t.marking(n) == Marking::Func(f))
                        .unwrap_or(false)
                })
                .collect();
            for atom in &fq.body {
                if atom.doc == context_sym() {
                    for &(d, n) in &sites {
                        let t = sys.doc(d).expect("site checked");
                        if let Some(parent) = t.parent(n) {
                            let seeds = [(atom.pattern.root(), parent)];
                            changed |= relevant_from_goal(
                                d,
                                &atom.pattern,
                                t,
                                &seeds,
                                &mut rel.relevant_calls,
                            );
                        }
                    }
                } else if atom.doc == input_sym() {
                    // The virtual input root is labeled `input`; its
                    // children are the call's children. Seed the pattern's
                    // *children* at the call's children when the root item
                    // is input-compatible.
                    let root_ok = item_compatible(
                        atom.pattern.item(atom.pattern.root()),
                        Marking::Label(input_sym()),
                    );
                    if !root_ok {
                        continue;
                    }
                    for &(d, n) in &sites {
                        let t = sys.doc(d).expect("site checked");
                        let mut seeds: Vec<(PNodeId, NodeId)> = Vec::new();
                        for &pc in atom.pattern.children(atom.pattern.root()) {
                            for &tc in t.children(n) {
                                seeds.push((pc, tc));
                            }
                        }
                        // The call node itself: parameters may grow via
                        // nested calls whose results land under `n`.
                        if !atom.pattern.children(atom.pattern.root()).is_empty() {
                            for &tc in t.children(n) {
                                if t.marking(tc).is_func()
                                    && rel.relevant_calls.insert((d, tc))
                                {
                                    changed = true;
                                }
                            }
                        }
                        changed |= relevant_from_goal(
                            d,
                            &atom.pattern,
                            t,
                            &seeds,
                            &mut rel.relevant_calls,
                        );
                    }
                }
            }
            // 3c. Function names produced by the head become relevant
            // (their fresh calls will be fired by the lazy evaluator).
            for n in fq.head.node_ids() {
                match fq.head.item(n) {
                    PItem::Const(Marking::Func(g))
                        if rel.relevant_functions.insert(*g) => {
                            changed = true;
                        }
                    PItem::FuncVar(_) => {
                        for &g in sys.service_names() {
                            if rel.relevant_functions.insert(g) {
                                changed = true;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        // 3d. Head-producible function names in the *query's own* head.
        for n in q.head.node_ids() {
            if let PItem::Const(Marking::Func(g)) = q.head.item(n) {
                if rel.relevant_functions.insert(*g) {
                    changed = true;
                }
            }
        }

        if !changed {
            return rel;
        }
    }
}

/// Weak q-stability: no relevant call remains, so no invocation can
/// change the query's answer — the system is q-stable (§4: weak
/// stability implies stability).
pub fn weakly_stable(sys: &System, q: &Query) -> bool {
    weak_relevance(sys, q).relevant_calls.is_empty()
}

/// Are all the given calls weakly unneeded (hence q-unneeded)?
pub fn weakly_unneeded(sys: &System, q: &Query, calls: &[(Sym, NodeId)]) -> bool {
    let rel = weak_relevance(sys, q);
    calls.iter().all(|occ| !rel.relevant_calls.contains(occ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;

    /// The jazz portal: some calls matter for a rating query, others not.
    fn portal() -> System {
        let mut sys = System::new();
        sys.add_document_text(
            "dir",
            r#"directory{
                cd{title{"Body and Soul"}, singer{"Billie Holiday"},
                   @GetRating{"Body and Soul"}},
                cd{title{"Where or When"}, singer{"Peggy Lee"}, rating{"*****"}},
                news{@FreeMusicDB{type{"Jazz"}}}
            }"#,
        )
        .unwrap();
        sys.add_service_text("GetRating", r#"rating{"****"} :-"#).unwrap();
        sys.add_service_text("FreeMusicDB", r#"cd{title{"More"}} :-"#).unwrap();
        sys
    }

    #[test]
    fn irrelevant_branch_calls_are_unneeded() {
        // Query asks for ratings of cds: the FreeMusicDB call sits under
        // `news`, which the pattern never descends into.
        let q = parse_query("r{$x} :- dir/directory{cd{title{$x}, rating{$r}}}").unwrap();
        let sys = portal();
        let rel = weak_relevance(&sys, &q);
        let dir = Sym::intern("dir");
        let t = sys.doc(dir).unwrap();
        let mut names: Vec<&str> = rel
            .relevant_calls
            .iter()
            .map(|&(_, n)| t.marking(n).sym().as_str())
            .collect();
        names.sort_unstable();
        assert_eq!(names, vec!["GetRating"]);
        // FreeMusicDB is weakly unneeded.
        let fm = t
            .function_nodes()
            .into_iter()
            .find(|&n| t.marking(n) == Marking::func("FreeMusicDB"))
            .unwrap();
        assert!(weakly_unneeded(&sys, &q, &[(dir, fm)]));
        assert!(!weakly_stable(&sys, &q));
    }

    #[test]
    fn query_on_different_doc_is_weakly_stable() {
        let mut sys = portal();
        sys.add_document_text("other", r#"x{"1"}"#).unwrap();
        let q = parse_query("r{$v} :- other/x{$v}").unwrap();
        assert!(weakly_stable(&sys, &q));
    }

    #[test]
    fn leaf_level_pattern_does_not_need_sibling_growth() {
        // Pattern reaches `cd` as a leaf: nothing below cd is needed.
        let q = parse_query("r :- dir/directory{cd}").unwrap();
        assert!(weakly_stable(&portal(), &q));
    }

    #[test]
    fn transitive_relevance_through_service_bodies() {
        // q reads d_out, which is fed by f reading d_in, which contains g.
        let mut sys = System::new();
        sys.add_document_text("d_in", "r{v{@g}}").unwrap();
        sys.add_document_text("d_out", "out{@f}").unwrap();
        sys.add_service_text("g", r#"w{"1"} :-"#).unwrap();
        sys.add_service_text("f", "got{$x} :- d_in/r{v{w{$x}}}").unwrap();
        let q = parse_query("ans{$x} :- d_out/out{got{$x}}").unwrap();
        let rel = weak_relevance(&sys, &q);
        // Both f (directly) and g (transitively, feeding f's body) are
        // relevant.
        assert!(rel.relevant_functions.contains(&Sym::intern("f")));
        assert!(rel.relevant_functions.contains(&Sym::intern("g")));
        assert_eq!(rel.relevant_calls.len(), 2);
    }

    #[test]
    fn context_atoms_anchor_at_call_parents() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{b{@f, @inner}, c{@other}}").unwrap();
        sys.add_service_text("f", "got{$x} :- context/b{w{$x}}").unwrap();
        sys.add_service_text("inner", r#"w{"1"} :-"#).unwrap();
        sys.add_service_text("other", r#"z{"2"} :-"#).unwrap();
        let q = parse_query("ans{$x} :- d/a{b{got{$x}}}").unwrap();
        let rel = weak_relevance(&sys, &q);
        let t = sys.doc(Sym::intern("d")).unwrap();
        let mut names: Vec<&str> = rel
            .relevant_calls
            .iter()
            .map(|&(_, n)| t.marking(n).sym().as_str())
            .collect();
        names.sort_unstable();
        // `other` lives under c, unrelated to the context goal at b.
        assert_eq!(names, vec!["f", "inner"]);
    }

    #[test]
    fn black_box_forces_give_up() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{b{@bb}}").unwrap();
        sys.add_black_box(
            "bb",
            crate::service::BlackBoxService::constant("?", crate::forest::Forest::new()),
        )
        .unwrap();
        let q = parse_query("ans{$x} :- d/a{b{w{$x}}}").unwrap();
        let rel = weak_relevance(&sys, &q);
        assert!(rel.gave_up);
        assert_eq!(rel.relevant_calls.len(), 1);
    }

    #[test]
    fn soundness_on_tc_system() {
        // In Example 3.2, a query over d1 must keep both g and f relevant.
        let mut sys = System::new();
        sys.add_document_text("d0", r#"r{t{from{"1"},to{"2"}}}"#).unwrap();
        sys.add_document_text("d1", "r{@g,@f}").unwrap();
        sys.add_service_text("g", "t{from{$x},to{$y}} :- d0/r{t{from{$x},to{$y}}}")
            .unwrap();
        sys.add_service_text(
            "f",
            "t{from{$x},to{$y}} :- d1/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
        )
        .unwrap();
        let q = parse_query("reach{$y} :- d1/r{t{from{\"1\"},to{$y}}}").unwrap();
        let rel = weak_relevance(&sys, &q);
        assert_eq!(rel.relevant_calls.len(), 2);
    }
}
