//! The lazy query evaluator: expand documents *just enough* to answer a
//! query (§4).
//!
//! The naive approach — fully expand `[I]`, then evaluate `q` — wastes
//! work on irrelevant branches and diverges on systems whose irrelevant
//! parts are infinite. The lazy evaluator interleaves:
//!
//! 1. a weak relevance analysis ([`crate::lazy::relevance`], PTIME);
//! 2. one restricted fair round invoking only the relevant calls;
//!
//! until no relevant call remains (weak q-stability — a *sufficient*
//! condition for q-stability, so the snapshot answer at that point is a
//! possible answer) or the relevant calls stop being productive (a
//! fixpoint of the relevant region: by relevance soundness, no other
//! call can feed the query either).

use crate::error::Result;
use crate::eval::{snapshot, Env};
use crate::forest::Forest;
use crate::invoke::invoke_node;
use crate::lazy::relevance::weak_relevance;
use crate::query::Query;
use crate::sym::Sym;
use crate::system::System;
use crate::tree::NodeId;

/// Budgets for lazy evaluation.
#[derive(Clone, Copy, Debug)]
pub struct LazyConfig {
    /// Maximum relevance/invocation rounds.
    pub max_rounds: usize,
    /// Maximum total invocations.
    pub max_invocations: usize,
}

impl Default for LazyConfig {
    fn default() -> LazyConfig {
        LazyConfig {
            max_rounds: 1_000,
            max_invocations: 100_000,
        }
    }
}

/// Statistics of one lazy evaluation.
#[derive(Clone, Debug, Default)]
pub struct LazyStats {
    /// Relevance/invocation rounds executed.
    pub rounds: usize,
    /// Calls invoked (the number the paper wants minimized).
    pub invocations: usize,
    /// Did the run end weakly q-stable (vs. budget exhaustion)?
    pub stable: bool,
    /// Calls still flagged relevant at the end (0 when stable).
    pub final_relevant: usize,
}

/// Evaluate `[q](I)` lazily: invoke only (weakly) relevant calls, then
/// return the snapshot answer — by stability, a possible answer to `q`.
pub fn lazy_query_eval(
    sys: &mut System,
    q: &Query,
    cfg: &LazyConfig,
) -> Result<(Forest, LazyStats)> {
    let mut stats = LazyStats::default();
    loop {
        let rel = weak_relevance(sys, q);
        if rel.relevant_calls.is_empty() {
            stats.stable = true;
            break;
        }
        if stats.rounds >= cfg.max_rounds || stats.invocations >= cfg.max_invocations {
            stats.final_relevant = rel.relevant_calls.len();
            break;
        }
        stats.rounds += 1;
        let mut calls: Vec<(Sym, NodeId)> = rel.relevant_calls.iter().copied().collect();
        calls.sort_unstable();
        let mut any_change = false;
        for (d, n) in calls {
            if !sys.doc(d).map(|t| t.is_alive(n)).unwrap_or(false) {
                continue;
            }
            if stats.invocations >= cfg.max_invocations {
                break;
            }
            let out = invoke_node(sys, d, n)?;
            stats.invocations += 1;
            any_change |= out.changed;
        }
        if !any_change {
            // The relevant region reached its fixpoint; by soundness of
            // the relevance analysis no other call can contribute.
            stats.stable = true;
            break;
        }
    }
    let mut env = Env::new();
    for &d in sys.doc_names() {
        env.insert(d, sys.doc(d).expect("stored"));
    }
    let answer = snapshot(q, &env)?;
    Ok((answer, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, EngineConfig, RunStatus};
    use crate::query::parse_query;

    /// A portal where the branch irrelevant to the query diverges: eager
    /// evaluation never terminates, lazy evaluation answers finitely —
    /// the central payoff of §4.
    fn poisoned_portal() -> System {
        let mut sys = System::new();
        sys.add_document_text(
            "dir",
            r#"directory{
                cd{title{"Body and Soul"}, @GetRating{"Body and Soul"}},
                junk{@Spam}
            }"#,
        )
        .unwrap();
        sys.add_document_text("ratings", r#"db{entry{name{"Body and Soul"}, stars{"****"}}}"#)
            .unwrap();
        sys.add_service_text(
            "GetRating",
            r#"rating{$s} :- input/input{$n}, ratings/db{entry{name{$n}, stars{$s}}}"#,
        )
        .unwrap();
        // A diverging service (Example 2.1 pattern) in the junk branch.
        sys.add_service_text("Spam", "junk{@Spam} :-").unwrap();
        sys
    }

    #[test]
    fn lazy_answers_where_eager_diverges() {
        let q = parse_query(
            r#"rating{$s} :- dir/directory{cd{title{"Body and Soul"}, rating{$s}}}"#,
        )
        .unwrap();
        // Eager: budget exhausted, no fixpoint.
        let mut eager = poisoned_portal();
        let (status, estats) = run(&mut eager, &EngineConfig::with_budget(200)).unwrap();
        assert_eq!(status, RunStatus::InvocationBudget);
        assert_eq!(estats.invocations, 200);
        // Lazy: terminates, one call invoked.
        let mut lazy = poisoned_portal();
        let (answer, lstats) = lazy_query_eval(&mut lazy, &q, &LazyConfig::default()).unwrap();
        assert!(lstats.stable);
        // GetRating fires once productively; the weak analysis keeps it
        // flagged until a second (no-op) invocation proves the relevant
        // region quiescent. The diverging Spam branch is never touched.
        assert_eq!(lstats.invocations, 2);
        assert_eq!(answer.len(), 1);
        assert_eq!(answer.trees()[0].to_string(), r#"rating{"****"}"#);
    }

    #[test]
    fn lazy_matches_eager_on_terminating_systems() {
        // Transitive closure: lazy must still find all reachable pairs.
        let build = || {
            let mut sys = System::new();
            sys.add_document_text(
                "d0",
                r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, t{from{"3"},to{"4"}}}"#,
            )
            .unwrap();
            sys.add_document_text("d1", "r{@g,@f}").unwrap();
            sys.add_service_text("g", "t{from{$x},to{$y}} :- d0/r{t{from{$x},to{$y}}}")
                .unwrap();
            sys.add_service_text(
                "f",
                "t{from{$x},to{$y}} :- d1/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
            )
            .unwrap();
            sys
        };
        let q = parse_query("reach{$y} :- d1/r{t{from{\"1\"},to{$y}}}").unwrap();
        let mut lazy_sys = build();
        let (lazy_ans, lstats) =
            lazy_query_eval(&mut lazy_sys, &q, &LazyConfig::default()).unwrap();
        assert!(lstats.stable);
        let mut eager_sys = build();
        run(&mut eager_sys, &EngineConfig::default()).unwrap();
        let mut env = Env::new();
        for &d in eager_sys.doc_names() {
            env.insert(d, eager_sys.doc(d).unwrap());
        }
        let eager_ans = snapshot(&q, &env).unwrap();
        assert!(lazy_ans.equivalent(&eager_ans));
        assert_eq!(eager_ans.len(), 3); // 2, 3, 4
    }

    #[test]
    fn stable_system_answers_without_any_invocation() {
        let mut sys = System::new();
        sys.add_document_text("d", r#"store{item{"cd"}, other{@f}}"#).unwrap();
        sys.add_service_text("f", r#"x{"1"} :-"#).unwrap();
        let q = parse_query("ans{$i} :- d/store{item{$i}}").unwrap();
        let (answer, stats) = lazy_query_eval(&mut sys, &q, &LazyConfig::default()).unwrap();
        assert!(stats.stable);
        assert_eq!(stats.invocations, 0);
        assert_eq!(answer.len(), 1);
    }

    #[test]
    fn budget_exhaustion_reported() {
        // A relevant diverging branch: lazy evaluation cannot stabilize.
        let mut sys = System::new();
        sys.add_document_text("d", "a{b{@Spam}}").unwrap();
        sys.add_service_text("Spam", r#"b{@Spam, w{"1"}} :-"#).unwrap();
        let q = parse_query("ans{$x} :- d/a{b{b{b{b{b{b{b{b{w{$x}}}}}}}}}}").unwrap();
        let cfg = LazyConfig {
            max_rounds: 5,
            max_invocations: 50,
        };
        let (_, stats) = lazy_query_eval(&mut sys, &q, &cfg).unwrap();
        assert!(!stats.stable);
        assert!(stats.final_relevant > 0);
    }
}
