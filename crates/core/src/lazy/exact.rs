//! Exact decision procedures for §4's lazy-evaluation properties on
//! **simple positive systems with simple queries** (Theorem 4.1 (2)).
//!
//! All three problems — possible answer, q-unneededness, q-stability —
//! are undecidable for general positive systems (Theorem 4.1 (1); the
//! Turing-machine encoding of Lemma 3.1 applies) but decidable for simple
//! systems by comparing finite graph representations:
//!
//! * `[[q](I)]` — evaluate `q` over the saturated representation of `I`,
//!   then expand the answers' own calls;
//! * `[[q](I↓N)]` — evaluate `q` over the representation built with the
//!   occurrences in `N` excluded, then expand the resulting answers
//!   against the **full** system (the receiver of a possible answer
//!   invokes its calls without the restriction);
//! * compare the two answer forests by mutual graph simulation.
//!
//! The paper states the bound NEXPTIME and co-NP hardness; our
//! implementation is deterministic-exponential in the worst case, which
//! is consistent (NEXPTIME ⊆ EXPSPACE; the experiments in X9 measure the
//! practical cost and motivate the weak PTIME analysis of
//! [`crate::lazy::relevance`]).

use crate::error::{AxmlError, Result};
use crate::forest::Forest;
use crate::graphrepr::{import_instantiated_head, system_query_bindings, BuildLimits, GraphRepr};
use crate::query::Query;
use crate::regular::{roots_subsumed, GNodeId};
use crate::sym::Sym;
use crate::system::System;
use crate::tree::NodeId;

/// Build `[[q](I)]`'s graph forest: the representation plus the expanded
/// answer roots.
fn answer_semantics(sys: &System, q: &Query) -> Result<(GraphRepr, Vec<GNodeId>)> {
    let mut repr = GraphRepr::build(sys)?;
    let bindings = system_query_bindings(&repr, q)?;
    let mut roots = Vec::new();
    for b in &bindings {
        roots.push(import_instantiated_head(&mut repr, &q.head, b)?);
    }
    repr.saturate(sys, &roots, BuildLimits::default())?;
    Ok((repr, roots))
}

/// Build `[[q](I↓N)]`'s graph forest: query the *restricted*
/// representation, then expand the answers in the *full* one.
fn restricted_answer_semantics(
    sys: &System,
    q: &Query,
    excluded: &[(Sym, NodeId)],
) -> Result<(GraphRepr, Vec<GNodeId>)> {
    if !q.is_simple() {
        // Tree variables would bind restricted-graph nodes whose identity
        // cannot be transported into the full representation; the exact
        // analysis is scoped to simple queries (see module docs).
        return Err(AxmlError::NotSimple(Sym::intern("<query>")));
    }
    let restricted = GraphRepr::build_excluding(sys, excluded, BuildLimits::default())?;
    let bindings = system_query_bindings(&restricted, q)?;
    // Simple queries bind only markings, so the bindings transport
    // directly into the full representation.
    let mut full = GraphRepr::build(sys)?;
    let mut roots = Vec::new();
    for b in &bindings {
        roots.push(import_instantiated_head(&mut full, &q.head, b)?);
    }
    full.saturate(sys, &roots, BuildLimits::default())?;
    Ok((full, roots))
}

/// Definition 4.1: is `N` q-unneeded — may the query be answered without
/// ever invoking the calls in `N`?
pub fn is_unneeded(sys: &System, q: &Query, excluded: &[(Sym, NodeId)]) -> Result<bool> {
    let (full, full_roots) = answer_semantics(sys, q)?;
    let (restr, restr_roots) = restricted_answer_semantics(sys, q, excluded)?;
    Ok(
        roots_subsumed(&full.graph, &full_roots, &restr.graph, &restr_roots)
            && roots_subsumed(&restr.graph, &restr_roots, &full.graph, &full_roots),
    )
}

/// Definition 4.1: is the system q-stable — are *all* its calls
/// q-unneeded, i.e. has enough data been gathered already?
pub fn is_q_stable(sys: &System, q: &Query) -> Result<bool> {
    let all: Vec<(Sym, NodeId)> = sys.function_nodes();
    is_unneeded(sys, q, &all)
}

/// Is the forest `alpha` a *possible answer* to `q` over `sys` — does
/// `[alpha] = [[q](I)]` (§4)? `alpha` may contain function calls of the
/// system; they are expanded.
pub fn is_possible_answer(sys: &System, q: &Query, alpha: &Forest) -> Result<bool> {
    let (full, full_roots) = answer_semantics(sys, q)?;
    let mut arepr = GraphRepr::build(sys)?;
    let mut aroots = Vec::new();
    for t in alpha.trees() {
        aroots.push(arepr.graph.import_tree(t));
    }
    arepr.saturate(sys, &aroots, BuildLimits::default())?;
    Ok(
        roots_subsumed(&full.graph, &full_roots, &arepr.graph, &aroots)
            && roots_subsumed(&arepr.graph, &aroots, &full.graph, &full_roots),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;
    use crate::query::parse_query;
    use crate::tree::Marking;

    /// A portal whose GetRating service is defined in-system (so the
    /// exact analysis can reason about it).
    fn portal() -> System {
        let mut sys = System::new();
        sys.add_document_text(
            "dir",
            r#"directory{
                cd{title{"Body and Soul"}, @GetRating{"Body and Soul"}},
                cd{title{"Where or When"}, rating{"*****"}},
                news{@FreeMusicDB}
            }"#,
        )
        .unwrap();
        sys.add_document_text("ratings", r#"db{entry{name{"Body and Soul"}, stars{"****"}}}"#)
            .unwrap();
        sys.add_service_text(
            "GetRating",
            r#"rating{$s} :- input/input{$n}, ratings/db{entry{name{$n}, stars{$s}}}"#,
        )
        .unwrap();
        sys.add_service_text("FreeMusicDB", r#"cd{title{"More"}} :-"#).unwrap();
        sys
    }

    fn find_call(sys: &System, doc: &str, f: &str) -> (Sym, NodeId) {
        let d = Sym::intern(doc);
        let t = sys.doc(d).unwrap();
        let n = t
            .function_nodes()
            .into_iter()
            .find(|&n| t.marking(n) == Marking::func(f))
            .unwrap();
        (d, n)
    }

    #[test]
    fn irrelevant_call_is_exactly_unneeded() {
        let sys = portal();
        let q = parse_query("r{$x} :- dir/directory{cd{title{$x}, rating{$s}}}").unwrap();
        let fm = find_call(&sys, "dir", "FreeMusicDB");
        assert!(is_unneeded(&sys, &q, &[fm]).unwrap());
    }

    #[test]
    fn needed_call_is_not_unneeded() {
        let sys = portal();
        let q = parse_query("r{$x} :- dir/directory{cd{title{$x}, rating{$s}}}").unwrap();
        let gr = find_call(&sys, "dir", "GetRating");
        // Without GetRating only "Where or When" has a rating; with it,
        // "Body and Soul" appears too.
        assert!(!is_unneeded(&sys, &q, &[gr]).unwrap());
    }

    #[test]
    fn stability_after_materialization() {
        let q = parse_query("r{$x} :- dir/directory{cd{title{$x}, rating{$s}}}").unwrap();
        let mut sys = portal();
        assert!(!is_q_stable(&sys, &q).unwrap());
        // Run the system to fixpoint: now everything is materialized.
        crate::engine::run(&mut sys, &crate::engine::EngineConfig::default()).unwrap();
        assert!(is_q_stable(&sys, &q).unwrap());
    }

    #[test]
    fn subtle_unneededness_via_redundancy() {
        // §4: "It may be the case that some unneeded call v indeed
        // produces useful information, but is not needed because some
        // other calls provide this same information."
        let mut sys = System::new();
        sys.add_document_text("src", r#"r{v{"1"}}"#).unwrap();
        sys.add_document_text("d", "out{@f1, @f2}").unwrap();
        sys.add_service_text("f1", "w{$x} :- src/r{v{$x}}").unwrap();
        sys.add_service_text("f2", "w{$x} :- src/r{v{$x}}").unwrap();
        let q = parse_query("ans{$x} :- d/out{w{$x}}").unwrap();
        let c1 = find_call(&sys, "d", "f1");
        let c2 = find_call(&sys, "d", "f2");
        // Each alone is unneeded (the twin provides the data)…
        assert!(is_unneeded(&sys, &q, &[c1]).unwrap());
        assert!(is_unneeded(&sys, &q, &[c2]).unwrap());
        // …but unneededness is NOT closed under union (§4).
        assert!(!is_unneeded(&sys, &q, &[c1, c2]).unwrap());
    }

    #[test]
    fn possible_answers_intensional_and_extensional() {
        // §4's motivating example: both "****" and the intensional
        // GetRating call are possible answers to the rating query.
        let sys = portal();
        let q = parse_query(
            r#"rating{$s} :- dir/directory{cd{title{"Body and Soul"}, rating{$s}}}"#,
        )
        .unwrap();
        let extensional =
            Forest::from_trees(vec![parse_tree(r#"rating{"****"}"#).unwrap()]);
        // The intensional variant wraps the call so it lands in the same
        // shape: rating is produced by expanding GetRating inside.
        assert!(is_possible_answer(&sys, &q, &extensional).unwrap());
        let wrong = Forest::from_trees(vec![parse_tree(r#"rating{"*"}"#).unwrap()]);
        assert!(!is_possible_answer(&sys, &q, &wrong).unwrap());
    }

    #[test]
    fn exact_rejects_non_simple_queries() {
        let sys = portal();
        let q = parse_query("copy{#X} :- dir/directory{#X}").unwrap();
        assert!(matches!(
            is_unneeded(&sys, &q, &[]),
            Err(AxmlError::NotSimple(_))
        ));
    }

    #[test]
    fn empty_exclusion_is_always_unneeded() {
        let sys = portal();
        let q = parse_query("r{$x} :- dir/directory{cd{title{$x}}}").unwrap();
        assert!(is_unneeded(&sys, &q, &[]).unwrap());
    }
}
