//! Lazy query evaluation (Section 4).
//!
//! Answering a query over an AXML system does not require materializing
//! the full semantics: many service calls are irrelevant to the query,
//! and a *possible answer* — a document whose semantics equals the
//! query's result — may legitimately keep calls intensional (return
//! `GetRating{"Body and Soul"}` instead of `"****"`).
//!
//! The section's notions and where they live here:
//!
//! * **q-unneeded** sets and **q-stability** (Definition 4.1): exact
//!   decision procedures for simple systems and simple queries, via graph
//!   representations of `[[q](I)]` and `[[q](I↓N)]` — [`exact`]
//!   (Theorem 4.1 (2): decidable, expensive);
//! * **weak properties** (§4 "Weaker properties"): PTIME sound
//!   over-approximations that treat services as monotone black boxes —
//!   [`relevance`]. Weak stability implies stability; weakly-unneeded
//!   calls are unneeded;
//! * a practical **lazy evaluator** that interleaves relevance analysis
//!   with restricted fair rounds, invoking only relevant calls —
//!   [`evaluator`].

pub mod evaluator;
pub mod exact;
pub mod relevance;

pub use evaluator::{lazy_query_eval, LazyConfig, LazyStats};
pub use exact::{is_possible_answer, is_q_stable, is_unneeded};
pub use relevance::{weak_relevance, weakly_stable, weakly_unneeded, Relevance};
