//! Structured observability: a trace journal, per-service metrics, and
//! exporters — the instrumentation layer behind the engine's claims.
//!
//! The paper's central results (Theorem 2.1 confluence, Proposition 3.1
//! monotonicity, the §4 lazy-evaluation analyses) are statements about
//! *invocation sequences*: which call fired when, what it read, and what
//! it grafted. [`crate::engine::RunStats`] only reports aggregate
//! counters; this module records the sequence itself.
//!
//! * [`EventKind`] / [`TraceEvent`] — the event taxonomy: engine phases
//!   (round start/end), call selection and delta-skips, match-cache
//!   traffic, grafts, reductions, subsumption checks, p2p message
//!   send/receive, and the `axml-server` request lifecycle
//!   (receive/serve/batch/subscription-push). Every recorded event
//!   carries a strictly increasing sequence number and a monotone
//!   nanosecond timestamp.
//! * [`TraceSink`] — where events go. Implementations: [`Journal`]
//!   (an in-memory ordered log, the basis for exporters and for tests
//!   asserting on event streams), [`MetricsRegistry`] (aggregation into
//!   counters and log-scale [`Histogram`]s, no event storage), and
//!   [`Fanout`] (both at once).
//! * [`Tracer`] — the cheap handle threaded through
//!   [`crate::engine::run_traced`], [`crate::invoke::invoke_node_traced`]
//!   and the p2p backends. A disabled tracer is a `None` check per event
//!   site; event construction closures never run, so tracing costs
//!   nothing when off.
//! * [`chrome_trace`] — export a journal as Chrome `trace_event` JSON,
//!   loadable in `chrome://tracing` or <https://ui.perfetto.dev>;
//!   [`validate_chrome_trace`] checks an export without a browser.
//! * [`MetricsRegistry::render_report`] — a human-readable run report
//!   (the format behind the `EXPERIMENTS.md` tables).
//!
//! See `docs/observability.md` for the guide (taxonomy, capturing a
//! trace of an experiment, overhead measurements).
//!
//! # Example
//!
//! ```
//! use axml_core::engine::{run_traced, EngineConfig};
//! use axml_core::trace::{EventKind, Journal, Tracer};
//! use axml_core::system::System;
//!
//! let mut sys = System::new();
//! sys.add_document_text("d", "out{@hello}").unwrap();
//! sys.add_service_text("hello", r#"greeting{"hi"} :-"#).unwrap();
//!
//! let journal = Journal::new();
//! run_traced(&mut sys, &EngineConfig::default(), Tracer::new(&journal)).unwrap();
//!
//! let events = journal.snapshot();
//! assert!(events.iter().any(|e| matches!(e.kind, EventKind::Invoke { .. })));
//! // Sequence numbers order the journal strictly.
//! assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
//! ```

use crate::sym::{FxHashMap, Sym};
use crate::tree::NodeId;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::Instant;

/// The kind of a p2p message, for [`EventKind::MsgSend`] /
/// [`EventKind::MsgRecv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// A service invocation request (caller → provider).
    Call,
    /// A result forest (provider → caller).
    Response,
    /// A change notification ("my documents moved; re-pull me").
    Changed,
    /// A coordinator poll.
    Poll,
    /// A push-mode document delta: per-document stamps
    /// (`id`/`version`/`mutation_count`) plus only the response trees
    /// the subscriber has not seen yet (provider → subscriber). The
    /// sharded placement layer sends these instead of re-shipping full
    /// call responses — see `axml-p2p`'s `placement` module.
    DeltaPush,
}

impl MsgKind {
    /// Short lowercase name (used by exporters).
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::Call => "call",
            MsgKind::Response => "response",
            MsgKind::Changed => "changed",
            MsgKind::Poll => "poll",
            MsgKind::DeltaPush => "delta-push",
        }
    }
}

/// The kind of a server request frame, for [`EventKind::RequestRecv`] /
/// [`EventKind::RequestServed`]. Mirrors the request catalogue of
/// `docs/protocol.md` (the `axml-server` wire spec).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqKind {
    /// Protocol handshake (`hello`).
    Hello,
    /// Session creation (`open`).
    Open,
    /// Run a session's system to fixpoint or budget (`run`).
    Run,
    /// One snapshot query (`query`).
    Query,
    /// An explicit batch of snapshot queries (`batch`).
    Batch,
    /// A streaming continuous query (`subscribe`).
    Subscribe,
    /// Session teardown (`close`).
    Close,
    /// Server/session counters (`stats`).
    Stats,
    /// Liveness probe (`health`).
    Health,
    /// Streaming trace-event subscription (`trace_tail`).
    TraceTail,
    /// Server shutdown (`shutdown`).
    Shutdown,
}

impl ReqKind {
    /// Short lowercase name, matching the frame's `type` tag on the
    /// wire (used by exporters).
    pub fn name(self) -> &'static str {
        match self {
            ReqKind::Hello => "hello",
            ReqKind::Open => "open",
            ReqKind::Run => "run",
            ReqKind::Query => "query",
            ReqKind::Batch => "batch",
            ReqKind::Subscribe => "subscribe",
            ReqKind::Close => "close",
            ReqKind::Stats => "stats",
            ReqKind::Health => "health",
            ReqKind::TraceTail => "trace_tail",
            ReqKind::Shutdown => "shutdown",
        }
    }
}

/// What happened. Each variant is one point in the engine's (or the p2p
/// network's) execution; see the module docs for the taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A fair round began (engine) — `round` counts from 0.
    RoundStart {
        /// Round index, counting from 0.
        round: u64,
    },
    /// The round ended; `changed` is false exactly at a fixpoint round.
    RoundEnd {
        /// Round index, matching the corresponding [`EventKind::RoundStart`].
        round: u64,
        /// Did any invocation of this round strictly grow a document?
        changed: bool,
    },
    /// The scheduler selected a live call for invocation.
    CallSelected {
        /// Host document.
        doc: Sym,
        /// The function node inside `doc`.
        node: NodeId,
        /// The service the node calls.
        service: Sym,
    },
    /// The delta scheduler skipped a call whose read set is unchanged
    /// since its previous invocation ([`crate::engine::EngineMode::Delta`]).
    CallSkipped {
        /// Host document.
        doc: Sym,
        /// The function node inside `doc`.
        node: NodeId,
        /// The service the node calls.
        service: Sym,
    },
    /// One completed invocation (the engine's unit of work). The
    /// `(doc, doc_version)` pair identifies the host document state
    /// *after* the step; `dur_ns` is the wall-clock invocation latency.
    Invoke {
        /// Host document.
        doc: Sym,
        /// The invoked function node.
        node: NodeId,
        /// The invoked service.
        service: Sym,
        /// Did the document strictly grow (a real rewriting step)?
        changed: bool,
        /// Result trees grafted (not subsumed by existing siblings).
        grafted: u32,
        /// Trees in the service's result forest.
        result_trees: u32,
        /// The host document's version counter after the step.
        doc_version: u64,
        /// Wall-clock latency of the invocation, in nanoseconds.
        dur_ns: u64,
    },
    /// A per-atom match-cache hit ([`crate::eval::MatchCache`]).
    CacheHit {
        /// The service whose body is being evaluated.
        service: Sym,
        /// Index of the body atom answered from cache.
        atom: u32,
    },
    /// A per-atom match-cache miss: the matcher ran.
    CacheMiss {
        /// The service whose body is being evaluated.
        service: Sym,
        /// Index of the body atom that had to be matched.
        atom: u32,
    },
    /// One result tree was checked for subsumption against the call
    /// node's existing siblings (invocation phase 2).
    SubsumeCheck {
        /// Host document.
        doc: Sym,
        /// Was the result tree already subsumed (hence not grafted)?
        subsumed: bool,
    },
    /// Result trees were grafted beside a call node.
    Graft {
        /// Host document.
        doc: Sym,
        /// The document's version counter after the grafts.
        doc_version: u64,
        /// Number of trees grafted.
        trees: u32,
    },
    /// The host document was reduced after grafting.
    Reduce {
        /// Host document.
        doc: Sym,
        /// Live nodes before reduction.
        nodes_before: u32,
        /// Live nodes after reduction.
        nodes_after: u32,
    },
    /// One matcher run's document-index usage during snapshot
    /// evaluation: how many candidate sets were served by index probes
    /// versus scan fallbacks (see [`mod@crate::index`]).
    IndexLookup {
        /// The service whose body is being evaluated.
        service: Sym,
        /// Index of the body atom the matcher ran for.
        atom: u32,
        /// Candidate sets served by an index probe.
        probes: u32,
        /// Probes whose bucket was non-empty.
        probe_hits: u32,
        /// Indexed-mode lookups that fell back to a scan.
        fallbacks: u32,
    },
    /// Incremental index maintenance performed on a host document over
    /// one invocation (graft + reduce), measured as counter deltas.
    IndexMaintain {
        /// Host document.
        doc: Sym,
        /// Index entries added during the invocation.
        adds: u32,
        /// Index entries removed during the invocation.
        removes: u32,
        /// Estimated index heap footprint after the invocation, bytes.
        bytes: u64,
    },
    /// A p2p message left a peer.
    MsgSend {
        /// Sending peer.
        from: Sym,
        /// Receiving peer.
        to: Sym,
        /// Message kind.
        kind: MsgKind,
    },
    /// A p2p message was processed by a peer.
    MsgRecv {
        /// Receiving (processing) peer.
        peer: Sym,
        /// Message kind.
        kind: MsgKind,
    },
    /// A provider evaluated one of its services for a remote caller.
    PeerEval {
        /// The provider peer.
        peer: Sym,
        /// The evaluated service (unqualified name).
        service: Sym,
        /// Wall-clock latency of the evaluation, in nanoseconds.
        dur_ns: u64,
    },
    /// One call evaluated on a worker thread during a parallel round's
    /// read-only phase ([`crate::engine::Parallelism::Workers`]). The
    /// commit-side [`EventKind::Invoke`] still follows once the plan is
    /// applied, so `Invoke` counts stay 1:1 with evaluated calls.
    WorkerEval {
        /// The evaluating worker (0-based).
        worker: u32,
        /// Host document of the evaluated call.
        doc: Sym,
        /// The evaluated function node.
        node: NodeId,
        /// The evaluated service.
        service: Sym,
        /// Trees in the service's result forest.
        result_trees: u32,
        /// Wall-clock latency of the read-only evaluation, nanoseconds.
        dur_ns: u64,
    },
    /// A parallel round's evaluation phase completed: `evaluated` plans
    /// were produced by `workers` workers in `dur_ns` wall-clock time
    /// (the sequential commit phase follows).
    ParallelRound {
        /// Round index, matching the surrounding round events.
        round: u64,
        /// Worker threads used for the evaluation phase.
        workers: u32,
        /// Calls evaluated (plans produced) this round.
        evaluated: u32,
        /// Wall-clock duration of the evaluation phase, nanoseconds.
        dur_ns: u64,
    },
    /// A service query was lowered, optimized, and emitted as a
    /// [`crate::compile::MatchProgram`].
    PlanCompiled {
        /// The service whose query was compiled.
        service: Sym,
        /// Body atoms retained after conjunct elimination.
        atoms: u32,
        /// Ops in the emitted program (after hash-consing).
        ops: u32,
        /// Ops shared between subpattern occurrences (factoring).
        shared: u32,
        /// Wall-clock compile time, nanoseconds.
        dur_ns: u64,
    },
    /// A [`crate::compile::ProgramCache`] lookup was answered from
    /// cache.
    ProgramCacheHit {
        /// The service whose program was served.
        service: Sym,
    },
    /// A [`crate::compile::ProgramCache`] lookup missed (first
    /// compilation, or the index generation moved); a
    /// [`EventKind::PlanCompiled`] follows.
    ProgramCacheMiss {
        /// The service whose program was (re)compiled.
        service: Sym,
    },
    /// An `axml-server` request frame was received and admitted. The
    /// matching [`EventKind::RequestServed`] carries the latency.
    RequestRecv {
        /// Session the request addresses (`-` for session-less frames
        /// such as `hello` and `shutdown`).
        session: Sym,
        /// Request frame kind.
        kind: ReqKind,
        /// Client-chosen request id echoed on the response (0 if the
        /// frame carried none).
        id: u64,
    },
    /// An `axml-server` request was served: the response (or error)
    /// frame was written back to the client.
    RequestServed {
        /// Session the request addressed (`-` for session-less frames).
        session: Sym,
        /// Request frame kind.
        kind: ReqKind,
        /// Client-chosen request id echoed on the response (0 if none).
        id: u64,
        /// `false` iff the response was an `error` frame.
        ok: bool,
        /// Wall-clock receive-to-response latency, nanoseconds.
        dur_ns: u64,
    },
    /// The server's dataloader coalesced `size` compatible query
    /// requests into one batch evaluated under a single session lock
    /// (one snapshot, shared caches) — see `docs/protocol.md`.
    BatchFormed {
        /// Session the batch evaluated against.
        session: Sym,
        /// Query requests coalesced into the batch.
        size: u32,
        /// Wall-clock evaluation time for the whole batch, nanoseconds.
        dur_ns: u64,
    },
    /// A subscription delta push: `trees` not-yet-seen answer trees
    /// streamed to the subscriber after engine round `round`, with the
    /// subscribed system at version `version` (the delta stamp).
    SubscriptionPush {
        /// Session the subscription reads.
        session: Sym,
        /// Client-chosen subscription id.
        sub: u64,
        /// New answer trees in this push.
        trees: u32,
        /// Engine round after which the delta was extracted.
        round: u64,
        /// The subscribed system's version counter (sum of document
        /// versions) at push time.
        version: u64,
    },
}

/// The coarse category of an [`EventKind`] — the same taxonomy the
/// Chrome-trace exporter stamps as `cat` on every row, reused by
/// [`JournalConfig`] sampling rates and the `trace_tail` wire filter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventCategory {
    /// Round start/end markers.
    Engine,
    /// Call selection and delta-skips.
    Schedule,
    /// Completed invocations.
    Invoke,
    /// Match-cache hits and misses.
    Cache,
    /// Grafts and subsumption checks.
    Graft,
    /// In-place reductions.
    Reduce,
    /// Document-index lookups and maintenance.
    Index,
    /// P2p message traffic and provider evaluations.
    P2p,
    /// Parallel-engine worker evaluations and round phases.
    Parallel,
    /// Query compilation and program-cache traffic.
    Compile,
    /// `axml-server` request lifecycle events.
    Server,
}

impl EventCategory {
    /// Every category, in stable order — the index into
    /// [`JournalConfig`] sampling-rate and drop-counter arrays.
    pub const ALL: [EventCategory; 11] = [
        EventCategory::Engine,
        EventCategory::Schedule,
        EventCategory::Invoke,
        EventCategory::Cache,
        EventCategory::Graft,
        EventCategory::Reduce,
        EventCategory::Index,
        EventCategory::P2p,
        EventCategory::Parallel,
        EventCategory::Compile,
        EventCategory::Server,
    ];

    /// Short lowercase name — identical to the Chrome-trace `cat`
    /// string of events in this category.
    pub fn name(self) -> &'static str {
        match self {
            EventCategory::Engine => "engine",
            EventCategory::Schedule => "schedule",
            EventCategory::Invoke => "invoke",
            EventCategory::Cache => "cache",
            EventCategory::Graft => "graft",
            EventCategory::Reduce => "reduce",
            EventCategory::Index => "index",
            EventCategory::P2p => "p2p",
            EventCategory::Parallel => "parallel",
            EventCategory::Compile => "compile",
            EventCategory::Server => "server",
        }
    }

    /// Parse a category [`EventCategory::name`] back (`None` on unknown
    /// names).
    pub fn parse(s: &str) -> Option<EventCategory> {
        EventCategory::ALL.iter().copied().find(|c| c.name() == s)
    }
}

impl EventKind {
    /// This event's [`EventCategory`] — always the `cat` the
    /// Chrome-trace export stamps on the corresponding row.
    pub fn category(&self) -> EventCategory {
        match self {
            EventKind::RoundStart { .. } | EventKind::RoundEnd { .. } => EventCategory::Engine,
            EventKind::CallSelected { .. } | EventKind::CallSkipped { .. } => {
                EventCategory::Schedule
            }
            EventKind::Invoke { .. } => EventCategory::Invoke,
            EventKind::CacheHit { .. } | EventKind::CacheMiss { .. } => EventCategory::Cache,
            EventKind::SubsumeCheck { .. } | EventKind::Graft { .. } => EventCategory::Graft,
            EventKind::Reduce { .. } => EventCategory::Reduce,
            EventKind::IndexLookup { .. } | EventKind::IndexMaintain { .. } => EventCategory::Index,
            EventKind::MsgSend { .. } | EventKind::MsgRecv { .. } | EventKind::PeerEval { .. } => {
                EventCategory::P2p
            }
            EventKind::WorkerEval { .. } | EventKind::ParallelRound { .. } => {
                EventCategory::Parallel
            }
            EventKind::PlanCompiled { .. }
            | EventKind::ProgramCacheHit { .. }
            | EventKind::ProgramCacheMiss { .. } => EventCategory::Compile,
            EventKind::RequestRecv { .. }
            | EventKind::RequestServed { .. }
            | EventKind::BatchFormed { .. }
            | EventKind::SubscriptionPush { .. } => EventCategory::Server,
        }
    }

    /// The server session this event belongs to, for the
    /// [`EventCategory::Server`] lifecycle events (`None` elsewhere).
    pub fn session(&self) -> Option<Sym> {
        match self {
            EventKind::RequestRecv { session, .. }
            | EventKind::RequestServed { session, .. }
            | EventKind::BatchFormed { session, .. }
            | EventKind::SubscriptionPush { session, .. } => Some(*session),
            _ => None,
        }
    }

    /// A short human label for the event — the same `name` the
    /// Chrome-trace export uses (e.g. `invoke tc`, `recv query`,
    /// `round 3`), rendered without the args payload. This is what the
    /// `trace_tail` wire frames carry.
    pub fn label(&self) -> String {
        match self {
            EventKind::RoundStart { round } | EventKind::RoundEnd { round, .. } => {
                format!("round {round}")
            }
            EventKind::CallSelected { service, .. } => format!("select {service}"),
            EventKind::CallSkipped { service, .. } => format!("skip {service}"),
            EventKind::Invoke { service, .. } => format!("invoke {service}"),
            EventKind::CacheHit { service, atom } => format!("hit {service}#{atom}"),
            EventKind::CacheMiss { service, atom } => format!("miss {service}#{atom}"),
            EventKind::SubsumeCheck { .. } => "subsume-check".to_string(),
            EventKind::Graft { .. } => "graft".to_string(),
            EventKind::Reduce { .. } => "reduce".to_string(),
            EventKind::IndexLookup { service, atom, .. } => format!("index {service}#{atom}"),
            EventKind::IndexMaintain { .. } => "index-maintain".to_string(),
            EventKind::MsgSend { kind, .. } => format!("send {}", kind.name()),
            EventKind::MsgRecv { kind, .. } => format!("recv {}", kind.name()),
            EventKind::PeerEval { service, .. } | EventKind::WorkerEval { service, .. } => {
                format!("eval {service}")
            }
            EventKind::ParallelRound { round, .. } => format!("parallel round {round}"),
            EventKind::PlanCompiled { service, .. } => format!("compile {service}"),
            EventKind::ProgramCacheHit { service } => format!("program hit {service}"),
            EventKind::ProgramCacheMiss { service } => format!("program miss {service}"),
            EventKind::RequestRecv { kind, .. } => format!("recv {}", kind.name()),
            EventKind::RequestServed { kind, .. } => format!("serve {}", kind.name()),
            EventKind::BatchFormed { .. } => "batch".to_string(),
            EventKind::SubscriptionPush { .. } => "push".to_string(),
        }
    }
}

/// One journal entry: an [`EventKind`] stamped by the recording sink
/// with a strictly increasing sequence number, a monotone timestamp
/// (nanoseconds since the sink's epoch), and the recording worker's id
/// (`0` for the main thread / single-threaded runs).
///
/// Under [`crate::engine::Parallelism::Workers`] the full stamp is
/// effectively `(round, worker, seq)`: worker-local journals are merged
/// into the main journal at each round's commit phase in ascending
/// worker order, so the merged `seq` order is deterministic however the
/// worker threads interleaved in real time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Strictly increasing per-sink sequence number (journal order).
    pub seq: u64,
    /// Monotone nanoseconds since the sink's epoch.
    pub ts_ns: u64,
    /// Recording worker id: 0 for the main thread, `w + 1` for parallel
    /// worker `w` (see [`Journal::for_worker`]).
    pub worker: u32,
    /// The request-scoped trace id the event belongs to (0 =
    /// unattributed). `axml-server` stamps one per request frame and
    /// threads it through engine rounds, invocations, worker
    /// evaluations, and p2p calls, so one query's end-to-end derivation
    /// is reconstructable from a merged journal.
    pub trace: u64,
    /// The event itself.
    pub kind: EventKind,
}

/// Where trace events go. Implementations stamp and store (or
/// aggregate) events; the instrumented code only constructs
/// [`EventKind`]s, and only when a sink is attached.
///
/// `record` takes `&self` so one sink can be shared by every
/// instrumentation site of a single-threaded run without threading
/// `&mut` borrows through the engine; implementations use interior
/// mutability.
pub trait TraceSink {
    /// Record one event.
    fn record(&self, kind: EventKind);

    /// Record one event attributed to request trace id `trace` (0 =
    /// unattributed). Storing sinks stamp the id onto the stored
    /// [`TraceEvent`]; the default drops the id and forwards to
    /// [`TraceSink::record`], which is correct for aggregators that
    /// never store events.
    fn record_traced(&self, kind: EventKind, trace: u64) {
        let _ = trace;
        self.record(kind);
    }

    /// Record an already-stamped event — the merge path for per-worker
    /// journals. Storing sinks should preserve the event's timestamp
    /// and worker id while re-stamping the sequence number in arrival
    /// order (so the merged order is the deterministic arrival order,
    /// not the racy wall-clock order). The default forwards to
    /// [`TraceSink::record`], which is correct for pure aggregators.
    fn record_stamped(&self, ev: TraceEvent) {
        self.record(ev.kind);
    }

    /// The sink's timestamp epoch, when it has one. Worker-local
    /// journals adopt the main sink's epoch so merged timestamps share
    /// one timeline.
    fn epoch(&self) -> Option<Instant> {
        None
    }
}

/// The cheap tracing handle threaded through the engine. Copyable;
/// either disabled (no sink — every `emit` is one branch, the
/// event-constructing closure never runs) or bound to a [`TraceSink`].
#[derive(Clone, Copy, Default)]
pub struct Tracer<'a> {
    sink: Option<&'a dyn TraceSink>,
    trace: u64,
}

impl<'a> Tracer<'a> {
    /// A tracer bound to `sink`.
    pub fn new(sink: &'a dyn TraceSink) -> Tracer<'a> {
        Tracer {
            sink: Some(sink),
            trace: 0,
        }
    }

    /// The no-op tracer: every emission is a predictable-false branch.
    pub fn disabled() -> Tracer<'a> {
        Tracer {
            sink: None,
            trace: 0,
        }
    }

    /// This tracer, stamping every emitted event with request trace id
    /// `trace` (0 = unattributed, the default). Copy-cheap: the server
    /// derives one per request from its shared tracer.
    pub fn with_trace(self, trace: u64) -> Tracer<'a> {
        Tracer { trace, ..self }
    }

    /// The trace id this tracer stamps (0 = unattributed).
    #[inline]
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// Is a sink attached? Use to guard measurement work (e.g. an
    /// `Instant::now` pair) that only exists to enrich events.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Record the event produced by `f` — `f` runs only when enabled.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> EventKind) {
        if let Some(sink) = self.sink {
            sink.record_traced(f(), self.trace);
        }
    }

    /// Forward an already-stamped event (from a worker-local journal)
    /// to the sink, preserving its timestamp and worker id — see
    /// [`TraceSink::record_stamped`].
    #[inline]
    pub fn absorb(&self, ev: TraceEvent) {
        if let Some(sink) = self.sink {
            sink.record_stamped(ev);
        }
    }

    /// The attached sink's timestamp epoch, when it has one.
    pub fn epoch(&self) -> Option<Instant> {
        self.sink.and_then(|s| s.epoch())
    }
}

/// Retention policy of a [`Journal`]: an optional ring capacity and
/// per-[`EventCategory`] sampling rates, for always-on production
/// tracing with bounded memory. The [`Default`] is the production
/// profile (a ~64k-event ring, every event kept); use
/// [`JournalConfig::unbounded`] — what [`Journal::new`] does — to keep
/// everything, as tests and offline experiments want.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalConfig {
    /// Most events retained at once; when full, the *oldest* event is
    /// evicted (and counted per category). `None` = unbounded.
    pub capacity: Option<usize>,
    /// Per-category keep-one-in-`n` sampling rates, indexed by the
    /// category's position in [`EventCategory::ALL`]. `0` and `1` both
    /// mean "keep every event". Sampled-out events still consume a
    /// sequence number, so seq gaps reveal sampling while the stored
    /// order stays strictly monotone.
    pub sample: [u32; EventCategory::ALL.len()],
}

/// The production default ring capacity (events).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            capacity: Some(DEFAULT_JOURNAL_CAPACITY),
            sample: [1; EventCategory::ALL.len()],
        }
    }
}

impl JournalConfig {
    /// Keep every event forever — the test/experiment profile.
    pub fn unbounded() -> JournalConfig {
        JournalConfig {
            capacity: None,
            sample: [1; EventCategory::ALL.len()],
        }
    }

    /// This config with a keep-one-in-`n` sampling rate for `cat`.
    pub fn with_sample(mut self, cat: EventCategory, n: u32) -> JournalConfig {
        self.sample[cat as usize] = n;
        self
    }

    /// The effective keep-one-in-`n` rate for `cat` (never 0).
    pub fn rate(&self, cat: EventCategory) -> u64 {
        u64::from(self.sample[cat as usize].max(1))
    }
}

struct JournalInner {
    seq: u64,
    events: std::collections::VecDeque<TraceEvent>,
    /// Events observed per category (kept or not) — the sampling phase.
    seen: [u64; EventCategory::ALL.len()],
    /// Events dropped by sampling, per category.
    sampled_out: [u64; EventCategory::ALL.len()],
    /// Events evicted by the ring capacity, per category.
    evicted: [u64; EventCategory::ALL.len()],
}

/// An in-memory ordered event log. The canonical [`TraceSink`]: stamps
/// each event with a sequence number and a monotone timestamp and feeds
/// the exporters ([`chrome_trace`]) and the event-stream assertions in
/// tests. [`Journal::new`] keeps everything; [`Journal::with_config`]
/// bounds retention with a ring capacity and per-category sampling
/// (dropped events are counted, and sequence numbers stay strictly
/// monotone over whatever is retained, so exports and replay stay
/// sound).
pub struct Journal {
    epoch: Instant,
    /// The worker id stamped on events recorded *by this journal*
    /// (0 = main thread; see [`Journal::for_worker`]).
    worker: u32,
    cfg: JournalConfig,
    inner: RefCell<JournalInner>,
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new()
    }
}

impl Journal {
    /// An empty unbounded journal; timestamps count from now. Keeps
    /// every event — use [`Journal::with_config`] for the bounded
    /// production profile.
    pub fn new() -> Journal {
        Journal::with_epoch(Instant::now())
    }

    /// An empty journal with the given retention policy; timestamps
    /// count from now.
    pub fn with_config(cfg: JournalConfig) -> Journal {
        Journal {
            cfg,
            ..Journal::new()
        }
    }

    /// An empty ring journal holding at most `capacity` events (oldest
    /// evicted first), no sampling.
    pub fn bounded(capacity: usize) -> Journal {
        Journal::with_config(JournalConfig {
            capacity: Some(capacity),
            ..JournalConfig::unbounded()
        })
    }

    /// An empty unbounded journal whose timestamps count from `epoch` —
    /// use the main sink's epoch ([`TraceSink::epoch`]) so a
    /// worker-local journal's timestamps merge onto the same timeline.
    pub fn with_epoch(epoch: Instant) -> Journal {
        Journal {
            epoch,
            worker: 0,
            cfg: JournalConfig::unbounded(),
            inner: RefCell::new(JournalInner {
                seq: 0,
                events: std::collections::VecDeque::new(),
                seen: [0; EventCategory::ALL.len()],
                sampled_out: [0; EventCategory::ALL.len()],
                evicted: [0; EventCategory::ALL.len()],
            }),
        }
    }

    /// A worker-local journal: events it records are stamped with
    /// worker id `worker + 1` (0 is reserved for the main thread) and
    /// timestamps counting from `epoch`. Each parallel worker keeps one
    /// and the engine merges it into the main sink, in worker order, at
    /// the end of the round's evaluation phase. Unbounded: retention
    /// policy is the merged-into sink's concern.
    pub fn for_worker(worker: u32, epoch: Option<Instant>) -> Journal {
        Journal {
            worker: worker + 1,
            ..Journal::with_epoch(epoch.unwrap_or_else(Instant::now))
        }
    }

    /// The retention policy.
    pub fn config(&self) -> &JournalConfig {
        &self.cfg
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Is the journal empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events dropped (ring evictions + sampled out).
    pub fn dropped(&self) -> u64 {
        let inner = self.inner.borrow();
        inner.evicted.iter().sum::<u64>() + inner.sampled_out.iter().sum::<u64>()
    }

    /// Events evicted by the ring capacity.
    pub fn dropped_evicted(&self) -> u64 {
        self.inner.borrow().evicted.iter().sum()
    }

    /// Events dropped by sampling.
    pub fn dropped_sampled(&self) -> u64 {
        self.inner.borrow().sampled_out.iter().sum()
    }

    /// Per-category drop counters: `(category, evicted, sampled_out)`,
    /// in [`EventCategory::ALL`] order, categories with no drops
    /// included.
    pub fn dropped_by_category(&self) -> Vec<(EventCategory, u64, u64)> {
        let inner = self.inner.borrow();
        EventCategory::ALL
            .iter()
            .map(|&c| (c, inner.evicted[c as usize], inner.sampled_out[c as usize]))
            .collect()
    }

    /// A copy of the retained events, in journal order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.iter().copied().collect()
    }

    /// Consume the journal, returning the retained events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.inner.into_inner().events.into_iter().collect()
    }

    /// Stamp `kind` with the next sequence number, the monotone
    /// timestamp, this journal's worker id, and `trace`, then retain it
    /// subject to the sampling and capacity policy. Returns the stamped
    /// event whether or not it was retained — the server's tail
    /// subscriptions forward it to live observers either way.
    pub fn record_event(&self, kind: EventKind, trace: u64) -> TraceEvent {
        let ts_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut inner = self.inner.borrow_mut();
        let seq = inner.seq;
        inner.seq += 1;
        let ev = TraceEvent {
            seq,
            ts_ns,
            worker: self.worker,
            trace,
            kind,
        };
        self.store(&mut inner, ev);
        ev
    }

    /// Absorb an already-stamped event (the worker-merge path),
    /// re-stamping only its sequence number, and return the re-stamped
    /// event. This is what [`TraceSink::record_stamped`] does for a
    /// journal; callers that also fan events out to live observers use
    /// this directly for the authoritative stamp.
    pub fn record_absorbed(&self, ev: TraceEvent) -> TraceEvent {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.seq;
        inner.seq += 1;
        let ev = TraceEvent { seq, ..ev };
        self.store(&mut inner, ev);
        ev
    }

    /// The sampling + ring phase, shared by every record path. The
    /// caller already consumed a sequence number for `ev`.
    fn store(&self, inner: &mut JournalInner, ev: TraceEvent) {
        let cat = ev.kind.category() as usize;
        let nth = inner.seen[cat];
        inner.seen[cat] += 1;
        if !nth.is_multiple_of(self.cfg.rate(ev.kind.category())) {
            inner.sampled_out[cat] += 1;
            return;
        }
        if let Some(capacity) = self.cfg.capacity {
            if capacity == 0 {
                inner.evicted[cat] += 1;
                return;
            }
            while inner.events.len() >= capacity {
                if let Some(old) = inner.events.pop_front() {
                    inner.evicted[old.kind.category() as usize] += 1;
                }
            }
        }
        inner.events.push_back(ev);
    }
}

impl TraceSink for Journal {
    fn record(&self, kind: EventKind) {
        self.record_event(kind, 0);
    }

    fn record_traced(&self, kind: EventKind, trace: u64) {
        self.record_event(kind, trace);
    }

    /// Merged events keep their original timestamp, worker id, and
    /// trace id; only the sequence number is re-stamped, in arrival
    /// order, so the journal stays strictly `seq`-ordered and
    /// deterministic. The retention policy applies as for fresh events.
    fn record_stamped(&self, ev: TraceEvent) {
        self.record_absorbed(ev);
    }

    fn epoch(&self) -> Option<Instant> {
        Some(self.epoch)
    }
}

/// Fan one event stream out to several sinks (e.g. a [`Journal`] for
/// export *and* a [`MetricsRegistry`] for the run report).
pub struct Fanout<'a> {
    sinks: Vec<&'a dyn TraceSink>,
}

impl<'a> Fanout<'a> {
    /// A fanout over the given sinks, notified in order.
    pub fn new(sinks: Vec<&'a dyn TraceSink>) -> Fanout<'a> {
        Fanout { sinks }
    }
}

impl TraceSink for Fanout<'_> {
    fn record(&self, kind: EventKind) {
        for s in &self.sinks {
            s.record(kind);
        }
    }

    fn record_traced(&self, kind: EventKind, trace: u64) {
        for s in &self.sinks {
            s.record_traced(kind, trace);
        }
    }

    fn record_stamped(&self, ev: TraceEvent) {
        for s in &self.sinks {
            s.record_stamped(ev);
        }
    }

    /// The first member sink's epoch (journals before aggregators, in
    /// the order given to [`Fanout::new`]).
    fn epoch(&self) -> Option<Instant> {
        self.sinks.iter().find_map(|s| s.epoch())
    }
}

/// A log-scale (power-of-two buckets) histogram of `u64` samples. No
/// external deps: 65 buckets cover the full `u64` range; bucket `i > 0`
/// holds values `v` with `floor(log2(v)) == i - 1` (bucket 0 holds 0).
///
/// ```
/// use axml_core::trace::Histogram;
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 900, 1_000, 1_100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.max(), 1_100);
/// // The median falls in the bucket covering 512..=1023.
/// assert!(h.quantile(0.5) >= 3 && h.quantile(0.5) <= 1023);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for value `v`: 0 for 0, else `floor(log2 v) + 1`.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The largest value a bucket holds (its inclusive upper bound).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// An upper bound on the `q`-quantile (0 ≤ q ≤ 1): the upper bound
    /// of the first bucket whose cumulative count reaches `q·count`,
    /// clamped to the recorded maximum. Exact to within one power of
    /// two — the usual latency-histogram trade.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// Per-service aggregates maintained by a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct ServiceMetrics {
    /// Completed invocations ([`EventKind::Invoke`]).
    pub invocations: u64,
    /// Invocations that strictly grew a document.
    pub productive: u64,
    /// Delta-scheduler skips ([`EventKind::CallSkipped`]).
    pub skipped: u64,
    /// Match-cache hits while evaluating this service's body.
    pub cache_hits: u64,
    /// Match-cache misses while evaluating this service's body.
    pub cache_misses: u64,
    /// Result trees grafted across invocations.
    pub grafted: u64,
    /// Result trees returned across invocations.
    pub result_trees: u64,
    /// Invocation latency distribution, nanoseconds
    /// (p2p: provider-side evaluation latency).
    pub latency_ns: Histogram,
}

/// Global (service-independent) counters maintained by a
/// [`MetricsRegistry`].
#[derive(Clone, Copy, Debug, Default)]
pub struct GlobalMetrics {
    /// Engine/network rounds completed.
    pub rounds: u64,
    /// Calls selected for invocation.
    pub calls_selected: u64,
    /// Calls skipped by the delta scheduler.
    pub calls_skipped: u64,
    /// Subsumption checks performed while grafting.
    pub subsume_checks: u64,
    /// Result trees found already subsumed (not grafted).
    pub subsumed_results: u64,
    /// Graft batches.
    pub grafts: u64,
    /// In-place reductions.
    pub reduces: u64,
    /// Live nodes removed by reductions, total.
    pub nodes_pruned: u64,
    /// P2p messages sent.
    pub msgs_sent: u64,
    /// P2p messages received/processed.
    pub msgs_recv: u64,
    /// Matcher candidate sets served by document-index probes.
    pub index_probes: u64,
    /// Index probes that found a non-empty bucket.
    pub index_probe_hits: u64,
    /// Indexed-mode lookups that fell back to scanning.
    pub index_fallbacks: u64,
    /// Index maintenance reports ([`EventKind::IndexMaintain`]).
    pub index_maintains: u64,
    /// Index entries added by incremental maintenance.
    pub index_adds: u64,
    /// Index entries removed by incremental maintenance.
    pub index_removes: u64,
    /// Peak estimated index heap footprint over any host document, bytes.
    pub index_bytes_peak: u64,
    /// Parallel evaluation phases completed
    /// ([`EventKind::ParallelRound`]).
    pub parallel_rounds: u64,
    /// Worker-side evaluations ([`EventKind::WorkerEval`]).
    pub worker_evals: u64,
    /// Largest worker-pool size seen.
    pub workers_max: u32,
    /// Total wall-clock time spent in parallel evaluation phases, ns.
    pub parallel_eval_ns: u64,
    /// Match programs compiled ([`EventKind::PlanCompiled`]).
    pub programs_compiled: u64,
    /// Program-cache lookups served from cache.
    pub program_cache_hits: u64,
    /// Program-cache lookups that missed (and compiled).
    pub program_cache_misses: u64,
    /// Ops across all compiled programs.
    pub program_ops: u64,
    /// Shared (factored) ops across all compiled programs.
    pub program_shared_ops: u64,
    /// Total wall-clock time spent compiling programs, ns.
    pub compile_ns: u64,
    /// Server request frames received ([`EventKind::RequestRecv`]).
    pub requests_recv: u64,
    /// Server requests served ([`EventKind::RequestServed`]).
    pub requests_served: u64,
    /// Served requests whose response was an `error` frame.
    pub request_errors: u64,
    /// Query batches formed by the server's dataloader
    /// ([`EventKind::BatchFormed`]).
    pub batches_formed: u64,
    /// Query requests coalesced into those batches, total.
    pub batched_requests: u64,
    /// Largest batch coalesced.
    pub batch_max: u32,
    /// Subscription delta pushes ([`EventKind::SubscriptionPush`]).
    pub subscription_pushes: u64,
    /// Answer trees streamed across all subscription pushes.
    pub pushed_trees: u64,
}

/// Per-session aggregates maintained by a [`MetricsRegistry`] from the
/// `axml-server` request events.
#[derive(Clone, Debug, Default)]
pub struct SessionMetrics {
    /// Request frames received for this session.
    pub requests: u64,
    /// Requests answered with an `error` frame.
    pub errors: u64,
    /// Query batches evaluated against this session.
    pub batches: u64,
    /// Subscription delta pushes from this session.
    pub pushes: u64,
    /// Answer trees streamed to this session's subscribers.
    pub pushed_trees: u64,
    /// Receive-to-response request latency distribution, nanoseconds.
    pub latency_ns: Histogram,
}

struct MetricsInner {
    services: FxHashMap<Sym, ServiceMetrics>,
    globals: GlobalMetrics,
    /// Worker-side evaluation latency, per worker id (0-based).
    workers: FxHashMap<u32, Histogram>,
    /// Per-session server request aggregates.
    sessions: FxHashMap<Sym, SessionMetrics>,
    /// Server request latency across all sessions (the p50/p99 source).
    requests: Histogram,
}

/// A [`TraceSink`] that aggregates the event stream into per-service
/// metrics and global counters instead of storing it. Attach alone for
/// cheap always-on metrics, or behind a [`Fanout`] next to a
/// [`Journal`].
pub struct MetricsRegistry {
    inner: RefCell<MetricsInner>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: RefCell::new(MetricsInner {
                services: FxHashMap::default(),
                globals: GlobalMetrics::default(),
                workers: FxHashMap::default(),
                sessions: FxHashMap::default(),
                requests: Histogram::new(),
            }),
        }
    }

    /// The evaluation-latency histogram of one parallel worker
    /// (0-based id), if it appeared in the stream.
    pub fn worker_latency(&self, worker: u32) -> Option<Histogram> {
        self.inner.borrow().workers.get(&worker).cloned()
    }

    /// Ids of all parallel workers seen, ascending.
    pub fn worker_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.inner.borrow().workers.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The aggregates for one service, if it appeared in the stream.
    pub fn service(&self, name: Sym) -> Option<ServiceMetrics> {
        self.inner.borrow().services.get(&name).cloned()
    }

    /// The server-request aggregates for one session, if it appeared in
    /// the stream.
    pub fn session(&self, name: Sym) -> Option<SessionMetrics> {
        self.inner.borrow().sessions.get(&name).cloned()
    }

    /// Names of all sessions seen, sorted by name.
    pub fn session_names(&self) -> Vec<Sym> {
        let mut names: Vec<Sym> = self.inner.borrow().sessions.keys().copied().collect();
        names.sort_unstable_by_key(|s| s.as_str());
        names
    }

    /// The all-sessions server request latency histogram (nanoseconds),
    /// fed by [`EventKind::RequestServed`] — the p50/p99 source of the
    /// `server:` report line and the X19 experiment.
    pub fn request_latency(&self) -> Histogram {
        self.inner.borrow().requests.clone()
    }

    /// Names of all services seen, sorted by name.
    pub fn service_names(&self) -> Vec<Sym> {
        let mut names: Vec<Sym> = self.inner.borrow().services.keys().copied().collect();
        names.sort_unstable_by_key(|s| s.as_str());
        names
    }

    /// The global counters.
    pub fn globals(&self) -> GlobalMetrics {
        self.inner.borrow().globals
    }

    /// Render the human-readable run report: global counters followed by
    /// one row per service with invocation counts and latency quantiles
    /// (µs). This is the format the `EXPERIMENTS.md` observability
    /// tables are generated from.
    pub fn render_report(&self, title: &str) -> String {
        let inner = self.inner.borrow();
        let g = &inner.globals;
        let mut out = String::new();
        let _ = writeln!(out, "== run report: {title} ==");
        let _ = writeln!(
            out,
            "rounds {}  selected {}  skipped {}  grafts {}  reduces {} (pruned {})  \
             subsume-checks {} (subsumed {})  msgs {}/{}",
            g.rounds,
            g.calls_selected,
            g.calls_skipped,
            g.grafts,
            g.reduces,
            g.nodes_pruned,
            g.subsume_checks,
            g.subsumed_results,
            g.msgs_sent,
            g.msgs_recv,
        );
        let hit_rate = if g.index_probes == 0 {
            0.0
        } else {
            100.0 * g.index_probe_hits as f64 / g.index_probes as f64
        };
        let _ = writeln!(
            out,
            "index: probes {} (hit rate {:.1}%)  fallbacks {}  maintains {} (+{} -{})  peak {} B",
            g.index_probes,
            hit_rate,
            g.index_fallbacks,
            g.index_maintains,
            g.index_adds,
            g.index_removes,
            g.index_bytes_peak,
        );
        if g.parallel_rounds > 0 {
            let mut line = format!(
                "parallel: rounds {}  workers {}  worker-evals {}  eval-phase {} us total",
                g.parallel_rounds,
                g.workers_max,
                g.worker_evals,
                g.parallel_eval_ns / 1_000,
            );
            let mut ids: Vec<u32> = inner.workers.keys().copied().collect();
            ids.sort_unstable();
            for w in ids {
                let h = &inner.workers[&w];
                let _ = write!(
                    line,
                    "  [w{w}: {} evals p50 {} us]",
                    h.count(),
                    h.quantile(0.5) / 1_000,
                );
            }
            let _ = writeln!(out, "{line}");
        }
        if g.programs_compiled > 0 || g.program_cache_hits + g.program_cache_misses > 0 {
            let lookups = g.program_cache_hits + g.program_cache_misses;
            let hit_rate = if lookups == 0 {
                0.0
            } else {
                100.0 * g.program_cache_hits as f64 / lookups as f64
            };
            let _ = writeln!(
                out,
                "compile: programs {}  ops {} ({} shared)  cache hits {} / {} (hit rate {:.1}%)  \
                 compile time {} us",
                g.programs_compiled,
                g.program_ops,
                g.program_shared_ops,
                g.program_cache_hits,
                lookups,
                hit_rate,
                g.compile_ns / 1_000,
            );
        }
        if g.requests_recv > 0 || g.requests_served > 0 {
            let h = &inner.requests;
            let _ = writeln!(
                out,
                "server: requests {} served {} (errors {})  p50 {} us  p99 {} us  max {} us  \
                 batches {} (reqs {} max {})  pushes {} ({} trees)",
                g.requests_recv,
                g.requests_served,
                g.request_errors,
                h.quantile(0.5) / 1_000,
                h.quantile(0.99) / 1_000,
                h.max() / 1_000,
                g.batches_formed,
                g.batched_requests,
                g.batch_max,
                g.subscription_pushes,
                g.pushed_trees,
            );
            let mut names: Vec<Sym> = inner.sessions.keys().copied().collect();
            names.sort_unstable_by_key(|s| s.as_str());
            for name in names {
                let s = &inner.sessions[&name];
                let _ = writeln!(
                    out,
                    "  session {:<14} requests {:>6} (errors {})  batches {:>5}  \
                     pushes {:>5} ({} trees)  p50 {} us  p99 {} us",
                    name.as_str(),
                    s.requests,
                    s.errors,
                    s.batches,
                    s.pushes,
                    s.pushed_trees,
                    s.latency_ns.quantile(0.5) / 1_000,
                    s.latency_ns.quantile(0.99) / 1_000,
                );
            }
        }
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>10} {:>8} {:>6} {:>7} {:>8} {:>9} {:>9} {:>9}",
            "service",
            "invocs",
            "productive",
            "skipped",
            "hits",
            "misses",
            "grafted",
            "p50(us)",
            "p99(us)",
            "max(us)"
        );
        let mut names: Vec<Sym> = inner.services.keys().copied().collect();
        names.sort_unstable_by_key(|s| s.as_str());
        for name in names {
            let m = &inner.services[&name];
            let _ = writeln!(
                out,
                "{:<16} {:>7} {:>10} {:>8} {:>6} {:>7} {:>8} {:>9} {:>9} {:>9}",
                name.as_str(),
                m.invocations,
                m.productive,
                m.skipped,
                m.cache_hits,
                m.cache_misses,
                m.grafted,
                m.latency_ns.quantile(0.5) / 1_000,
                m.latency_ns.quantile(0.99) / 1_000,
                m.latency_ns.max() / 1_000,
            );
        }
        out
    }
}

impl TraceSink for MetricsRegistry {
    fn record(&self, kind: EventKind) {
        let mut inner = self.inner.borrow_mut();
        match kind {
            EventKind::RoundStart { .. } => {}
            EventKind::RoundEnd { .. } => inner.globals.rounds += 1,
            EventKind::CallSelected { .. } => inner.globals.calls_selected += 1,
            EventKind::CallSkipped { service, .. } => {
                inner.globals.calls_skipped += 1;
                inner
                    .services
                    .entry(service)
                    .or_default()
                    .skipped += 1;
            }
            EventKind::Invoke {
                service,
                changed,
                grafted,
                result_trees,
                dur_ns,
                ..
            } => {
                let m = inner
                    .services
                    .entry(service)
                    .or_default();
                m.invocations += 1;
                m.productive += u64::from(changed);
                m.grafted += u64::from(grafted);
                m.result_trees += u64::from(result_trees);
                m.latency_ns.record(dur_ns);
            }
            EventKind::CacheHit { service, .. } => {
                inner
                    .services
                    .entry(service)
                    .or_default()
                    .cache_hits += 1;
            }
            EventKind::CacheMiss { service, .. } => {
                inner
                    .services
                    .entry(service)
                    .or_default()
                    .cache_misses += 1;
            }
            EventKind::SubsumeCheck { subsumed, .. } => {
                inner.globals.subsume_checks += 1;
                inner.globals.subsumed_results += u64::from(subsumed);
            }
            EventKind::Graft { .. } => inner.globals.grafts += 1,
            EventKind::Reduce {
                nodes_before,
                nodes_after,
                ..
            } => {
                inner.globals.reduces += 1;
                inner.globals.nodes_pruned +=
                    u64::from(nodes_before.saturating_sub(nodes_after));
            }
            EventKind::IndexLookup {
                probes,
                probe_hits,
                fallbacks,
                ..
            } => {
                inner.globals.index_probes += u64::from(probes);
                inner.globals.index_probe_hits += u64::from(probe_hits);
                inner.globals.index_fallbacks += u64::from(fallbacks);
            }
            EventKind::IndexMaintain {
                adds,
                removes,
                bytes,
                ..
            } => {
                inner.globals.index_maintains += 1;
                inner.globals.index_adds += u64::from(adds);
                inner.globals.index_removes += u64::from(removes);
                inner.globals.index_bytes_peak = inner.globals.index_bytes_peak.max(bytes);
            }
            EventKind::MsgSend { .. } => inner.globals.msgs_sent += 1,
            EventKind::MsgRecv { .. } => inner.globals.msgs_recv += 1,
            EventKind::PeerEval {
                service, dur_ns, ..
            } => {
                let m = inner
                    .services
                    .entry(service)
                    .or_default();
                m.invocations += 1;
                m.latency_ns.record(dur_ns);
            }
            EventKind::WorkerEval { worker, dur_ns, .. } => {
                inner.globals.worker_evals += 1;
                inner
                    .workers
                    .entry(worker)
                    .or_default()
                    .record(dur_ns);
            }
            EventKind::ParallelRound {
                workers, dur_ns, ..
            } => {
                inner.globals.parallel_rounds += 1;
                inner.globals.workers_max = inner.globals.workers_max.max(workers);
                inner.globals.parallel_eval_ns =
                    inner.globals.parallel_eval_ns.saturating_add(dur_ns);
            }
            EventKind::PlanCompiled {
                ops,
                shared,
                dur_ns,
                ..
            } => {
                inner.globals.programs_compiled += 1;
                inner.globals.program_ops += u64::from(ops);
                inner.globals.program_shared_ops += u64::from(shared);
                inner.globals.compile_ns =
                    inner.globals.compile_ns.saturating_add(dur_ns);
            }
            EventKind::ProgramCacheHit { .. } => {
                inner.globals.program_cache_hits += 1;
            }
            EventKind::ProgramCacheMiss { .. } => {
                inner.globals.program_cache_misses += 1;
            }
            EventKind::RequestRecv { session, .. } => {
                inner.globals.requests_recv += 1;
                inner.sessions.entry(session).or_default().requests += 1;
            }
            EventKind::RequestServed {
                session,
                ok,
                dur_ns,
                ..
            } => {
                inner.globals.requests_served += 1;
                inner.globals.request_errors += u64::from(!ok);
                inner.requests.record(dur_ns);
                let s = inner.sessions.entry(session).or_default();
                s.errors += u64::from(!ok);
                s.latency_ns.record(dur_ns);
            }
            EventKind::BatchFormed { session, size, .. } => {
                inner.globals.batches_formed += 1;
                inner.globals.batched_requests += u64::from(size);
                inner.globals.batch_max = inner.globals.batch_max.max(size);
                inner.sessions.entry(session).or_default().batches += 1;
            }
            EventKind::SubscriptionPush {
                session, trees, ..
            } => {
                inner.globals.subscription_pushes += 1;
                inner.globals.pushed_trees += u64::from(trees);
                let s = inner.sessions.entry(session).or_default();
                s.pushes += 1;
                s.pushed_trees += u64::from(trees);
            }
        }
    }
}

/// Escape a string for embedding between JSON double quotes (the
/// exporter-side counterpart of the in-repo parser; also used by the
/// `axml-server` wire layer).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ts_ns: u64) -> f64 {
    ts_ns as f64 / 1_000.0
}

/// The fixed Chrome-trace thread lane (`tid`) of the `axml-server`
/// request events — between the peer lanes (2+) and the worker lanes
/// (1000+), so neither range shifts when a trace mixes all three.
pub const SERVER_TID: u64 = 500;

/// Export a journal as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object format). Load the result in
/// `chrome://tracing` or <https://ui.perfetto.dev>:
///
/// * rounds become nested `B`/`E` duration slices;
/// * invocations and peer evaluations become `X` complete slices with
///   their measured latency and `(doc, version)` / outcome args;
/// * skips, cache traffic, grafts, reductions, subsumption checks and
///   p2p messages become instant (`i`) events on the same timeline.
///
/// All engine events share `pid` 1 / `tid` 1 (the commit path is
/// single-threaded); p2p events get one `tid` lane per peer (assigned
/// in order of first appearance, tids 2+), and parallel-engine
/// [`EventKind::WorkerEval`] events get one lane per worker at
/// `tid 1000 + worker` — disjoint from the peer range so peer lane
/// numbering is unaffected by parallelism. `axml-server` request events
/// ([`EventKind::RequestRecv`] / [`EventKind::RequestServed`] /
/// [`EventKind::BatchFormed`] / [`EventKind::SubscriptionPush`]) share
/// the fixed `tid` 500 — the "server" swimlane, between the peer and
/// worker ranges. The export leads with `ph:"M"` metadata events naming
/// the process and every thread lane, and stable-sorts the events by
/// sequence number so an out-of-order slice (e.g. a hand-merged
/// journal) still renders deterministically.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = Vec::new();
    chrome_trace_to(events, &mut out).expect("Vec<u8> writes are infallible");
    String::from_utf8(out).expect("chrome rows are UTF-8")
}

/// Streaming variant of [`chrome_trace`]: writes the export directly to
/// `w` (one row at a time) instead of assembling one giant `String`, so
/// dumping a large ring journal does not double peak memory. Same
/// output, byte for byte.
pub fn chrome_trace_to(
    events: &[TraceEvent],
    w: &mut impl std::io::Write,
) -> std::io::Result<()> {
    // Stable order: by the journal's own seq stamp. Merged journals
    // are already seq-ordered; this makes the export robust to callers
    // concatenating event slices themselves.
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| e.seq);
    // Lane assignment: tid 1 is the engine; each peer acting in an
    // event (sender, receiver, or evaluator) gets its own tid; each
    // parallel worker gets the fixed lane 1000 + its id. The metadata
    // header must name every lane before the rows stream out, so a
    // first pass assigns lanes and a second pass renders.
    let mut lanes: Vec<(Sym, u64)> = Vec::new();
    let mut worker_lanes: Vec<u64> = Vec::new();
    let mut server_lane = false;
    let lane = |lanes: &mut Vec<(Sym, u64)>, peer: Sym| -> u64 {
        if let Some(&(_, t)) = lanes.iter().find(|(p, _)| *p == peer) {
            return t;
        }
        let t = lanes.len() as u64 + 2;
        lanes.push((peer, t));
        t
    };
    for ev in &ordered {
        match ev.kind {
            EventKind::MsgSend { from, .. } => {
                lane(&mut lanes, from);
            }
            EventKind::MsgRecv { peer, .. } | EventKind::PeerEval { peer, .. } => {
                lane(&mut lanes, peer);
            }
            EventKind::WorkerEval { worker, .. } => {
                let t = 1_000 + u64::from(worker);
                if !worker_lanes.contains(&t) {
                    worker_lanes.push(t);
                }
            }
            EventKind::RequestRecv { .. }
            | EventKind::RequestServed { .. }
            | EventKind::BatchFormed { .. }
            | EventKind::SubscriptionPush { .. } => server_lane = true,
            _ => {}
        }
    }
    worker_lanes.sort_unstable();
    // Second-pass lane lookup: every lane is assigned by now.
    let tid_of = |ev: &TraceEvent| -> u64 {
        match ev.kind {
            EventKind::MsgSend { from, .. } => lanes
                .iter()
                .find(|(p, _)| *p == from)
                .map_or(1, |&(_, t)| t),
            EventKind::MsgRecv { peer, .. } | EventKind::PeerEval { peer, .. } => lanes
                .iter()
                .find(|(p, _)| *p == peer)
                .map_or(1, |&(_, t)| t),
            EventKind::WorkerEval { worker, .. } => 1_000 + u64::from(worker),
            EventKind::RequestRecv { .. }
            | EventKind::RequestServed { .. }
            | EventKind::BatchFormed { .. }
            | EventKind::SubscriptionPush { .. } => SERVER_TID,
            _ => 1,
        }
    };

    w.write_all(b"{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")?;
    w.write_all(
        b"{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
          \"args\":{\"name\":\"positive-axml\"}},\n\
          {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
          \"args\":{\"name\":\"engine\"}}",
    )?;
    for (peer, tid) in &lanes {
        write!(
            w,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\
             \"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(peer.as_str())
        )?;
    }
    if server_lane {
        write!(
            w,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\
             \"tid\":{SERVER_TID},\"args\":{{\"name\":\"server\"}}}}",
        )?;
    }
    for tid in &worker_lanes {
        write!(
            w,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\
             \"tid\":{tid},\"args\":{{\"name\":\"worker {}\"}}}}",
            tid - 1_000
        )?;
    }
    for ev in &ordered {
        let row = chrome_row(ev, tid_of(ev));
        if row.is_empty() {
            continue;
        }
        w.write_all(b",\n")?;
        w.write_all(row.as_bytes())?;
    }
    w.write_all(b"\n]}\n")
}

fn chrome_row(ev: &TraceEvent, tid: u64) -> String {
    with_trace_arg(chrome_row_inner(ev, tid), ev.trace)
}

/// Append `"trace":N` to a rendered row's `args` object (adding the
/// object when the row has none) so request-scoped trace ids survive
/// the chrome export. Rows always end with either `…"args":{…}}` or a
/// bare `…}` (only `RoundStart` rows lack args), so suffix surgery is
/// unambiguous.
fn with_trace_arg(row: String, trace: u64) -> String {
    if trace == 0 || row.is_empty() {
        return row;
    }
    if let Some(stripped) = row.strip_suffix("}}") {
        let comma = if stripped.ends_with('{') { "" } else { "," };
        format!("{stripped}{comma}\"trace\":{trace}}}}}")
    } else if let Some(stripped) = row.strip_suffix('}') {
        format!("{stripped},\"args\":{{\"trace\":{trace}}}}}")
    } else {
        row
    }
}

fn chrome_row_inner(ev: &TraceEvent, tid: u64) -> String {
    let common = |name: &str, ph: &str, cat: &str, ts: f64| {
        format!(
            "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"cat\":\"{cat}\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{tid}",
            json_escape(name)
        )
    };
    let instant = |name: &str, cat: &str, args: String| {
        format!(
            "{},\"s\":\"t\",\"args\":{{{args}}}}}",
            common(name, "i", cat, us(ev.ts_ns))
        )
    };
    match ev.kind {
        EventKind::RoundStart { round } => {
            format!("{}}}", common(&format!("round {round}"), "B", "engine", us(ev.ts_ns)))
        }
        EventKind::RoundEnd { round, changed } => format!(
            "{},\"args\":{{\"round\":{round},\"changed\":{changed}}}}}",
            common(&format!("round {round}"), "E", "engine", us(ev.ts_ns))
        ),
        EventKind::CallSelected { doc, node, service } => instant(
            &format!("select {service}"),
            "schedule",
            format!("\"doc\":\"{}\",\"node\":{}", json_escape(doc.as_str()), node.0),
        ),
        EventKind::CallSkipped { doc, node, service } => instant(
            &format!("skip {service}"),
            "schedule",
            format!("\"doc\":\"{}\",\"node\":{}", json_escape(doc.as_str()), node.0),
        ),
        EventKind::Invoke {
            doc,
            node,
            service,
            changed,
            grafted,
            result_trees,
            doc_version,
            dur_ns,
        } => {
            let start = us(ev.ts_ns.saturating_sub(dur_ns));
            format!(
                "{},\"dur\":{:.3},\"args\":{{\"doc\":\"{}\",\"version\":{doc_version},\
                 \"node\":{},\"changed\":{changed},\"grafted\":{grafted},\"results\":{result_trees}}}}}",
                common(&format!("invoke {service}"), "X", "invoke", start),
                us(dur_ns),
                json_escape(doc.as_str()),
                node.0,
            )
        }
        EventKind::CacheHit { service, atom } => instant(
            &format!("hit {service}#{atom}"),
            "cache",
            format!("\"atom\":{atom}"),
        ),
        EventKind::CacheMiss { service, atom } => instant(
            &format!("miss {service}#{atom}"),
            "cache",
            format!("\"atom\":{atom}"),
        ),
        EventKind::SubsumeCheck { doc, subsumed } => instant(
            "subsume-check",
            "graft",
            format!("\"doc\":\"{}\",\"subsumed\":{subsumed}", json_escape(doc.as_str())),
        ),
        EventKind::Graft { doc, doc_version, trees } => instant(
            "graft",
            "graft",
            format!(
                "\"doc\":\"{}\",\"version\":{doc_version},\"trees\":{trees}",
                json_escape(doc.as_str())
            ),
        ),
        EventKind::Reduce {
            doc,
            nodes_before,
            nodes_after,
        } => instant(
            "reduce",
            "reduce",
            format!(
                "\"doc\":\"{}\",\"before\":{nodes_before},\"after\":{nodes_after}",
                json_escape(doc.as_str())
            ),
        ),
        EventKind::IndexLookup {
            service,
            atom,
            probes,
            probe_hits,
            fallbacks,
        } => instant(
            &format!("index {service}#{atom}"),
            "index",
            format!("\"probes\":{probes},\"probe_hits\":{probe_hits},\"fallbacks\":{fallbacks}"),
        ),
        EventKind::IndexMaintain {
            doc,
            adds,
            removes,
            bytes,
        } => instant(
            "index-maintain",
            "index",
            format!(
                "\"doc\":\"{}\",\"adds\":{adds},\"removes\":{removes},\"bytes\":{bytes}",
                json_escape(doc.as_str())
            ),
        ),
        EventKind::MsgSend { from, to, kind } => instant(
            &format!("send {}", kind.name()),
            "p2p",
            format!(
                "\"from\":\"{}\",\"to\":\"{}\"",
                json_escape(from.as_str()),
                json_escape(to.as_str())
            ),
        ),
        EventKind::MsgRecv { peer, kind } => instant(
            &format!("recv {}", kind.name()),
            "p2p",
            format!("\"peer\":\"{}\"", json_escape(peer.as_str())),
        ),
        EventKind::PeerEval { peer, service, dur_ns } => {
            let start = us(ev.ts_ns.saturating_sub(dur_ns));
            format!(
                "{},\"dur\":{:.3},\"args\":{{\"peer\":\"{}\"}}}}",
                common(&format!("eval {service}"), "X", "p2p", start),
                us(dur_ns),
                json_escape(peer.as_str()),
            )
        }
        EventKind::WorkerEval {
            worker,
            doc,
            node,
            service,
            result_trees,
            dur_ns,
        } => {
            let start = us(ev.ts_ns.saturating_sub(dur_ns));
            format!(
                "{},\"dur\":{:.3},\"args\":{{\"worker\":{worker},\"doc\":\"{}\",\
                 \"node\":{},\"results\":{result_trees}}}}}",
                common(&format!("eval {service}"), "X", "parallel", start),
                us(dur_ns),
                json_escape(doc.as_str()),
                node.0,
            )
        }
        EventKind::ParallelRound {
            round,
            workers,
            evaluated,
            dur_ns,
        } => {
            let start = us(ev.ts_ns.saturating_sub(dur_ns));
            format!(
                "{},\"dur\":{:.3},\"args\":{{\"round\":{round},\"workers\":{workers},\
                 \"evaluated\":{evaluated}}}}}",
                common(&format!("parallel round {round}"), "X", "parallel", start),
                us(dur_ns),
            )
        }
        EventKind::PlanCompiled {
            service,
            atoms,
            ops,
            shared,
            dur_ns,
        } => {
            let start = us(ev.ts_ns.saturating_sub(dur_ns));
            format!(
                "{},\"dur\":{:.3},\"args\":{{\"atoms\":{atoms},\"ops\":{ops},\
                 \"shared\":{shared}}}}}",
                common(&format!("compile {service}"), "X", "compile", start),
                us(dur_ns),
            )
        }
        EventKind::ProgramCacheHit { service } => {
            instant(&format!("program hit {service}"), "compile", String::new())
        }
        EventKind::ProgramCacheMiss { service } => {
            instant(&format!("program miss {service}"), "compile", String::new())
        }
        EventKind::RequestRecv { session, kind, id } => instant(
            &format!("recv {}", kind.name()),
            "server",
            format!("\"session\":\"{}\",\"id\":{id}", json_escape(session.as_str())),
        ),
        EventKind::RequestServed {
            session,
            kind,
            id,
            ok,
            dur_ns,
        } => {
            let start = us(ev.ts_ns.saturating_sub(dur_ns));
            format!(
                "{},\"dur\":{:.3},\"args\":{{\"session\":\"{}\",\"id\":{id},\"ok\":{ok}}}}}",
                common(&format!("serve {}", kind.name()), "X", "server", start),
                us(dur_ns),
                json_escape(session.as_str()),
            )
        }
        EventKind::BatchFormed {
            session,
            size,
            dur_ns,
        } => {
            let start = us(ev.ts_ns.saturating_sub(dur_ns));
            format!(
                "{},\"dur\":{:.3},\"args\":{{\"session\":\"{}\",\"size\":{size}}}}}",
                common("batch", "X", "server", start),
                us(dur_ns),
                json_escape(session.as_str()),
            )
        }
        EventKind::SubscriptionPush {
            session,
            sub,
            trees,
            round,
            version,
        } => instant(
            "push",
            "server",
            format!(
                "\"session\":\"{}\",\"sub\":{sub},\"trees\":{trees},\
                 \"round\":{round},\"version\":{version}",
                json_escape(session.as_str())
            ),
        ),
    }
}

// ---------------------------------------------------------------------
// Chrome-trace validation: a minimal JSON parser (no external deps)
// plus the structural checks chrome://tracing / Perfetto rely on.
// ---------------------------------------------------------------------

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            match self.peek().and_then(|h| (h as char).to_digit(16)) {
                Some(d) => {
                    v = v * 16 + d;
                    self.pos += 1;
                }
                None => return Err(self.err("bad \\u escape")),
            }
        }
        Ok(v)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow to complete the pair.
                                self.expect(b'\\').and_then(|()| {
                                    self.expect(b'u')
                                })?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let cp = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .expect("paired surrogates are valid")
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                                    .expect("non-surrogate BMP scalar")
                            };
                            out.push(c);
                        }
                        Some(e @ (b'"' | b'\\' | b'/')) => {
                            self.pos += 1;
                            out.push(e as char);
                        }
                        Some(b'b') => {
                            self.pos += 1;
                            out.push('\u{0008}');
                        }
                        Some(b'f') => {
                            self.pos += 1;
                            out.push('\u{000C}');
                        }
                        Some(b'n') => {
                            self.pos += 1;
                            out.push('\n');
                        }
                        Some(b'r') => {
                            self.pos += 1;
                            out.push('\r');
                        }
                        Some(b't') => {
                            self.pos += 1;
                            out.push('\t');
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 scalar: the input came in as a
                    // &str, so the sequence is valid — copy it through.
                    let start = self.pos;
                    self.pos += 1;
                    while matches!(self.peek(), Some(b) if b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is a str"),
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        // Integral numbers spanning the full i64/u64 range are kept
        // lossless — request ids must be echoed verbatim
        // (docs/protocol.md) and f64 rounds above 2^53.
        if integral {
            if let Ok(n) = text.parse::<i128>() {
                if (i64::MIN as i128..=u64::MAX as i128).contains(&n) {
                    return Ok(JsonValue::Int(n));
                }
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }

    /// Parse any JSON value into a [`JsonValue`] tree.
    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.parse_number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }
}

/// A fully-decoded JSON value (strings with their escapes resolved,
/// including `\uXXXX` surrogate pairs). Parsed by [`parse_json`]; the
/// decode side of the trace exporters and the `axml-server` wire layer.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number within the `i64`/`u64` span, kept lossless
    /// (`i128` covers both ends) so 64-bit ids survive a round trip.
    Int(i128),
    /// Any other number (fractional, exponent form, or beyond 64-bit
    /// integer range), as an IEEE double.
    Num(f64),
    /// A string, escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object: fields in source order (duplicate keys preserved;
    /// lookups take the first).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object-field lookup by key (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (lossy above 2^53 for
    /// [`JsonValue::Int`] values outside `f64`'s exact-integer range).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            JsonValue::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative
    /// integral number in `u64` range. Lossless for
    /// [`JsonValue::Int`] — the variant every plain integer literal
    /// parses into.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(n) => u64::try_from(*n).ok(),
            JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 1.8e19 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render a scalar for [`ChromeEvent::args`]; containers summarize.
    fn render(&self) -> String {
        match self {
            JsonValue::Null => "null".to_string(),
            JsonValue::Bool(b) => b.to_string(),
            JsonValue::Int(n) => n.to_string(),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    format!("{}", *n as i64)
                } else {
                    n.to_string()
                }
            }
            JsonValue::Str(s) => s.clone(),
            JsonValue::Arr(items) => format!("[{} items]", items.len()),
            JsonValue::Obj(fields) => format!("{{{} keys}}", fields.len()),
        }
    }
}

/// Parse one complete JSON document into a [`JsonValue`], rejecting
/// trailing non-whitespace — the in-repo replacement for a JSON
/// dependency, shared by [`parse_chrome_trace`] and the `axml-server`
/// frame decoder. Errors carry the byte offset of the failure.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let mut p = JsonParser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.err("trailing content after JSON document"));
    }
    Ok(v)
}

/// One event parsed back from a [`chrome_trace`] export.
///
/// Metadata events (`ph == "M"`) carry no timestamp; their `ts` reads
/// as `0.0` and `tid` defaults to `0` when absent (`process_name`).
/// `args` values are scalars rendered to strings.
#[derive(Clone, Debug, PartialEq)]
pub struct ChromeEvent {
    /// Event name (e.g. `invoke f`, `send call`, `thread_name`).
    pub name: String,
    /// Phase: `B`/`E` durations, `X` complete, `i` instant, `M` metadata.
    pub ph: String,
    /// Category (`engine`, `schedule`, `invoke`, `cache`, `graft`,
    /// `reduce`, `p2p`); empty when absent (metadata events).
    pub cat: String,
    /// Timestamp in microseconds (0.0 for metadata events).
    pub ts: f64,
    /// Process id lane.
    pub pid: i64,
    /// Thread id lane (tid 1 = engine, 2+ = one per peer).
    pub tid: i64,
    /// The event's `args` object, with scalar values stringified.
    pub args: Vec<(String, String)>,
}

impl ChromeEvent {
    /// Look up an `args` entry by key.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse a [`chrome_trace`] export back into its events, decoding all
/// string escapes — the round-trip counterpart of the exporter. Every
/// event must carry the keys the trace viewers require: `name`/`ph`/
/// `pid` always, plus `ts`/`tid` for non-metadata phases.
pub fn parse_chrome_trace(json: &str) -> Result<Vec<ChromeEvent>, String> {
    let mut p = JsonParser::new(json);
    let top = p.parse_value()?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.err("trailing content after JSON document"));
    }
    let JsonValue::Obj(fields) = top else {
        return Err("top level is not an object".to_string());
    };
    let Some((_, events)) = fields.iter().find(|(k, _)| k == "traceEvents")
    else {
        return Err("missing \"traceEvents\" key".to_string());
    };
    let JsonValue::Arr(items) = events else {
        return Err("traceEvents is not an array".to_string());
    };
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let JsonValue::Obj(fields) = item else {
            return Err("traceEvents contains non-object elements".to_string());
        };
        let get = |k: &str| {
            fields.iter().find(|(f, _)| f == k).map(|(_, v)| v)
        };
        let str_field = |k: &str| match get(k) {
            Some(JsonValue::Str(s)) => Ok(s.clone()),
            Some(_) => Err(format!("event {i}: key \"{k}\" is not a string")),
            None => Err(format!("event {i} is missing key \"{k}\"")),
        };
        let num_field = |k: &str| match get(k).map(JsonValue::as_f64) {
            Some(Some(n)) => Ok(n),
            Some(None) => Err(format!("event {i}: key \"{k}\" is not a number")),
            None => Err(format!("event {i} is missing key \"{k}\"")),
        };
        let name = str_field("name")?;
        let ph = str_field("ph")?;
        let cat = str_field("cat").unwrap_or_default();
        let pid = num_field("pid")? as i64;
        let (ts, tid) = if ph == "M" {
            // Metadata events have no timeline position; tid is
            // optional (process_name applies to the whole process).
            (0.0, num_field("tid").unwrap_or(0.0) as i64)
        } else {
            (num_field("ts")?, num_field("tid")? as i64)
        };
        let args = match get("args") {
            Some(JsonValue::Obj(kvs)) => kvs
                .iter()
                .map(|(k, v)| (k.clone(), v.render()))
                .collect(),
            _ => Vec::new(),
        };
        out.push(ChromeEvent {
            name,
            ph,
            cat,
            ts,
            pid,
            tid,
            args,
        });
    }
    Ok(out)
}

/// Validate a [`chrome_trace`] export without a browser: the string must
/// be well-formed JSON, a top-level object with a `traceEvents` array,
/// and every event object must carry the keys the trace viewers
/// require (`name`/`ph`/`ts`/`pid`/`tid`; metadata events only
/// `name`/`ph`/`pid`). Returns the number of non-metadata events, i.e.
/// the number of journal events the export represents.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let events = parse_chrome_trace(json)?;
    Ok(events.iter().filter(|e| e.ph != "M").count())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Sym {
        Sym::intern(s)
    }

    #[test]
    fn histogram_bucketing_is_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Upper bounds are inclusive and aligned with the index map.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > Histogram::bucket_upper_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!((h.count(), h.min(), h.max(), h.mean()), (0, 0, 0, 0));
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.mean(), 50);
        // The true median is 50; the log bucket answer is its bucket's
        // upper bound (63), clamped within [median, 2*median).
        let p50 = h.quantile(0.5);
        assert!((50..100).contains(&p50), "p50={p50}");
        // p100 is exactly the max.
        assert_eq!(h.quantile(1.0), 100);
        // Quantiles are monotone in q.
        assert!(h.quantile(0.1) <= h.quantile(0.9));
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(4);
        a.record(5);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 4);
        assert_eq!(a.max(), 1_000);
        assert_eq!(a.sum(), 1_009);
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 4);
    }

    #[test]
    fn histogram_empty_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0, "empty min reads 0, not the u64::MAX sentinel");
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
    }

    #[test]
    fn histogram_single_sample_pins_every_stat() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!((h.count(), h.min(), h.max()), (1, 42, 42));
        assert_eq!(h.mean(), 42);
        // Every quantile of a one-sample distribution is that sample
        // (the bucket bound 63 is clamped to the recorded max).
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 42, "q={q}");
        }
        // A zero-valued sample exercises bucket 0 exactly.
        let mut z = Histogram::new();
        z.record(0);
        assert_eq!((z.count(), z.min(), z.max(), z.quantile(0.5)), (1, 0, 0, 0));
    }

    #[test]
    fn histogram_saturates_at_the_top_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // The sum saturates instead of wrapping, so the mean stays an
        // upper bound rather than garbage.
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.mean(), u64::MAX / 2);
    }

    #[test]
    fn histogram_merge_of_disjoint_ranges() {
        // a holds only tiny samples, b only huge ones: the merge must
        // keep both tails intact.
        let mut a = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            a.record(v);
        }
        let mut b = Histogram::new();
        for v in [1u64 << 40, (1 << 40) + 1, u64::MAX] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), u64::MAX);
        assert_eq!(a.quantile(0.0), 0);
        assert_eq!(a.quantile(1.0), u64::MAX);
        // The low quantiles still resolve inside the small buckets.
        assert!(a.quantile(0.5) <= 3, "p50={}", a.quantile(0.5));
        // Merging the other way agrees on the aggregate stats.
        let mut c = Histogram::new();
        for v in [1u64 << 40, (1 << 40) + 1, u64::MAX] {
            c.record(v);
        }
        let mut d = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            c.record(v);
            d.record(v);
        }
        d.merge(&b);
        assert_eq!(c.count(), d.count());
        assert_eq!(c.min(), d.min());
        assert_eq!(c.max(), d.max());
        assert_eq!(c.sum(), d.sum());
    }

    #[test]
    fn journal_orders_events_strictly() {
        let j = Journal::new();
        for i in 0..100u64 {
            j.record(EventKind::RoundStart { round: i });
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 100);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq, "seq must strictly increase");
            assert!(w[0].ts_ns <= w[1].ts_ns, "timestamps must be monotone");
        }
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[99].seq, 99);
        assert_eq!(j.len(), 100);
        assert_eq!(j.into_events().len(), 100);
    }

    #[test]
    fn disabled_tracer_never_constructs_events() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit(|| panic!("closure must not run when disabled"));
    }

    #[test]
    fn ring_journal_evicts_oldest_and_counts_drops() {
        let j = Journal::bounded(10);
        for i in 0..25u64 {
            j.record(EventKind::RoundStart { round: i });
        }
        let events = j.snapshot();
        assert_eq!(j.len(), 10);
        // The *newest* 10 events survive, seq stamps intact.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (15..25).collect::<Vec<u64>>());
        assert_eq!(j.dropped(), 15);
        assert_eq!(j.dropped_evicted(), 15);
        assert_eq!(j.dropped_sampled(), 0);
        let by_cat = j.dropped_by_category();
        let engine = by_cat
            .iter()
            .find(|(c, _, _)| *c == EventCategory::Engine)
            .unwrap();
        assert_eq!((engine.1, engine.2), (15, 0));
        // Seq numbers keep advancing past evictions.
        let ev = j.record_event(EventKind::RoundStart { round: 99 }, 7);
        assert_eq!(ev.seq, 25);
        assert_eq!(ev.trace, 7);
    }

    #[test]
    fn sampling_keeps_one_in_n_per_category_and_preserves_seq() {
        let cfg = JournalConfig::unbounded().with_sample(EventCategory::Cache, 4);
        let j = Journal::with_config(cfg);
        for i in 0..12u64 {
            j.record(EventKind::CacheHit {
                service: sym("f"),
                atom: i as u32,
            });
            // An unsampled category is untouched by the cache rate.
            j.record(EventKind::RoundStart { round: i });
        }
        let events = j.snapshot();
        // 3 of 12 cache events kept (every 4th, starting with the
        // first), all 12 engine events kept.
        let cache: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.kind.category() == EventCategory::Cache)
            .collect();
        assert_eq!(cache.len(), 3);
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind.category() == EventCategory::Engine)
                .count(),
            12
        );
        // Sampled-out events still consumed a seq: the kept cache
        // events sit 8 seq apart (4 cache slots × 2 interleaved kinds).
        assert_eq!(cache[1].seq - cache[0].seq, 8);
        assert_eq!(j.dropped(), 9);
        assert_eq!(j.dropped_sampled(), 9);
        assert_eq!(j.dropped_evicted(), 0);
        // Strict global seq order over whatever is retained.
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn default_journal_config_is_a_bounded_ring() {
        let cfg = JournalConfig::default();
        assert_eq!(cfg.capacity, Some(DEFAULT_JOURNAL_CAPACITY));
        assert!(cfg.sample.iter().all(|&r| r == 1));
        // record_stamped (the worker-merge path) also honors capacity.
        let j = Journal::bounded(2);
        for seq in 0..5u64 {
            j.record_stamped(TraceEvent {
                seq,
                ts_ns: seq,
                worker: 1,
                trace: 0,
                kind: EventKind::RoundStart { round: seq },
            });
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped_evicted(), 3);
    }

    #[test]
    fn event_categories_parse_and_cover_the_taxonomy() {
        for &cat in &EventCategory::ALL {
            assert_eq!(EventCategory::parse(cat.name()), Some(cat));
        }
        assert_eq!(EventCategory::parse("nope"), None);
    }

    #[test]
    fn tracer_stamps_trace_ids_on_emitted_events() {
        let j = Journal::new();
        let t = Tracer::new(&j).with_trace(42);
        assert_eq!(t.trace_id(), 42);
        t.emit(|| EventKind::RoundStart { round: 0 });
        let events = j.snapshot();
        assert_eq!(events[0].trace, 42);
        // with_trace_arg surfaces the id in the chrome export.
        let json = chrome_trace(&events);
        assert!(json.contains("\"trace\":42"), "{json}");
        assert!(validate_chrome_trace(&json).is_ok());
    }

    #[test]
    fn fanout_feeds_every_sink() {
        let j = Journal::new();
        let m = MetricsRegistry::new();
        let fan = Fanout::new(vec![&j, &m]);
        let t = Tracer::new(&fan);
        assert!(t.enabled());
        t.emit(|| EventKind::Invoke {
            doc: sym("d"),
            node: NodeId(1),
            service: sym("f"),
            changed: true,
            grafted: 2,
            result_trees: 3,
            doc_version: 7,
            dur_ns: 1_500,
        });
        assert_eq!(j.len(), 1);
        let sm = m.service(sym("f")).unwrap();
        assert_eq!(sm.invocations, 1);
        assert_eq!(sm.productive, 1);
        assert_eq!(sm.grafted, 2);
        assert_eq!(sm.result_trees, 3);
        assert_eq!(sm.latency_ns.count(), 1);
    }

    #[test]
    fn metrics_aggregate_the_taxonomy() {
        let m = MetricsRegistry::new();
        m.record(EventKind::RoundStart { round: 0 });
        m.record(EventKind::CallSelected {
            doc: sym("d"),
            node: NodeId(0),
            service: sym("f"),
        });
        m.record(EventKind::CacheMiss {
            service: sym("f"),
            atom: 0,
        });
        m.record(EventKind::CacheHit {
            service: sym("f"),
            atom: 1,
        });
        m.record(EventKind::SubsumeCheck {
            doc: sym("d"),
            subsumed: false,
        });
        m.record(EventKind::Graft {
            doc: sym("d"),
            doc_version: 3,
            trees: 2,
        });
        m.record(EventKind::Reduce {
            doc: sym("d"),
            nodes_before: 10,
            nodes_after: 8,
        });
        m.record(EventKind::Invoke {
            doc: sym("d"),
            node: NodeId(0),
            service: sym("f"),
            changed: false,
            grafted: 0,
            result_trees: 1,
            doc_version: 3,
            dur_ns: 10,
        });
        m.record(EventKind::CallSkipped {
            doc: sym("d"),
            node: NodeId(0),
            service: sym("f"),
        });
        m.record(EventKind::MsgSend {
            from: sym("a"),
            to: sym("b"),
            kind: MsgKind::Call,
        });
        m.record(EventKind::MsgRecv {
            peer: sym("b"),
            kind: MsgKind::Call,
        });
        m.record(EventKind::PeerEval {
            peer: sym("b"),
            service: sym("g"),
            dur_ns: 99,
        });
        m.record(EventKind::RoundEnd {
            round: 0,
            changed: true,
        });
        let g = m.globals();
        assert_eq!(g.rounds, 1);
        assert_eq!(g.calls_selected, 1);
        assert_eq!(g.calls_skipped, 1);
        assert_eq!(g.subsume_checks, 1);
        assert_eq!(g.subsumed_results, 0);
        assert_eq!(g.grafts, 1);
        assert_eq!(g.reduces, 1);
        assert_eq!(g.nodes_pruned, 2);
        assert_eq!(g.msgs_sent, 1);
        assert_eq!(g.msgs_recv, 1);
        let f = m.service(sym("f")).unwrap();
        assert_eq!(f.invocations, 1);
        assert_eq!(f.skipped, 1);
        assert_eq!(f.cache_hits, 1);
        assert_eq!(f.cache_misses, 1);
        let report = m.render_report("test");
        assert!(report.contains("run report: test"));
        assert!(report.contains("f"));
        assert!(report.contains("g"));
        assert_eq!(m.service_names(), vec![sym("f"), sym("g")]);
    }

    #[test]
    fn chrome_export_validates_and_counts() {
        let j = Journal::new();
        let t = Tracer::new(&j);
        t.emit(|| EventKind::RoundStart { round: 0 });
        t.emit(|| EventKind::CallSelected {
            doc: sym("d\"quoted\""),
            node: NodeId(4),
            service: sym("f"),
        });
        t.emit(|| EventKind::Invoke {
            doc: sym("d\"quoted\""),
            node: NodeId(4),
            service: sym("f"),
            changed: true,
            grafted: 1,
            result_trees: 1,
            doc_version: 1,
            dur_ns: 2_000,
        });
        t.emit(|| EventKind::CacheMiss {
            service: sym("f"),
            atom: 0,
        });
        t.emit(|| EventKind::Reduce {
            doc: sym("d\"quoted\""),
            nodes_before: 5,
            nodes_after: 5,
        });
        t.emit(|| EventKind::MsgSend {
            from: sym("a"),
            to: sym("b"),
            kind: MsgKind::Response,
        });
        t.emit(|| EventKind::RoundEnd {
            round: 0,
            changed: true,
        });
        let json = chrome_trace(&j.snapshot());
        let n = validate_chrome_trace(&json).expect("export must validate");
        assert_eq!(n, 7);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("").is_err());
        assert!(validate_chrome_trace("[]").is_err(), "array at top level");
        assert!(validate_chrome_trace("{\"foo\": 1}").is_err(), "no traceEvents");
        assert!(
            validate_chrome_trace("{\"traceEvents\": [{\"name\":\"x\"}]}").is_err(),
            "event missing required keys"
        );
        assert!(
            validate_chrome_trace("{\"traceEvents\": [1,2]}").is_err(),
            "non-object events"
        );
        assert!(validate_chrome_trace("{\"traceEvents\": []}").unwrap() == 0);
        let ok = "{\"traceEvents\": [{\"name\":\"x\",\"ph\":\"i\",\"ts\":0.5,\
                  \"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{\"k\":\"v\"}}]}";
        assert_eq!(validate_chrome_trace(ok).unwrap(), 1);
        assert!(validate_chrome_trace("{\"traceEvents\": []} trailing").is_err());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("n\nl"), "n\\nl");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parser_keeps_64_bit_integers_lossless() {
        // Above 2^53 an f64 rounds; ids must round-trip verbatim.
        for id in [u64::MAX, u64::MAX - 1, (1 << 53) + 1, 0] {
            let v = parse_json(&id.to_string()).unwrap();
            assert_eq!(v, JsonValue::Int(id as i128), "{id}");
            assert_eq!(v.as_u64(), Some(id), "{id}");
            assert_eq!(v.render(), id.to_string(), "{id}");
        }
        assert_eq!(
            parse_json("-9223372036854775808").unwrap(),
            JsonValue::Int(i64::MIN as i128)
        );
        assert_eq!(parse_json("-1").unwrap().as_u64(), None);
        // Fractional, exponent-form, and beyond-64-bit numbers stay
        // doubles.
        assert_eq!(parse_json("1.5").unwrap(), JsonValue::Num(1.5));
        assert_eq!(parse_json("1e3").unwrap(), JsonValue::Num(1000.0));
        assert_eq!(parse_json("2.0").unwrap().as_u64(), Some(2));
        assert_eq!(
            parse_json("99999999999999999999999").unwrap(),
            JsonValue::Num(1e23)
        );
        assert_eq!(parse_json("18446744073709551615").unwrap().as_f64(), Some(u64::MAX as f64));
    }

    #[test]
    fn parser_decodes_escapes_and_unicode() {
        let mut p = JsonParser::new(r#""a\"b\\c\/d\n\tAé""#);
        assert_eq!(p.parse_string().unwrap(), "a\"b\\c/d\n\tAé");
        // Surrogate pair: U+1F600.
        let mut p = JsonParser::new(r#""😀""#);
        assert_eq!(p.parse_string().unwrap(), "😀");
        // Raw (unescaped) multi-byte UTF-8 passes through verbatim.
        let mut p = JsonParser::new("\"héllo — 日本語\"");
        assert_eq!(p.parse_string().unwrap(), "héllo — 日本語");
        // Lone surrogates are rejected.
        assert!(JsonParser::new(r#""\ud83d""#).parse_string().is_err());
        assert!(JsonParser::new(r#""\ude00""#).parse_string().is_err());
        assert!(JsonParser::new(r#""\ud83dx""#).parse_string().is_err());
    }

    /// Build a journal around a doc/peer name and export it.
    fn trace_with_names(doc: &str, peer: &str) -> (String, usize) {
        let j = Journal::new();
        let t = Tracer::new(&j);
        t.emit(|| EventKind::RoundStart { round: 0 });
        t.emit(|| EventKind::CallSelected {
            doc: sym(doc),
            node: NodeId(3),
            service: sym("f"),
        });
        t.emit(|| EventKind::MsgSend {
            from: sym(peer),
            to: sym("other"),
            kind: MsgKind::Call,
        });
        t.emit(|| EventKind::RoundEnd {
            round: 0,
            changed: false,
        });
        let n = j.len();
        (chrome_trace(&j.snapshot()), n)
    }

    #[test]
    fn chrome_trace_round_trips_hostile_names() {
        // Doc and peer names bearing quotes, backslashes, control
        // characters, and non-ASCII must survive export → parse intact.
        for name in [
            "doc \"quoted\" \\slashed\\",
            "tab\there\nnewline",
            "héllo — 日本語 😀",
            "ctrl\u{1}\u{1f}end",
        ] {
            let (json, n) = trace_with_names(name, name);
            assert_eq!(
                validate_chrome_trace(&json).unwrap(),
                n,
                "name={name:?}"
            );
            let events = parse_chrome_trace(&json).unwrap();
            let select = events
                .iter()
                .find(|e| e.name == "select f")
                .expect("CallSelected row survives");
            assert_eq!(select.arg("doc"), Some(name), "doc arg round-trips");
            let send = events
                .iter()
                .find(|e| e.name == "send call")
                .expect("MsgSend row survives");
            assert_eq!(send.arg("from"), Some(name), "peer arg round-trips");
            // The peer's thread_name metadata carries the same name.
            let lane = events
                .iter()
                .find(|e| {
                    e.ph == "M"
                        && e.name == "thread_name"
                        && e.tid == send.tid
                })
                .expect("peer lane is named");
            assert_eq!(lane.arg("name"), Some(name));
        }
    }

    #[test]
    fn chrome_trace_gives_each_peer_its_own_lane() {
        let j = Journal::new();
        let t = Tracer::new(&j);
        t.emit(|| EventKind::RoundStart { round: 0 });
        for (a, b) in [("p1", "p2"), ("p2", "p1"), ("p3", "p1")] {
            t.emit(|| EventKind::MsgSend {
                from: sym(a),
                to: sym(b),
                kind: MsgKind::Call,
            });
            t.emit(|| EventKind::MsgRecv {
                peer: sym(b),
                kind: MsgKind::Call,
            });
        }
        t.emit(|| EventKind::PeerEval {
            peer: sym("p2"),
            service: sym("f"),
            dur_ns: 10,
        });
        t.emit(|| EventKind::RoundEnd {
            round: 0,
            changed: false,
        });
        let json = chrome_trace(&j.snapshot());
        let events = parse_chrome_trace(&json).unwrap();
        // Engine events sit on tid 1; each peer has a distinct tid ≥ 2.
        let tid_of = |name: &str| {
            events
                .iter()
                .find(|e| {
                    e.ph == "M"
                        && e.name == "thread_name"
                        && e.arg("name") == Some(name)
                })
                .map(|e| e.tid)
        };
        assert_eq!(tid_of("engine"), Some(1));
        let tids: Vec<i64> = ["p1", "p2", "p3"]
            .iter()
            .map(|p| tid_of(p).expect("every peer gets a lane"))
            .collect();
        assert_eq!(tids, vec![2, 3, 4], "lanes in order of first appearance");
        assert!(events
            .iter()
            .any(|e| e.ph == "M" && e.name == "process_name"));
        for e in &events {
            match e.name.as_str() {
                "round 0" => assert_eq!(e.tid, 1),
                n if n.starts_with("send") => {
                    assert!(e.tid >= 2, "p2p events leave the engine lane")
                }
                _ => {}
            }
        }
        // The eval slice sits on its evaluator's lane.
        let eval = events.iter().find(|e| e.name == "eval f").unwrap();
        assert_eq!(Some(eval.tid), tid_of("p2"));
    }
}
