//! Serializers: the compact paper syntax and an indented pretty form.

use crate::tree::{NodeId, Tree};
use std::fmt::Write as _;

/// Render the subtree at `n` in compact syntax (parseable by
/// [`crate::parse::parse_tree`]). Children are emitted in a
/// deterministic (sorted) order so output is stable across runs.
pub fn compact_at(t: &Tree, n: NodeId) -> String {
    let mut kid_strs: Vec<String> = t.children(n).iter().map(|&c| compact_at(t, c)).collect();
    kid_strs.sort_unstable();
    let mut out = String::new();
    let _ = write!(out, "{}", t.marking(n));
    if !kid_strs.is_empty() {
        out.push('{');
        out.push_str(&kid_strs.join(","));
        out.push('}');
    }
    out
}

/// Render the whole tree in compact syntax.
pub fn compact(t: &Tree) -> String {
    compact_at(t, t.root())
}

/// Render the whole tree with indentation, one node per line.
pub fn pretty(t: &Tree) -> String {
    fn go(t: &Tree, n: NodeId, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = writeln!(out, "{}", t.marking(n));
        let mut kids: Vec<NodeId> = t.children(n).to_vec();
        kids.sort_unstable_by_key(|&c| compact_at(t, c));
        for c in kids {
            go(t, c, depth + 1, out);
        }
    }
    let mut out = String::new();
    go(t, t.root(), 0, &mut out);
    out
}

impl std::fmt::Display for Tree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&compact(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;
    use crate::subsume::equivalent;

    #[test]
    fn compact_roundtrip() {
        for src in [
            "a",
            r#"a{b{"1"},@f{c},"x"}"#,
            r#"directory{cd{title{"Body and Soul"},@GetRating{"Body and Soul"}}}"#,
        ] {
            let t = parse_tree(src).unwrap();
            let back = parse_tree(&compact(&t)).unwrap();
            assert!(equivalent(&t, &back), "roundtrip failed for {src}");
        }
    }

    #[test]
    fn compact_is_order_stable() {
        let a = parse_tree("a{c,b}").unwrap();
        let b = parse_tree("a{b,c}").unwrap();
        assert_eq!(compact(&a), compact(&b));
    }

    #[test]
    fn pretty_has_one_line_per_node() {
        let t = parse_tree("a{b{c},d}").unwrap();
        assert_eq!(pretty(&t).lines().count(), t.node_count());
    }
}
