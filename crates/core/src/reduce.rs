//! Reduction, canonical forms, and least upper bounds (Definition 2.2,
//! Proposition 2.1).
//!
//! A document is *reduced* when no subtree is equivalent to a sibling-
//! pruned version of itself — operationally, no child subtree is subsumed
//! by one of its siblings, recursively. Each document has a unique reduced
//! version up to node isomorphism (Prop 2.1 (2)), computable in PTIME
//! (Prop 2.1 (4)) by bottom-up sibling pruning.
//!
//! Because reduced versions are unique up to isomorphism, a sorted
//! recursive encoding ([`canon_of_reduced`]) is a sound equality key for
//! reduced trees: two reduced trees are equivalent iff their canonical
//! encodings coincide. The rewriting engine, graph representation, and
//! confluence tests all rely on this.

use crate::error::{AxmlError, Result};
use crate::subsume::{subsumed_within, SubMemo};
use crate::tree::{Marking, NodeId, Tree};

/// Reduce `t` in place: prune every child subtree subsumed by a sibling,
/// bottom-up. Keeps the *oldest* (lowest node id) representative of each
/// equivalence class so that node ids — in particular function-node ids
/// the engine schedules — survive reduction.
///
/// Returns the number of subtrees pruned.
pub fn reduce_in_place(t: &mut Tree) -> usize {
    let mut memo = SubMemo::new();
    let post = postorder(t);
    let mut pruned = 0usize;
    for n in post {
        if !t.is_alive(n) {
            continue;
        }
        let mut kids: Vec<NodeId> = t.children(n).to_vec();
        if kids.len() < 2 {
            continue;
        }
        // Oldest first, so equivalent younger siblings are the ones dropped.
        kids.sort_unstable();
        let k = kids.len();
        let mut removed = vec![false; k];
        for i in 0..k {
            if removed[i] {
                continue;
            }
            for j in 0..k {
                if i == j || removed[j] || removed[i] {
                    continue;
                }
                // Subsumption requires equal root markings; skipping the
                // mismatched pairs here keeps them out of the memo too.
                if t.marking(kids[i]) != t.marking(kids[j]) {
                    continue;
                }
                if subsumed_within(t, kids[i], kids[j], &mut memo) {
                    if subsumed_within(t, kids[j], kids[i], &mut memo) {
                        // Equivalent: drop the younger (larger index, since
                        // kids are sorted by id ascending).
                        removed[i.max(j)] = true;
                    } else {
                        removed[i] = true;
                    }
                }
            }
        }
        for i in 0..k {
            if removed[i] {
                t.remove_subtree(kids[i]).expect("child is alive");
                pruned += 1;
            }
        }
    }
    pruned
}

/// Live nodes of `t` in postorder (children before parents).
fn postorder(t: &Tree) -> Vec<NodeId> {
    let mut pre: Vec<NodeId> = t.iter_live(t.root()).collect();
    pre.reverse();
    pre
}

/// Return a freshly-built reduced version of `t` (compact arena, new ids).
pub fn reduce(t: &Tree) -> Tree {
    let mut c = t.compact();
    reduce_in_place(&mut c);
    c.compact()
}

/// Is `t` already reduced?
pub fn is_reduced(t: &Tree) -> bool {
    let mut memo = SubMemo::new();
    for n in t.iter_live(t.root()) {
        let kids = t.children(n);
        for (i, &a) in kids.iter().enumerate() {
            for (j, &b) in kids.iter().enumerate() {
                if i != j && subsumed_within(t, a, b, &mut memo) {
                    return false;
                }
            }
        }
    }
    true
}

/// Canonical encoding key for a reduced tree.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CanonKey(pub String);

impl std::fmt::Display for CanonKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn marking_tag(m: Marking, out: &mut String) {
    let (tag, s) = match m {
        Marking::Label(s) => ('L', s),
        Marking::Func(s) => ('F', s),
        Marking::Value(s) => ('V', s),
    };
    let name = s.as_str();
    out.push(tag);
    out.push_str(&name.len().to_string());
    out.push(':');
    out.push_str(name);
}

/// Canonical encoding of the subtree of `t` at `n`.
///
/// Sound as an equivalence key only for **reduced** trees: reduced
/// versions are unique up to isomorphism, and this encoding is
/// isomorphism-invariant (children encodings are sorted). For arbitrary
/// trees use [`canonical_key`], which reduces first.
pub fn canon_of_reduced(t: &Tree, n: NodeId) -> CanonKey {
    fn go(t: &Tree, n: NodeId, out: &mut String) {
        marking_tag(t.marking(n), out);
        let kids = t.children(n);
        if !kids.is_empty() {
            let mut encs: Vec<String> = kids
                .iter()
                .map(|&c| {
                    let mut s = String::new();
                    go(t, c, &mut s);
                    s
                })
                .collect();
            encs.sort_unstable();
            out.push('{');
            for e in encs {
                out.push_str(&e);
            }
            out.push('}');
        }
    }
    let mut s = String::new();
    go(t, n, &mut s);
    CanonKey(s)
}

/// Canonical key of an arbitrary tree: reduce a copy, then encode.
/// Two trees are equivalent (Definition 2.2) iff their canonical keys are
/// equal.
pub fn canonical_key(t: &Tree) -> CanonKey {
    let r = reduce(t);
    canon_of_reduced(&r, r.root())
}

/// Least upper bound `d ∪ d'` of two trees with the same root marking
/// (§2.1): a tree with that root and the children of both, reduced.
/// Trees with distinct root markings are incomparable.
pub fn lub(a: &Tree, b: &Tree) -> Result<Tree> {
    if a.marking(a.root()) != b.marking(b.root()) {
        return Err(AxmlError::IncomparableRoots);
    }
    let mut out = Tree::new(a.marking(a.root()));
    let dst_root = out.root();
    a.copy_children_into(a.root(), &mut out, dst_root);
    b.copy_children_into(b.root(), &mut out, dst_root);
    reduce_in_place(&mut out);
    Ok(out.compact())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;
    use crate::subsume::{equivalent, subsumed};

    fn t(s: &str) -> Tree {
        parse_tree(s).unwrap()
    }

    #[test]
    fn paper_reduction_example() {
        // a{b{c,c},b{c,d,d}} reduces to a{b{c,d}}.
        let orig = t("a{b{c,c},b{c,d,d}}");
        let red = reduce(&orig);
        assert!(equivalent(&orig, &red));
        assert!(is_reduced(&red));
        assert!(equivalent(&red, &t("a{b{c,d}}")));
        assert_eq!(red.node_count(), 4);
    }

    #[test]
    fn reduce_is_idempotent() {
        let r = reduce(&t("a{b{c,c},b{c,d,d},b}"));
        let rr = reduce(&r);
        assert_eq!(
            canon_of_reduced(&r, r.root()),
            canon_of_reduced(&rr, rr.root())
        );
    }

    #[test]
    fn reduction_preserves_equivalence_class() {
        for s in [
            "a{b,b,b}",
            "a{b{c},b{c,d}}",
            r#"a{@f{"1"},@f{"1"},x}"#,
            "r{t{a,b},t{a},t{a,b,c}}",
        ] {
            let orig = t(s);
            let red = reduce(&orig);
            assert!(equivalent(&orig, &red), "not equivalent for {s}");
            assert!(is_reduced(&red), "not reduced for {s}");
        }
    }

    #[test]
    fn uniqueness_via_canonical_keys() {
        // Equivalent inputs yield identical canonical keys (Prop 2.1 (2)).
        let a = t("a{b{c,c},b{c,d,d}}");
        let b = t("a{b{d,c}}");
        let c = t("a{b{c,d},b{c}}");
        assert_eq!(canonical_key(&a), canonical_key(&b));
        assert_eq!(canonical_key(&b), canonical_key(&c));
        assert_ne!(canonical_key(&a), canonical_key(&t("a{b{c}}")));
    }

    #[test]
    fn in_place_reduction_keeps_oldest_ids() {
        let mut tree = Tree::with_label("a");
        let first = tree.add_child(tree.root(), Marking::label("b")).unwrap();
        let second = tree.add_child(tree.root(), Marking::label("b")).unwrap();
        reduce_in_place(&mut tree);
        assert!(tree.is_alive(first));
        assert!(!tree.is_alive(second));
    }

    #[test]
    fn strictly_larger_sibling_replaces_smaller() {
        // b{c} arrives first, b{c,d} second: the larger must survive.
        let mut tree = Tree::with_label("a");
        let small = tree.add_child(tree.root(), Marking::label("b")).unwrap();
        tree.add_child(small, Marking::label("c")).unwrap();
        let big = tree.add_child(tree.root(), Marking::label("b")).unwrap();
        tree.add_child(big, Marking::label("c")).unwrap();
        tree.add_child(big, Marking::label("d")).unwrap();
        reduce_in_place(&mut tree);
        assert!(!tree.is_alive(small));
        assert!(tree.is_alive(big));
    }

    #[test]
    fn lub_paper_semantics() {
        let a = t("a{b{c}}");
        let b = t("a{b{d},e}");
        let u = lub(&a, &b).unwrap();
        assert!(subsumed(&a, &u));
        assert!(subsumed(&b, &u));
        assert!(equivalent(&u, &t("a{b{c},b{d},e}")));
        // Incomparable roots.
        assert!(matches!(
            lub(&t("a"), &t("b")),
            Err(AxmlError::IncomparableRoots)
        ));
    }

    #[test]
    fn lub_is_least() {
        // Any other upper bound must subsume the lub.
        let a = t("a{b}");
        let b = t("a{c}");
        let u = lub(&a, &b).unwrap();
        let other = t("a{b,c,d}");
        assert!(subsumed(&a, &other) && subsumed(&b, &other));
        assert!(subsumed(&u, &other));
    }

    #[test]
    fn function_subtrees_merge_only_when_identical_calls() {
        // Two @f calls with subsumed params merge; distinct params survive.
        let red = reduce(&t(r#"a{@f{"1"},@f{"1"},@f{"2"}}"#));
        assert_eq!(red.function_nodes().len(), 2);
    }
}
