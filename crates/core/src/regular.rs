//! Regular trees as finite graphs (Lemma 3.2).
//!
//! A regular tree is a possibly-infinite tree with finitely many distinct
//! subtrees up to isomorphism; it can be represented by a finite rooted
//! graph whose unfolding is the tree (the paper cites Colmerauer's
//! rational trees). The semantics of every *simple* positive system is
//! regular, and [`crate::graphrepr`] builds exactly this representation.
//!
//! Subsumption between (possibly infinite) regular trees is decided on
//! their finite representations as a **greatest-fixpoint simulation**:
//! `u ⊑ v` iff markings agree and every child of `u` is simulated by some
//! child of `v` — computed by refining an all-pairs relation until
//! stable, which is sound for cyclic graphs where the tree-recursive
//! algorithm of [`crate::subsume`] would not terminate.

use crate::sym::{FxHashMap, FxHashSet};
use crate::tree::{Marking, NodeId, Tree};

/// Index of a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GNodeId(pub u32);

impl GNodeId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct GNode {
    marking: Marking,
    children: Vec<GNodeId>,
}

/// A finite graph whose unfoldings are (possibly infinite) AXML trees.
/// One arena may host several documents (shared subgraphs); each document
/// is identified by its root node.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<GNode>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Add an isolated node.
    pub fn add_node(&mut self, marking: Marking) -> GNodeId {
        let id = GNodeId(self.nodes.len() as u32);
        self.nodes.push(GNode {
            marking,
            children: Vec::new(),
        });
        id
    }

    /// Add edge `parent → child`; returns `true` if the edge is new.
    pub fn add_edge(&mut self, parent: GNodeId, child: GNodeId) -> bool {
        let kids = &mut self.nodes[parent.idx()].children;
        if kids.contains(&child) {
            false
        } else {
            kids.push(child);
            true
        }
    }

    /// The marking of a node.
    pub fn marking(&self, n: GNodeId) -> Marking {
        self.nodes[n.idx()].marking
    }

    /// Children (successor) nodes.
    pub fn children(&self, n: GNodeId) -> &[GNodeId] {
        &self.nodes[n.idx()].children
    }

    /// Total nodes in the arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total edges in the arena.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.children.len()).sum()
    }

    /// Copy the (finite) subtree of `t` at `tn` into the graph; returns
    /// the new root.
    pub fn import_subtree(&mut self, t: &Tree, tn: NodeId) -> GNodeId {
        let root = self.add_node(t.marking(tn));
        let mut stack = vec![(tn, root)];
        while let Some((s, d)) = stack.pop() {
            for &c in t.children(s) {
                let gc = self.add_node(t.marking(c));
                self.add_edge(d, gc);
                stack.push((c, gc));
            }
        }
        root
    }

    /// Copy a whole tree into the graph.
    pub fn import_tree(&mut self, t: &Tree) -> GNodeId {
        self.import_subtree(t, t.root())
    }

    /// Like [`Graph::import_subtree`], also returning the tree-node →
    /// graph-node correspondence (used to translate exclusion sets of
    /// function nodes into graph occurrences).
    pub fn import_subtree_mapped(
        &mut self,
        t: &Tree,
        tn: NodeId,
    ) -> (GNodeId, FxHashMap<NodeId, GNodeId>) {
        let mut map = FxHashMap::default();
        let root = self.add_node(t.marking(tn));
        map.insert(tn, root);
        let mut stack = vec![(tn, root)];
        while let Some((s, d)) = stack.pop() {
            for &c in t.children(s) {
                let gc = self.add_node(t.marking(c));
                self.add_edge(d, gc);
                map.insert(c, gc);
                stack.push((c, gc));
            }
        }
        (root, map)
    }

    /// Nodes reachable from `roots`.
    pub fn reachable(&self, roots: &[GNodeId]) -> FxHashSet<GNodeId> {
        let mut seen: FxHashSet<GNodeId> = FxHashSet::default();
        let mut stack: Vec<GNodeId> = roots.to_vec();
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                stack.extend(self.children(n).iter().copied());
            }
        }
        seen
    }

    /// A cycle reachable from `roots`, if any — the witness that the
    /// unfolding is infinite (Theorem 3.3's decision procedure).
    pub fn find_cycle(&self, roots: &[GNodeId]) -> Option<Vec<GNodeId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: FxHashMap<GNodeId, Color> = FxHashMap::default();
        // Iterative DFS with an explicit phase marker to avoid recursion
        // depth limits on long chains.
        enum Frame {
            Enter(GNodeId),
            Exit(GNodeId),
        }
        let mut path: Vec<GNodeId> = Vec::new();
        for &r in roots {
            if color.get(&r).copied().unwrap_or(Color::White) != Color::White {
                continue;
            }
            let mut stack = vec![Frame::Enter(r)];
            while let Some(f) = stack.pop() {
                match f {
                    Frame::Enter(n) => {
                        match color.get(&n).copied().unwrap_or(Color::White) {
                            Color::Gray | Color::Black => continue,
                            Color::White => {}
                        }
                        color.insert(n, Color::Gray);
                        path.push(n);
                        stack.push(Frame::Exit(n));
                        for &c in self.children(n) {
                            match color.get(&c).copied().unwrap_or(Color::White) {
                                Color::Gray => {
                                    let start =
                                        path.iter().position(|&x| x == c).unwrap_or(0);
                                    let mut cyc = path[start..].to_vec();
                                    cyc.push(c);
                                    return Some(cyc);
                                }
                                Color::White => stack.push(Frame::Enter(c)),
                                Color::Black => {}
                            }
                        }
                    }
                    Frame::Exit(n) => {
                        color.insert(n, Color::Black);
                        path.pop();
                    }
                }
            }
        }
        None
    }

    /// Is the subgraph reachable from `roots` acyclic (finite unfolding)?
    pub fn is_acyclic_from(&self, roots: &[GNodeId]) -> bool {
        self.find_cycle(roots).is_none()
    }

    /// Unfold the (necessarily acyclic) graph at `n` into a tree.
    /// Returns `None` when a cycle is reachable (infinite unfolding).
    pub fn unfold_exact(&self, n: GNodeId) -> Option<Tree> {
        if !self.is_acyclic_from(&[n]) {
            return None;
        }
        Some(self.unfold_truncated(n, usize::MAX))
    }

    /// Unfold to a tree, cutting every path at `max_depth` edges. For
    /// cyclic graphs this yields a finite prefix of the infinite tree.
    pub fn unfold_truncated(&self, n: GNodeId, max_depth: usize) -> Tree {
        let mut t = Tree::new(self.marking(n));
        let root = t.root();
        self.unfold_into(n, &mut t, root, max_depth);
        t
    }

    fn unfold_into(&self, gn: GNodeId, t: &mut Tree, tn: NodeId, budget: usize) {
        if budget == 0 {
            return;
        }
        for &gc in self.children(gn) {
            let tc = t
                .add_child(tn, self.marking(gc))
                .expect("graph values have no children");
            self.unfold_into(gc, t, tc, budget - 1);
        }
    }

    /// Count the nodes of the unfolding, saturating at `cap` (cyclic
    /// graphs would count forever).
    pub fn unfold_size(&self, n: GNodeId, cap: usize) -> usize {
        fn go(g: &Graph, n: GNodeId, cap: usize, acc: &mut usize, depth: usize) {
            if *acc >= cap || depth > 10_000 {
                *acc = cap;
                return;
            }
            *acc += 1;
            for &c in g.children(n) {
                go(g, c, cap, acc, depth + 1);
            }
        }
        let mut acc = 0;
        go(self, n, cap, &mut acc, 0);
        acc
    }
}

/// Greatest-fixpoint simulation between two graphs (which may be the same
/// object). Decides subsumption of the *unfoldings*: `a@na ⊑ b@nb` as
/// possibly-infinite trees.
pub fn simulated(a: &Graph, na: GNodeId, b: &Graph, nb: GNodeId) -> bool {
    // Restrict to reachable node sets.
    let ra: Vec<GNodeId> = a.reachable(&[na]).into_iter().collect();
    let rb: Vec<GNodeId> = b.reachable(&[nb]).into_iter().collect();
    // R starts as all marking-compatible pairs, then is refined.
    let mut r: FxHashSet<(GNodeId, GNodeId)> = FxHashSet::default();
    for &u in &ra {
        for &v in &rb {
            if a.marking(u) == b.marking(v) {
                r.insert((u, v));
            }
        }
    }
    loop {
        let mut changed = false;
        let pairs: Vec<(GNodeId, GNodeId)> = r.iter().copied().collect();
        for (u, v) in pairs {
            let ok = a
                .children(u)
                .iter()
                .all(|&cu| b.children(v).iter().any(|&cv| r.contains(&(cu, cv))));
            if !ok {
                r.remove(&(u, v));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    r.contains(&(na, nb))
}

/// Mutual simulation: the unfoldings are equivalent documents.
pub fn graph_equivalent(a: &Graph, na: GNodeId, b: &Graph, nb: GNodeId) -> bool {
    simulated(a, na, b, nb) && simulated(b, nb, a, na)
}

/// Forest-level simulation over root sets: every root of `a` is simulated
/// by some root of `b` (the paper's forest subsumption, lifted to graphs).
pub fn roots_subsumed(a: &Graph, ra: &[GNodeId], b: &Graph, rb: &[GNodeId]) -> bool {
    ra.iter()
        .all(|&u| rb.iter().any(|&v| simulated(a, u, b, v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;
    use crate::subsume::equivalent;

    #[test]
    fn import_and_unfold_roundtrip() {
        let t = parse_tree(r#"a{b{"1"},@f{c}}"#).unwrap();
        let mut g = Graph::new();
        let r = g.import_tree(&t);
        let back = g.unfold_exact(r).unwrap();
        assert!(equivalent(&t, &back));
        assert_eq!(g.node_count(), t.node_count());
    }

    #[test]
    fn cycle_detection_and_truncated_unfold() {
        // The limit of Example 2.1: A = a{f, A}.
        let mut g = Graph::new();
        let a = g.add_node(Marking::label("a"));
        let f = g.add_node(Marking::func("f"));
        g.add_edge(a, f);
        g.add_edge(a, a);
        assert!(!g.is_acyclic_from(&[a]));
        assert!(g.unfold_exact(a).is_none());
        let prefix = g.unfold_truncated(a, 3);
        // Depth-3 prefix: a{f, a{f, a{f, a}}}.
        assert_eq!(prefix.depth(prefix.root()), 3);
        let cyc = g.find_cycle(&[a]).unwrap();
        assert_eq!(cyc.first(), cyc.last());
    }

    #[test]
    fn simulation_on_finite_graphs_matches_tree_subsumption() {
        let cases = [
            ("a{b{c,c}}", "a{b{c,d}}", true),
            ("a{b{c,d}}", "a{b{c}}", false),
            ("a{b}", "a{b{c}}", true),
            ("a{c,c}", "a{c}", true),
            ("a", "b", false),
        ];
        for (sa, sb, expect) in cases {
            let ta = parse_tree(sa).unwrap();
            let tb = parse_tree(sb).unwrap();
            let mut g = Graph::new();
            let na = g.import_tree(&ta);
            let nb = g.import_tree(&tb);
            assert_eq!(
                simulated(&g, na, &g, nb),
                expect,
                "sim({sa},{sb}) != {expect}"
            );
            assert_eq!(crate::subsume::subsumed(&ta, &tb), expect);
        }
    }

    #[test]
    fn simulation_between_infinite_trees() {
        // A = a{A} and B = a{a{B}} unfold to the same infinite chain.
        let mut g = Graph::new();
        let a = g.add_node(Marking::label("a"));
        g.add_edge(a, a);
        let b1 = g.add_node(Marking::label("a"));
        let b2 = g.add_node(Marking::label("a"));
        g.add_edge(b1, b2);
        g.add_edge(b2, b1);
        assert!(graph_equivalent(&g, a, &g, b1));
        // C = a{c, C} is strictly larger than A.
        let c = g.add_node(Marking::label("a"));
        let cc = g.add_node(Marking::label("c"));
        g.add_edge(c, cc);
        g.add_edge(c, c);
        assert!(simulated(&g, a, &g, c));
        assert!(!simulated(&g, c, &g, a));
    }

    #[test]
    fn finite_tree_never_simulates_infinite_chain() {
        let mut g = Graph::new();
        let inf = g.add_node(Marking::label("a"));
        g.add_edge(inf, inf);
        let fin = g.import_tree(&parse_tree("a{a{a}}").unwrap());
        assert!(simulated(&g, fin, &g, inf)); // finite prefix embeds
        assert!(!simulated(&g, inf, &g, fin)); // infinite does not embed into finite
    }

    #[test]
    fn forest_roots_subsumption() {
        let mut g = Graph::new();
        let x = g.import_tree(&parse_tree("a{b}").unwrap());
        let y = g.import_tree(&parse_tree("c").unwrap());
        let z = g.import_tree(&parse_tree("a{b,d}").unwrap());
        assert!(roots_subsumed(&g, &[x], &g, &[z, y]));
        assert!(!roots_subsumed(&g, &[z], &g, &[x, y]));
    }

    #[test]
    fn unfold_size_saturates() {
        let mut g = Graph::new();
        let a = g.add_node(Marking::label("a"));
        g.add_edge(a, a);
        assert_eq!(g.unfold_size(a, 500), 500);
        let t = g.import_tree(&parse_tree("a{b,c}").unwrap());
        assert_eq!(g.unfold_size(t, 500), 3);
    }

    #[test]
    fn edge_dedup() {
        let mut g = Graph::new();
        let a = g.add_node(Marking::label("a"));
        let b = g.add_node(Marking::label("b"));
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b));
        assert_eq!(g.edge_count(), 1);
    }
}
