//! Error types for the AXML core.

use crate::sym::Sym;
use std::fmt;

/// Errors raised while constructing or manipulating AXML trees, queries,
/// and systems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxmlError {
    /// Atomic values may only mark leaf nodes (Definition 2.1 (i)).
    ValueNodeWithChildren,
    /// A document root must carry a label or an atomic value, never a
    /// function name (Definition 2.1 (ii)).
    FunctionRoot,
    /// The node id does not name a live node of this tree.
    DeadNode,
    /// Invocation was requested on a node that is not a function node.
    NotAFunctionNode,
    /// Parse error with position and message.
    Parse {
        /// Byte offset into the source where parsing failed.
        pos: usize,
        /// Human-readable description of the failure.
        msg: String,
    },
    /// A query head uses a variable that does not occur in the body
    /// (Definition 3.1 (2)).
    UnsafeHeadVariable(Sym),
    /// The same variable name is used with two different kinds (e.g. `$x`
    /// and `?x`) within one query.
    MixedVariableKinds(Sym),
    /// A tree variable occurs more than once in a query body
    /// (Definition 3.1 (3)).
    RepeatedTreeVariable(Sym),
    /// Tree variables may not appear in inequalities (Definition 3.1 (3)).
    TreeVariableInInequality(Sym),
    /// Tree and value variables may only mark pattern leaves.
    NonLeafPatternVariable(Sym),
    /// The reserved document names `input` and `context` cannot be stored
    /// documents of a system (Definition 2.3).
    ReservedDocumentName(Sym),
    /// A document with this name already exists in the system.
    DuplicateDocument(Sym),
    /// A service with this name already exists in the system.
    DuplicateService(Sym),
    /// A document mentions a function name with no registered service.
    UnknownFunction(Sym),
    /// A query body references a document name absent from the evaluation
    /// environment.
    UnknownDocument(Sym),
    /// An operation that requires a *simple* system (no tree variables in
    /// any service query) was invoked on a non-simple one.
    NotSimple(Sym),
    /// Least upper bound requested for trees with distinct root markings,
    /// which the paper declares incomparable.
    IncomparableRoots,
    /// The engine exhausted its step or node budget before reaching a
    /// fixpoint.
    BudgetExhausted,
    /// A user label, function, or variable name collides with the `ax…`
    /// namespace reserved by the ψ translation (Prop 5.1).
    ReservedName(Sym),
    /// A placement operation would leave a sharded network unable to
    /// host its documents (e.g. removing the last peer).
    PlacementUnderflow,
}

impl fmt::Display for AxmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxmlError::ValueNodeWithChildren => {
                write!(f, "atomic values may only be assigned to leaf nodes")
            }
            AxmlError::FunctionRoot => {
                write!(f, "a document root must be a label or an atomic value")
            }
            AxmlError::DeadNode => write!(f, "node id does not name a live node"),
            AxmlError::NotAFunctionNode => {
                write!(f, "invocation requested on a non-function node")
            }
            AxmlError::Parse { pos, msg } => write!(f, "parse error at byte {pos}: {msg}"),
            AxmlError::UnsafeHeadVariable(v) => {
                write!(f, "head variable {v} does not occur in the query body")
            }
            AxmlError::MixedVariableKinds(v) => {
                write!(f, "variable {v} is used with two different kinds")
            }
            AxmlError::RepeatedTreeVariable(v) => {
                write!(f, "tree variable {v} occurs more than once in the body")
            }
            AxmlError::TreeVariableInInequality(v) => {
                write!(f, "tree variable {v} may not appear in an inequality")
            }
            AxmlError::NonLeafPatternVariable(v) => {
                write!(f, "variable {v} must mark a pattern leaf")
            }
            AxmlError::ReservedDocumentName(d) => {
                write!(f, "document name {d} is reserved (input/context)")
            }
            AxmlError::DuplicateDocument(d) => write!(f, "document {d} already exists"),
            AxmlError::DuplicateService(s) => write!(f, "service {s} already exists"),
            AxmlError::UnknownFunction(s) => write!(f, "no service registered for function {s}"),
            AxmlError::UnknownDocument(d) => write!(f, "unknown document name {d}"),
            AxmlError::NotSimple(s) => {
                write!(f, "operation requires a simple system, but service {s} uses tree variables")
            }
            AxmlError::IncomparableRoots => {
                write!(f, "trees with distinct root markings are incomparable")
            }
            AxmlError::BudgetExhausted => write!(f, "rewriting budget exhausted before fixpoint"),
            AxmlError::ReservedName(s) => {
                write!(f, "name {s} collides with the translation-reserved ax… namespace")
            }
            AxmlError::PlacementUnderflow => {
                write!(f, "placement needs at least one peer while documents exist")
            }
        }
    }
}

impl std::error::Error for AxmlError {}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, AxmlError>;
