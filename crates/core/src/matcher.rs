//! Pattern matching: enumerating the variable assignments µ with
//! `µ(p) ⊆ d` (Section 3.1, snapshot semantics).
//!
//! A match embeds the pattern root at the document root and each pattern
//! child below *some* document child (homomorphically, like subsumption),
//! while binding variables consistently. Data complexity is polynomial
//! (Prop 3.1 (3)): for a fixed pattern the number of distinct bindings is
//! polynomial in the document, and duplicates are eliminated at every
//! join level.

use crate::pattern::{PItem, Pattern, PNodeId};
use crate::reduce::canonical_key;
use crate::reduce::CanonKey;
use crate::sym::{FxHashSet, Sym};
use crate::tree::{Marking, NodeId, Tree};
use std::fmt;
use std::rc::Rc;

/// A value bound to a query variable.
#[derive(Clone, Debug)]
pub enum Bound {
    /// A label, bound to a label variable.
    Label(Sym),
    /// A function name, bound to a function variable.
    Func(Sym),
    /// An atomic value, bound to a value variable.
    Value(Sym),
    /// A whole subtree, bound to a tree variable. The canonical key makes
    /// bindings hashable and deduplicable.
    Tree(Rc<Tree>, CanonKey),
}

impl Bound {
    /// Bind a copy of the subtree of `t` at `n` to a tree variable.
    pub fn tree_at(t: &Tree, n: NodeId) -> Bound {
        let sub = t.subtree(n);
        let key = canonical_key(&sub);
        Bound::Tree(Rc::new(sub), key)
    }

    /// The marking this binding denotes, for non-tree bindings.
    pub fn as_marking(&self) -> Option<Marking> {
        match *self {
            Bound::Label(s) => Some(Marking::Label(s)),
            Bound::Func(s) => Some(Marking::Func(s)),
            Bound::Value(s) => Some(Marking::Value(s)),
            Bound::Tree(..) => None,
        }
    }
}

impl PartialEq for Bound {
    fn eq(&self, other: &Bound) -> bool {
        match (self, other) {
            (Bound::Label(a), Bound::Label(b)) => a == b,
            (Bound::Func(a), Bound::Func(b)) => a == b,
            (Bound::Value(a), Bound::Value(b)) => a == b,
            (Bound::Tree(_, ka), Bound::Tree(_, kb)) => ka == kb,
            _ => false,
        }
    }
}

impl Eq for Bound {}

impl std::hash::Hash for Bound {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Bound::Label(s) => {
                state.write_u8(0);
                s.hash(state);
            }
            Bound::Func(s) => {
                state.write_u8(1);
                s.hash(state);
            }
            Bound::Value(s) => {
                state.write_u8(2);
                s.hash(state);
            }
            Bound::Tree(_, k) => {
                state.write_u8(3);
                k.hash(state);
            }
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Label(s) => write!(f, "{s}"),
            Bound::Func(s) => write!(f, "@{s}"),
            Bound::Value(s) => write!(f, "{:?}", s.as_str()),
            Bound::Tree(t, _) => write!(f, "{t}"),
        }
    }
}

/// A variable assignment: a small sorted map from variable names to
/// bound values.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Binding {
    entries: Vec<(Sym, Bound)>,
}

impl Binding {
    /// The empty assignment.
    pub fn new() -> Binding {
        Binding::default()
    }

    /// Look up a variable.
    pub fn get(&self, var: Sym) -> Option<&Bound> {
        self.entries
            .binary_search_by(|(v, _)| v.cmp(&var))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Bind `var` to `val`. Returns `false` (and leaves the binding
    /// unchanged) on a conflicting existing binding.
    pub fn bind(&mut self, var: Sym, val: Bound) -> bool {
        match self.entries.binary_search_by(|(v, _)| v.cmp(&var)) {
            Ok(i) => self.entries[i].1 == val,
            Err(i) => {
                self.entries.insert(i, (var, val));
                true
            }
        }
    }

    /// Merge two assignments; `None` on conflict. Both sides are sorted,
    /// so this is a linear two-way merge — it runs once per candidate
    /// pair in every join level of snapshot evaluation.
    pub fn merge(&self, other: &Binding) -> Option<Binding> {
        use std::cmp::Ordering;
        let (a, b) = (&self.entries, &other.entries);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                Ordering::Less => {
                    out.push(a[i].clone());
                    i += 1;
                }
                Ordering::Greater => {
                    out.push(b[j].clone());
                    j += 1;
                }
                Ordering::Equal => {
                    if a[i].1 != b[j].1 {
                        return None;
                    }
                    out.push(a[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Some(Binding { entries: out })
    }

    /// Variables bound.
    pub fn vars(&self) -> impl Iterator<Item = Sym> + '_ {
        self.entries.iter().map(|(v, _)| *v)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is this the empty assignment?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// All assignments µ (restricted to the pattern's variables) such that
/// `µ(p) ⊆ t`, starting the embedding at the roots.
pub fn match_pattern(p: &Pattern, t: &Tree) -> Vec<Binding> {
    match_at(p, p.root(), t, t.root(), &Binding::new())
}

/// All assignments embedding the pattern below some node of `t` whose
/// parent is arbitrary — i.e. the pattern root may match *any* node of
/// the document (used by relevance analysis, not by query semantics).
pub fn match_pattern_anywhere(p: &Pattern, t: &Tree) -> Vec<(NodeId, Binding)> {
    let mut out = Vec::new();
    for n in t.iter_live(t.root()) {
        for b in match_at(p, p.root(), t, n, &Binding::new()) {
            out.push((n, b));
        }
    }
    out
}

pub(crate) fn bind_item(item: &PItem, t: &Tree, tn: NodeId, b: &Binding) -> Option<Binding> {
    let m = t.marking(tn);
    match item {
        PItem::Const(c) => (*c == m).then(|| b.clone()),
        PItem::LabelVar(v) => match m {
            Marking::Label(s) => {
                let mut nb = b.clone();
                nb.bind(*v, Bound::Label(s)).then_some(nb)
            }
            _ => None,
        },
        PItem::FuncVar(v) => match m {
            Marking::Func(s) => {
                let mut nb = b.clone();
                nb.bind(*v, Bound::Func(s)).then_some(nb)
            }
            _ => None,
        },
        PItem::ValueVar(v) => match m {
            Marking::Value(s) => {
                let mut nb = b.clone();
                nb.bind(*v, Bound::Value(s)).then_some(nb)
            }
            _ => None,
        },
        PItem::TreeVar(v) => {
            let mut nb = b.clone();
            nb.bind(*v, Bound::tree_at(t, tn)).then_some(nb)
        }
    }
}

fn match_at(p: &Pattern, pn: PNodeId, t: &Tree, tn: NodeId, b: &Binding) -> Vec<Binding> {
    let Some(b0) = bind_item(p.item(pn), t, tn, b) else {
        return Vec::new();
    };
    let mut current: Vec<Binding> = vec![b0];
    for &pc in p.children(pn) {
        let mut next: FxHashSet<Binding> = FxHashSet::default();
        for base in &current {
            for &tc in t.children(tn) {
                for nb in match_at(p, pc, t, tc, base) {
                    next.insert(nb);
                }
            }
        }
        if next.is_empty() {
            return Vec::new();
        }
        current = next.into_iter().collect();
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_pattern, parse_tree};

    fn bindings(p: &str, t: &str) -> Vec<Binding> {
        match_pattern(&parse_pattern(p).unwrap(), &parse_tree(t).unwrap())
    }

    #[test]
    fn ground_pattern_matches_like_subsumption() {
        assert_eq!(bindings("a{b}", "a{b,c}").len(), 1);
        assert!(bindings("a{b{x}}", "a{b}").is_empty());
    }

    #[test]
    fn value_variable_enumerates_values() {
        let bs = bindings(r#"r{t{$x}}"#, r#"r{t{"1"},t{"2"},t{"2"}}"#);
        let mut vals: Vec<&str> = bs
            .iter()
            .map(|b| match b.get(Sym::intern("x")).unwrap() {
                Bound::Value(s) => s.as_str(),
                _ => panic!("expected value"),
            })
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec!["1", "2"]); // deduplicated
    }

    #[test]
    fn paper_example_3_1_label_variable() {
        // z :- d'/a{x}, d/r{t{a{x},b{z}}} — here just the d-side pattern
        // with x fixed to 1 by hand.
        let d = r#"r{t{a{"1"},b{c{"2"},d{"3"}}},
                    t{a{"1"},b{c{"3"},e{"3"}}},
                    t{a{"2"},b{c{"2"},k{"6"}}}}"#;
        let bs = bindings(r#"r{t{a{"1"},b{?z}}}"#, d);
        let mut labels: Vec<&str> = bs
            .iter()
            .map(|b| match b.get(Sym::intern("z")).unwrap() {
                Bound::Label(s) => s.as_str(),
                _ => panic!("expected label"),
            })
            .collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["c", "d", "e"]);
    }

    #[test]
    fn paper_example_3_1_tree_variable() {
        let d = r#"r{t{a{"1"},b{c{"2"},d{"3"}}},
                    t{a{"1"},b{c{"3"},e{"3"}}},
                    t{a{"2"},b{c{"2"},k{"6"}}}}"#;
        let bs = bindings(r#"r{t{a{"1"},b{#Z}}}"#, d);
        let mut trees: Vec<String> = bs
            .iter()
            .map(|b| match b.get(Sym::intern("Z")).unwrap() {
                Bound::Tree(t, _) => t.to_string(),
                _ => panic!("expected tree"),
            })
            .collect();
        trees.sort_unstable();
        assert_eq!(
            trees,
            vec![r#"c{"2"}"#, r#"c{"3"}"#, r#"d{"3"}"#, r#"e{"3"}"#]
        );
    }

    #[test]
    fn shared_variable_must_agree() {
        // Same variable twice in one pattern: both positions must bind
        // identically.
        let bs = bindings("r{t{a{$x},b{$x}}}", r#"r{t{a{"1"},b{"1"}},t{a{"2"},b{"3"}}}"#);
        assert_eq!(bs.len(), 1);
    }

    #[test]
    fn function_variable_matches_function_nodes_only() {
        let bs = bindings("a{@?f}", r#"a{@GetRating{"x"},b}"#);
        assert_eq!(bs.len(), 1);
        assert_eq!(
            bs[0].get(Sym::intern("f")),
            Some(&Bound::Func(Sym::intern("GetRating")))
        );
        assert!(bindings("a{@?f}", "a{b}").is_empty());
    }

    #[test]
    fn tree_variable_matches_any_node_kind() {
        let bs = bindings("a{#X}", r#"a{@f{"p"},b{c}}"#);
        assert_eq!(bs.len(), 2); // @f{"p"} and b{c}
    }

    #[test]
    fn binding_merge_conflicts() {
        let mut a = Binding::new();
        a.bind(Sym::intern("x"), Bound::Value(Sym::intern("1")));
        let mut b = Binding::new();
        b.bind(Sym::intern("x"), Bound::Value(Sym::intern("2")));
        assert!(a.merge(&b).is_none());
        let mut c = Binding::new();
        c.bind(Sym::intern("y"), Bound::Label(Sym::intern("l")));
        let m = a.merge(&c).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn match_anywhere_finds_inner_nodes() {
        let hits = match_pattern_anywhere(
            &parse_pattern("b{$x}").unwrap(),
            &parse_tree(r#"a{b{"1"},c{b{"2"}}}"#).unwrap(),
        );
        assert_eq!(hits.len(), 2);
    }
}
