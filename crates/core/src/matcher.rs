//! Pattern matching: enumerating the variable assignments µ with
//! `µ(p) ⊆ d` (Section 3.1, snapshot semantics).
//!
//! A match embeds the pattern root at the document root and each pattern
//! child below *some* document child (homomorphically, like subsumption),
//! while binding variables consistently. Data complexity is polynomial
//! (Prop 3.1 (3)): for a fixed pattern the number of distinct bindings is
//! polynomial in the document, and duplicates are eliminated at every
//! join level.

use crate::pattern::{PItem, Pattern, PNodeId};
use crate::reduce::canonical_key;
use crate::reduce::CanonKey;
use crate::sym::Sym;
use crate::tree::{Marking, NodeId, Tree};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// How the matcher enumerates candidate document nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MatchStrategy {
    /// Scan: iterate every live node / every child and test markings.
    Scan,
    /// Probe the lazily built document index ([`mod@crate::index`]) for
    /// constant pattern items, falling back to scans where the index
    /// does not apply. Either way the binding *sets* are identical, and
    /// both strategies sort their output, so they are observationally
    /// equivalent.
    #[default]
    Indexed,
}

/// Index-usage counters for one matcher call, surfaced through
/// [`crate::trace::EventKind::IndexLookup`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Candidate sets served by an index probe.
    pub probes: u64,
    /// Probes whose bucket was non-empty.
    pub probe_hits: u64,
    /// Indexed-mode lookups that fell back to a scan (index below its
    /// lazy-build threshold).
    pub fallbacks: u64,
}

impl MatchStats {
    /// Accumulate another call's counters.
    pub fn absorb(&mut self, other: MatchStats) {
        self.probes += other.probes;
        self.probe_hits += other.probe_hits;
        self.fallbacks += other.fallbacks;
    }
}

/// A value bound to a query variable.
#[derive(Clone, Debug)]
pub enum Bound {
    /// A label, bound to a label variable.
    Label(Sym),
    /// A function name, bound to a function variable.
    Func(Sym),
    /// An atomic value, bound to a value variable.
    Value(Sym),
    /// A whole subtree, bound to a tree variable. The canonical key makes
    /// bindings hashable and deduplicable.
    Tree(Arc<Tree>, CanonKey),
}

impl Bound {
    /// Bind a copy of the subtree of `t` at `n` to a tree variable.
    pub fn tree_at(t: &Tree, n: NodeId) -> Bound {
        let sub = t.subtree(n);
        let key = canonical_key(&sub);
        Bound::Tree(Arc::new(sub), key)
    }

    /// The marking this binding denotes, for non-tree bindings.
    pub fn as_marking(&self) -> Option<Marking> {
        match *self {
            Bound::Label(s) => Some(Marking::Label(s)),
            Bound::Func(s) => Some(Marking::Func(s)),
            Bound::Value(s) => Some(Marking::Value(s)),
            Bound::Tree(..) => None,
        }
    }
}

impl PartialEq for Bound {
    fn eq(&self, other: &Bound) -> bool {
        match (self, other) {
            (Bound::Label(a), Bound::Label(b)) => a == b,
            (Bound::Func(a), Bound::Func(b)) => a == b,
            (Bound::Value(a), Bound::Value(b)) => a == b,
            (Bound::Tree(_, ka), Bound::Tree(_, kb)) => ka == kb,
            _ => false,
        }
    }
}

impl Eq for Bound {}

impl Ord for Bound {
    /// Total order consistent with `Eq` (trees compare by canonical
    /// key). Used to sort matcher output so that scan and indexed
    /// matching enumerate bindings in the same order.
    fn cmp(&self, other: &Bound) -> Ordering {
        fn tag(b: &Bound) -> u8 {
            match b {
                Bound::Label(_) => 0,
                Bound::Func(_) => 1,
                Bound::Value(_) => 2,
                Bound::Tree(..) => 3,
            }
        }
        match (self, other) {
            (Bound::Label(a), Bound::Label(b)) => a.cmp(b),
            (Bound::Func(a), Bound::Func(b)) => a.cmp(b),
            (Bound::Value(a), Bound::Value(b)) => a.cmp(b),
            (Bound::Tree(_, ka), Bound::Tree(_, kb)) => ka.cmp(kb),
            _ => tag(self).cmp(&tag(other)),
        }
    }
}

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Bound) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Bound {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Bound::Label(s) => {
                state.write_u8(0);
                s.hash(state);
            }
            Bound::Func(s) => {
                state.write_u8(1);
                s.hash(state);
            }
            Bound::Value(s) => {
                state.write_u8(2);
                s.hash(state);
            }
            Bound::Tree(_, k) => {
                state.write_u8(3);
                k.hash(state);
            }
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Label(s) => write!(f, "{s}"),
            Bound::Func(s) => write!(f, "@{s}"),
            Bound::Value(s) => write!(f, "{:?}", s.as_str()),
            Bound::Tree(t, _) => write!(f, "{t}"),
        }
    }
}

/// A variable assignment: a small sorted map from variable names to
/// bound values.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Binding {
    entries: Vec<(Sym, Bound)>,
}

impl Binding {
    /// The empty assignment.
    pub fn new() -> Binding {
        Binding::default()
    }

    /// Look up a variable.
    pub fn get(&self, var: Sym) -> Option<&Bound> {
        self.entries
            .binary_search_by(|(v, _)| v.cmp(&var))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Bind `var` to `val`. Returns `false` (and leaves the binding
    /// unchanged) on a conflicting existing binding.
    pub fn bind(&mut self, var: Sym, val: Bound) -> bool {
        match self.entries.binary_search_by(|(v, _)| v.cmp(&var)) {
            Ok(i) => self.entries[i].1 == val,
            Err(i) => {
                self.entries.insert(i, (var, val));
                true
            }
        }
    }

    /// Merge two assignments; `None` on conflict. Both sides are sorted,
    /// so this is a linear two-way merge — it runs once per candidate
    /// pair in every join level of snapshot evaluation.
    pub fn merge(&self, other: &Binding) -> Option<Binding> {
        use std::cmp::Ordering;
        let (a, b) = (&self.entries, &other.entries);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                Ordering::Less => {
                    out.push(a[i].clone());
                    i += 1;
                }
                Ordering::Greater => {
                    out.push(b[j].clone());
                    j += 1;
                }
                Ordering::Equal => {
                    if a[i].1 != b[j].1 {
                        return None;
                    }
                    out.push(a[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Some(Binding { entries: out })
    }

    /// Variables bound.
    pub fn vars(&self) -> impl Iterator<Item = Sym> + '_ {
        self.entries.iter().map(|(v, _)| *v)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is this the empty assignment?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// All assignments µ (restricted to the pattern's variables) such that
/// `µ(p) ⊆ t`, starting the embedding at the roots. Output is sorted
/// (strategy-independent order).
pub fn match_pattern(p: &Pattern, t: &Tree) -> Vec<Binding> {
    match_pattern_with(p, t, MatchStrategy::default()).0
}

/// [`match_pattern`] under an explicit [`MatchStrategy`], also returning
/// the index-usage counters of the call.
pub fn match_pattern_with(p: &Pattern, t: &Tree, strategy: MatchStrategy) -> (Vec<Binding>, MatchStats) {
    let mut stats = MatchStats::default();
    let mut out = match_at(p, p.root(), t, t.root(), &Binding::new(), strategy, &mut stats);
    out.sort_unstable();
    (out, stats)
}

/// All assignments embedding the pattern below some node of `t` whose
/// parent is arbitrary — i.e. the pattern root may match *any* node of
/// the document (used by relevance analysis, not by query semantics).
/// Output is sorted (strategy-independent order).
pub fn match_pattern_anywhere(p: &Pattern, t: &Tree) -> Vec<(NodeId, Binding)> {
    match_pattern_anywhere_with(p, t, MatchStrategy::default()).0
}

/// [`match_pattern_anywhere`] under an explicit [`MatchStrategy`].
pub fn match_pattern_anywhere_with(
    p: &Pattern,
    t: &Tree,
    strategy: MatchStrategy,
) -> (Vec<(NodeId, Binding)>, MatchStats) {
    let mut stats = MatchStats::default();
    // Seed candidate roots: a constant pattern root probes the marking
    // index instead of walking every live node.
    let seeds: Cow<'_, [NodeId]> = match (strategy, p.item(p.root())) {
        (MatchStrategy::Indexed, PItem::Const(m)) => match t.indexed_nodes_with(*m) {
            Some(bucket) => {
                stats.probes += 1;
                if !bucket.is_empty() {
                    stats.probe_hits += 1;
                }
                Cow::Borrowed(bucket)
            }
            None => {
                stats.fallbacks += 1;
                Cow::Owned(t.iter_live(t.root()).collect())
            }
        },
        _ => Cow::Owned(t.iter_live(t.root()).collect()),
    };
    let mut out = Vec::new();
    for &n in seeds.iter() {
        for b in match_at(p, p.root(), t, n, &Binding::new(), strategy, &mut stats) {
            out.push((n, b));
        }
    }
    out.sort_unstable();
    (out, stats)
}

pub(crate) fn bind_item(item: &PItem, t: &Tree, tn: NodeId, b: &Binding) -> Option<Binding> {
    let m = t.marking(tn);
    match item {
        PItem::Const(c) => (*c == m).then(|| b.clone()),
        PItem::LabelVar(v) => match m {
            Marking::Label(s) => {
                let mut nb = b.clone();
                nb.bind(*v, Bound::Label(s)).then_some(nb)
            }
            _ => None,
        },
        PItem::FuncVar(v) => match m {
            Marking::Func(s) => {
                let mut nb = b.clone();
                nb.bind(*v, Bound::Func(s)).then_some(nb)
            }
            _ => None,
        },
        PItem::ValueVar(v) => match m {
            Marking::Value(s) => {
                let mut nb = b.clone();
                nb.bind(*v, Bound::Value(s)).then_some(nb)
            }
            _ => None,
        },
        PItem::TreeVar(v) => {
            let mut nb = b.clone();
            nb.bind(*v, Bound::tree_at(t, tn)).then_some(nb)
        }
    }
}

/// Candidate document children of `tn` for one pattern child: the nodes
/// that pass the child's marking test. Computed once per pattern child —
/// *before* any per-binding work — so a failed label test never costs a
/// [`Binding`] clone, and indexed mode can serve constants straight from
/// the child index. Shared with the compiled executor
/// ([`crate::compile`]) so both paths account index probes identically.
pub(crate) fn candidates<'t>(
    item: &PItem,
    t: &'t Tree,
    tn: NodeId,
    strategy: MatchStrategy,
    stats: &mut MatchStats,
) -> Cow<'t, [NodeId]> {
    let scan = |keep: &dyn Fn(Marking) -> bool| -> Cow<'t, [NodeId]> {
        Cow::Owned(
            t.children(tn)
                .iter()
                .copied()
                .filter(|&c| keep(t.marking(c)))
                .collect(),
        )
    };
    match item {
        PItem::Const(m) => {
            if strategy == MatchStrategy::Indexed {
                if let Some(bucket) = t.indexed_children_with(tn, *m) {
                    stats.probes += 1;
                    if !bucket.is_empty() {
                        stats.probe_hits += 1;
                    }
                    return Cow::Borrowed(bucket);
                }
                stats.fallbacks += 1;
            }
            scan(&|cm| cm == *m)
        }
        PItem::LabelVar(_) => scan(&|cm| matches!(cm, Marking::Label(_))),
        PItem::FuncVar(_) => scan(&|cm| matches!(cm, Marking::Func(_))),
        PItem::ValueVar(_) => scan(&|cm| matches!(cm, Marking::Value(_))),
        PItem::TreeVar(_) => Cow::Borrowed(t.children(tn)),
    }
}

fn match_at(
    p: &Pattern,
    pn: PNodeId,
    t: &Tree,
    tn: NodeId,
    b: &Binding,
    strategy: MatchStrategy,
    stats: &mut MatchStats,
) -> Vec<Binding> {
    let Some(b0) = bind_item(p.item(pn), t, tn, b) else {
        return Vec::new();
    };
    let pcs = p.children(pn);
    if pcs.is_empty() {
        return vec![b0];
    }
    let mut cands: Vec<(PNodeId, Cow<'_, [NodeId]>)> = pcs
        .iter()
        .map(|&pc| (pc, candidates(p.item(pc), t, tn, strategy, stats)))
        .collect();
    if cands.iter().any(|(_, c)| c.is_empty()) {
        return Vec::new();
    }
    // Selectivity order: expand the conjunct with the rarest candidate
    // set first, shrinking the intermediate join. The sort is stable and
    // keyed only on candidate-set size (identical across strategies), so
    // scan and indexed mode explore in the same order.
    cands.sort_by_key(|(_, c)| c.len());
    let mut current: Vec<Binding> = vec![b0];
    for (pc, tcs) in cands {
        // Leaf pattern children skip the recursive call: their candidate
        // set already passed the marking test, so binding is all that is
        // left to do per candidate.
        let leaf = p.children(pc).is_empty();
        let mut next: Vec<Binding> = Vec::new();
        for base in &current {
            for &tc in tcs.iter() {
                if leaf {
                    if let Some(nb) = bind_item(p.item(pc), t, tc, base) {
                        next.push(nb);
                    }
                } else {
                    next.extend(match_at(p, pc, t, tc, base, strategy, stats));
                }
            }
        }
        // Dedup (distinct document children can induce the same
        // assignment); sort+dedup beats a hash set at these sizes and
        // keeps the intermediate order strategy-independent.
        if next.len() > 1 {
            next.sort_unstable();
            next.dedup();
        }
        if next.is_empty() {
            return Vec::new();
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_pattern, parse_tree};

    fn bindings(p: &str, t: &str) -> Vec<Binding> {
        match_pattern(&parse_pattern(p).unwrap(), &parse_tree(t).unwrap())
    }

    #[test]
    fn ground_pattern_matches_like_subsumption() {
        assert_eq!(bindings("a{b}", "a{b,c}").len(), 1);
        assert!(bindings("a{b{x}}", "a{b}").is_empty());
    }

    #[test]
    fn value_variable_enumerates_values() {
        let bs = bindings(r#"r{t{$x}}"#, r#"r{t{"1"},t{"2"},t{"2"}}"#);
        let mut vals: Vec<&str> = bs
            .iter()
            .map(|b| match b.get(Sym::intern("x")).unwrap() {
                Bound::Value(s) => s.as_str(),
                _ => panic!("expected value"),
            })
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec!["1", "2"]); // deduplicated
    }

    #[test]
    fn paper_example_3_1_label_variable() {
        // z :- d'/a{x}, d/r{t{a{x},b{z}}} — here just the d-side pattern
        // with x fixed to 1 by hand.
        let d = r#"r{t{a{"1"},b{c{"2"},d{"3"}}},
                    t{a{"1"},b{c{"3"},e{"3"}}},
                    t{a{"2"},b{c{"2"},k{"6"}}}}"#;
        let bs = bindings(r#"r{t{a{"1"},b{?z}}}"#, d);
        let mut labels: Vec<&str> = bs
            .iter()
            .map(|b| match b.get(Sym::intern("z")).unwrap() {
                Bound::Label(s) => s.as_str(),
                _ => panic!("expected label"),
            })
            .collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["c", "d", "e"]);
    }

    #[test]
    fn paper_example_3_1_tree_variable() {
        let d = r#"r{t{a{"1"},b{c{"2"},d{"3"}}},
                    t{a{"1"},b{c{"3"},e{"3"}}},
                    t{a{"2"},b{c{"2"},k{"6"}}}}"#;
        let bs = bindings(r#"r{t{a{"1"},b{#Z}}}"#, d);
        let mut trees: Vec<String> = bs
            .iter()
            .map(|b| match b.get(Sym::intern("Z")).unwrap() {
                Bound::Tree(t, _) => t.to_string(),
                _ => panic!("expected tree"),
            })
            .collect();
        trees.sort_unstable();
        assert_eq!(
            trees,
            vec![r#"c{"2"}"#, r#"c{"3"}"#, r#"d{"3"}"#, r#"e{"3"}"#]
        );
    }

    #[test]
    fn shared_variable_must_agree() {
        // Same variable twice in one pattern: both positions must bind
        // identically.
        let bs = bindings("r{t{a{$x},b{$x}}}", r#"r{t{a{"1"},b{"1"}},t{a{"2"},b{"3"}}}"#);
        assert_eq!(bs.len(), 1);
    }

    #[test]
    fn function_variable_matches_function_nodes_only() {
        let bs = bindings("a{@?f}", r#"a{@GetRating{"x"},b}"#);
        assert_eq!(bs.len(), 1);
        assert_eq!(
            bs[0].get(Sym::intern("f")),
            Some(&Bound::Func(Sym::intern("GetRating")))
        );
        assert!(bindings("a{@?f}", "a{b}").is_empty());
    }

    #[test]
    fn tree_variable_matches_any_node_kind() {
        let bs = bindings("a{#X}", r#"a{@f{"p"},b{c}}"#);
        assert_eq!(bs.len(), 2); // @f{"p"} and b{c}
    }

    #[test]
    fn binding_merge_conflicts() {
        let mut a = Binding::new();
        a.bind(Sym::intern("x"), Bound::Value(Sym::intern("1")));
        let mut b = Binding::new();
        b.bind(Sym::intern("x"), Bound::Value(Sym::intern("2")));
        assert!(a.merge(&b).is_none());
        let mut c = Binding::new();
        c.bind(Sym::intern("y"), Bound::Label(Sym::intern("l")));
        let m = a.merge(&c).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn match_anywhere_finds_inner_nodes() {
        let hits = match_pattern_anywhere(
            &parse_pattern("b{$x}").unwrap(),
            &parse_tree(r#"a{b{"1"},c{b{"2"}}}"#).unwrap(),
        );
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn scan_and_indexed_agree_including_order() {
        let doc = parse_tree(
            r#"r{t{a{"1"},b{c{"2"},d{"3"}}},
               t{a{"1"},b{c{"3"},e{"3"}}},
               t{a{"2"},b{c{"2"},k{"6"}}},
               u{a{"9"}}, u{a{"1"}}}"#,
        )
        .unwrap();
        doc.build_index();
        for pat in ["r{t{a{$x},b{?z}}}", "r{t{#T}}", "r{t{a{$x}},u{a{$x}}}"] {
            let p = parse_pattern(pat).unwrap();
            let (scan, sstats) = match_pattern_with(&p, &doc, MatchStrategy::Scan);
            let (indexed, istats) = match_pattern_with(&p, &doc, MatchStrategy::Indexed);
            assert_eq!(scan, indexed, "strategies disagree on {pat}");
            assert_eq!(sstats.probes, 0, "scan mode must not probe");
            assert!(istats.probes > 0, "indexed mode should probe for {pat}");
            let (scan_any, _) = match_pattern_anywhere_with(&p, &doc, MatchStrategy::Scan);
            let (indexed_any, _) = match_pattern_anywhere_with(&p, &doc, MatchStrategy::Indexed);
            assert_eq!(scan_any, indexed_any);
        }
    }

    #[test]
    fn indexed_falls_back_below_threshold() {
        let doc = parse_tree(r#"a{b{"1"},c}"#).unwrap();
        let p = parse_pattern("a{b{$x}}").unwrap();
        let (out, stats) = match_pattern_with(&p, &doc, MatchStrategy::Indexed);
        assert_eq!(out.len(), 1);
        assert_eq!(stats.probes, 0);
        assert!(stats.fallbacks > 0);
    }
}
