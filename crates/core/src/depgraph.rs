//! The dependency graph and acyclic systems (Definition 3.2).
//!
//! Nodes are document and function names. Edges:
//!
//! * `(d, f)` when function `f` occurs in document `I(d)`;
//! * `(f, d)` when document `d` occurs in `I(f)`'s body;
//! * `(f, g)` when function `g` occurs in `I(f)` (head or body).
//!
//! Acyclic systems always terminate, their functions can be fired in
//! topological order, and each call needs a single invocation. Black-box
//! services have unknown definitions; we conservatively connect them to
//! every document and function, so acyclicity of a system with black
//! boxes is only ever reported when it is genuinely certain. A function
//! variable in a service's *head* can instantiate a call to any function
//! matched in the body, so it also receives conservative edges.

use crate::pattern::PItem;
use crate::sym::{FxHashMap, FxHashSet, Sym};
use crate::system::{context_sym, input_sym, System};
use crate::tree::Marking;
use std::fmt;

/// A node of the dependency graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum DepNode {
    /// A document name.
    Doc(Sym),
    /// A function name.
    Func(Sym),
}

impl fmt::Display for DepNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepNode::Doc(d) => write!(f, "doc:{d}"),
            DepNode::Func(s) => write!(f, "fn:{s}"),
        }
    }
}

/// The dependency graph of a system.
#[derive(Clone, Debug)]
pub struct DepGraph {
    nodes: Vec<DepNode>,
    edges: FxHashMap<DepNode, FxHashSet<DepNode>>,
}

impl DepGraph {
    /// Build the graph for `sys`.
    pub fn build(sys: &System) -> DepGraph {
        let mut nodes: Vec<DepNode> = Vec::new();
        let mut edges: FxHashMap<DepNode, FxHashSet<DepNode>> = FxHashMap::default();
        for &d in sys.doc_names() {
            nodes.push(DepNode::Doc(d));
            edges.entry(DepNode::Doc(d)).or_default();
        }
        for &f in sys.service_names() {
            nodes.push(DepNode::Func(f));
            edges.entry(DepNode::Func(f)).or_default();
        }

        // (d, f): f occurs in I(d).
        for &d in sys.doc_names() {
            let t = sys.doc(d).expect("stored");
            for n in t.iter_live(t.root()) {
                if let Marking::Func(f) = t.marking(n) {
                    edges.get_mut(&DepNode::Doc(d)).expect("inserted").insert(DepNode::Func(f));
                }
            }
        }

        // (f, d) and (f, g) from service definitions.
        for &f in sys.service_names() {
            let out = edges.get_mut(&DepNode::Func(f)).expect("inserted");
            match sys.service_query(f) {
                Some(q) => {
                    for d in q.doc_names() {
                        if d != input_sym() && d != context_sym() {
                            out.insert(DepNode::Doc(d));
                        }
                    }
                    for g in q.function_names() {
                        out.insert(DepNode::Func(g));
                    }
                    // A head function variable may instantiate any
                    // function name: conservative edges to all.
                    let head_has_func_var = q
                        .head
                        .node_ids()
                        .iter()
                        .any(|&n| matches!(q.head.item(n), PItem::FuncVar(_)));
                    if head_has_func_var {
                        for &g in sys.service_names() {
                            out.insert(DepNode::Func(g));
                        }
                    }
                }
                None => {
                    // Black box: unknown definition, conservative edges.
                    for &d in sys.doc_names() {
                        out.insert(DepNode::Doc(d));
                    }
                    for &g in sys.service_names() {
                        out.insert(DepNode::Func(g));
                    }
                }
            }
        }
        DepGraph { nodes, edges }
    }

    /// Outgoing edges of a node.
    pub fn successors(&self, n: DepNode) -> impl Iterator<Item = DepNode> + '_ {
        self.edges.get(&n).into_iter().flatten().copied()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[DepNode] {
        &self.nodes
    }

    /// Is the graph acyclic? Acyclic systems always terminate (§3.2).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// A cycle witness, if any.
    pub fn find_cycle(&self) -> Option<Vec<DepNode>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: FxHashMap<DepNode, Color> =
            self.nodes.iter().map(|&n| (n, Color::White)).collect();
        let mut stack_path: Vec<DepNode> = Vec::new();

        fn dfs(
            g: &DepGraph,
            n: DepNode,
            color: &mut FxHashMap<DepNode, Color>,
            path: &mut Vec<DepNode>,
        ) -> Option<Vec<DepNode>> {
            color.insert(n, Color::Gray);
            path.push(n);
            for m in g.successors(n) {
                match color.get(&m).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        let start = path.iter().position(|&x| x == m).unwrap_or(0);
                        let mut cyc = path[start..].to_vec();
                        cyc.push(m);
                        return Some(cyc);
                    }
                    Color::White => {
                        if let Some(c) = dfs(g, m, color, path) {
                            return Some(c);
                        }
                    }
                    Color::Black => {}
                }
            }
            path.pop();
            color.insert(n, Color::Black);
            None
        }

        let nodes = self.nodes.clone();
        for n in nodes {
            if color[&n] == Color::White {
                if let Some(c) = dfs(self, n, &mut color, &mut stack_path) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// A topological order (dependencies first), if acyclic. Firing
    /// functions in this order needs a single invocation per call.
    pub fn topo_order(&self) -> Option<Vec<DepNode>> {
        if !self.is_acyclic() {
            return None;
        }
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut done: FxHashSet<DepNode> = FxHashSet::default();
        fn visit(
            g: &DepGraph,
            n: DepNode,
            done: &mut FxHashSet<DepNode>,
            order: &mut Vec<DepNode>,
        ) {
            if done.contains(&n) {
                return;
            }
            done.insert(n);
            for m in g.successors(n) {
                visit(g, m, done, order);
            }
            order.push(n);
        }
        for &n in &self.nodes {
            visit(self, n, &mut done, &mut order);
        }
        Some(order)
    }
}

/// Is `sys` acyclic per Definition 3.2 (hence guaranteed to terminate)?
pub fn is_acyclic(sys: &System) -> bool {
    DepGraph::build(sys).is_acyclic()
}

/// The documents a call to one service may *read* — the inputs its
/// result forest can depend on. Derived from the same information as the
/// dependency graph's `(f, d)` edges, but kept separate because the
/// delta engine also needs to know whether the call's **own** document
/// matters (it does exactly when the query mentions the reserved
/// `input`/`context` documents, which are built from the call's subtree
/// and parent subtree).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadSet {
    /// Unknown definition (black box, or head function variables able to
    /// mint arbitrary calls): conservatively reads every document.
    All,
    /// A positive service: the stored documents named by its body atoms,
    /// plus — when `own_doc` — the document hosting the invoked call.
    Docs {
        /// Stored documents named in body atoms (deduplicated).
        docs: Vec<Sym>,
        /// Does the query read `input` or `context` (so the result
        /// depends on the call's own document)?
        own_doc: bool,
    },
}

impl ReadSet {
    /// Does a call in document `host` read document `d`?
    pub fn reads(&self, host: Sym, d: Sym) -> bool {
        match self {
            ReadSet::All => true,
            ReadSet::Docs { docs, own_doc } => {
                docs.contains(&d) || (*own_doc && host == d)
            }
        }
    }
}

/// Compute the read set of service `f` in `sys` (conservative
/// [`ReadSet::All`] when `f` is unknown or not positively defined).
pub fn read_set(sys: &System, f: Sym) -> ReadSet {
    let Some(q) = sys.service_query(f) else {
        return ReadSet::All;
    };
    let mut own_doc = false;
    let mut docs = Vec::new();
    for d in q.doc_names() {
        if d == input_sym() || d == context_sym() {
            own_doc = true;
        } else if !docs.contains(&d) {
            docs.push(d);
        }
    }
    ReadSet::Docs { docs, own_doc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, EngineConfig, RunStatus};
    use crate::service::BlackBoxService;

    fn acyclic_portal() -> System {
        let mut sys = System::new();
        sys.add_document_text("reviews", r#"r{v{"1"},v{"2"}}"#).unwrap();
        sys.add_document_text("portal", "out{@fetch}").unwrap();
        sys.add_service_text("fetch", "v{$x} :- reviews/r{v{$x}}").unwrap();
        sys
    }

    #[test]
    fn acyclic_detected_and_terminates() {
        let sys = acyclic_portal();
        let g = DepGraph::build(&sys);
        assert!(g.is_acyclic());
        let order = g.topo_order().unwrap();
        // reviews before fetch before portal.
        let pos = |n: DepNode| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(DepNode::Doc(Sym::intern("reviews"))) < pos(DepNode::Func(Sym::intern("fetch"))));
        assert!(pos(DepNode::Func(Sym::intern("fetch"))) < pos(DepNode::Doc(Sym::intern("portal"))));
        let mut sys = sys;
        let (status, _) = run(&mut sys, &EngineConfig::default()).unwrap();
        assert_eq!(status, RunStatus::Terminated);
    }

    #[test]
    fn recursive_system_is_cyclic() {
        // Example 3.2's f reads d1 which contains f.
        let mut sys = System::new();
        sys.add_document_text("d1", "r{@f}").unwrap();
        sys.add_service_text(
            "f",
            "t{from{$x},to{$y}} :- d1/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
        )
        .unwrap();
        let g = DepGraph::build(&sys);
        assert!(!g.is_acyclic());
        let cyc = g.find_cycle().unwrap();
        assert!(cyc.len() >= 3);
        assert_eq!(cyc.first(), cyc.last());
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn self_returning_service_is_cyclic() {
        // Example 2.1: f's head contains f.
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "a{@f} :-").unwrap();
        assert!(!is_acyclic(&sys));
    }

    #[test]
    fn black_box_is_conservatively_cyclic() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@bb}").unwrap();
        sys.add_black_box("bb", BlackBoxService::constant("c", crate::forest::Forest::new()))
            .unwrap();
        // bb conservatively depends on d, and d contains bb: cycle.
        assert!(!is_acyclic(&sys));
    }

    #[test]
    fn read_sets_follow_body_atoms() {
        let sys = acyclic_portal();
        let fetch = Sym::intern("fetch");
        let reviews = Sym::intern("reviews");
        let portal = Sym::intern("portal");
        let rs = read_set(&sys, fetch);
        assert_eq!(
            rs,
            ReadSet::Docs {
                docs: vec![reviews],
                own_doc: false
            }
        );
        assert!(rs.reads(portal, reviews));
        // A fetch call hosted in portal does NOT read portal itself.
        assert!(!rs.reads(portal, portal));
    }

    #[test]
    fn input_context_pull_in_own_document() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{a{b},@g}").unwrap();
        sys.add_service_text("g", "a{a{#X}} :- context/a{a{#X}}")
            .unwrap();
        let rs = read_set(&sys, Sym::intern("g"));
        assert_eq!(
            rs,
            ReadSet::Docs {
                docs: vec![],
                own_doc: true
            }
        );
        let d = Sym::intern("d");
        assert!(rs.reads(d, d));
        assert!(!rs.reads(d, Sym::intern("other")));
    }

    #[test]
    fn black_box_reads_everything() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@bb}").unwrap();
        sys.add_black_box(
            "bb",
            BlackBoxService::constant("c", crate::forest::Forest::new()),
        )
        .unwrap();
        let rs = read_set(&sys, Sym::intern("bb"));
        assert_eq!(rs, ReadSet::All);
        assert!(rs.reads(Sym::intern("d"), Sym::intern("anything")));
        // Unknown service: also conservative.
        assert_eq!(read_set(&sys, Sym::intern("ghost")), ReadSet::All);
    }

    #[test]
    fn head_function_variable_is_conservative() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@copycall}").unwrap();
        // Copies any call found in d — could call anything, including
        // itself.
        sys.add_service_text("copycall", "r{@?f} :- d/a{@?f}").unwrap();
        assert!(!is_acyclic(&sys));
    }
}
