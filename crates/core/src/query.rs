//! Positive queries (Definition 3.1).
//!
//! A positive query is a rule `r :- d1/p1, …, dn/pn, e1, …, em` where the
//! `pi` are tree patterns over named documents, the `ej` are inequalities
//! over non-tree variables and constants, every head variable occurs in
//! the body, and no tree variable occurs twice in the body. A query is
//! **simple** when it uses no tree variables at all — the subclass with
//! decidable termination and finite graph representations (§3.2).
//!
//! Textual syntax (see [`parse_query`]):
//!
//! ```text
//! songs{$x} :- doc1/directory{cd{title{$x}, rating{"***"}}}, $x != "Bad"
//! ```

use crate::error::{AxmlError, Result};
use crate::parse::{parse_pattern_at, Lexer};
use crate::pattern::{PItem, Pattern};
use crate::sym::{FxHashMap, FxHashSet, Sym};
use crate::tree::Marking;
use std::fmt;

/// One body atom `d/p`: match pattern `p` against document `d`.
#[derive(Clone, Debug)]
pub struct Atom {
    /// The document name (possibly the reserved `input` / `context`).
    pub doc: Sym,
    /// The pattern to embed into that document.
    pub pattern: Pattern,
}

/// One side of an inequality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Operand {
    /// A (label/function/value) variable.
    Var(Sym),
    /// A constant marking.
    Const(Marking),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "${v}"),
            Operand::Const(m) => write!(f, "{m}"),
        }
    }
}

/// The kind of a variable, derived from its sigil.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// `?x`
    Label,
    /// `@?f`
    Func,
    /// `$x`
    Value,
    /// `#X`
    Tree,
}

/// A positive query.
#[derive(Clone, Debug)]
pub struct Query {
    /// The head pattern (the `return` part).
    pub head: Pattern,
    /// The body atoms.
    pub body: Vec<Atom>,
    /// Inequalities `x != y`.
    pub ineqs: Vec<(Operand, Operand)>,
}

fn collect_kinds(p: &Pattern, kinds: &mut FxHashMap<Sym, VarKind>) -> Result<()> {
    for n in p.node_ids() {
        let (v, k) = match p.item(n) {
            PItem::LabelVar(v) => (*v, VarKind::Label),
            PItem::FuncVar(v) => (*v, VarKind::Func),
            PItem::ValueVar(v) => (*v, VarKind::Value),
            PItem::TreeVar(v) => (*v, VarKind::Tree),
            PItem::Const(_) => continue,
        };
        match kinds.insert(v, k) {
            Some(prev) if prev != k => return Err(AxmlError::MixedVariableKinds(v)),
            _ => {}
        }
    }
    Ok(())
}

impl Query {
    /// Build and validate a query.
    pub fn new(head: Pattern, body: Vec<Atom>, ineqs: Vec<(Operand, Operand)>) -> Result<Query> {
        let q = Query { head, body, ineqs };
        q.validate()?;
        Ok(q)
    }

    /// Validate Definition 3.1's side conditions.
    pub fn validate(&self) -> Result<()> {
        // Variable kinds must be used consistently everywhere.
        let mut kinds: FxHashMap<Sym, VarKind> = FxHashMap::default();
        collect_kinds(&self.head, &mut kinds)?;
        for a in &self.body {
            collect_kinds(&a.pattern, &mut kinds)?;
        }

        // (2) Every head variable occurs in some body pattern.
        let mut body_vars: FxHashSet<Sym> = FxHashSet::default();
        for a in &self.body {
            body_vars.extend(a.pattern.variables());
        }
        for v in self.head.variables() {
            if !body_vars.contains(&v) {
                return Err(AxmlError::UnsafeHeadVariable(v));
            }
        }

        // (3) No tree variable occurs twice in the body…
        let mut seen: FxHashSet<Sym> = FxHashSet::default();
        for a in &self.body {
            for v in a.pattern.tree_var_occurrences() {
                if !seen.insert(v) {
                    return Err(AxmlError::RepeatedTreeVariable(v));
                }
            }
        }
        // …and inequalities involve only non-tree variables/constants.
        for (l, r) in &self.ineqs {
            for op in [l, r] {
                if let Operand::Var(v) = op {
                    match kinds.get(v) {
                        Some(VarKind::Tree) => {
                            return Err(AxmlError::TreeVariableInInequality(*v))
                        }
                        Some(_) => {}
                        // An inequality variable not occurring in the body
                        // would be unsafe (never bound).
                        None => return Err(AxmlError::UnsafeHeadVariable(*v)),
                    }
                }
            }
        }

        // Results are documents: the head root may not be a function.
        match self.head.item(self.head.root()) {
            PItem::Const(m) if m.is_func() => return Err(AxmlError::FunctionRoot),
            PItem::FuncVar(_) => return Err(AxmlError::FunctionRoot),
            _ => {}
        }
        Ok(())
    }

    /// A *simple* query uses no tree variables (head or body).
    pub fn is_simple(&self) -> bool {
        !self.head.uses_tree_vars() && self.body.iter().all(|a| !a.pattern.uses_tree_vars())
    }

    /// Document names referenced by the body (with duplicates removed),
    /// including the reserved `input`/`context` if used.
    pub fn doc_names(&self) -> Vec<Sym> {
        let mut seen = FxHashSet::default();
        self.body
            .iter()
            .filter_map(|a| seen.insert(a.doc).then_some(a.doc))
            .collect()
    }

    /// Function names mentioned as constants anywhere in the query
    /// (head or body patterns).
    pub fn function_names(&self) -> FxHashSet<Sym> {
        let mut out = FxHashSet::default();
        let mut scan = |p: &Pattern| {
            for n in p.node_ids() {
                if let PItem::Const(Marking::Func(f)) = p.item(n) {
                    out.insert(*f);
                }
            }
        };
        scan(&self.head);
        for a in &self.body {
            scan(&a.pattern);
        }
        out
    }

    /// The variable kinds used by this query.
    pub fn var_kinds(&self) -> FxHashMap<Sym, VarKind> {
        let mut kinds = FxHashMap::default();
        let _ = collect_kinds(&self.head, &mut kinds);
        for a in &self.body {
            let _ = collect_kinds(&a.pattern, &mut kinds);
        }
        kinds
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        let mut first = true;
        for a in &self.body {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}/{}", a.doc, a.pattern)?;
        }
        for (l, r) in &self.ineqs {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{l} != {r}")?;
        }
        Ok(())
    }
}

/// Parse a query rule: `head :- doc/pattern, …, x != y, …`.
///
/// Inequality operands may be variables (`$x`, `?l`, `@?f`), quoted value
/// constants, bare label constants, or `@func` constants.
///
/// ```
/// use axml_core::eval::{snapshot, Env};
/// use axml_core::parse::parse_tree;
/// use axml_core::query::parse_query;
/// use axml_core::Sym;
///
/// // Example 3.1's first query, evaluated as a snapshot (Prop 3.1).
/// let q = parse_query("?z :- d/r{t{a{$x},b{?z}}}")?;
/// assert!(q.is_simple());
/// let doc = parse_tree(r#"r{t{a{"1"},b{c{"2"},d{"3"}}}}"#)?;
/// let mut env = Env::new();
/// env.insert(Sym::intern("d"), &doc);
/// let result = snapshot(&q, &env)?;
/// assert_eq!(result.len(), 2); // heads c and d
/// # Ok::<(), axml_core::AxmlError>(())
/// ```
pub fn parse_query(src: &str) -> Result<Query> {
    let mut lx = Lexer::new(src);
    let head = parse_pattern_at(&mut lx)?;
    lx.expect(b':')?;
    lx.expect(b'-')?;
    let mut body = Vec::new();
    let mut ineqs = Vec::new();
    if !lx.at_end() {
        loop {
            parse_body_item(&mut lx, &mut body, &mut ineqs)?;
            if !lx.eat(b',') {
                break;
            }
        }
    }
    if !lx.at_end() {
        return lx.err("trailing input after query body");
    }
    Query::new(head, body, ineqs)
}

pub(crate) fn parse_operand(lx: &mut Lexer<'_>) -> Result<Operand> {
    match lx.peek() {
        Some(b'$') | Some(b'?') => {
            lx.bump();
            Ok(Operand::Var(lx.ident()?))
        }
        Some(b'@') => {
            lx.bump();
            if lx.eat(b'?') {
                Ok(Operand::Var(lx.ident()?))
            } else {
                Ok(Operand::Const(Marking::Func(lx.ident()?)))
            }
        }
        Some(b'"') => Ok(Operand::Const(Marking::Value(lx.string()?))),
        Some(_) => Ok(Operand::Const(Marking::Label(lx.ident()?))),
        None => lx.err("expected inequality operand"),
    }
}

fn parse_body_item(
    lx: &mut Lexer<'_>,
    body: &mut Vec<Atom>,
    ineqs: &mut Vec<(Operand, Operand)>,
) -> Result<()> {
    // A doc atom starts with a bare identifier followed by '/'. Anything
    // else (or an identifier followed by "!=") is an inequality.
    if matches!(lx.peek(), Some(c) if c != b'$' && c != b'?' && c != b'@' && c != b'"') {
        let save = lx.pos;
        let doc = lx.ident()?;
        if lx.eat(b'/') {
            let pattern = parse_pattern_at(lx)?;
            body.push(Atom { doc, pattern });
            return Ok(());
        }
        lx.pos = save;
    }
    let left = parse_operand(lx)?;
    lx.expect(b'!')?;
    lx.expect(b'=')?;
    let right = parse_operand(lx)?;
    ineqs.push((left, right));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_query() {
        let q = parse_query(
            r#"songs{$x} :- doc1/directory{cd{title{$x}, singer{"Carla Bruni"}, rating{"***"}}}"#,
        )
        .unwrap();
        assert!(q.is_simple());
        assert_eq!(q.body.len(), 1);
        assert_eq!(q.doc_names(), vec![Sym::intern("doc1")]);
    }

    #[test]
    fn parse_example_3_1_queries() {
        let simple = parse_query("?z :- dp/a{$x}, d/r{t{a{$x},b{?z}}}").unwrap();
        assert!(simple.is_simple());
        let treeq = parse_query("#Z :- dp/a{$x}, d/r{t{a{$x},b{#Z}}}").unwrap();
        assert!(!treeq.is_simple());
    }

    #[test]
    fn parse_empty_body() {
        // Example 2.1's service: a{f} :-
        let q = parse_query("a{@f} :-").unwrap();
        assert!(q.body.is_empty());
        assert!(q.is_simple());
    }

    #[test]
    fn parse_inequalities() {
        let q = parse_query(r#"r{$x} :- d/a{$x,$y}, $x != $y, $x != "0""#).unwrap();
        assert_eq!(q.ineqs.len(), 2);
        let q2 = parse_query("r{?z} :- d/a{?z}, ?z != b").unwrap();
        assert_eq!(q2.ineqs.len(), 1);
        assert_eq!(
            q2.ineqs[0].1,
            Operand::Const(Marking::label("b"))
        );
    }

    #[test]
    fn unsafe_head_rejected() {
        assert!(matches!(
            parse_query("r{$x} :- d/a{$y}"),
            Err(AxmlError::UnsafeHeadVariable(_))
        ));
    }

    #[test]
    fn repeated_tree_variable_rejected() {
        assert!(matches!(
            parse_query("r :- d/a{#X}, d/b{#X}"),
            Err(AxmlError::RepeatedTreeVariable(_))
        ));
        assert!(matches!(
            parse_query("r :- d/a{#X,#X}"),
            Err(AxmlError::RepeatedTreeVariable(_))
        ));
        // A tree variable may appear several times in the HEAD.
        assert!(parse_query("r{#X,u{#X}} :- d/a{#X}").is_ok());
    }

    #[test]
    fn tree_variable_in_inequality_rejected() {
        assert!(matches!(
            parse_query("r :- d/a{#X}, #X != b"),
            // '#' is not a valid operand start; the parser rejects it
            // before validation can classify it.
            Err(AxmlError::Parse { .. })
        ));
        // Same name used as value var in the ineq but tree var in body:
        // kind clash is rejected.
        assert!(parse_query("r :- d/a{#X}, $X != b").is_err());
    }

    #[test]
    fn function_rooted_head_rejected() {
        assert!(matches!(
            parse_query("@f{$x} :- d/a{$x}"),
            Err(AxmlError::FunctionRoot)
        ));
    }

    #[test]
    fn mixed_kind_variable_rejected() {
        assert!(parse_query("r{$x} :- d/a{$x}, d/b{?x}").is_err());
    }

    #[test]
    fn display_roundtrip() {
        let src = r#"songs{$x} :- d/cd{title{$x},rating{"***"}}, $x != "Bad""#;
        let q = parse_query(src).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q.to_string(), q2.to_string());
    }

    #[test]
    fn function_names_collected() {
        let q = parse_query("a{@f{$x}} :- d/b{$x, @g}").unwrap();
        let fns = q.function_names();
        assert!(fns.contains(&Sym::intern("f")));
        assert!(fns.contains(&Sym::intern("g")));
    }
}
