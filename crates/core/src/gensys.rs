//! Random simple positive systems, for differential testing.
//!
//! Theorem 3.3's decision procedure and the rewriting engine are two
//! independent implementations of the same semantics; generating random
//! simple systems and cross-checking them (termination verdict vs.
//! bounded execution; graph unfolding vs. engine fixpoint) is the
//! strongest correctness check this reproduction has. The generator is
//! deterministic in its seed.

use crate::pattern::{PItem, Pattern};
use crate::query::{Atom, Query};
use crate::system::System;
use crate::sym::Sym;
use crate::tree::{Marking, NodeId, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator knobs.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of documents.
    pub docs: usize,
    /// Number of services.
    pub services: usize,
    /// Distinct labels.
    pub labels: usize,
    /// Distinct atomic values.
    pub values: usize,
    /// Nodes per document (approximate).
    pub doc_nodes: usize,
    /// Probability that a service head contains a function call
    /// (the recursion/divergence driver).
    pub head_call_prob: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            docs: 2,
            services: 3,
            labels: 3,
            values: 3,
            doc_nodes: 8,
            head_call_prob: 0.3,
        }
    }
}

fn label(i: usize) -> Marking {
    Marking::label(&format!("l{i}"))
}

fn value(i: usize) -> Marking {
    Marking::value(&format!("{i}"))
}

fn func(i: usize) -> Marking {
    Marking::func(&format!("f{i}"))
}

/// Generate a random simple positive system. The result always passes
/// [`System::validate`] and [`System::is_simple`].
pub fn random_simple_system(cfg: &GenConfig, seed: u64) -> System {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sys = System::new();

    // Documents: random trees with labels, values, and function nodes.
    for d in 0..cfg.docs {
        let mut t = Tree::new(label(rng.gen_range(0..cfg.labels)));
        let mut interior: Vec<NodeId> = vec![t.root()];
        while t.node_count() < cfg.doc_nodes {
            let parent = interior[rng.gen_range(0..interior.len())];
            let roll: f64 = rng.gen();
            let m = if roll < 0.15 {
                func(rng.gen_range(0..cfg.services))
            } else if roll < 0.4 {
                value(rng.gen_range(0..cfg.values))
            } else {
                label(rng.gen_range(0..cfg.labels))
            };
            if let Ok(id) = t.add_child(parent, m) {
                if !t.marking(id).is_value() && !t.marking(id).is_func() {
                    interior.push(id);
                }
            }
        }
        sys.add_document(&format!("d{d}"), t).expect("generated doc is valid");
    }

    // Services: simple queries. Body: 0–2 atoms over stored documents or
    // context; patterns of depth <= 2 with value variables. Head: a
    // small pattern over the body's variables, possibly with a call.
    for s in 0..cfg.services {
        let atom_count = rng.gen_range(0..=2usize);
        let mut body: Vec<Atom> = Vec::new();
        let mut vars: Vec<Sym> = Vec::new();
        for a in 0..atom_count {
            let over_context = rng.gen_bool(0.25);
            let doc = if over_context {
                crate::system::context_sym()
            } else {
                Sym::intern(&format!("d{}", rng.gen_range(0..cfg.docs)))
            };
            // Pattern: root label (label var allowed for context, whose
            // root marking is unknown), one or two children, one of
            // which binds a value variable.
            let root_item = if over_context {
                PItem::LabelVar(Sym::intern(&format!("r{s}_{a}")))
            } else {
                PItem::Const(label(rng.gen_range(0..cfg.labels)))
            };
            let mut p = Pattern::new(root_item);
            let proot = p.root();
            let kid = p
                .add_child(proot, PItem::Const(label(rng.gen_range(0..cfg.labels))))
                .expect("label roots take children");
            let var = Sym::intern(&format!("x{s}_{a}"));
            if rng.gen_bool(0.7) {
                p.add_child(kid, PItem::ValueVar(var)).expect("leaf");
                vars.push(var);
            } else {
                p.add_child(kid, PItem::Const(value(rng.gen_range(0..cfg.values))))
                    .expect("leaf");
            }
            body.push(Atom { doc, pattern: p });
        }
        // Head: label root; children drawn from bound vars / constants /
        // possibly a function call.
        let mut head = Pattern::new(PItem::Const(label(rng.gen_range(0..cfg.labels))));
        let hroot = head.root();
        let kids = rng.gen_range(1..=2usize);
        for _ in 0..kids {
            if !vars.is_empty() && rng.gen_bool(0.6) {
                let v = vars[rng.gen_range(0..vars.len())];
                let wrap = head
                    .add_child(hroot, PItem::Const(label(rng.gen_range(0..cfg.labels))))
                    .expect("labels take children");
                head.add_child(wrap, PItem::ValueVar(v)).expect("leaf");
            } else {
                head.add_child(hroot, PItem::Const(value(rng.gen_range(0..cfg.values))))
                    .expect("leaf");
            }
        }
        if rng.gen_bool(cfg.head_call_prob) {
            head.add_child(hroot, PItem::Const(func(rng.gen_range(0..cfg.services))))
                .expect("labels take children");
        }
        let q = Query::new(head, body, Vec::new()).expect("generated query is safe");
        debug_assert!(q.is_simple());
        sys.add_service(&format!("f{s}"), q).expect("fresh name");
    }
    sys.validate().expect("generated system validates");
    sys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = random_simple_system(&GenConfig::default(), 7);
        let b = random_simple_system(&GenConfig::default(), 7);
        assert_eq!(a.canonical_key(), b.canonical_key());
        // A different seed must still generate a valid system; its key
        // usually (but not provably) differs, so only build it.
        let c = random_simple_system(&GenConfig::default(), 8);
        c.validate().expect("seed 8 generates a valid system");
    }

    #[test]
    fn generated_systems_are_simple_and_valid() {
        for seed in 0..30u64 {
            let sys = random_simple_system(&GenConfig::default(), seed);
            assert!(sys.is_simple());
            assert!(sys.is_positive());
            sys.validate().unwrap();
        }
    }
}
