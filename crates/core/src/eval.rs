//! Snapshot evaluation of positive queries (Proposition 3.1).
//!
//! The snapshot result `q(I)` evaluates the body against the documents
//! *as they currently are* — no service call is invoked — and returns the
//! reduced forest of instantiated heads. Snapshot semantics is monotone
//! (Prop 3.1 (1)) and polynomial in the data (Prop 3.1 (3)); both facts
//! are exercised by the test suites and the X3 experiment.

use crate::compile::{CompiledQuery, ProgramCache};
use crate::error::{AxmlError, Result};
use crate::forest::Forest;
use crate::matcher::{match_pattern_with, Binding, Bound, MatchStats, MatchStrategy};
use crate::pattern::{PItem, Pattern, PNodeId};
use crate::query::{Operand, Query};
use crate::system::{context_sym, input_sym, System};
use crate::sym::{FxHashMap, Sym};
use crate::trace::{EventKind, Tracer};
use crate::tree::{Marking, NodeId, Tree};
use std::sync::Arc;

/// The evaluation environment: named documents visible to a query (the
/// system's documents plus, during a service call, the reserved `input`
/// and `context` documents).
///
/// Explicitly inserted documents shadow the optional [`System`] backing;
/// the backing lets [`Env::for_invocation`] be O(1) instead of copying
/// every document reference into a map on each service call.
#[derive(Default)]
pub struct Env<'a> {
    docs: FxHashMap<Sym, &'a Tree>,
    sys: Option<&'a System>,
}

impl<'a> Env<'a> {
    /// Empty environment.
    pub fn new() -> Env<'a> {
        Env::default()
    }

    /// The environment a service call evaluates under: every stored
    /// document of `sys`, plus the reserved `input` and `context` trees.
    /// Constant-time — stored documents are resolved lazily via `sys`.
    pub fn for_invocation(sys: &'a System, input: &'a Tree, context: &'a Tree) -> Env<'a> {
        let mut docs = FxHashMap::default();
        docs.insert(input_sym(), input);
        docs.insert(context_sym(), context);
        Env {
            docs,
            sys: Some(sys),
        }
    }

    /// The environment of a top-level (client-side) snapshot query:
    /// every stored document of `sys`, nothing else. Constant-time —
    /// documents are resolved lazily via `sys`. This is what the
    /// `axml-server` crate evaluates `query`/`batch`/`subscribe` frames
    /// under.
    pub fn for_system(sys: &'a System) -> Env<'a> {
        Env {
            docs: FxHashMap::default(),
            sys: Some(sys),
        }
    }

    /// Register document `name`.
    pub fn insert(&mut self, name: Sym, doc: &'a Tree) {
        self.docs.insert(name, doc);
    }

    /// Look up a document.
    pub fn get(&self, name: Sym) -> Option<&'a Tree> {
        self.docs
            .get(&name)
            .copied()
            .or_else(|| self.sys.and_then(|s| s.doc(name)))
    }

    /// Names visible (explicit entries, then any backing system's docs).
    pub fn names(&self) -> impl Iterator<Item = Sym> + '_ {
        self.docs.keys().copied().chain(
            self.sys
                .into_iter()
                .flat_map(|s| s.doc_names().iter().copied())
                .filter(|n| !self.docs.contains_key(n)),
        )
    }
}

/// Statistics from one snapshot evaluation, for the complexity
/// experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalStats {
    /// Bindings produced per body atom, summed.
    pub atom_bindings: usize,
    /// Bindings surviving the final join.
    pub joined_bindings: usize,
    /// Result trees before forest reduction.
    pub raw_results: usize,
}

/// A cache of per-atom pattern matches, keyed by `(service, atom index)`
/// and validated against the matched document's `(id, version)` pair.
///
/// Stored documents only mutate monotonically under the engine, and
/// [`crate::tree::Tree::version`] changes on every mutation, so an entry
/// whose id and version still match is exact — not merely sound. The
/// reserved `input`/`context` documents are never cached: they are fresh
/// trees on every invocation.
#[derive(Default)]
pub struct MatchCache {
    entries: FxHashMap<(Sym, usize), CacheEntry>,
    hits: usize,
    misses: usize,
}

/// `(doc id, doc version, bindings)` — exact while id+version match.
type CacheEntry = (u64, u64, Arc<Vec<Binding>>);

impl MatchCache {
    /// Fresh, empty cache.
    pub fn new() -> MatchCache {
        MatchCache::default()
    }

    /// Atom evaluations answered from cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Atom evaluations that had to run the matcher.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Cached atom entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Evaluate the snapshot result `q(env)`: the reduced forest of all
/// `µ(head)` for assignments µ satisfying every body atom and inequality.
pub fn snapshot(q: &Query, env: &Env<'_>) -> Result<Forest> {
    snapshot_with_stats(q, env).map(|(f, _)| f)
}

/// [`snapshot`], also reporting evaluation statistics.
pub fn snapshot_with_stats(q: &Query, env: &Env<'_>) -> Result<(Forest, EvalStats)> {
    snapshot_inner(q, env, None, None, Tracer::disabled(), MatchStrategy::default())
}

/// [`snapshot`] under an explicit [`MatchStrategy`] — the scan baseline
/// of the X16 experiment; engine runs set the strategy via
/// [`crate::engine::EngineConfig`] instead.
pub fn snapshot_with_strategy(
    q: &Query,
    env: &Env<'_>,
    strategy: MatchStrategy,
) -> Result<(Forest, EvalStats)> {
    snapshot_inner(q, env, None, None, Tracer::disabled(), strategy)
}

/// [`snapshot_with_strategy`] through the compiled path: the service's
/// query is compiled (or served) from `programs` and executed by the
/// [`crate::compile::MatchProgram`] evaluator. Bit-for-bit equivalent
/// to the interpreted entry points — see [`crate::compile`].
pub fn snapshot_compiled(
    q: &Query,
    env: &Env<'_>,
    svc: Sym,
    programs: &mut ProgramCache,
    strategy: MatchStrategy,
) -> Result<(Forest, EvalStats)> {
    snapshot_inner(
        q,
        env,
        None,
        Some((svc, programs)),
        Tracer::disabled(),
        strategy,
    )
}

/// [`snapshot_with_stats`] with per-atom match caching for the service
/// named `svc`: body atoms over stored documents reuse the bindings of
/// the previous evaluation whenever the document is unchanged (same
/// tree id and version).
pub fn snapshot_with_cache(
    q: &Query,
    env: &Env<'_>,
    svc: Sym,
    cache: &mut MatchCache,
) -> Result<(Forest, EvalStats)> {
    snapshot_inner(
        q,
        env,
        Some((svc, cache)),
        None,
        Tracer::disabled(),
        MatchStrategy::default(),
    )
}

/// [`snapshot_with_cache`], emitting a [`EventKind::CacheHit`] /
/// [`EventKind::CacheMiss`] event per cacheable body atom and an
/// [`EventKind::IndexLookup`] event per atom that ran the matcher (see
/// [`crate::trace`]).
pub fn snapshot_with_cache_traced(
    q: &Query,
    env: &Env<'_>,
    svc: Sym,
    cache: &mut MatchCache,
    tracer: Tracer<'_>,
) -> Result<(Forest, EvalStats)> {
    snapshot_inner(
        q,
        env,
        Some((svc, cache)),
        None,
        tracer,
        MatchStrategy::default(),
    )
}

pub(crate) fn snapshot_inner(
    q: &Query,
    env: &Env<'_>,
    mut cache: Option<(Sym, &mut MatchCache)>,
    programs: Option<(Sym, &mut ProgramCache)>,
    tracer: Tracer<'_>,
    strategy: MatchStrategy,
) -> Result<(Forest, EvalStats)> {
    // Compiled path: fetch (or compile) the service's program once, then
    // drive the same per-atom cache/join/dedup loop below — only the
    // matcher call differs. The retained atoms keep their original body
    // indices, so match-cache keys and trace events are stable, and the
    // loop resolves documents in original order, so `UnknownDocument`
    // errors and empty-result short-circuits fire exactly like the
    // interpreter (eliminated atoms always have an earlier surviving
    // same-document witness — see `crate::compile`).
    let compiled: Option<Arc<CompiledQuery>> =
        programs.map(|(svc, pc)| pc.lookup(svc, q, env, strategy, tracer));
    let atom_plan: Vec<(usize, Option<usize>)> = match &compiled {
        Some(c) => c
            .program()
            .atoms()
            .iter()
            .enumerate()
            .map(|(pos, a)| (a.index, Some(pos)))
            .collect(),
        None => (0..q.body.len()).map(|i| (i, None)).collect(),
    };
    let run_match = |i: usize, pos: Option<usize>, doc: &Tree| -> (Vec<Binding>, MatchStats) {
        match (&compiled, pos) {
            (Some(c), Some(pos)) => c.run_atom(pos, doc),
            _ => match_pattern_with(&q.body[i].pattern, doc, strategy),
        }
    };
    let mut stats = EvalStats::default();
    let mut combined: Vec<Binding> = vec![Binding::new()];
    for (i, pos) in atom_plan {
        let atom = &q.body[i];
        let doc = env
            .get(atom.doc)
            .ok_or(AxmlError::UnknownDocument(atom.doc))?;
        let cacheable = atom.doc != input_sym() && atom.doc != context_sym();
        let matches: Arc<Vec<Binding>> = match cache.as_mut() {
            Some((svc, c)) if cacheable => {
                let key = (*svc, i);
                match c.entries.get(&key) {
                    Some((id, ver, m)) if *id == doc.id() && *ver == doc.version() => {
                        c.hits += 1;
                        tracer.emit(|| EventKind::CacheHit {
                            service: *svc,
                            atom: i as u32,
                        });
                        Arc::clone(m)
                    }
                    _ => {
                        c.misses += 1;
                        tracer.emit(|| EventKind::CacheMiss {
                            service: *svc,
                            atom: i as u32,
                        });
                        let (bindings, mstats) = run_match(i, pos, doc);
                        emit_index_lookup(tracer, *svc, i, mstats);
                        let m = Arc::new(bindings);
                        c.entries
                            .insert(key, (doc.id(), doc.version(), Arc::clone(&m)));
                        m
                    }
                }
            }
            Some((svc, _)) => {
                let (bindings, mstats) = run_match(i, pos, doc);
                emit_index_lookup(tracer, *svc, i, mstats);
                Arc::new(bindings)
            }
            None => Arc::new(run_match(i, pos, doc).0),
        };
        stats.atom_bindings += matches.len();
        if matches.is_empty() {
            return Ok((Forest::new(), stats));
        }
        let mut next: Vec<Binding> = Vec::new();
        for base in &combined {
            for m in matches.iter() {
                if let Some(merged) = base.merge(m) {
                    next.push(merged);
                }
            }
        }
        // Deduplicate: distinct matches can merge into identical joins.
        // Two passes over references avoid cloning every binding into
        // the seen-set; order (hence engine determinism) is preserved.
        // (`Binding` hashes tree bounds by canonical key, never through
        // the tree's lazily built index, so the interior mutability the
        // lint worries about cannot perturb the set.)
        #[allow(clippy::mutable_key_type)]
        let keep: Vec<bool> = {
            let mut seen = crate::sym::FxHashSet::default();
            next.iter().map(|b| seen.insert(b)).collect()
        };
        let mut idx = 0;
        next.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        if next.is_empty() {
            return Ok((Forest::new(), stats));
        }
        combined = next;
    }

    combined.retain(|b| q.ineqs.iter().all(|(l, r)| ineq_holds(l, r, b)));
    stats.joined_bindings = combined.len();

    let mut forest = Forest::new();
    for b in &combined {
        forest.push(instantiate_head(&q.head, b)?);
    }
    stats.raw_results = forest.len();
    Ok((forest.reduce(), stats))
}

/// Report one matcher run's index usage to the trace journal.
fn emit_index_lookup(tracer: Tracer<'_>, svc: Sym, atom: usize, mstats: MatchStats) {
    tracer.emit(|| EventKind::IndexLookup {
        service: svc,
        atom: atom as u32,
        probes: mstats.probes as u32,
        probe_hits: mstats.probe_hits as u32,
        fallbacks: mstats.fallbacks as u32,
    });
}

/// Does the inequality `l != r` hold under binding `b`?
///
/// Operands resolve to markings; two markings are unequal when they
/// differ in kind or in symbol. Tree variables are excluded by query
/// validation (Definition 3.1 (3)).
fn ineq_holds(l: &Operand, r: &Operand, b: &Binding) -> bool {
    let resolve = |op: &Operand| -> Option<Marking> {
        match op {
            Operand::Const(m) => Some(*m),
            Operand::Var(v) => b.get(*v).and_then(Bound::as_marking),
        }
    };
    match (resolve(l), resolve(r)) {
        (Some(a), Some(c)) => a != c,
        // An unbound or tree-valued operand cannot witness the
        // inequality; validation prevents this case.
        _ => false,
    }
}

/// Instantiate a head pattern under a binding, producing a result tree.
pub fn instantiate_head(head: &Pattern, b: &Binding) -> Result<Tree> {
    // A head consisting of a single tree variable returns the bound
    // subtree itself (Example 3.1's second query).
    if let PItem::TreeVar(v) = head.item(head.root()) {
        let bound = b.get(*v).ok_or(AxmlError::UnsafeHeadVariable(*v))?;
        match bound {
            Bound::Tree(t, _) => return Ok((**t).clone()),
            _ => return Err(AxmlError::UnsafeHeadVariable(*v)),
        }
    }
    let root_marking = resolve_item(head.item(head.root()), b)?;
    let mut out = Tree::new(root_marking);
    let out_root = out.root();
    build_children(head, head.root(), &mut out, out_root, b)?;
    Ok(out)
}

fn resolve_item(item: &PItem, b: &Binding) -> Result<Marking> {
    match item {
        PItem::Const(m) => Ok(*m),
        PItem::LabelVar(v) | PItem::FuncVar(v) | PItem::ValueVar(v) => {
            let bound = b.get(*v).ok_or(AxmlError::UnsafeHeadVariable(*v))?;
            bound.as_marking().ok_or(AxmlError::UnsafeHeadVariable(*v))
        }
        PItem::TreeVar(v) => Err(AxmlError::UnsafeHeadVariable(*v)),
    }
}

fn build_children(
    head: &Pattern,
    hn: PNodeId,
    out: &mut Tree,
    on: NodeId,
    b: &Binding,
) -> Result<()> {
    for &hc in head.children(hn) {
        if let PItem::TreeVar(v) = head.item(hc) {
            let bound = b.get(*v).ok_or(AxmlError::UnsafeHeadVariable(*v))?;
            match bound {
                Bound::Tree(t, _) => {
                    out.graft(on, t)?;
                }
                _ => return Err(AxmlError::UnsafeHeadVariable(*v)),
            }
            continue;
        }
        let m = resolve_item(head.item(hc), b)?;
        let oc = out.add_child(on, m)?;
        build_children(head, hc, out, oc, b)?;
    }
    Ok(())
}

/// A continuous-query delta extractor: repeated [`QueryCursor::poll`]s
/// against a growing [`System`] return only the answer trees **not yet
/// seen** by this cursor, keyed by canonical equivalence
/// ([`crate::reduce::canonical_key`], Definition 2.2).
///
/// Snapshot evaluation is monotone (Proposition 3.1 (1)): as the system
/// grows under fair rewriting, `q(I)` only gains answers (up to
/// subsumption), so the concatenation of all polled deltas *is* the
/// final answer set — the invariant behind the `axml-server`
/// subscription protocol, which polls a cursor between
/// [`crate::engine::RoundRunner::step`]s and streams each non-empty
/// delta as one wire frame.
///
/// ```
/// use axml_core::eval::QueryCursor;
/// use axml_core::query::parse_query;
/// use axml_core::system::System;
///
/// let mut sys = System::new();
/// sys.add_document_text("db", r#"db{entry{"a"}}"#)?;
/// let q = parse_query("hit{$x} :- db/db{entry{$x}}")?;
/// let mut cursor = QueryCursor::new(q);
///
/// // First poll sees the one answer…
/// assert_eq!(cursor.poll(&sys)?.len(), 1);
/// // …a second poll over the unchanged system sees nothing new.
/// assert!(cursor.poll(&sys)?.is_empty());
/// # Ok::<(), axml_core::AxmlError>(())
/// ```
pub struct QueryCursor {
    query: Query,
    seen: crate::sym::FxHashSet<crate::reduce::CanonKey>,
}

impl QueryCursor {
    /// A fresh cursor for `query`; nothing seen yet.
    pub fn new(query: Query) -> QueryCursor {
        QueryCursor {
            query,
            seen: crate::sym::FxHashSet::default(),
        }
    }

    /// The registered query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Distinct (up to equivalence) answer trees returned so far.
    pub fn seen(&self) -> usize {
        self.seen.len()
    }

    /// Evaluate the query against the system's current documents and
    /// return the answer trees not seen by any earlier poll, in the
    /// evaluation's (deterministic) result order. An unchanged system
    /// yields an empty delta.
    pub fn poll(&mut self, sys: &System) -> Result<Vec<Tree>> {
        let env = Env::for_system(sys);
        let forest = snapshot(&self.query, &env)?;
        let mut fresh = Vec::new();
        for t in forest.trees() {
            if self.seen.insert(crate::reduce::canonical_key(t)) {
                fresh.push(t.clone());
            }
        }
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;
    use crate::query::parse_query;

    /// Helper: evaluate query text against named documents.
    fn eval(q: &str, docs: &[(&str, &str)]) -> Forest {
        let trees: Vec<(Sym, Tree)> = docs
            .iter()
            .map(|(n, s)| (Sym::intern(n), parse_tree(s).unwrap()))
            .collect();
        let mut env = Env::new();
        for (n, t) in &trees {
            env.insert(*n, t);
        }
        snapshot(&parse_query(q).unwrap(), &env).unwrap()
    }

    #[test]
    fn paper_example_3_1_simple_query() {
        // z :- d'/a{x}, d/r{t{a{x},b{z}}} over the Example 3.1 documents.
        let f = eval(
            "?z :- dp/a{$x}, d/r{t{a{$x},b{?z}}}",
            &[
                (
                    "d",
                    r#"r{t{a{"1"},b{c{"2"},d{"3"}}},
                       t{a{"1"},b{c{"3"},e{"3"}}},
                       t{a{"2"},b{c{"2"},k{"6"}}}}"#,
                ),
                ("dp", r#"a{"1"}"#),
            ],
        );
        let mut got: Vec<String> = f.trees().iter().map(|t| t.to_string()).collect();
        got.sort_unstable();
        assert_eq!(got, vec!["c", "d", "e"]);
    }

    #[test]
    fn paper_example_3_1_tree_query() {
        let f = eval(
            "#Z :- dp/a{$x}, d/r{t{a{$x},b{#Z}}}",
            &[
                (
                    "d",
                    r#"r{t{a{"1"},b{c{"2"},d{"3"}}},
                       t{a{"1"},b{c{"3"},e{"3"}}},
                       t{a{"2"},b{c{"2"},k{"6"}}}}"#,
                ),
                ("dp", r#"a{"1"}"#),
            ],
        );
        let mut got: Vec<String> = f.trees().iter().map(|t| t.to_string()).collect();
        got.sort_unstable();
        assert_eq!(
            got,
            vec![r#"c{"2"}"#, r#"c{"3"}"#, r#"d{"3"}"#, r#"e{"3"}"#]
        );
    }

    #[test]
    fn empty_body_yields_single_head() {
        let f = eval("a{@f} :-", &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.trees()[0].to_string(), "a{@f}");
    }

    #[test]
    fn inequality_filters_bindings() {
        let f = eval(
            r#"pair{$x,$y} :- d/r{a{$x},a{$y}}, $x != $y"#,
            &[("d", r#"r{a{"1"},a{"2"}}"#)],
        );
        // (1,2) and (2,1) instantiate to the same reduced head set.
        assert_eq!(f.len(), 1);
        assert_eq!(f.trees()[0].to_string(), r#"pair{"1","2"}"#);
    }

    #[test]
    fn unknown_document_errors() {
        let q = parse_query("r{$x} :- nosuch/a{$x}").unwrap();
        let env = Env::new();
        assert!(matches!(
            snapshot(&q, &env),
            Err(AxmlError::UnknownDocument(_))
        ));
    }

    #[test]
    fn monotone_under_document_growth() {
        // Prop 3.1 (1): growing the document grows the snapshot result.
        let small = eval(
            "r{$x} :- d/r{t{$x}}",
            &[("d", r#"r{t{"1"}}"#)],
        );
        let large = eval(
            "r{$x} :- d/r{t{$x}}",
            &[("d", r#"r{t{"1"},t{"2"}}"#)],
        );
        assert!(small.subsumed_by(&large));
    }

    #[test]
    fn join_across_atoms() {
        // Transitive-step query: t{x,y} :- d/r{t{x,z},t{z,y}} in the
        // n-ary encoding t{from{x},to{y}}.
        let f = eval(
            "t{from{$x},to{$y}} :- d/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
            &[("d", r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}}"#)],
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f.trees()[0].to_string(), r#"t{from{"1"},to{"3"}}"#);
    }

    #[test]
    fn result_forest_is_reduced() {
        let f = eval(
            "r{$x} :- d/a{b{$x},c{$x}}",
            &[("d", r#"a{b{"1"},c{"1"},b{"1"}}"#)],
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn head_with_repeated_tree_var_duplicates_subtree() {
        let f = eval(
            "r{#X,copy{#X}} :- d/a{#X}",
            &[("d", "a{b{c}}")],
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f.trees()[0].to_string(), "r{b{c},copy{b{c}}}");
    }

    #[test]
    fn match_cache_hits_on_unchanged_docs_and_invalidates_on_change() {
        let mut sys = System::new();
        sys.add_document_text("d", r#"r{t{"1"},t{"2"}}"#).unwrap();
        let q = parse_query("r{$x} :- d/r{t{$x}}").unwrap();
        let svc = Sym::intern("f");
        let mut cache = MatchCache::new();

        let input = parse_tree("input").unwrap();
        let context = parse_tree("c").unwrap();
        let env = Env::for_invocation(&sys, &input, &context);
        let (f1, _) = snapshot_with_cache(&q, &env, svc, &mut cache).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let (f2, _) = snapshot_with_cache(&q, &env, svc, &mut cache).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(f1.subsumed_by(&f2) && f2.subsumed_by(&f1));
        drop(env);

        // Mutating the document invalidates the entry.
        let extra = parse_tree(r#"t{"3"}"#).unwrap();
        let doc = sys.doc_mut(Sym::intern("d")).unwrap();
        let root = doc.root();
        doc.graft(root, &extra).unwrap();
        let env = Env::for_invocation(&sys, &input, &context);
        let (f3, _) = snapshot_with_cache(&q, &env, svc, &mut cache).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(f3.len(), 3);
    }

    #[test]
    fn input_and_context_atoms_are_never_cached() {
        let mut sys = System::new();
        sys.add_document_text("d", "a").unwrap();
        let q = parse_query("r{$x} :- input/input{p{$x}}").unwrap();
        let svc = Sym::intern("f");
        let mut cache = MatchCache::new();
        let context = parse_tree("c").unwrap();
        let input = parse_tree(r#"input{p{"1"}}"#).unwrap();
        let env = Env::for_invocation(&sys, &input, &context);
        snapshot_with_cache(&q, &env, svc, &mut cache).unwrap();
        snapshot_with_cache(&q, &env, svc, &mut cache).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn env_for_invocation_resolves_system_and_reserved_docs() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{b}").unwrap();
        let input = parse_tree("input{x}").unwrap();
        let context = parse_tree("ctx").unwrap();
        let env = Env::for_invocation(&sys, &input, &context);
        assert!(env.get(Sym::intern("d")).is_some());
        assert!(env.get(crate::system::input_sym()).is_some());
        assert!(env.get(crate::system::context_sym()).is_some());
        assert!(env.get(Sym::intern("nosuch")).is_none());
        let names: Vec<Sym> = env.names().collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn stats_reported() {
        let trees = parse_tree(r#"r{t{"1"},t{"2"}}"#).unwrap();
        let mut env = Env::new();
        env.insert(Sym::intern("d"), &trees);
        let q = parse_query("r{$x} :- d/r{t{$x}}").unwrap();
        let (_, stats) = snapshot_with_stats(&q, &env).unwrap();
        assert_eq!(stats.joined_bindings, 2);
        assert_eq!(stats.raw_results, 2);
    }
}
