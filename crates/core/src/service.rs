//! Services: the functions behind function nodes (§2.2).
//!
//! A service maps an assignment of documents (the system's documents plus
//! the reserved `input` and `context`) to a forest of AXML trees. The
//! paper studies two views:
//!
//! * **black-box** monotone services ([`BlackBoxService`]) — arbitrary
//!   monotone functions, the general monotone-system setting of §2;
//! * **positive** services ([`QueryService`]) — defined by positive
//!   queries, the setting of §3 onward. Positivity makes the system's
//!   monotonicity automatic (Prop 3.1 (1)).

use crate::error::Result;
use crate::eval::{snapshot, Env};
use crate::forest::Forest;
use crate::query::Query;
use std::fmt;
use std::sync::Arc;

/// A Web service: a (monotone) function from document assignments to
/// forests of AXML trees.
pub trait Service: Send + Sync {
    /// Evaluate the service under the given environment.
    fn invoke(&self, env: &Env<'_>) -> Result<Forest>;

    /// The defining positive query, when the service is declaratively
    /// defined (positive systems). Black boxes return `None`.
    fn query(&self) -> Option<&Query> {
        None
    }

    /// Human-readable description for diagnostics.
    fn describe(&self) -> String {
        match self.query() {
            Some(q) => q.to_string(),
            None => "<black-box>".to_string(),
        }
    }
}

/// A positive service defined by a positive query (§3.2). Invocation is
/// the query's snapshot evaluation; monotonicity follows from
/// Proposition 3.1 (1).
#[derive(Clone, Debug)]
pub struct QueryService {
    query: Query,
}

impl QueryService {
    /// Wrap a validated query.
    pub fn new(query: Query) -> QueryService {
        QueryService { query }
    }
}

impl Service for QueryService {
    fn invoke(&self, env: &Env<'_>) -> Result<Forest> {
        snapshot(&self.query, env)
    }

    fn query(&self) -> Option<&Query> {
        Some(&self.query)
    }
}

/// A black-box monotone service backed by a Rust closure (§2.2's general
/// monotone systems, and remote peers whose definitions are unknown —
/// the situation §4's *weak* properties are designed for).
///
/// The implementation trusts the closure to be monotone; the engine's
/// confluence guarantees only hold if it is. Property tests in the suite
/// check monotonicity of the provided combinators.
///
/// ```
/// use axml_core::engine::{run, EngineConfig};
/// use axml_core::forest::Forest;
/// use axml_core::parse::parse_tree;
/// use axml_core::service::BlackBoxService;
/// use axml_core::system::System;
///
/// // The paper's §1 GetRating example as a constant black box.
/// let rating = Forest::from_trees(vec![parse_tree(r#"rating{"****"}"#)?]);
/// let mut sys = System::new();
/// sys.add_document_text("dir", r#"directory{cd{title{"Body and Soul"}, @GetRating}}"#)?;
/// sys.add_black_box("GetRating", BlackBoxService::constant("ratings", rating))?;
/// run(&mut sys, &EngineConfig::default())?;
///
/// let dir = sys.doc(axml_core::Sym::intern("dir")).unwrap();
/// assert!(dir.to_string().contains(r#"rating{"****"}"#));
/// # Ok::<(), axml_core::AxmlError>(())
/// ```
pub struct BlackBoxService {
    f: BlackBoxFn,
    description: String,
}

/// The boxed closure behind a [`BlackBoxService`].
type BlackBoxFn = Box<dyn Fn(&Env<'_>) -> Result<Forest> + Send + Sync>;

impl BlackBoxService {
    /// Wrap a monotone closure.
    pub fn new(
        description: impl Into<String>,
        f: impl Fn(&Env<'_>) -> Result<Forest> + Send + Sync + 'static,
    ) -> BlackBoxService {
        BlackBoxService {
            f: Box::new(f),
            description: description.into(),
        }
    }

    /// A service returning a constant forest (trivially monotone).
    pub fn constant(description: impl Into<String>, forest: Forest) -> BlackBoxService {
        BlackBoxService::new(description, move |_| Ok(forest.clone()))
    }
}

impl Service for BlackBoxService {
    fn invoke(&self, env: &Env<'_>) -> Result<Forest> {
        (self.f)(env)
    }

    fn describe(&self) -> String {
        format!("<black-box: {}>", self.description)
    }
}

impl fmt::Debug for BlackBoxService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlackBoxService({})", self.description)
    }
}

/// Shared service handle as stored by a [`crate::system::System`].
pub type ServiceRef = Arc<dyn Service>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;
    use crate::query::parse_query;
    use crate::sym::Sym;

    #[test]
    fn query_service_evaluates_snapshot() {
        let q = parse_query("r{$x} :- d/a{$x}").unwrap();
        let svc = QueryService::new(q);
        let doc = parse_tree(r#"a{"1","2"}"#).unwrap();
        let mut env = Env::new();
        env.insert(Sym::intern("d"), &doc);
        let out = svc.invoke(&env).unwrap();
        assert_eq!(out.len(), 2);
        assert!(svc.query().is_some());
    }

    #[test]
    fn constant_black_box() {
        let forest = Forest::from_trees(vec![parse_tree("a{b}").unwrap()]);
        let svc = BlackBoxService::constant("const", forest);
        let env = Env::new();
        assert_eq!(svc.invoke(&env).unwrap().len(), 1);
        assert!(svc.query().is_none());
        assert!(svc.describe().contains("const"));
    }
}
