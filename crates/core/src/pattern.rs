//! Positive AXML tree patterns (Section 3.1).
//!
//! A pattern is a tree whose nodes are either constants (ordinary
//! markings) or one of the paper's four variable kinds:
//!
//! * **label variables** range over labels,
//! * **function variables** range over function names,
//! * **value variables** range over atomic values (leaves),
//! * **tree variables** range over whole subtrees (leaves of the
//!   pattern; matching one copies arbitrary document structure — the
//!   feature whose absence defines *simple* queries).

use crate::error::{AxmlError, Result};
use crate::sym::{FxHashSet, Sym};
use crate::tree::{Marking, Tree};
use std::fmt;

/// One pattern-node item: a constant marking or a typed variable.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PItem {
    /// A constant label / function name / atomic value.
    Const(Marking),
    /// Label variable `?x`.
    LabelVar(Sym),
    /// Function variable `@?f`.
    FuncVar(Sym),
    /// Value variable `$x` (leaf).
    ValueVar(Sym),
    /// Tree variable `#X` (leaf).
    TreeVar(Sym),
}

impl PItem {
    /// The variable name, if this item is a variable.
    pub fn var(&self) -> Option<Sym> {
        match *self {
            PItem::LabelVar(v) | PItem::FuncVar(v) | PItem::ValueVar(v) | PItem::TreeVar(v) => {
                Some(v)
            }
            PItem::Const(_) => None,
        }
    }

    /// Must this item mark a pattern leaf?
    pub fn leaf_only(&self) -> bool {
        matches!(
            self,
            PItem::ValueVar(_) | PItem::TreeVar(_) | PItem::Const(Marking::Value(_))
        )
    }
}

impl fmt::Display for PItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PItem::Const(m) => write!(f, "{m}"),
            PItem::LabelVar(v) => write!(f, "?{v}"),
            PItem::FuncVar(v) => write!(f, "@?{v}"),
            PItem::ValueVar(v) => write!(f, "${v}"),
            PItem::TreeVar(v) => write!(f, "#{v}"),
        }
    }
}

/// Index of a node inside one [`Pattern`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PNodeId(pub u32);

impl PNodeId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct PNode {
    item: PItem,
    children: Vec<PNodeId>,
}

/// A positive AXML tree pattern.
#[derive(Clone, Debug)]
pub struct Pattern {
    nodes: Vec<PNode>,
    root: PNodeId,
}

impl Pattern {
    /// Single-node pattern.
    pub fn new(item: PItem) -> Pattern {
        Pattern {
            nodes: vec![PNode {
                item,
                children: Vec::new(),
            }],
            root: PNodeId(0),
        }
    }

    /// The root node.
    pub fn root(&self) -> PNodeId {
        self.root
    }

    /// The item at `n`.
    pub fn item(&self, n: PNodeId) -> &PItem {
        &self.nodes[n.idx()].item
    }

    /// Children of `n`.
    pub fn children(&self, n: PNodeId) -> &[PNodeId] {
        &self.nodes[n.idx()].children
    }

    /// Add a child item under `parent`, enforcing leaf-only items.
    pub fn add_child(&mut self, parent: PNodeId, item: PItem) -> Result<PNodeId> {
        if self.nodes[parent.idx()].item.leaf_only() {
            let v = self.nodes[parent.idx()]
                .item
                .var()
                .unwrap_or_else(|| Sym::intern("<value>"));
            return Err(AxmlError::NonLeafPatternVariable(v));
        }
        let id = PNodeId(self.nodes.len() as u32);
        self.nodes.push(PNode {
            item,
            children: Vec::new(),
        });
        self.nodes[parent.idx()].children.push(id);
        Ok(id)
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth (edge count) of the pattern.
    pub fn depth(&self) -> usize {
        fn go(p: &Pattern, n: PNodeId) -> usize {
            p.children(n).iter().map(|&c| 1 + go(p, c)).max().unwrap_or(0)
        }
        go(self, self.root)
    }

    /// All node ids in preorder.
    pub fn node_ids(&self) -> Vec<PNodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children(n).iter().copied());
        }
        out
    }

    /// The set of variables occurring in this pattern.
    pub fn variables(&self) -> FxHashSet<Sym> {
        self.node_ids()
            .into_iter()
            .filter_map(|n| self.item(n).var())
            .collect()
    }

    /// The multiset count of a given tree variable's occurrences.
    pub fn tree_var_occurrences(&self) -> Vec<Sym> {
        self.node_ids()
            .into_iter()
            .filter_map(|n| match self.item(n) {
                PItem::TreeVar(v) => Some(*v),
                _ => None,
            })
            .collect()
    }

    /// Does this pattern use any tree variable?
    pub fn uses_tree_vars(&self) -> bool {
        !self.tree_var_occurrences().is_empty()
    }

    /// Is this pattern entirely ground (no variables)?
    pub fn is_ground(&self) -> bool {
        self.variables().is_empty()
    }

    /// Structural equality as ordered trees: identical items and child
    /// lists, recursively. Conservative for the unordered pattern
    /// semantics (reordered children compare unequal), which is exactly
    /// what the duplicate-conjunct pass in [`crate::compile`] needs — a
    /// sound, cheap witness that two atoms denote the same relation.
    pub fn structurally_eq(&self, other: &Pattern) -> bool {
        fn go(a: &Pattern, an: PNodeId, b: &Pattern, bn: PNodeId) -> bool {
            a.item(an) == b.item(bn)
                && a.children(an).len() == b.children(bn).len()
                && a.children(an)
                    .iter()
                    .zip(b.children(bn))
                    .all(|(&ac, &bc)| go(a, ac, b, bc))
        }
        go(self, self.root, other, other.root)
    }

    /// Convert a ground pattern into a tree. Errors with the offending
    /// variable if the pattern is not ground.
    pub fn to_tree(&self) -> Result<Tree> {
        fn marking_of(item: &PItem) -> Result<Marking> {
            match item {
                PItem::Const(m) => Ok(*m),
                other => Err(AxmlError::UnsafeHeadVariable(
                    other.var().expect("non-const items carry a variable"),
                )),
            }
        }
        let mut t = Tree::new(marking_of(self.item(self.root))?);
        let mut stack = vec![(self.root, t.root())];
        while let Some((pn, tn)) = stack.pop() {
            for &pc in self.children(pn) {
                let m = marking_of(self.item(pc))?;
                let tc = t.add_child(tn, m).expect("pattern shape is tree-valid");
                stack.push((pc, tc));
            }
        }
        Ok(t)
    }

    /// Copy the subtree of this pattern rooted at `n` into a fresh
    /// pattern. Used by the provenance layer to locate the document
    /// nodes each top-level body-atom conjunct embedded into.
    pub fn subpattern(&self, n: PNodeId) -> Pattern {
        let mut p = Pattern::new(self.item(n).clone());
        let mut stack = vec![(n, p.root())];
        while let Some((sn, dn)) = stack.pop() {
            for &sc in self.children(sn) {
                let dc = p
                    .add_child(dn, self.item(sc).clone())
                    .expect("subtree of a valid pattern is valid");
                stack.push((sc, dc));
            }
        }
        p
    }

    /// Build a pattern that matches a tree exactly (all constants).
    pub fn from_tree(t: &Tree) -> Pattern {
        let mut p = Pattern::new(PItem::Const(t.marking(t.root())));
        let mut stack = vec![(t.root(), p.root())];
        while let Some((tn, pn)) = stack.pop() {
            for &tc in t.children(tn) {
                let pc = p
                    .add_child(pn, PItem::Const(t.marking(tc)))
                    .expect("tree invariants imply pattern invariants");
                stack.push((tc, pc));
            }
        }
        p
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(p: &Pattern, n: PNodeId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", p.item(n))?;
            if !p.children(n).is_empty() {
                write!(f, "{{")?;
                for (i, &c) in p.children(n).iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    go(p, c, f)?;
                }
                write!(f, "}}")?;
            }
            Ok(())
        }
        go(self, self.root, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_pattern, parse_tree};
    use crate::subsume::equivalent;

    #[test]
    fn variables_collected() {
        let p = parse_pattern("r{t{a{$x}, b{?z}, #T, @?f}}").unwrap();
        let vars = p.variables();
        for v in ["x", "z", "T", "f"] {
            assert!(vars.contains(&Sym::intern(v)), "missing {v}");
        }
        assert!(p.uses_tree_vars());
        assert_eq!(p.tree_var_occurrences(), vec![Sym::intern("T")]);
    }

    #[test]
    fn leaf_only_enforced_programmatically() {
        let mut p = Pattern::new(PItem::TreeVar(Sym::intern("X")));
        assert!(p.add_child(p.root(), PItem::Const(Marking::label("a"))).is_err());
    }

    #[test]
    fn ground_roundtrip() {
        let t = parse_tree(r#"a{b{"1"}, @f{c}}"#).unwrap();
        let p = Pattern::from_tree(&t);
        assert!(p.is_ground());
        let back = p.to_tree().unwrap();
        assert!(equivalent(&t, &back));
    }

    #[test]
    fn to_tree_rejects_variables() {
        let p = parse_pattern("a{$x}").unwrap();
        assert!(p.to_tree().is_err());
    }

    #[test]
    fn display_roundtrip() {
        let src = r#"r{t{a{$x},b{?z},#T}}"#;
        let p = parse_pattern(src).unwrap();
        let p2 = parse_pattern(&p.to_string()).unwrap();
        assert_eq!(p.to_string(), p2.to_string());
    }

    #[test]
    fn depth_and_counts() {
        let p = parse_pattern("a{b{c{d}},e}").unwrap();
        assert_eq!(p.depth(), 3);
        assert_eq!(p.node_count(), 5);
    }
}
