//! Unordered AXML trees (Definition 2.1), stored as persistent
//! copy-on-write arenas.
//!
//! A tree is an arena of nodes; each node carries a [`Marking`] — a label,
//! a function name (a Web-service call), or an atomic value. The paper's
//! two structural invariants are enforced where they apply:
//!
//! * atomic values mark only leaves — enforced on every `add_child`;
//! * a *document* root is a label or a value — enforced by
//!   [`Tree::validate_document_root`], not by the arena itself, because
//!   intermediate trees (e.g. the `context` of a nested call, whose root
//!   may be an enclosing function node) legitimately violate it.
//!
//! Nodes are never reused: removal marks a subtree dead and unlinks it
//! from its parent, but live node ids stay stable. The rewriting engine
//! relies on this to keep function-node identities across invocation steps
//! (reduction keeps the *oldest* of equivalent siblings; see
//! [`mod@crate::reduce`]).
//!
//! # Copy-on-write representation
//!
//! The arena is a two-level chunked spine: an `Arc` of chunk pointers,
//! each chunk an `Arc` of up to [`CHUNK`] node slots. [`Tree::clone`] is
//! two `Arc` bumps — O(1) whatever the document size — which is what
//! makes [`crate::system::System::snapshot`] a constant-time MVCC
//! snapshot. Reads cost two index operations; a mutation path-copies
//! only what it touches (`Arc::make_mut` on the spine vector and the one
//! affected chunk), so a clone and its original share every untouched
//! chunk. The paper's fixpoint semantics (Thm 2.1) is defined over
//! immutable states, and positive rewriting only ever *extends*
//! documents — the ideal case for path copying: a graft after a snapshot
//! copies O(nodes/[`CHUNK`]) spine pointers once, then O([`CHUNK`])
//! nodes per touched chunk.
//!
//! # MVCC handles
//!
//! `(Tree::id, Tree::version)` is a real snapshot handle: version stamps
//! are drawn from one process-wide counter, so a pair names immutable
//! content. A clone keeps the original's `(id, version)` — it *is* the
//! same content — and whichever handle mutates first moves to a globally
//! fresh version while the others keep observing the old pair.
//! Subsumption memos, the per-atom match cache, and the program cache
//! are all keyed on these pairs and stay sound across snapshots without
//! any invalidation traffic.

use crate::error::{AxmlError, Result};
use crate::index::{DocIndex, IndexStats};
use crate::sym::Sym;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Arena size at which a probe lazily builds the document index.
/// Smaller trees (pattern instantiations, contexts, canonical-key
/// scratch copies) answer scans faster than they could amortize a
/// build, and skipping the build means they never pay maintenance.
const INDEX_BUILD_THRESHOLD: usize = 48;

/// log2 of [`CHUNK`]: node index `i` lives in chunk `i >> CHUNK_BITS`
/// at offset `i & (CHUNK - 1)`.
const CHUNK_BITS: usize = 6;

/// Nodes per copy-on-write chunk. 64 slots keeps the per-write copy
/// small (one chunk) while a snapshot's spine copy on first divergence
/// stays `nodes / 64` pointers.
pub const CHUNK: usize = 1 << CHUNK_BITS;

const CHUNK_MASK: usize = CHUNK - 1;

/// Process-wide tree-identity counter; see [`Tree::id`].
static NEXT_TREE_ID: AtomicU64 = AtomicU64::new(0);

fn fresh_tree_id() -> u64 {
    NEXT_TREE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Process-wide version-stamp counter; see [`Tree::version`]. Starting
/// at 1 keeps 0 as the "never mutated" stamp every fresh tree begins
/// with.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// The marking of a node: label, function name, or atomic value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Marking {
    /// A data node carrying a label from `L`.
    Label(Sym),
    /// A function node carrying a function name from `F` (a service call).
    Func(Sym),
    /// A data leaf carrying an atomic value from `V`.
    Value(Sym),
}

impl Marking {
    /// Convenience constructor for a label marking.
    pub fn label(s: &str) -> Marking {
        Marking::Label(Sym::intern(s))
    }

    /// Convenience constructor for a function marking.
    pub fn func(s: &str) -> Marking {
        Marking::Func(Sym::intern(s))
    }

    /// Convenience constructor for a value marking.
    pub fn value(s: &str) -> Marking {
        Marking::Value(Sym::intern(s))
    }

    /// True for function markings.
    pub fn is_func(&self) -> bool {
        matches!(self, Marking::Func(_))
    }

    /// True for atomic-value markings.
    pub fn is_value(&self) -> bool {
        matches!(self, Marking::Value(_))
    }

    /// The underlying symbol, whatever the kind.
    pub fn sym(&self) -> Sym {
        match *self {
            Marking::Label(s) | Marking::Func(s) | Marking::Value(s) => s,
        }
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Marking::Label(s) => write!(f, "{s}"),
            Marking::Func(s) => write!(f, "@{s}"),
            Marking::Value(s) => write!(f, "{s:?}", s = s.as_str()),
        }
    }
}

/// Index of a node inside one [`Tree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct Node {
    marking: Marking,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    alive: bool,
}

/// One copy-on-write chunk of the arena.
type Chunk = Arc<Vec<Node>>;

/// An unordered AXML tree backed by a persistent chunked node arena.
///
/// ```
/// use axml_core::parse::parse_tree;
/// use axml_core::tree::{Marking, Tree};
///
/// // Example 2.1's document: a{f} with f a function node.
/// let mut doc = parse_tree("a{@f}")?;
/// let root = doc.root();
/// assert_eq!(doc.marking(root), Marking::label("a"));
/// assert_eq!(doc.node_count(), 2);
///
/// // Clones are O(1) snapshots: mutation draws a globally fresh version
/// // stamp and copy-on-write diverges only the mutated handle; node ids
/// // stay stable.
/// let snap = doc.clone();
/// let v0 = doc.version();
/// doc.add_child(root, Marking::value("42"))?;
/// assert!(doc.version() > v0);
/// assert_eq!(snap.version(), v0);
/// assert_eq!(snap.node_count(), 2, "the snapshot is immutable");
/// assert!(doc.is_alive(root));
/// # Ok::<(), axml_core::AxmlError>(())
/// ```
#[derive(Debug)]
pub struct Tree {
    /// The chunked arena spine. Shared wholesale by clones; mutation
    /// path-copies the spine vector and the one touched chunk.
    spine: Arc<Vec<Chunk>>,
    /// Arena slots in use (the last chunk may be partially filled).
    len: usize,
    root: NodeId,
    id: u64,
    version: u64,
    /// Deterministic per-handle mutation tally (see
    /// [`Tree::mutation_count`]): what observability reports, while
    /// [`Tree::version`] carries the globally unique MVCC stamp.
    mutations: u64,
    /// Lazily built marking/child index (see [`mod@crate::index`]).
    /// The cell itself is `Arc`-shared by clones, so an index built on
    /// *either* side of a snapshot is published to every handle still
    /// at that version; the first divergence copies the cell (and, if
    /// built, the index) for the mutating handle. All sharers of one
    /// cell are at the same `(id, version)` — any mutation replaces the
    /// cell before restamping — so a published index can never be stale
    /// for a reader. `OnceLock` rather than a cell keeps `Tree: Sync`
    /// (services are `Send + Sync` and may capture forests; engine
    /// workers probe shared snapshots).
    index: Arc<OnceLock<Arc<DocIndex>>>,
}

impl Clone for Tree {
    /// O(1): two `Arc` bumps. The clone keeps the original's
    /// `(id, version)` — it *is* the same immutable content — so every
    /// `(id, version)`-keyed memo, match-cache entry, and compiled
    /// program computed against one handle stays valid for the other.
    /// Divergence is handled at mutation time: version stamps are
    /// globally unique, so two handles can never present different
    /// content under one key.
    fn clone(&self) -> Tree {
        Tree {
            spine: Arc::clone(&self.spine),
            len: self.len,
            root: self.root,
            id: self.id,
            version: self.version,
            mutations: self.mutations,
            index: Arc::clone(&self.index),
        }
    }
}

impl Tree {
    /// Create a single-node tree with the given root marking.
    ///
    /// Any marking is accepted here; use [`Tree::validate_document_root`]
    /// when the tree is meant to be a document.
    pub fn new(root: Marking) -> Tree {
        let mut chunk = Vec::with_capacity(CHUNK);
        chunk.push(Node {
            marking: root,
            parent: None,
            children: Vec::new(),
            alive: true,
        });
        Tree {
            spine: Arc::new(vec![Arc::new(chunk)]),
            len: 1,
            root: NodeId(0),
            id: fresh_tree_id(),
            version: 0,
            mutations: 0,
            index: Arc::new(OnceLock::new()),
        }
    }

    /// Create a tree with a label root — the common case.
    pub fn with_label(label: &str) -> Tree {
        Tree::new(Marking::label(label))
    }

    /// Definition 2.1 (ii): a document root must be a label or a value.
    pub fn validate_document_root(&self) -> Result<()> {
        if self.marking(self.root).is_func() {
            Err(AxmlError::FunctionRoot)
        } else {
            Ok(())
        }
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// A process-unique identity for this arena, *stable across clones*:
    /// a clone names the same immutable content, so it keeps the id, and
    /// `(id, version)` pairs still never name two different contents
    /// because version stamps are globally unique (see
    /// [`Tree::version`]). This is the key property behind cross-tree
    /// subsumption memos, the engine's per-atom match cache, and the
    /// compiled-program cache staying sound across MVCC snapshots.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Mutation stamp, strictly increasing per handle: every
    /// [`Tree::add_child`] and [`Tree::remove_subtree`] (hence every
    /// graft and in-place reduction) draws a fresh stamp from one
    /// process-wide counter. Equal `(id, version)` pairs guarantee
    /// identical content — even between a snapshot and the handle it was
    /// taken from, because the counter never re-issues a stamp — which
    /// is what the delta engine's read-set skipping and the MVCC
    /// snapshot handles rely on.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The `(id, version)` MVCC handle naming this tree's current
    /// immutable content.
    #[inline]
    pub fn snapshot_handle(&self) -> (u64, u64) {
        (self.id, self.version)
    }

    /// Deterministic mutation tally for this handle: starts at 0,
    /// increments by exactly one per [`Tree::add_child`] /
    /// [`Tree::remove_subtree`], and is copied by clones. Unlike
    /// [`Tree::version`] — whose stamps come from a process-wide
    /// counter and therefore depend on what else the process did — this
    /// count is reproducible run-to-run, so it is what trace events,
    /// wire frames, and [`crate::system::System::version`] report.
    #[inline]
    pub fn mutation_count(&self) -> u64 {
        self.mutations
    }

    #[inline]
    fn node(&self, n: NodeId) -> &Node {
        let i = n.idx();
        &self.spine[i >> CHUNK_BITS][i & CHUNK_MASK]
    }

    /// Copy-on-write write access to one node: path-copies the spine
    /// vector and the touched chunk when (and only when) they are shared
    /// with another handle. Everything this does not touch keeps being
    /// shared with outstanding snapshots.
    #[inline]
    fn node_mut(&mut self, n: NodeId) -> &mut Node {
        let i = n.idx();
        let spine = Arc::make_mut(&mut self.spine);
        let chunk = Arc::make_mut(&mut spine[i >> CHUNK_BITS]);
        &mut chunk[i & CHUNK_MASK]
    }

    /// Append a node slot, copy-on-write style: a shared spine (and a
    /// shared, partially filled last chunk) are path-copied first, so
    /// outstanding snapshots never observe the new slot.
    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(u32::try_from(self.len).expect("arena exceeds u32 node ids"));
        let spine = Arc::make_mut(&mut self.spine);
        if self.len & CHUNK_MASK == 0 {
            spine.push(Arc::new(Vec::with_capacity(CHUNK)));
        }
        let chunk = Arc::make_mut(spine.last_mut().expect("spine is never empty"));
        chunk.push(node);
        self.len += 1;
        self.debug_check_cow();
        id
    }

    /// Copy-on-write write access to the maintained index, if built: the
    /// shared cell is replaced with a private copy first (an `Arc` bump
    /// when the index is absent, one index deep-copy on the first
    /// divergence after a snapshot), so handles still at the old version
    /// keep their published index untouched.
    fn index_mut(&mut self) -> Option<&mut DocIndex> {
        Arc::make_mut(&mut self.index).get_mut().map(Arc::make_mut)
    }

    /// The marking of node `n`.
    #[inline]
    pub fn marking(&self, n: NodeId) -> Marking {
        self.node(n).marking
    }

    /// The live children of node `n`.
    #[inline]
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.node(n).children
    }

    /// The parent of node `n` (`None` for the root).
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.node(n).parent
    }

    /// Whether node `n` is still part of the tree.
    #[inline]
    pub fn is_alive(&self, n: NodeId) -> bool {
        n.idx() < self.len && self.node(n).alive
    }

    /// Add a child with marking `m` under `parent`. Fails if `parent` is an
    /// atomic-value node (Definition 2.1 (i)) or dead.
    pub fn add_child(&mut self, parent: NodeId, m: Marking) -> Result<NodeId> {
        if !self.is_alive(parent) {
            return Err(AxmlError::DeadNode);
        }
        if self.marking(parent).is_value() {
            return Err(AxmlError::ValueNodeWithChildren);
        }
        let id = self.push_node(Node {
            marking: m,
            parent: Some(parent),
            children: Vec::new(),
            alive: true,
        });
        self.node_mut(parent).children.push(id);
        self.version = fresh_version();
        self.mutations += 1;
        let version = self.version;
        if let Some(ix) = self.index_mut() {
            ix.record_add(parent, id, m, version);
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
        Ok(id)
    }

    /// Remove the subtree rooted at `n` (unlink from parent, mark dead).
    /// Removing the root is not allowed.
    pub fn remove_subtree(&mut self, n: NodeId) -> Result<()> {
        if !self.is_alive(n) {
            return Err(AxmlError::DeadNode);
        }
        let parent = self.node(n).parent.ok_or(AxmlError::DeadNode)?;
        let n_marking = self.node(n).marking;
        let siblings = &mut self.node_mut(parent).children;
        if let Some(pos) = siblings.iter().position(|&c| c == n) {
            siblings.swap_remove(pos);
        }
        if let Some(ix) = self.index_mut() {
            ix.unlink_child(parent, n, n_marking);
        }
        // Mark the whole subtree dead, iteratively. Each node's child
        // list is detached in the same step that retires its index
        // entries, so the index hooks always see the pre-removal
        // markings.
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            let node = self.node_mut(x);
            node.alive = false;
            let kids = std::mem::take(&mut node.children);
            let x_marking = node.marking;
            let kid_markings: Vec<Marking> = kids.iter().map(|&c| self.node(c).marking).collect();
            if let Some(ix) = self.index_mut() {
                ix.forget_node(x, x_marking);
                for m in kid_markings {
                    ix.drop_child_bucket(x, m);
                }
            }
            stack.extend(kids);
        }
        self.version = fresh_version();
        self.mutations += 1;
        let version = self.version;
        if let Some(ix) = self.index_mut() {
            ix.set_version(version);
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
        Ok(())
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.iter_live(self.root).count()
    }

    /// Total arena slots ever allocated (live + dead).
    pub fn arena_len(&self) -> usize {
        self.len
    }

    /// Number of arena chunks this tree shares (pointer-equal) with
    /// `other` — the test- and bench-visible probe of copy-on-write
    /// structural sharing. A fresh clone shares every chunk; each
    /// mutation diverges at most the touched chunk (plus, for appends,
    /// the tail chunk).
    pub fn shared_chunks_with(&self, other: &Tree) -> usize {
        if Arc::ptr_eq(&self.spine, &other.spine) {
            return self.spine.len();
        }
        self.spine
            .iter()
            .zip(other.spine.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Total chunks in the arena spine.
    pub fn chunk_count(&self) -> usize {
        self.spine.len()
    }

    /// Structural-sharing invariant, checked under debug assertions at
    /// every write: a handle that just mutated must own its spine
    /// exclusively — a node reachable from a diverged snapshot must
    /// never be written through. `Arc::make_mut` enforces this by
    /// construction; the check guards the funnel against any future
    /// write path that bypasses it.
    #[inline]
    fn debug_check_cow(&self) {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            Arc::strong_count(&self.spine),
            1,
            "mutated through a spine still shared with a snapshot"
        );
    }

    /// Depth-first iterator over the live nodes of the subtree at `n`.
    pub fn iter_live(&self, n: NodeId) -> LiveIter<'_> {
        LiveIter {
            tree: self,
            stack: if self.is_alive(n) { vec![n] } else { vec![] },
        }
    }

    /// All live function nodes, in depth-first order.
    pub fn function_nodes(&self) -> Vec<NodeId> {
        self.iter_live(self.root)
            .filter(|&n| self.marking(n).is_func())
            .collect()
    }

    /// Depth (edge count) of the subtree rooted at `n`.
    pub fn depth(&self, n: NodeId) -> usize {
        let mut max = 0usize;
        let mut stack = vec![(n, 0usize)];
        while let Some((x, d)) = stack.pop() {
            max = max.max(d);
            for &c in self.children(x) {
                stack.push((c, d + 1));
            }
        }
        max
    }

    /// Deep-copy the subtree rooted at `n` into a fresh tree.
    pub fn subtree(&self, n: NodeId) -> Tree {
        let mut out = Tree::new(self.marking(n));
        let dst_root = out.root();
        self.copy_children_into(n, &mut out, dst_root);
        out
    }

    /// Copy the children subtrees of `src_node` (in `self`) as children of
    /// `dst_node` in `dst`.
    pub fn copy_children_into(&self, src_node: NodeId, dst: &mut Tree, dst_node: NodeId) {
        for &c in self.children(src_node) {
            self.copy_subtree_into(c, dst, dst_node);
        }
    }

    /// Copy the subtree rooted at `src_node` (in `self`) as a new child of
    /// `dst_node` in `dst`, returning the new subtree root's id.
    pub fn copy_subtree_into(&self, src_node: NodeId, dst: &mut Tree, dst_node: NodeId) -> NodeId {
        let new_root = dst
            .add_child(dst_node, self.marking(src_node))
            .expect("copy target must accept children");
        let mut stack: Vec<(NodeId, NodeId)> = vec![(src_node, new_root)];
        while let Some((s, d)) = stack.pop() {
            for &c in self.children(s) {
                let nd = dst
                    .add_child(d, self.marking(c))
                    .expect("copy target must accept children");
                stack.push((c, nd));
            }
        }
        new_root
    }

    /// Append a copy of `other` (whole tree) as a child of `parent`.
    pub fn graft(&mut self, parent: NodeId, other: &Tree) -> Result<NodeId> {
        if !self.is_alive(parent) {
            return Err(AxmlError::DeadNode);
        }
        if self.marking(parent).is_value() {
            return Err(AxmlError::ValueNodeWithChildren);
        }
        Ok(other.copy_subtree_into(other.root(), self, parent))
    }

    /// Rebuild the arena, dropping dead slots. Node ids are *not*
    /// preserved; use only between engine runs.
    pub fn compact(&self) -> Tree {
        self.subtree(self.root)
    }

    /// Leaf count (live nodes with no children).
    pub fn leaf_count(&self) -> usize {
        self.iter_live(self.root)
            .filter(|&n| self.children(n).is_empty())
            .count()
    }

    /// The document index, building it lazily once the arena is large
    /// enough to amortize the build. `None` means "keep scanning".
    /// A build publishes into the `Arc`-shared cell, so every handle
    /// still at this version — the writer a snapshot was taken from, or
    /// other snapshots — sees it too. Probing a stale index is a hard
    /// error (panic), never a silent wrong answer — see
    /// [`mod@crate::index`].
    fn live_index(&self) -> Option<&DocIndex> {
        if let Some(ix) = self.index.get() {
            ix.assert_fresh(self.version);
            return Some(ix);
        }
        if self.len < INDEX_BUILD_THRESHOLD {
            return None;
        }
        let ix = self.index.get_or_init(|| Arc::new(DocIndex::build(self)));
        ix.assert_fresh(self.version);
        Some(ix)
    }

    /// Force the index to exist regardless of the lazy-build threshold
    /// (tests and benchmarks; the matcher goes through the lazy probes).
    pub fn build_index(&self) {
        let ix = self.index.get_or_init(|| Arc::new(DocIndex::build(self)));
        ix.assert_fresh(self.version);
    }

    /// Has the lazy index been built yet?
    pub fn index_is_built(&self) -> bool {
        self.index.get().is_some()
    }

    /// Index probe: live nodes carrying marking `m`, anywhere in the
    /// tree. `None` when the tree is below the index threshold.
    pub fn indexed_nodes_with(&self, m: Marking) -> Option<&[NodeId]> {
        self.live_index().map(|ix| ix.nodes_with(m))
    }

    /// Index probe: live children of `n` carrying marking `m`. `None`
    /// when the tree is below the index threshold.
    pub fn indexed_children_with(&self, n: NodeId, m: Marking) -> Option<&[NodeId]> {
        self.live_index().map(|ix| ix.children_with(n, m))
    }

    /// Like [`Tree::indexed_children_with`] but never *builds* the index
    /// — for probe sites (subsumption over scratch trees) where paying a
    /// build would not amortize.
    pub fn indexed_children_if_built(&self, n: NodeId, m: Marking) -> Option<&[NodeId]> {
        self.index.get().map(|ix| {
            ix.assert_fresh(self.version);
            ix.children_with(n, m)
        })
    }

    /// Like [`Tree::indexed_nodes_with`] but never *builds* the index —
    /// for compile-time selectivity probes ([`crate::compile`]) which
    /// must not perturb the lazy build timing the matcher's own probes
    /// control.
    pub fn indexed_nodes_if_built(&self, m: Marking) -> Option<&[NodeId]> {
        self.index.get().map(|ix| {
            ix.assert_fresh(self.version);
            ix.nodes_with(m)
        })
    }

    /// Maintenance counters and footprint of the index, if built.
    pub fn index_stats(&self) -> Option<IndexStats> {
        self.index.get().map(|ix| {
            ix.assert_fresh(self.version);
            ix.stats()
        })
    }

    /// Check the incrementally maintained index against a
    /// rebuild-from-scratch. `Ok` when the index is not built.
    pub fn validate_index(&self) -> std::result::Result<(), String> {
        match self.index.get() {
            None => Ok(()),
            Some(ix) => ix.validate(self),
        }
    }

    /// Sampled rebuild-vs-incremental validation behind debug assertions:
    /// small arenas are checked on every mutation, large ones
    /// periodically, so debug test runs (and the CI debug-assertions
    /// job) exercise the maintenance hooks without going quadratic.
    #[cfg(debug_assertions)]
    fn debug_check_index(&self) {
        if self.index.get().is_some() && (self.len <= 64 || self.version.is_multiple_of(61)) {
            if let Err(e) = self.validate_index() {
                panic!("document index invariant broken: {e}");
            }
        }
    }
}

/// Iterator over live nodes, depth-first preorder.
pub struct LiveIter<'a> {
    tree: &'a Tree,
    stack: Vec<NodeId>,
}

impl Iterator for LiveIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.stack.pop()?;
        self.stack.extend(self.tree.children(n).iter().copied());
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        // a{b{"1"}, @f{c}}
        let mut t = Tree::with_label("a");
        let b = t.add_child(t.root(), Marking::label("b")).unwrap();
        t.add_child(b, Marking::value("1")).unwrap();
        let f = t.add_child(t.root(), Marking::func("f")).unwrap();
        t.add_child(f, Marking::label("c")).unwrap();
        t
    }

    #[test]
    fn build_and_count() {
        let t = sample();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.depth(t.root()), 2);
    }

    #[test]
    fn values_stay_leaves() {
        let mut t = Tree::with_label("a");
        let v = t.add_child(t.root(), Marking::value("5")).unwrap();
        assert_eq!(
            t.add_child(v, Marking::label("x")),
            Err(AxmlError::ValueNodeWithChildren)
        );
    }

    #[test]
    fn function_roots_rejected_for_documents() {
        let t = Tree::new(Marking::func("f"));
        assert_eq!(t.validate_document_root(), Err(AxmlError::FunctionRoot));
        assert!(sample().validate_document_root().is_ok());
    }

    #[test]
    fn remove_subtree_unlinks_and_kills() {
        let mut t = sample();
        let f = t.function_nodes()[0];
        t.remove_subtree(f).unwrap();
        assert!(!t.is_alive(f));
        assert_eq!(t.node_count(), 3);
        assert!(t.function_nodes().is_empty());
        // Dead node operations fail.
        assert_eq!(t.remove_subtree(f), Err(AxmlError::DeadNode));
        assert_eq!(t.add_child(f, Marking::label("x")), Err(AxmlError::DeadNode));
    }

    #[test]
    fn subtree_copy_is_deep() {
        let t = sample();
        let f = t.function_nodes()[0];
        let sub = t.subtree(f);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.marking(sub.root()), Marking::func("f"));
    }

    #[test]
    fn graft_appends_copy() {
        let mut t = sample();
        let extra = Tree::with_label("z");
        let at = t.graft(t.root(), &extra).unwrap();
        assert_eq!(t.marking(at), Marking::label("z"));
        assert_eq!(t.children(t.root()).len(), 3);
    }

    #[test]
    fn compact_preserves_structure() {
        let mut t = sample();
        let f = t.function_nodes()[0];
        t.remove_subtree(f).unwrap();
        let c = t.compact();
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.arena_len(), 3);
        assert!(t.arena_len() > c.arena_len());
    }

    #[test]
    fn clone_keeps_identity_and_versions_stay_injective() {
        let mut t = sample();
        let v0 = t.version();
        let dup = t.clone();
        assert_eq!(t.id(), dup.id(), "a clone is the same content");
        assert_eq!(dup.version(), v0);
        assert_eq!(t.snapshot_handle(), dup.snapshot_handle());
        t.add_child(t.root(), Marking::label("x")).unwrap();
        assert!(t.version() > v0, "mutation moves to a fresh global stamp");
        assert_eq!(dup.version(), v0, "clone is unaffected");
        assert_ne!(
            t.snapshot_handle(),
            dup.snapshot_handle(),
            "diverged handles never share a key"
        );
        let f = t.function_nodes()[0];
        let v1 = t.version();
        t.remove_subtree(f).unwrap();
        assert!(t.version() > v1);
    }

    #[test]
    fn version_stamps_globally_unique_across_trees() {
        let mut a = Tree::with_label("a");
        let mut b = Tree::with_label("b");
        a.add_child(a.root(), Marking::label("x")).unwrap();
        b.add_child(b.root(), Marking::label("y")).unwrap();
        a.add_child(a.root(), Marking::label("x")).unwrap();
        assert_ne!(a.version(), b.version(), "stamps come from one counter");
    }

    #[test]
    fn clone_is_immutable_snapshot_under_divergence() {
        let mut t = sample();
        let snap = t.clone();
        let x = t.add_child(t.root(), Marking::label("x")).unwrap();
        let f = t.function_nodes()[0];
        t.remove_subtree(f).unwrap();
        // The writer sees its own edits...
        assert!(t.is_alive(x));
        assert!(!t.is_alive(f));
        assert_eq!(t.node_count(), 4);
        // ...while the snapshot still reads the pre-divergence state.
        assert!(!snap.is_alive(x), "snapshot predates the add");
        assert!(snap.is_alive(f), "snapshot still holds the removed call");
        assert_eq!(snap.node_count(), 5);
        assert_eq!(snap.children(snap.root()).len(), 2);
        // Divergence works in both directions: mutating the snapshot's
        // handle does not leak into the writer.
        let mut snap = snap;
        snap.add_child(snap.root(), Marking::label("w")).unwrap();
        assert_eq!(snap.node_count(), 6);
        assert_eq!(t.node_count(), 4);
    }

    #[test]
    fn clone_shares_chunks_until_divergence() {
        let mut t = Tree::with_label("r");
        for _ in 0..(3 * CHUNK) {
            t.add_child(t.root(), Marking::label("c")).unwrap();
        }
        let chunks = t.chunk_count();
        assert!(chunks >= 3);
        let snap = t.clone();
        assert_eq!(t.shared_chunks_with(&snap), chunks, "a clone shares all");
        // One append touches the root's chunk (child list) and the tail
        // chunk (new slot); every other chunk keeps being shared.
        t.add_child(t.root(), Marking::label("c")).unwrap();
        let shared = t.shared_chunks_with(&snap);
        assert!(
            shared >= chunks - 2,
            "append diverged {} of {chunks} chunks",
            chunks - shared
        );
        assert!(shared < t.chunk_count(), "touched chunks did diverge");
    }

    #[test]
    fn graft_bumps_version() {
        let mut t = sample();
        let v0 = t.version();
        let extra = Tree::with_label("z");
        t.graft(t.root(), &extra).unwrap();
        assert!(t.version() > v0);
    }

    #[test]
    fn index_maintained_incrementally_across_mutations() {
        let mut t = sample();
        assert!(!t.index_is_built(), "small trees stay unindexed");
        t.build_index();
        assert!(t.index_is_built());
        let b = Marking::label("b");
        assert_eq!(t.indexed_nodes_with(b).unwrap().len(), 1);
        let x = t.add_child(t.root(), b).unwrap();
        assert_eq!(t.indexed_nodes_with(b).unwrap().len(), 2);
        assert_eq!(t.indexed_children_with(t.root(), b).unwrap().len(), 2);
        t.validate_index().unwrap();
        t.remove_subtree(x).unwrap();
        assert_eq!(t.indexed_nodes_with(b).unwrap().len(), 1);
        let f = t.function_nodes()[0];
        t.remove_subtree(f).unwrap();
        assert!(t.indexed_nodes_with(Marking::func("f")).unwrap().is_empty());
        assert!(t
            .indexed_children_with(f, Marking::label("c"))
            .unwrap()
            .is_empty());
        t.validate_index().unwrap();
        let stats = t.index_stats().unwrap();
        assert_eq!(stats.entries, t.node_count());
        assert!(stats.adds > 0 && stats.removes > 0);
        assert!(stats.bytes_estimate > 0);
    }

    #[test]
    fn index_shared_by_clones_until_divergence() {
        let mut t = Tree::with_label("r");
        for i in 0..INDEX_BUILD_THRESHOLD {
            t.add_child(t.root(), Marking::label(if i % 2 == 0 { "even" } else { "odd" }))
                .unwrap();
        }
        assert!(!t.index_is_built());
        let evens = t.indexed_nodes_with(Marking::label("even")).unwrap();
        assert_eq!(evens.len(), INDEX_BUILD_THRESHOLD / 2);
        assert!(t.index_is_built());
        let dup = t.clone();
        assert!(
            dup.index_is_built(),
            "a same-version clone shares the published index"
        );
        assert_eq!(
            dup.indexed_children_with(dup.root(), Marking::label("odd"))
                .unwrap()
                .len(),
            INDEX_BUILD_THRESHOLD / 2
        );
        // A build on either side of the clone publishes to both.
        let fresh = t.clone();
        let probed = Tree::clone(&fresh);
        probed.build_index();
        assert!(fresh.index_is_built(), "build on one handle serves all");
        // Divergence isolates: the writer maintains its private copy,
        // the snapshot keeps the published one, and both stay valid.
        let mut writer = dup.clone();
        writer
            .add_child(writer.root(), Marking::label("even"))
            .unwrap();
        assert_eq!(
            writer
                .indexed_nodes_with(Marking::label("even"))
                .unwrap()
                .len(),
            INDEX_BUILD_THRESHOLD / 2 + 1
        );
        assert_eq!(
            dup.indexed_nodes_with(Marking::label("even")).unwrap().len(),
            INDEX_BUILD_THRESHOLD / 2,
            "snapshot's index is untouched by the writer's maintenance"
        );
        writer.validate_index().unwrap();
        dup.validate_index().unwrap();
        t.validate_index().unwrap();
    }

    #[test]
    fn graft_and_reduce_style_mutations_keep_index_valid() {
        let mut t = Tree::with_label("r");
        t.build_index();
        let extra = sample();
        let at = t.graft(t.root(), &extra).unwrap();
        t.validate_index().unwrap();
        assert_eq!(
            t.indexed_children_with(t.root(), Marking::label("a"))
                .unwrap(),
            &[at]
        );
        t.remove_subtree(at).unwrap();
        t.validate_index().unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.index_stats().unwrap().entries, 1);
    }

    #[test]
    fn ids_stable_across_removal_of_sibling() {
        let mut t = Tree::with_label("a");
        let b = t.add_child(t.root(), Marking::label("b")).unwrap();
        let c = t.add_child(t.root(), Marking::label("c")).unwrap();
        t.remove_subtree(b).unwrap();
        assert!(t.is_alive(c));
        assert_eq!(t.marking(c), Marking::label("c"));
    }
}
