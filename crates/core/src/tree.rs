//! Unordered AXML trees (Definition 2.1).
//!
//! A tree is an arena of nodes; each node carries a [`Marking`] — a label,
//! a function name (a Web-service call), or an atomic value. The paper's
//! two structural invariants are enforced where they apply:
//!
//! * atomic values mark only leaves — enforced on every `add_child`;
//! * a *document* root is a label or a value — enforced by
//!   [`Tree::validate_document_root`], not by the arena itself, because
//!   intermediate trees (e.g. the `context` of a nested call, whose root
//!   may be an enclosing function node) legitimately violate it.
//!
//! Nodes are never reused: removal marks a subtree dead and unlinks it
//! from its parent, but live node ids stay stable. The rewriting engine
//! relies on this to keep function-node identities across invocation steps
//! (reduction keeps the *oldest* of equivalent siblings; see
//! [`mod@crate::reduce`]).

use crate::error::{AxmlError, Result};
use crate::index::{DocIndex, IndexStats};
use crate::sym::Sym;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Arena size at which a probe lazily builds the document index.
/// Smaller trees (pattern instantiations, contexts, canonical-key
/// scratch copies) answer scans faster than they could amortize a
/// build, and skipping the build means they never pay maintenance.
const INDEX_BUILD_THRESHOLD: usize = 48;

/// Process-wide tree-identity counter; see [`Tree::id`].
static NEXT_TREE_ID: AtomicU64 = AtomicU64::new(0);

fn fresh_tree_id() -> u64 {
    NEXT_TREE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The marking of a node: label, function name, or atomic value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Marking {
    /// A data node carrying a label from `L`.
    Label(Sym),
    /// A function node carrying a function name from `F` (a service call).
    Func(Sym),
    /// A data leaf carrying an atomic value from `V`.
    Value(Sym),
}

impl Marking {
    /// Convenience constructor for a label marking.
    pub fn label(s: &str) -> Marking {
        Marking::Label(Sym::intern(s))
    }

    /// Convenience constructor for a function marking.
    pub fn func(s: &str) -> Marking {
        Marking::Func(Sym::intern(s))
    }

    /// Convenience constructor for a value marking.
    pub fn value(s: &str) -> Marking {
        Marking::Value(Sym::intern(s))
    }

    /// True for function markings.
    pub fn is_func(&self) -> bool {
        matches!(self, Marking::Func(_))
    }

    /// True for atomic-value markings.
    pub fn is_value(&self) -> bool {
        matches!(self, Marking::Value(_))
    }

    /// The underlying symbol, whatever the kind.
    pub fn sym(&self) -> Sym {
        match *self {
            Marking::Label(s) | Marking::Func(s) | Marking::Value(s) => s,
        }
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Marking::Label(s) => write!(f, "{s}"),
            Marking::Func(s) => write!(f, "@{s}"),
            Marking::Value(s) => write!(f, "{s:?}", s = s.as_str()),
        }
    }
}

/// Index of a node inside one [`Tree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct Node {
    marking: Marking,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    alive: bool,
}

/// An unordered AXML tree backed by a node arena.
///
/// ```
/// use axml_core::parse::parse_tree;
/// use axml_core::tree::{Marking, Tree};
///
/// // Example 2.1's document: a{f} with f a function node.
/// let mut doc = parse_tree("a{@f}")?;
/// let root = doc.root();
/// assert_eq!(doc.marking(root), Marking::label("a"));
/// assert_eq!(doc.node_count(), 2);
///
/// // Mutation bumps the version counter; node ids stay stable.
/// let v0 = doc.version();
/// doc.add_child(root, Marking::value("42"))?;
/// assert!(doc.version() > v0);
/// assert!(doc.is_alive(root));
/// # Ok::<(), axml_core::AxmlError>(())
/// ```
#[derive(Debug)]
pub struct Tree {
    nodes: Vec<Node>,
    root: NodeId,
    id: u64,
    version: u64,
    /// Lazily built marking/child index (see [`mod@crate::index`]).
    /// `OnceLock` rather than a cell keeps `Tree: Sync` (services are
    /// `Send + Sync` and may capture forests).
    index: OnceLock<Box<DocIndex>>,
}

impl Clone for Tree {
    fn clone(&self) -> Tree {
        Tree {
            nodes: self.nodes.clone(),
            root: self.root,
            // A clone is a *different* tree that may diverge from the
            // original, so it gets its own identity (keeping subsumption
            // memos and match caches keyed by (id, version) sound).
            id: fresh_tree_id(),
            version: self.version,
            // The index is not cloned: the copy rebuilds lazily on its
            // first probe, keeping clones cheap for never-probed trees.
            index: OnceLock::new(),
        }
    }
}

impl Tree {
    /// Create a single-node tree with the given root marking.
    ///
    /// Any marking is accepted here; use [`Tree::validate_document_root`]
    /// when the tree is meant to be a document.
    pub fn new(root: Marking) -> Tree {
        Tree {
            nodes: vec![Node {
                marking: root,
                parent: None,
                children: Vec::new(),
                alive: true,
            }],
            root: NodeId(0),
            id: fresh_tree_id(),
            version: 0,
            index: OnceLock::new(),
        }
    }

    /// Create a tree with a label root — the common case.
    pub fn with_label(label: &str) -> Tree {
        Tree::new(Marking::label(label))
    }

    /// Definition 2.1 (ii): a document root must be a label or a value.
    pub fn validate_document_root(&self) -> Result<()> {
        if self.marking(self.root).is_func() {
            Err(AxmlError::FunctionRoot)
        } else {
            Ok(())
        }
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// A process-unique identity for this arena. Fresh on creation *and*
    /// on clone, so `(id, version)` pairs never collide between trees —
    /// the key property behind cross-tree subsumption memos and the
    /// engine's per-atom match cache.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Monotonically increasing mutation counter: bumped by every
    /// [`Tree::add_child`] and [`Tree::remove_subtree`] (hence by grafts
    /// and in-place reduction). Equal versions of the same [`Tree::id`]
    /// guarantee identical content, which is what the delta engine's
    /// read-set skipping relies on.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The marking of node `n`.
    #[inline]
    pub fn marking(&self, n: NodeId) -> Marking {
        self.nodes[n.idx()].marking
    }

    /// The live children of node `n`.
    #[inline]
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.idx()].children
    }

    /// The parent of node `n` (`None` for the root).
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.idx()].parent
    }

    /// Whether node `n` is still part of the tree.
    #[inline]
    pub fn is_alive(&self, n: NodeId) -> bool {
        n.idx() < self.nodes.len() && self.nodes[n.idx()].alive
    }

    /// Add a child with marking `m` under `parent`. Fails if `parent` is an
    /// atomic-value node (Definition 2.1 (i)) or dead.
    pub fn add_child(&mut self, parent: NodeId, m: Marking) -> Result<NodeId> {
        if !self.is_alive(parent) {
            return Err(AxmlError::DeadNode);
        }
        if self.marking(parent).is_value() {
            return Err(AxmlError::ValueNodeWithChildren);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            marking: m,
            parent: Some(parent),
            children: Vec::new(),
            alive: true,
        });
        self.nodes[parent.idx()].children.push(id);
        self.version += 1;
        if let Some(ix) = self.index.get_mut() {
            ix.record_add(parent, id, m, self.version);
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
        Ok(id)
    }

    /// Remove the subtree rooted at `n` (unlink from parent, mark dead).
    /// Removing the root is not allowed.
    pub fn remove_subtree(&mut self, n: NodeId) -> Result<()> {
        if !self.is_alive(n) {
            return Err(AxmlError::DeadNode);
        }
        let parent = self.nodes[n.idx()].parent.ok_or(AxmlError::DeadNode)?;
        let siblings = &mut self.nodes[parent.idx()].children;
        if let Some(pos) = siblings.iter().position(|&c| c == n) {
            siblings.swap_remove(pos);
        }
        if let Some(ix) = self.index.get_mut() {
            ix.unlink_child(parent, n, self.nodes[n.idx()].marking);
        }
        // Mark the whole subtree dead, iteratively. Index entries must be
        // retired *before* each node's child list is cleared.
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            self.nodes[x.idx()].alive = false;
            stack.extend(self.nodes[x.idx()].children.iter().copied());
            if let Some(ix) = self.index.get_mut() {
                ix.forget_node(x, self.nodes[x.idx()].marking);
                for i in 0..self.nodes[x.idx()].children.len() {
                    let c = self.nodes[x.idx()].children[i];
                    ix.drop_child_bucket(x, self.nodes[c.idx()].marking);
                }
            }
            self.nodes[x.idx()].children.clear();
        }
        self.version += 1;
        if let Some(ix) = self.index.get_mut() {
            ix.set_version(self.version);
        }
        #[cfg(debug_assertions)]
        self.debug_check_index();
        Ok(())
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.iter_live(self.root).count()
    }

    /// Total arena slots ever allocated (live + dead).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Depth-first iterator over the live nodes of the subtree at `n`.
    pub fn iter_live(&self, n: NodeId) -> LiveIter<'_> {
        LiveIter {
            tree: self,
            stack: if self.is_alive(n) { vec![n] } else { vec![] },
        }
    }

    /// All live function nodes, in depth-first order.
    pub fn function_nodes(&self) -> Vec<NodeId> {
        self.iter_live(self.root)
            .filter(|&n| self.marking(n).is_func())
            .collect()
    }

    /// Depth (edge count) of the subtree rooted at `n`.
    pub fn depth(&self, n: NodeId) -> usize {
        let mut max = 0usize;
        let mut stack = vec![(n, 0usize)];
        while let Some((x, d)) = stack.pop() {
            max = max.max(d);
            for &c in self.children(x) {
                stack.push((c, d + 1));
            }
        }
        max
    }

    /// Deep-copy the subtree rooted at `n` into a fresh tree.
    pub fn subtree(&self, n: NodeId) -> Tree {
        let mut out = Tree::new(self.marking(n));
        let dst_root = out.root();
        self.copy_children_into(n, &mut out, dst_root);
        out
    }

    /// Copy the children subtrees of `src_node` (in `self`) as children of
    /// `dst_node` in `dst`.
    pub fn copy_children_into(&self, src_node: NodeId, dst: &mut Tree, dst_node: NodeId) {
        for &c in self.children(src_node) {
            self.copy_subtree_into(c, dst, dst_node);
        }
    }

    /// Copy the subtree rooted at `src_node` (in `self`) as a new child of
    /// `dst_node` in `dst`, returning the new subtree root's id.
    pub fn copy_subtree_into(&self, src_node: NodeId, dst: &mut Tree, dst_node: NodeId) -> NodeId {
        let new_root = dst
            .add_child(dst_node, self.marking(src_node))
            .expect("copy target must accept children");
        let mut stack: Vec<(NodeId, NodeId)> = vec![(src_node, new_root)];
        while let Some((s, d)) = stack.pop() {
            for &c in self.children(s) {
                let nd = dst
                    .add_child(d, self.marking(c))
                    .expect("copy target must accept children");
                stack.push((c, nd));
            }
        }
        new_root
    }

    /// Append a copy of `other` (whole tree) as a child of `parent`.
    pub fn graft(&mut self, parent: NodeId, other: &Tree) -> Result<NodeId> {
        if !self.is_alive(parent) {
            return Err(AxmlError::DeadNode);
        }
        if self.marking(parent).is_value() {
            return Err(AxmlError::ValueNodeWithChildren);
        }
        Ok(other.copy_subtree_into(other.root(), self, parent))
    }

    /// Rebuild the arena, dropping dead slots. Node ids are *not*
    /// preserved; use only between engine runs.
    pub fn compact(&self) -> Tree {
        self.subtree(self.root)
    }

    /// Leaf count (live nodes with no children).
    pub fn leaf_count(&self) -> usize {
        self.iter_live(self.root)
            .filter(|&n| self.children(n).is_empty())
            .count()
    }

    /// The document index, building it lazily once the arena is large
    /// enough to amortize the build. `None` means "keep scanning".
    /// Probing a stale index is a hard error (panic), never a silent
    /// wrong answer — see [`mod@crate::index`].
    fn live_index(&self) -> Option<&DocIndex> {
        if let Some(ix) = self.index.get() {
            ix.assert_fresh(self.version);
            return Some(ix);
        }
        if self.nodes.len() < INDEX_BUILD_THRESHOLD {
            return None;
        }
        let ix = self.index.get_or_init(|| Box::new(DocIndex::build(self)));
        ix.assert_fresh(self.version);
        Some(ix)
    }

    /// Force the index to exist regardless of the lazy-build threshold
    /// (tests and benchmarks; the matcher goes through the lazy probes).
    pub fn build_index(&self) {
        let ix = self.index.get_or_init(|| Box::new(DocIndex::build(self)));
        ix.assert_fresh(self.version);
    }

    /// Has the lazy index been built yet?
    pub fn index_is_built(&self) -> bool {
        self.index.get().is_some()
    }

    /// Index probe: live nodes carrying marking `m`, anywhere in the
    /// tree. `None` when the tree is below the index threshold.
    pub fn indexed_nodes_with(&self, m: Marking) -> Option<&[NodeId]> {
        self.live_index().map(|ix| ix.nodes_with(m))
    }

    /// Index probe: live children of `n` carrying marking `m`. `None`
    /// when the tree is below the index threshold.
    pub fn indexed_children_with(&self, n: NodeId, m: Marking) -> Option<&[NodeId]> {
        self.live_index().map(|ix| ix.children_with(n, m))
    }

    /// Like [`Tree::indexed_children_with`] but never *builds* the index
    /// — for probe sites (subsumption over scratch trees) where paying a
    /// build would not amortize.
    pub fn indexed_children_if_built(&self, n: NodeId, m: Marking) -> Option<&[NodeId]> {
        self.index.get().map(|ix| {
            ix.assert_fresh(self.version);
            ix.children_with(n, m)
        })
    }

    /// Like [`Tree::indexed_nodes_with`] but never *builds* the index —
    /// for compile-time selectivity probes ([`crate::compile`]) which
    /// must not perturb the lazy build timing the matcher's own probes
    /// control.
    pub fn indexed_nodes_if_built(&self, m: Marking) -> Option<&[NodeId]> {
        self.index.get().map(|ix| {
            ix.assert_fresh(self.version);
            ix.nodes_with(m)
        })
    }

    /// Maintenance counters and footprint of the index, if built.
    pub fn index_stats(&self) -> Option<IndexStats> {
        self.index.get().map(|ix| {
            ix.assert_fresh(self.version);
            ix.stats()
        })
    }

    /// Check the incrementally maintained index against a
    /// rebuild-from-scratch. `Ok` when the index is not built.
    pub fn validate_index(&self) -> std::result::Result<(), String> {
        match self.index.get() {
            None => Ok(()),
            Some(ix) => ix.validate(self),
        }
    }

    /// Sampled rebuild-vs-incremental validation behind debug assertions:
    /// small arenas are checked on every mutation, large ones
    /// periodically, so debug test runs (and the CI debug-assertions
    /// job) exercise the maintenance hooks without going quadratic.
    #[cfg(debug_assertions)]
    fn debug_check_index(&self) {
        if self.index.get().is_some() && (self.nodes.len() <= 64 || self.version.is_multiple_of(61)) {
            if let Err(e) = self.validate_index() {
                panic!("document index invariant broken: {e}");
            }
        }
    }
}

/// Iterator over live nodes, depth-first preorder.
pub struct LiveIter<'a> {
    tree: &'a Tree,
    stack: Vec<NodeId>,
}

impl Iterator for LiveIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.stack.pop()?;
        self.stack.extend(self.tree.children(n).iter().copied());
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        // a{b{"1"}, @f{c}}
        let mut t = Tree::with_label("a");
        let b = t.add_child(t.root(), Marking::label("b")).unwrap();
        t.add_child(b, Marking::value("1")).unwrap();
        let f = t.add_child(t.root(), Marking::func("f")).unwrap();
        t.add_child(f, Marking::label("c")).unwrap();
        t
    }

    #[test]
    fn build_and_count() {
        let t = sample();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.depth(t.root()), 2);
    }

    #[test]
    fn values_stay_leaves() {
        let mut t = Tree::with_label("a");
        let v = t.add_child(t.root(), Marking::value("5")).unwrap();
        assert_eq!(
            t.add_child(v, Marking::label("x")),
            Err(AxmlError::ValueNodeWithChildren)
        );
    }

    #[test]
    fn function_roots_rejected_for_documents() {
        let t = Tree::new(Marking::func("f"));
        assert_eq!(t.validate_document_root(), Err(AxmlError::FunctionRoot));
        assert!(sample().validate_document_root().is_ok());
    }

    #[test]
    fn remove_subtree_unlinks_and_kills() {
        let mut t = sample();
        let f = t.function_nodes()[0];
        t.remove_subtree(f).unwrap();
        assert!(!t.is_alive(f));
        assert_eq!(t.node_count(), 3);
        assert!(t.function_nodes().is_empty());
        // Dead node operations fail.
        assert_eq!(t.remove_subtree(f), Err(AxmlError::DeadNode));
        assert_eq!(t.add_child(f, Marking::label("x")), Err(AxmlError::DeadNode));
    }

    #[test]
    fn subtree_copy_is_deep() {
        let t = sample();
        let f = t.function_nodes()[0];
        let sub = t.subtree(f);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.marking(sub.root()), Marking::func("f"));
    }

    #[test]
    fn graft_appends_copy() {
        let mut t = sample();
        let extra = Tree::with_label("z");
        let at = t.graft(t.root(), &extra).unwrap();
        assert_eq!(t.marking(at), Marking::label("z"));
        assert_eq!(t.children(t.root()).len(), 3);
    }

    #[test]
    fn compact_preserves_structure() {
        let mut t = sample();
        let f = t.function_nodes()[0];
        t.remove_subtree(f).unwrap();
        let c = t.compact();
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.arena_len(), 3);
        assert!(t.arena_len() > c.arena_len());
    }

    #[test]
    fn identity_fresh_on_clone_and_version_counts_mutations() {
        let mut t = sample();
        let v0 = t.version();
        let dup = t.clone();
        assert_ne!(t.id(), dup.id(), "clones get a fresh identity");
        assert_eq!(dup.version(), v0);
        t.add_child(t.root(), Marking::label("x")).unwrap();
        assert_eq!(t.version(), v0 + 1);
        assert_eq!(dup.version(), v0, "clone is unaffected");
        let f = t.function_nodes()[0];
        t.remove_subtree(f).unwrap();
        assert_eq!(t.version(), v0 + 2);
    }

    #[test]
    fn graft_bumps_version() {
        let mut t = sample();
        let v0 = t.version();
        let extra = Tree::with_label("z");
        t.graft(t.root(), &extra).unwrap();
        assert!(t.version() > v0);
    }

    #[test]
    fn index_maintained_incrementally_across_mutations() {
        let mut t = sample();
        assert!(!t.index_is_built(), "small trees stay unindexed");
        t.build_index();
        assert!(t.index_is_built());
        let b = Marking::label("b");
        assert_eq!(t.indexed_nodes_with(b).unwrap().len(), 1);
        let x = t.add_child(t.root(), b).unwrap();
        assert_eq!(t.indexed_nodes_with(b).unwrap().len(), 2);
        assert_eq!(t.indexed_children_with(t.root(), b).unwrap().len(), 2);
        t.validate_index().unwrap();
        t.remove_subtree(x).unwrap();
        assert_eq!(t.indexed_nodes_with(b).unwrap().len(), 1);
        let f = t.function_nodes()[0];
        t.remove_subtree(f).unwrap();
        assert!(t.indexed_nodes_with(Marking::func("f")).unwrap().is_empty());
        assert!(t
            .indexed_children_with(f, Marking::label("c"))
            .unwrap()
            .is_empty());
        t.validate_index().unwrap();
        let stats = t.index_stats().unwrap();
        assert_eq!(stats.entries, t.node_count());
        assert!(stats.adds > 0 && stats.removes > 0);
        assert!(stats.bytes_estimate > 0);
    }

    #[test]
    fn index_builds_lazily_past_threshold_and_is_not_cloned() {
        let mut t = Tree::with_label("r");
        for i in 0..INDEX_BUILD_THRESHOLD {
            t.add_child(t.root(), Marking::label(if i % 2 == 0 { "even" } else { "odd" }))
                .unwrap();
        }
        assert!(!t.index_is_built());
        let evens = t.indexed_nodes_with(Marking::label("even")).unwrap();
        assert_eq!(evens.len(), INDEX_BUILD_THRESHOLD / 2);
        assert!(t.index_is_built());
        let dup = t.clone();
        assert!(!dup.index_is_built(), "clones rebuild lazily");
        assert_eq!(
            dup.indexed_children_with(dup.root(), Marking::label("odd"))
                .unwrap()
                .len(),
            INDEX_BUILD_THRESHOLD / 2
        );
        t.validate_index().unwrap();
        dup.validate_index().unwrap();
    }

    #[test]
    fn graft_and_reduce_style_mutations_keep_index_valid() {
        let mut t = Tree::with_label("r");
        t.build_index();
        let extra = sample();
        let at = t.graft(t.root(), &extra).unwrap();
        t.validate_index().unwrap();
        assert_eq!(
            t.indexed_children_with(t.root(), Marking::label("a"))
                .unwrap(),
            &[at]
        );
        t.remove_subtree(at).unwrap();
        t.validate_index().unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.index_stats().unwrap().entries, 1);
    }

    #[test]
    fn ids_stable_across_removal_of_sibling() {
        let mut t = Tree::with_label("a");
        let b = t.add_child(t.root(), Marking::label("b")).unwrap();
        let c = t.add_child(t.root(), Marking::label("c")).unwrap();
        t.remove_subtree(b).unwrap();
        assert!(t.is_alive(c));
        assert_eq!(t.marking(c), Marking::label("c"));
    }
}
