//! The finite graph representation of a simple positive system's
//! (possibly infinite) semantics — Lemma 3.2 — and its consequences:
//! decidable termination (Theorem 3.3, Corollary of the reachable-cycle
//! check), full query results `[q](I)` over the representation, and
//! q-finiteness / emptiness analysis (Propositions 3.2 and 3.3).
//!
//! ## Construction
//!
//! Following the Lemma 3.2 proof sketch: every subtree of `[I]` is either
//! an original subtree of `I` or (a rewriting of) an *instantiated head*
//! of some service query, and identical instantiations have equivalent
//! rewritings. The builder therefore:
//!
//! 1. imports the original documents into a shared [`Graph`];
//! 2. repeatedly processes every *occurrence* — a pair (function node,
//!    parent) in the reachable graph — by evaluating the service's query
//!    against the graph-represented documents (`input` = the call's
//!    children, `context` = the parent node);
//! 3. **memoizes instantiated heads by canonical form**: a head seen
//!    before contributes an edge to the existing subgraph ("pointing to
//!    their root when the same answer is returned again"), a fresh head
//!    is imported and its own function nodes become new occurrences;
//! 4. stops at a fixpoint. Simple systems have finitely many instantiated
//!    heads (markings range over the finite alphabet of the system), so
//!    the fixpoint is reached — in at most exponentially many steps,
//!    matching the EXPTIME bound.
//!
//! The system **terminates iff the reachable representation is acyclic**:
//! a reachable cycle unfolds to unboundedly deep derivable data, and a
//! reduced infinite document over a finite alphabet must have unbounded
//! depth, which no finite document subsumes.

use crate::error::{AxmlError, Result};
use crate::pattern::{PItem, Pattern, PNodeId};
use crate::query::{Operand, Query};
use crate::regular::{GNodeId, Graph};
use crate::sym::{FxHashMap, FxHashSet, Sym};
use crate::system::{context_sym, input_sym, System};
use crate::tree::Marking;

/// A value bound to a variable during graph matching: a marking (for
/// label/function/value variables) or a graph node (for tree variables).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GBound {
    /// Marking binding (label / function / value variables).
    Mark(Marking),
    /// Graph-node binding (tree variables): the subtree is the node's
    /// (possibly infinite) unfolding.
    Node(GNodeId),
}

/// A variable assignment over graph matches.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct GBinding {
    entries: Vec<(Sym, GBound)>,
}

impl GBinding {
    /// Look up a variable.
    pub fn get(&self, var: Sym) -> Option<GBound> {
        self.entries
            .binary_search_by(|(v, _)| v.cmp(&var))
            .ok()
            .map(|i| self.entries[i].1)
    }

    fn bind(&mut self, var: Sym, val: GBound) -> bool {
        match self.entries.binary_search_by(|(v, _)| v.cmp(&var)) {
            Ok(i) => self.entries[i].1 == val,
            Err(i) => {
                self.entries.insert(i, (var, val));
                true
            }
        }
    }

    fn merge(&self, other: &GBinding) -> Option<GBinding> {
        let mut out = self.clone();
        for (v, b) in &other.entries {
            if !out.bind(*v, *b) {
                return None;
            }
        }
        Some(out)
    }
}

fn bind_gitem(item: &PItem, m: Marking, node: GNodeId, b: &GBinding) -> Option<GBinding> {
    match item {
        PItem::Const(c) => (*c == m).then(|| b.clone()),
        PItem::LabelVar(v) => match m {
            Marking::Label(_) => {
                let mut nb = b.clone();
                nb.bind(*v, GBound::Mark(m)).then_some(nb)
            }
            _ => None,
        },
        PItem::FuncVar(v) => match m {
            Marking::Func(_) => {
                let mut nb = b.clone();
                nb.bind(*v, GBound::Mark(m)).then_some(nb)
            }
            _ => None,
        },
        PItem::ValueVar(v) => match m {
            Marking::Value(_) => {
                let mut nb = b.clone();
                nb.bind(*v, GBound::Mark(m)).then_some(nb)
            }
            _ => None,
        },
        PItem::TreeVar(v) => {
            let mut nb = b.clone();
            nb.bind(*v, GBound::Node(node)).then_some(nb)
        }
    }
}

/// Match a pattern against the unfolding of `g` at `start` (root-to-root,
/// like snapshot semantics). Sound for cyclic graphs: recursion descends
/// the finite pattern.
pub fn match_on_graph(p: &Pattern, g: &Graph, start: GNodeId) -> Vec<GBinding> {
    match_gnode(p, p.root(), g, start, &GBinding::default())
}

fn match_gnode(
    p: &Pattern,
    pn: PNodeId,
    g: &Graph,
    gn: GNodeId,
    b: &GBinding,
) -> Vec<GBinding> {
    let Some(b0) = bind_gitem(p.item(pn), g.marking(gn), gn, b) else {
        return Vec::new();
    };
    match_gchildren(p, pn, g, g.children(gn), b0)
}

fn match_gchildren(
    p: &Pattern,
    pn: PNodeId,
    g: &Graph,
    kids: &[GNodeId],
    b0: GBinding,
) -> Vec<GBinding> {
    let mut current: Vec<GBinding> = vec![b0];
    for &pc in p.children(pn) {
        let mut next: FxHashSet<GBinding> = FxHashSet::default();
        for base in &current {
            for &gc in kids {
                for nb in match_gnode(p, pc, g, gc, base) {
                    next.insert(nb);
                }
            }
        }
        if next.is_empty() {
            return Vec::new();
        }
        current = next.into_iter().collect();
    }
    current
}

/// Match a pattern against the virtual `input` document of the call at
/// `call`: a root labeled `input` whose children are the call's children.
fn match_input(p: &Pattern, g: &Graph, call: GNodeId) -> Vec<GBinding> {
    let Some(b0) = bind_gitem(
        p.item(p.root()),
        Marking::Label(input_sym()),
        // There is no real node for the virtual input root; tree
        // variables at the root of an input pattern are not supported on
        // graphs (they cannot occur in simple systems' own services, and
        // query evaluation passes a real document).
        call,
        &GBinding::default(),
    ) else {
        return Vec::new();
    };
    match_gchildren(p, p.root(), g, g.children(call), b0)
}

/// The environment for evaluating a query over a graph representation.
struct GraphQueryEnv<'a> {
    graph: &'a Graph,
    roots: &'a FxHashMap<Sym, GNodeId>,
    /// The call node (`input` = its children), if evaluating a service.
    input_call: Option<GNodeId>,
    /// The context node (the call's parent), if evaluating a service.
    context: Option<GNodeId>,
}

/// Evaluate a query's bindings over graph documents.
fn query_bindings(q: &Query, env: &GraphQueryEnv<'_>) -> Result<Vec<GBinding>> {
    let mut combined: Vec<GBinding> = vec![GBinding::default()];
    for atom in &q.body {
        let matches = if atom.doc == input_sym() {
            let call = env.input_call.ok_or(AxmlError::UnknownDocument(atom.doc))?;
            match_input(&atom.pattern, env.graph, call)
        } else if atom.doc == context_sym() {
            let ctx = env.context.ok_or(AxmlError::UnknownDocument(atom.doc))?;
            match_on_graph(&atom.pattern, env.graph, ctx)
        } else {
            let root = *env
                .roots
                .get(&atom.doc)
                .ok_or(AxmlError::UnknownDocument(atom.doc))?;
            match_on_graph(&atom.pattern, env.graph, root)
        };
        if matches.is_empty() {
            return Ok(Vec::new());
        }
        let mut next: FxHashSet<GBinding> = FxHashSet::default();
        for base in &combined {
            for m in &matches {
                if let Some(merged) = base.merge(m) {
                    next.insert(merged);
                }
            }
        }
        if next.is_empty() {
            return Ok(Vec::new());
        }
        combined = next.into_iter().collect();
    }
    combined.retain(|b| {
        q.ineqs.iter().all(|(l, r)| {
            let resolve = |op: &Operand| -> Option<Marking> {
                match op {
                    Operand::Const(m) => Some(*m),
                    Operand::Var(v) => match b.get(*v) {
                        Some(GBound::Mark(m)) => Some(m),
                        _ => None,
                    },
                }
            };
            matches!((resolve(l), resolve(r)), (Some(a), Some(c)) if a != c)
        })
    });
    // Deterministic order for reproducible builds.
    combined.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    Ok(combined)
}

/// Instantiate a (possibly tree-variable-using) head into the graph:
/// constants and marking variables become fresh nodes, tree variables
/// become edges to their bound graph nodes. Returns the result root.
fn instantiate_head_into_graph(
    head: &Pattern,
    b: &GBinding,
    g: &mut Graph,
) -> Result<GNodeId> {
    fn resolve(item: &PItem, b: &GBinding) -> Result<GBound> {
        match item {
            PItem::Const(m) => Ok(GBound::Mark(*m)),
            PItem::LabelVar(v) | PItem::FuncVar(v) | PItem::ValueVar(v) | PItem::TreeVar(v) => {
                b.get(*v).ok_or(AxmlError::UnsafeHeadVariable(*v))
            }
        }
    }
    fn build(
        head: &Pattern,
        hn: PNodeId,
        b: &GBinding,
        g: &mut Graph,
    ) -> Result<GNodeId> {
        match resolve(head.item(hn), b)? {
            GBound::Node(n) => Ok(n),
            GBound::Mark(m) => {
                let id = g.add_node(m);
                for &hc in head.children(hn) {
                    let c = build(head, hc, b, g)?;
                    g.add_edge(id, c);
                }
                Ok(id)
            }
        }
    }
    build(head, head.root(), b, g)
}

/// Memo key for an instantiated head: the head pattern's textual identity
/// plus the bindings of the variables it uses. Two equal keys instantiate
/// to the same subgraph.
fn head_key(qname: Sym, q: &Query, b: &GBinding) -> HeadKey {
    let mut vars: Vec<(Sym, GBound)> = q
        .head
        .variables()
        .into_iter()
        .filter_map(|v| b.get(v).map(|x| (v, x)))
        .collect();
    vars.sort_unstable_by_key(|(v, _)| *v);
    HeadKey { qname, vars }
}

/// Identity of one instantiated head.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct HeadKey {
    qname: Sym,
    vars: Vec<(Sym, GBound)>,
}

/// Build limits (safety rails; simple systems always converge but can be
/// exponential).
#[derive(Clone, Copy, Debug)]
pub struct BuildLimits {
    /// Maximum graph nodes.
    pub max_nodes: usize,
    /// Maximum fixpoint iterations.
    pub max_iterations: usize,
}

impl Default for BuildLimits {
    fn default() -> BuildLimits {
        BuildLimits {
            max_nodes: 200_000,
            max_iterations: 10_000,
        }
    }
}

/// Statistics of a graph-representation build.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Fixpoint iterations until stability.
    pub iterations: usize,
    /// Occurrences (function node, parent) processed, summed over
    /// iterations.
    pub occurrences_processed: usize,
    /// Distinct instantiated heads imported.
    pub heads_imported: usize,
    /// Memo hits (an already-known head re-derived — the sharing that
    /// keeps the representation finite).
    pub memo_hits: usize,
}

/// The finite graph representation of `[I]` (Lemma 3.2).
pub struct GraphRepr {
    /// Shared node arena for all documents and expansions.
    pub graph: Graph,
    /// Root node of each document.
    pub roots: FxHashMap<Sym, GNodeId>,
    /// Instantiated-head memo.
    memo: FxHashMap<HeadKey, GNodeId>,
    /// Graph images of the original documents' tree nodes.
    pub import_map: FxHashMap<(Sym, crate::tree::NodeId), GNodeId>,
    /// Excluded call occurrences (graph nodes never processed): the set
    /// `N` of `[I↓N]` (§4).
    excluded: FxHashSet<GNodeId>,
    /// Build statistics.
    pub stats: BuildStats,
}

impl GraphRepr {
    /// Build the representation for a **simple positive** system.
    pub fn build(sys: &System) -> Result<GraphRepr> {
        GraphRepr::build_with_limits(sys, BuildLimits::default())
    }

    /// [`GraphRepr::build`] with explicit safety limits.
    pub fn build_with_limits(sys: &System, limits: BuildLimits) -> Result<GraphRepr> {
        GraphRepr::build_excluding(sys, &[], limits)
    }

    /// Build the representation of `[I↓N]` (§4): a fair rewriting that
    /// never invokes the original call occurrences in `excluded`. Calls
    /// *derived* during the rewriting are not in `N` and are processed
    /// normally.
    pub fn build_excluding(
        sys: &System,
        excluded: &[(Sym, crate::tree::NodeId)],
        limits: BuildLimits,
    ) -> Result<GraphRepr> {
        if let Some(witness) = sys.non_simple_witness() {
            return Err(AxmlError::NotSimple(witness));
        }
        sys.validate()?;
        let mut repr = GraphRepr {
            graph: Graph::new(),
            roots: FxHashMap::default(),
            memo: FxHashMap::default(),
            import_map: FxHashMap::default(),
            excluded: FxHashSet::default(),
            stats: BuildStats::default(),
        };
        for &d in sys.doc_names() {
            let doc = sys.doc(d).expect("stored");
            let (root, map) = repr.graph.import_subtree_mapped(doc, doc.root());
            for (tn, gn) in map {
                repr.import_map.insert((d, tn), gn);
            }
            repr.roots.insert(d, root);
        }
        for occ in excluded {
            if let Some(&gn) = repr.import_map.get(occ) {
                repr.excluded.insert(gn);
            }
        }
        let doc_roots: Vec<GNodeId> = repr.roots.values().copied().collect();
        repr.saturate(sys, &doc_roots, limits)?;
        Ok(repr)
    }

    /// Run the occurrence fixpoint, considering everything reachable from
    /// `extra_roots` in addition to the document roots.
    pub(crate) fn saturate(
        &mut self,
        sys: &System,
        extra_roots: &[GNodeId],
        limits: BuildLimits,
    ) -> Result<()> {
        let mut all_roots: Vec<GNodeId> = self.roots.values().copied().collect();
        all_roots.extend_from_slice(extra_roots);
        loop {
            self.stats.iterations += 1;
            if self.stats.iterations > limits.max_iterations
                || self.graph.node_count() > limits.max_nodes
            {
                return Err(AxmlError::BudgetExhausted);
            }
            let mut changed = false;
            // Occurrences: (function node, parent) pairs reachable now.
            let reach = self.graph.reachable(&all_roots);
            let mut occs: Vec<(GNodeId, GNodeId)> = Vec::new();
            for &p in &reach {
                for &u in self.graph.children(p) {
                    if self.graph.marking(u).is_func() {
                        occs.push((u, p));
                    }
                }
            }
            occs.sort_unstable();
            for (u, p) in occs {
                if self.excluded.contains(&u) {
                    continue;
                }
                self.stats.occurrences_processed += 1;
                let fname = self.graph.marking(u).sym();
                let q = sys
                    .service_query(fname)
                    .ok_or(AxmlError::UnknownFunction(fname))?
                    .clone();
                let env = GraphQueryEnv {
                    graph: &self.graph,
                    roots: &self.roots,
                    input_call: Some(u),
                    context: Some(p),
                };
                let bindings = query_bindings(&q, &env)?;
                for b in bindings {
                    let key = head_key(fname, &q, &b);
                    let target = match self.memo.get(&key) {
                        Some(&t) => {
                            self.stats.memo_hits += 1;
                            t
                        }
                        None => {
                            let t = instantiate_head_into_graph(&q.head, &b, &mut self.graph)?;
                            self.memo.insert(key, t);
                            self.stats.heads_imported += 1;
                            changed = true;
                            t
                        }
                    };
                    if self.graph.add_edge(p, target) {
                        changed = true;
                    }
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }

    /// Document roots in a deterministic order.
    pub fn doc_roots(&self) -> Vec<GNodeId> {
        let mut roots: Vec<(Sym, GNodeId)> =
            self.roots.iter().map(|(&d, &r)| (d, r)).collect();
        roots.sort_unstable();
        roots.into_iter().map(|(_, r)| r).collect()
    }

    /// Does the system terminate? (Theorem 3.3: decidable for simple
    /// positive systems; the verdict is the acyclicity of the reachable
    /// representation.)
    pub fn terminates(&self) -> bool {
        self.graph.find_cycle(&self.doc_roots()).is_none()
    }

    /// The cycle witnessing divergence, if any.
    pub fn divergence_witness(&self) -> Option<Vec<GNodeId>> {
        self.graph.find_cycle(&self.doc_roots())
    }
}

/// Verdict of the Theorem 3.3 decision procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Termination {
    /// Every fair rewriting reaches a finite fixpoint.
    Terminates,
    /// No rewriting terminates; the witness is a cycle in the graph
    /// representation (node count of the cycle).
    Diverges {
        /// Length of the witnessing cycle.
        cycle_len: usize,
    },
}

/// Decide termination of a simple positive system (Theorem 3.3).
pub fn decide_termination(sys: &System) -> Result<Termination> {
    let repr = GraphRepr::build(sys)?;
    Ok(match repr.divergence_witness() {
        None => Termination::Terminates,
        Some(c) => Termination::Diverges { cycle_len: c.len() },
    })
}

/// The full result `[q](I)` of a query over a simple positive system,
/// represented as a graph forest (Prop 3.2 / 3.3 analyses).
pub struct QueryResultRepr {
    /// The underlying representation (system docs + answer expansions).
    pub repr: GraphRepr,
    /// Roots of the answer forest.
    pub result_roots: Vec<GNodeId>,
}

impl QueryResultRepr {
    /// Is the full result finite (q-finiteness, Prop 3.2)?
    pub fn is_finite(&self) -> bool {
        self.repr.graph.find_cycle(&self.result_roots).is_none()
    }

    /// Is the full result empty (Prop 3.3's emptiness problem — decidable
    /// here because the system is simple)?
    pub fn is_empty(&self) -> bool {
        self.result_roots.is_empty()
    }

    /// Materialize the answers as finite trees, if the result is finite.
    pub fn materialize(&self) -> Option<Vec<crate::tree::Tree>> {
        if !self.is_finite() {
            return None;
        }
        Some(
            self.result_roots
                .iter()
                .map(|&r| self.repr.graph.unfold_exact(r).expect("acyclic"))
                .collect(),
        )
    }
}

/// Evaluate a top-level query's bindings over the representation (no
/// `input`/`context` in scope). Used by the exact lazy-evaluation
/// analyses (§4) in [`crate::lazy`].
pub(crate) fn system_query_bindings(repr: &GraphRepr, q: &Query) -> Result<Vec<GBinding>> {
    let env = GraphQueryEnv {
        graph: &repr.graph,
        roots: &repr.roots,
        input_call: None,
        context: None,
    };
    query_bindings(q, &env)
}

/// Import one instantiated head into the representation's graph,
/// returning the answer root (lazy-evaluation support).
pub(crate) fn import_instantiated_head(
    repr: &mut GraphRepr,
    head: &Pattern,
    b: &GBinding,
) -> Result<GNodeId> {
    instantiate_head_into_graph(head, b, &mut repr.graph)
}

/// Compute `[q](I)` over a simple positive system. The query itself may
/// use tree variables (a non-simple query over a simple system —
/// Prop 3.2 (3) / Thm 4.1 (2) setting): tree variables bind graph nodes,
/// so answers may be infinite; [`QueryResultRepr::is_finite`] tells.
///
/// Answer heads containing function calls are expanded against the
/// system's documents (the answer is a new document added alongside `I`,
/// as §3.1's "query result" prescribes).
pub fn full_query_result(sys: &System, q: &Query) -> Result<QueryResultRepr> {
    let mut repr = GraphRepr::build(sys)?;
    // Evaluate q over the saturated representation.
    let env = GraphQueryEnv {
        graph: &repr.graph,
        roots: &repr.roots,
        input_call: None,
        context: None,
    };
    let bindings = query_bindings(q, &env)?;
    let mut result_roots: Vec<GNodeId> = Vec::new();
    let mut seen: FxHashSet<HeadKey> = FxHashSet::default();
    let qname = Sym::intern("<query>");
    for b in bindings {
        let key = head_key(qname, q, &b);
        if !seen.insert(key) {
            continue;
        }
        let root = instantiate_head_into_graph(&q.head, &b, &mut repr.graph)?;
        result_roots.push(root);
    }
    // Expand any function calls inside the answers (fair rewriting of the
    // augmented system).
    let limits = BuildLimits::default();
    repr.saturate(sys, &result_roots, limits)?;
    Ok(QueryResultRepr { repr, result_roots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, EngineConfig, RunStatus};
    use crate::query::parse_query;
    use crate::regular::graph_equivalent;
    use crate::subsume::equivalent;

    fn ex_2_1() -> System {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "a{@f} :-").unwrap();
        sys
    }

    fn ex_3_2() -> System {
        let mut sys = System::new();
        sys.add_document_text(
            "d0",
            r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, t{from{"3"},to{"4"}}}"#,
        )
        .unwrap();
        sys.add_document_text("d1", "r{@g,@f}").unwrap();
        sys.add_service_text("g", "t{from{$x},to{$y}} :- d0/r{t{from{$x},to{$y}}}")
            .unwrap();
        sys.add_service_text(
            "f",
            "t{from{$x},to{$y}} :- d1/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
        )
        .unwrap();
        sys
    }

    #[test]
    fn example_2_1_is_diagnosed_divergent() {
        // The graph representation of Example 2.1's limit is A = a{f, A}.
        let repr = GraphRepr::build(&ex_2_1()).unwrap();
        assert!(!repr.terminates());
        assert_eq!(
            decide_termination(&ex_2_1()).unwrap(),
            Termination::Diverges { cycle_len: 2 }
        );
        // The representation is tiny — that is the point of Lemma 3.2.
        assert!(repr.graph.node_count() <= 6);
    }

    #[test]
    fn example_3_2_is_diagnosed_terminating() {
        let verdict = decide_termination(&ex_3_2()).unwrap();
        assert_eq!(verdict, Termination::Terminates);
    }

    #[test]
    fn graph_repr_agrees_with_engine_on_terminating_system() {
        // Unfolding the representation of d1 equals the engine's fixpoint.
        let repr = GraphRepr::build(&ex_3_2()).unwrap();
        assert!(repr.terminates());
        let d1root = repr.roots[&Sym::intern("d1")];
        let unfolded = repr.graph.unfold_exact(d1root).unwrap();
        let mut sys = ex_3_2();
        let (status, _) = run(&mut sys, &EngineConfig::default()).unwrap();
        assert_eq!(status, RunStatus::Terminated);
        let engine_doc = sys.doc(Sym::intern("d1")).unwrap();
        assert!(
            equivalent(&crate::reduce::reduce(&unfolded), engine_doc),
            "graph unfolding != engine fixpoint:\n{}\nvs\n{}",
            crate::reduce::reduce(&unfolded),
            engine_doc
        );
    }

    #[test]
    fn example_2_1_limit_shape() {
        // The limit is a{f, A} with A = a{f, A}: check the unfolding
        // prefix and the self-loop structure via simulation.
        let repr = GraphRepr::build(&ex_2_1()).unwrap();
        let d = repr.roots[&Sym::intern("d")];
        // Build the expected two-node cyclic graph by hand.
        let mut g = Graph::new();
        let a = g.add_node(Marking::label("a"));
        let f = g.add_node(Marking::func("f"));
        g.add_edge(a, f);
        g.add_edge(a, a);
        assert!(graph_equivalent(&repr.graph, d, &g, a));
    }

    #[test]
    fn non_simple_system_rejected() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{a{b},@g}").unwrap();
        sys.add_service_text("g", "a{a{#X}} :- context/a{a{#X}}")
            .unwrap();
        assert!(matches!(
            GraphRepr::build(&sys),
            Err(AxmlError::NotSimple(_))
        ));
    }

    #[test]
    fn full_query_result_on_terminating_system() {
        // All TC pairs from node 1.
        let q = parse_query("reach{$y} :- d1/r{t{from{\"1\"},to{$y}}}").unwrap();
        let res = full_query_result(&ex_3_2(), &q).unwrap();
        assert!(res.is_finite());
        assert!(!res.is_empty());
        let mut answers: Vec<String> = res
            .materialize()
            .unwrap()
            .iter()
            .map(|t| t.to_string())
            .collect();
        answers.sort_unstable();
        assert_eq!(
            answers,
            vec![r#"reach{"2"}"#, r#"reach{"3"}"#, r#"reach{"4"}"#]
        );
    }

    #[test]
    fn full_query_result_over_divergent_system_can_be_finite() {
        // Example 2.1 diverges, but a simple query over it has a finite
        // result (§3.3: simple queries always have finite results).
        let q = parse_query("hit :- d/a{a{@f}}").unwrap();
        let res = full_query_result(&ex_2_1(), &q).unwrap();
        assert!(res.is_finite());
        let ans = res.materialize().unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].to_string(), "hit");
    }

    #[test]
    fn tree_variable_query_over_divergent_system_is_infinite() {
        // Copying below the cycle: the answer embeds the infinite subtree.
        let q = parse_query("copy{#X} :- d/a{#X}").unwrap();
        let res = full_query_result(&ex_2_1(), &q).unwrap();
        assert!(!res.is_empty());
        assert!(!res.is_finite());
        assert!(res.materialize().is_none());
    }

    #[test]
    fn emptiness_detection() {
        let q = parse_query("hit :- d/a{zzz}").unwrap();
        let res = full_query_result(&ex_2_1(), &q).unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn answer_with_calls_is_expanded() {
        // The answer head contains a call to g; its expansion must appear
        // in the result's semantics.
        let mut sys = System::new();
        sys.add_document_text("d", r#"store{item{"cd"}}"#).unwrap();
        sys.add_service_text("g", r#"extra{"bonus"} :-"#).unwrap();
        let q = parse_query("ans{$x, @g} :- d/store{item{$x}}").unwrap();
        let res = full_query_result(&sys, &q).unwrap();
        assert!(res.is_finite());
        let ans = res.materialize().unwrap();
        assert_eq!(ans.len(), 1);
        assert!(
            equivalent(
                &crate::reduce::reduce(&ans[0]),
                &crate::parse::parse_tree(r#"ans{"cd", @g, extra{"bonus"}}"#).unwrap()
            ),
            "got {}",
            ans[0]
        );
    }

    #[test]
    fn build_stats_reported() {
        let repr = GraphRepr::build(&ex_3_2()).unwrap();
        assert!(repr.stats.iterations >= 2);
        assert!(repr.stats.heads_imported >= 6); // 3 base + 3 closure tuples
        assert!(repr.stats.occurrences_processed >= 4);
    }
}
