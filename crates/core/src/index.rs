//! Incremental per-document marking indexes.
//!
//! Pattern matching (Section 3.1) is the engine's innermost loop. A
//! [`DocIndex`] replaces its two scans with hash probes:
//!
//! * the **marking index** `Marking → [NodeId]` answers "which live nodes
//!   carry this marking" — used to seed candidate roots instead of a full
//!   `iter_live` walk;
//! * the **child index** `(NodeId, Marking) → [NodeId]` answers "which
//!   live children of this node carry this marking" — used to probe
//!   pattern children by label instead of scanning every sibling.
//!
//! # Invariants
//!
//! For a tree `t` with a built index at `t.version()`:
//!
//! 1. `nodes_with(m)` contains exactly the live nodes of `t` whose
//!    marking is `m` (no order guarantee);
//! 2. `children_with(p, m)` contains exactly the live children of `p`
//!    whose marking is `m` (no order guarantee);
//! 3. the index's mirrored version equals `t.version()`.
//!
//! Invariant 3 is a *hard error* on every probe: all tree mutations
//! funnel through [`crate::tree::Tree::add_child`] and
//! [`crate::tree::Tree::remove_subtree`], which maintain the index
//! incrementally and re-sync the version, so a mismatch means a
//! maintenance hook was bypassed and the index can no longer be trusted.
//! [`DocIndex::validate`] checks invariants 1–2 against a
//! rebuild-from-scratch; debug builds sample it after mutations (see
//! `docs/indexing.md`).

use crate::sym::FxHashMap;
use crate::tree::{Marking, NodeId, Tree};

const EMPTY: &[NodeId] = &[];

/// Aggregate statistics of one [`DocIndex`], for observability
/// ([`crate::trace::EventKind::IndexMaintain`]) and memory accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Entries inserted since the index was created (the initial build
    /// counts each indexed node as one add).
    pub adds: u64,
    /// Entries removed since the index was created.
    pub removes: u64,
    /// Distinct markings with a (possibly empty) bucket.
    pub marking_buckets: usize,
    /// Distinct `(parent, marking)` child buckets.
    pub child_buckets: usize,
    /// Live entries in the marking index (= live nodes of the tree).
    pub entries: usize,
    /// Rough heap footprint of the index, in bytes.
    pub bytes_estimate: u64,
}

/// The two hash indexes of one document, mirrored against a specific
/// [`Tree::version`]. Obtained via [`Tree::indexed_nodes_with`] and
/// friends; the tree builds it lazily and maintains it incrementally.
#[derive(Clone, Debug)]
pub struct DocIndex {
    version: u64,
    by_marking: FxHashMap<Marking, Vec<NodeId>>,
    by_child: FxHashMap<(NodeId, Marking), Vec<NodeId>>,
    /// Live entries in `by_marking` (kept so stats need no bucket walk).
    entries: usize,
    adds: u64,
    removes: u64,
}

impl DocIndex {
    /// Rebuild-from-scratch over the live nodes of `t`.
    pub fn build(t: &Tree) -> DocIndex {
        let mut ix = DocIndex {
            version: t.version(),
            by_marking: FxHashMap::default(),
            by_child: FxHashMap::default(),
            entries: 0,
            adds: 0,
            removes: 0,
        };
        for n in t.iter_live(t.root()) {
            ix.by_marking.entry(t.marking(n)).or_default().push(n);
            ix.entries += 1;
            ix.adds += 1;
            for &c in t.children(n) {
                ix.by_child.entry((n, t.marking(c))).or_default().push(c);
            }
        }
        ix
    }

    /// The tree version this index mirrors.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Live nodes carrying marking `m` (invariant 1).
    pub fn nodes_with(&self, m: Marking) -> &[NodeId] {
        self.by_marking.get(&m).map_or(EMPTY, Vec::as_slice)
    }

    /// Live children of `parent` carrying marking `m` (invariant 2).
    pub fn children_with(&self, parent: NodeId, m: Marking) -> &[NodeId] {
        self.by_child.get(&(parent, m)).map_or(EMPTY, Vec::as_slice)
    }

    /// Snapshot of the maintenance counters and footprint.
    pub fn stats(&self) -> IndexStats {
        // Every live non-root node appears in exactly one child bucket,
        // so child entries ≈ marking entries; the estimate charges map
        // and bucket overhead per bucket plus 4 bytes per entry.
        let entries = self.entries as u64;
        let bytes_estimate = self.by_marking.len() as u64 * 40
            + self.by_child.len() as u64 * 48
            + entries * 8;
        IndexStats {
            adds: self.adds,
            removes: self.removes,
            marking_buckets: self.by_marking.len(),
            child_buckets: self.by_child.len(),
            entries: self.entries,
            bytes_estimate,
        }
    }

    /// Hard error tying the index to the document version: panics when
    /// the mirrored version disagrees with the tree's.
    #[inline]
    pub(crate) fn assert_fresh(&self, tree_version: u64) {
        assert_eq!(
            self.version, tree_version,
            "stale document index: index mirrors version {} but the tree is at {}",
            self.version, tree_version
        );
    }

    /// Maintenance hook for [`Tree::add_child`]: `child` (marked `m`) was
    /// appended under `parent`, bumping the tree to `version`.
    pub(crate) fn record_add(&mut self, parent: NodeId, child: NodeId, m: Marking, version: u64) {
        self.by_marking.entry(m).or_default().push(child);
        self.by_child.entry((parent, m)).or_default().push(child);
        self.entries += 1;
        self.adds += 1;
        self.version = version;
    }

    /// Maintenance hook for [`Tree::remove_subtree`]: unlink the removed
    /// subtree's root `n` (marked `m`) from its parent's child bucket.
    pub(crate) fn unlink_child(&mut self, parent: NodeId, n: NodeId, m: Marking) {
        if let Some(bucket) = self.by_child.get_mut(&(parent, m)) {
            if let Some(pos) = bucket.iter().position(|&x| x == n) {
                bucket.swap_remove(pos);
            }
            if bucket.is_empty() {
                self.by_child.remove(&(parent, m));
            }
        }
    }

    /// Maintenance hook for [`Tree::remove_subtree`]: node `n` (marked
    /// `m`) is now dead.
    pub(crate) fn forget_node(&mut self, n: NodeId, m: Marking) {
        if let Some(bucket) = self.by_marking.get_mut(&m) {
            if let Some(pos) = bucket.iter().position(|&x| x == n) {
                bucket.swap_remove(pos);
                self.entries -= 1;
                self.removes += 1;
            }
        }
    }

    /// Maintenance hook for [`Tree::remove_subtree`]: drop the child
    /// bucket `(parent, m)` wholesale (the parent itself died, so its
    /// buckets are unreachable).
    pub(crate) fn drop_child_bucket(&mut self, parent: NodeId, m: Marking) {
        self.by_child.remove(&(parent, m));
    }

    /// Re-sync the mirrored version after a maintenance batch.
    pub(crate) fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Validate the incremental state against a rebuild-from-scratch.
    /// Bucket order is irrelevant, and empty buckets left behind by
    /// removals are ignored.
    pub fn validate(&self, t: &Tree) -> Result<(), String> {
        if self.version != t.version() {
            return Err(format!(
                "index version {} != tree version {}",
                self.version,
                t.version()
            ));
        }
        let fresh = DocIndex::build(t);
        let live: usize = fresh.by_marking.values().map(Vec::len).sum();
        if self.entries != live {
            return Err(format!(
                "index tracks {} entries but the tree has {live} live nodes",
                self.entries
            ));
        }
        fn norm<K: Copy + Ord>(m: &FxHashMap<K, Vec<NodeId>>) -> Vec<(K, Vec<NodeId>)> {
            let mut v: Vec<(K, Vec<NodeId>)> = m
                .iter()
                .filter(|(_, b)| !b.is_empty())
                .map(|(k, b)| {
                    let mut b = b.clone();
                    b.sort_unstable();
                    (*k, b)
                })
                .collect();
            v.sort_unstable_by_key(|e| e.0);
            v
        }
        if norm(&self.by_marking) != norm(&fresh.by_marking) {
            return Err("marking index disagrees with rebuild-from-scratch".to_string());
        }
        if norm(&self.by_child) != norm(&fresh.by_child) {
            return Err("child index disagrees with rebuild-from-scratch".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;

    #[test]
    fn build_matches_tree_contents() {
        let t = parse_tree(r#"a{b{"1"},b{"2"},@f{c}}"#).unwrap();
        let ix = DocIndex::build(&t);
        assert_eq!(ix.nodes_with(Marking::label("b")).len(), 2);
        assert_eq!(ix.nodes_with(Marking::func("f")).len(), 1);
        assert_eq!(ix.nodes_with(Marking::label("zzz")).len(), 0);
        assert_eq!(ix.children_with(t.root(), Marking::label("b")).len(), 2);
        assert_eq!(ix.stats().entries, t.node_count());
        ix.validate(&t).unwrap();
    }

    #[test]
    fn stale_version_fails_validation() {
        let mut t = parse_tree("a{b}").unwrap();
        let ix = DocIndex::build(&t);
        t.add_child(t.root(), Marking::label("c")).unwrap();
        assert!(ix.validate(&t).is_err());
    }

    #[test]
    #[should_panic(expected = "stale document index")]
    fn stale_version_is_a_hard_error_on_probe() {
        let mut t = parse_tree("a{b}").unwrap();
        let ix = DocIndex::build(&t);
        t.add_child(t.root(), Marking::label("c")).unwrap();
        ix.assert_fresh(t.version());
    }
}
