//! The fair rewriting engine (Definitions 2.4–2.5, Theorem 2.1).
//!
//! The engine runs *rounds*: each round enumerates every live function
//! node of the system (in a strategy-chosen order) and invokes it once.
//! Visiting every node every round makes any run **fair** — every call
//! that may bring new data is eventually invoked — so by Theorem 2.1 all
//! runs of a terminating system converge to the same final system (up to
//! equivalence), and all budget-bounded prefixes of a non-terminating
//! system are prefixes of the same infinite limit.
//!
//! Termination is detected at run time as a fixpoint: a complete round
//! in which no invocation changed any document means no function node
//! can bring new data.
//!
//! [`run_restricted`] implements the paper's `[I↓N]` (§4): a fair
//! rewriting that never invokes the calls in a given exclusion set.

use crate::error::Result;
use crate::invoke::invoke_node;
use crate::sym::{FxHashMap, Sym};
use crate::system::System;
use crate::tree::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Order in which a round visits the pending function nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Document insertion order, preorder within each document.
    RoundRobin,
    /// The reverse of [`Strategy::RoundRobin`].
    Reverse,
    /// A per-round uniformly random order (seeded; used by the confluence
    /// experiments to sample many fair schedules).
    Random(u64),
}

/// Engine budgets and strategy.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Maximum number of invocations (productive or not).
    pub max_invocations: usize,
    /// Abort when the system's total live node count exceeds this.
    pub max_nodes: usize,
    /// Visit order.
    pub strategy: Strategy,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_invocations: 100_000,
            max_nodes: 1_000_000,
            strategy: Strategy::RoundRobin,
        }
    }
}

impl EngineConfig {
    /// A config with the given invocation budget, default elsewhere.
    pub fn with_budget(max_invocations: usize) -> EngineConfig {
        EngineConfig {
            max_invocations,
            ..EngineConfig::default()
        }
    }

    /// A config with the given strategy, default elsewhere.
    pub fn with_strategy(strategy: Strategy) -> EngineConfig {
        EngineConfig {
            strategy,
            ..EngineConfig::default()
        }
    }
}

/// Why the engine stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Fixpoint: the system terminated (Definition 2.4). The final system
    /// is `[I]`.
    Terminated,
    /// The invocation budget ran out first; the system state is a fair
    /// finite prefix of the (possibly infinite) rewriting.
    InvocationBudget,
    /// The node budget ran out first.
    NodeBudget,
}

/// Statistics of one run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Complete rounds executed.
    pub rounds: usize,
    /// Total invocations (including no-ops).
    pub invocations: usize,
    /// Invocations that strictly grew a document.
    pub productive: usize,
    /// Invocations per function name.
    pub per_function: FxHashMap<Sym, usize>,
    /// Live nodes at the end of the run.
    pub final_nodes: usize,
}

/// Run the system to fixpoint or budget, visiting every function node.
pub fn run(sys: &mut System, cfg: &EngineConfig) -> Result<(RunStatus, RunStats)> {
    run_restricted(sys, cfg, |_, _| true)
}

/// Run a fair rewriting that never invokes calls for which `allow`
/// returns `false` — the paper's `[I↓N]` with
/// `N = {v : !allow(doc, v)}`. Fair for all other nodes.
pub fn run_restricted(
    sys: &mut System,
    cfg: &EngineConfig,
    allow: impl Fn(Sym, NodeId) -> bool,
) -> Result<(RunStatus, RunStats)> {
    let mut stats = RunStats::default();
    let mut rng = match cfg.strategy {
        Strategy::Random(seed) => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };
    loop {
        let mut pending = sys.function_nodes();
        match cfg.strategy {
            Strategy::RoundRobin => {}
            Strategy::Reverse => pending.reverse(),
            Strategy::Random(_) => {
                pending.shuffle(rng.as_mut().expect("random strategy has an rng"))
            }
        }
        pending.retain(|&(d, n)| allow(d, n));
        if pending.is_empty() {
            stats.final_nodes = sys.node_count();
            return Ok((RunStatus::Terminated, stats));
        }
        let mut any_change = false;
        for (d, n) in pending {
            // Reduction during an earlier invocation of this round may
            // have merged this node away; its information survives in the
            // equivalent sibling that was kept.
            if !sys.doc(d).map(|t| t.is_alive(n)).unwrap_or(false) {
                continue;
            }
            if stats.invocations >= cfg.max_invocations {
                stats.final_nodes = sys.node_count();
                return Ok((RunStatus::InvocationBudget, stats));
            }
            let fname = match sys.doc(d).map(|t| t.marking(n)) {
                Some(crate::tree::Marking::Func(f)) => f,
                _ => continue,
            };
            let outcome = invoke_node(sys, d, n)?;
            stats.invocations += 1;
            *stats.per_function.entry(fname).or_insert(0) += 1;
            if outcome.changed {
                stats.productive += 1;
                any_change = true;
            }
            if sys.node_count() > cfg.max_nodes {
                stats.final_nodes = sys.node_count();
                return Ok((RunStatus::NodeBudget, stats));
            }
        }
        stats.rounds += 1;
        if !any_change {
            stats.final_nodes = sys.node_count();
            return Ok((RunStatus::Terminated, stats));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;
    use crate::subsume::equivalent;
    use crate::sym::Sym;

    fn tc_system() -> System {
        // Example 3.2: transitive closure.
        let mut sys = System::new();
        sys.add_document_text(
            "d0",
            r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, t{from{"3"},to{"4"}}}"#,
        )
        .unwrap();
        sys.add_document_text("d1", "r{@g,@f}").unwrap();
        sys.add_service_text("g", "t{from{$x},to{$y}} :- d0/r{t{from{$x},to{$y}}}")
            .unwrap();
        sys.add_service_text(
            "f",
            "t{from{$x},to{$y}} :- d1/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
        )
        .unwrap();
        sys
    }

    fn tc_pairs(sys: &System) -> Vec<(String, String)> {
        let d1 = sys.doc(Sym::intern("d1")).unwrap();
        let mut out = Vec::new();
        for n in d1.children(d1.root()) {
            if d1.marking(*n) == crate::tree::Marking::label("t") {
                let mut from = None;
                let mut to = None;
                for c in d1.children(*n) {
                    let v = d1.children(*c).first().map(|&v| d1.marking(v).sym());
                    match d1.marking(*c).sym().as_str() {
                        "from" => from = v,
                        "to" => to = v,
                        _ => {}
                    }
                }
                out.push((
                    from.unwrap().as_str().to_string(),
                    to.unwrap().as_str().to_string(),
                ));
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn example_3_2_computes_transitive_closure() {
        let mut sys = tc_system();
        let (status, stats) = run(&mut sys, &EngineConfig::default()).unwrap();
        assert_eq!(status, RunStatus::Terminated);
        assert!(stats.productive > 0);
        let pairs = tc_pairs(&sys);
        let expect: Vec<(String, String)> = [
            ("1", "2"),
            ("1", "3"),
            ("1", "4"),
            ("2", "3"),
            ("2", "4"),
            ("3", "4"),
        ]
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
        assert_eq!(pairs, expect);
    }

    #[test]
    fn confluence_across_strategies() {
        // Theorem 2.1: all fair rewritings terminate at the same system.
        let mut reference = tc_system();
        run(&mut reference, &EngineConfig::default()).unwrap();
        for strategy in [
            Strategy::Reverse,
            Strategy::Random(1),
            Strategy::Random(42),
            Strategy::Random(7_777),
        ] {
            let mut sys = tc_system();
            let (status, _) = run(&mut sys, &EngineConfig::with_strategy(strategy)).unwrap();
            assert_eq!(status, RunStatus::Terminated);
            assert_eq!(sys.canonical_key(), reference.canonical_key());
        }
    }

    #[test]
    fn example_2_1_runs_forever() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "a{@f} :-").unwrap();
        let (status, stats) = run(&mut sys, &EngineConfig::with_budget(50)).unwrap();
        assert_eq!(status, RunStatus::InvocationBudget);
        // Only the freshest f occurrence is productive each round (older
        // ones return already-subsumed data), so productive ≈ √(2·budget)
        // and the document's depth grows without bound.
        assert!(stats.productive >= 8, "productive = {}", stats.productive);
        let d = sys.doc(Sym::intern("d")).unwrap();
        assert!(d.depth(d.root()) >= 8);
    }

    #[test]
    fn example_3_3_grows_unboundedly() {
        // d'/a{a{b},g} with g : a{a{X}} :- context/a{a{X}}.
        let mut sys = System::new();
        sys.add_document_text("d", "a{a{b},@g}").unwrap();
        sys.add_service_text("g", "a{a{#X}} :- context/a{a{#X}}")
            .unwrap();
        let (status, _) = run(&mut sys, &EngineConfig::with_budget(10)).unwrap();
        assert_eq!(status, RunStatus::InvocationBudget);
        let d = sys.doc(Sym::intern("d")).unwrap();
        // After k productive calls the document contains a^{k+1}{b}.
        assert!(d.depth(d.root()) >= 5);
        // The first few steps match the paper's displayed rewriting.
        let mut sys2 = System::new();
        sys2.add_document_text("d", "a{a{b},@g}").unwrap();
        sys2.add_service_text("g", "a{a{#X}} :- context/a{a{#X}}")
            .unwrap();
        let (d2, n) = sys2.function_nodes()[0];
        crate::invoke::invoke_node(&mut sys2, d2, n).unwrap();
        let expected = parse_tree("a{a{b}, a{a{b}}, @g}").unwrap();
        assert!(equivalent(sys2.doc(d2).unwrap(), &expected));
        crate::invoke::invoke_node(&mut sys2, d2, n).unwrap();
        let expected2 = parse_tree("a{a{b}, a{a{b}}, a{a{a{b}}}, @g}").unwrap();
        assert!(equivalent(sys2.doc(d2).unwrap(), &expected2));
    }

    #[test]
    fn node_budget_respected() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "a{@f} :-").unwrap();
        let cfg = EngineConfig {
            max_nodes: 30,
            ..EngineConfig::default()
        };
        let (status, stats) = run(&mut sys, &cfg).unwrap();
        assert_eq!(status, RunStatus::NodeBudget);
        assert!(stats.final_nodes > 30);
        assert!(stats.final_nodes < 100);
    }

    #[test]
    fn restricted_run_excludes_calls() {
        // Excluding the only function node terminates immediately.
        let mut sys = tc_system();
        let excluded: Vec<(Sym, NodeId)> = sys.function_nodes();
        let (status, stats) = run_restricted(&mut sys, &EngineConfig::default(), |d, n| {
            !excluded.contains(&(d, n))
        })
        .unwrap();
        assert_eq!(status, RunStatus::Terminated);
        assert_eq!(stats.invocations, 0);
        // d1 is unchanged: no data was derived.
        let d1 = sys.doc(Sym::intern("d1")).unwrap();
        assert_eq!(d1.node_count(), 3);
    }

    #[test]
    fn stats_track_per_function_counts() {
        let mut sys = tc_system();
        let (_, stats) = run(&mut sys, &EngineConfig::default()).unwrap();
        assert!(stats.per_function[&Sym::intern("g")] >= 1);
        assert!(stats.per_function[&Sym::intern("f")] >= 1);
        assert_eq!(
            stats.invocations,
            stats.per_function.values().sum::<usize>()
        );
    }

    #[test]
    fn acyclic_system_single_pass() {
        // A one-shot service over a static doc terminates in <= 2 rounds.
        let mut sys = System::new();
        sys.add_document_text("src", r#"r{v{"1"},v{"2"}}"#).unwrap();
        sys.add_document_text("dst", "out{@copy}").unwrap();
        sys.add_service_text("copy", "v{$x} :- src/r{v{$x}}").unwrap();
        let (status, stats) = run(&mut sys, &EngineConfig::default()).unwrap();
        assert_eq!(status, RunStatus::Terminated);
        assert!(stats.rounds <= 2);
        let dst = sys.doc(Sym::intern("dst")).unwrap();
        assert!(equivalent(
            dst,
            &parse_tree(r#"out{@copy, v{"1"}, v{"2"}}"#).unwrap()
        ));
    }
}
