//! The fair rewriting engine (Definitions 2.4–2.5, Theorem 2.1).
//!
//! The engine runs *rounds*: each round enumerates every live function
//! node of the system (in a strategy-chosen order) and invokes it once.
//! Visiting every node every round makes any run **fair** — every call
//! that may bring new data is eventually invoked — so by Theorem 2.1 all
//! runs of a terminating system converge to the same final system (up to
//! equivalence), and all budget-bounded prefixes of a non-terminating
//! system are prefixes of the same infinite limit.
//!
//! Termination is detected at run time as a fixpoint: a complete round
//! in which no invocation changed any document means no function node
//! can bring new data.
//!
//! [`run_restricted`] implements the paper's `[I↓N]` (§4): a fair
//! rewriting that never invokes the calls in a given exclusion set.

use crate::compile::ProgramCache;
use crate::depgraph::{read_set, ReadSet};
use crate::error::Result;
use crate::eval::MatchCache;
use crate::invoke::{apply_plan, evaluate_node, invoke_node_with_provenance, GraftPlan};
use crate::matcher::MatchStrategy;
use crate::provenance::{Provenance, SkipRecord};
use crate::sym::{FxHashMap, Sym};
use crate::system::{System, SystemSnapshot};
use crate::trace::{EventKind, Journal, Tracer};
use crate::tree::NodeId;
use std::sync::OnceLock;
use std::time::Instant;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Order in which a round visits the pending function nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Document insertion order, preorder within each document.
    RoundRobin,
    /// The reverse of [`Strategy::RoundRobin`].
    Reverse,
    /// A per-round uniformly random order (seeded; used by the confluence
    /// experiments to sample many fair schedules).
    Random(u64),
}

/// How the engine decides *which* pending calls to actually evaluate.
/// Orthogonal to [`Strategy`] (which only orders the visits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// Invoke every live call every round (the paper's fair rewriting,
    /// verbatim).
    Naive,
    /// Semi-naive: skip any call whose entire *read set* — the documents
    /// its service's body atoms name, plus its own document when the
    /// query mentions `input`/`context` — is unchanged since the call's
    /// previous invocation. Sound because services are deterministic
    /// functions of their read set and systems are monotone: unchanged
    /// inputs reproduce the previous (already grafted, hence subsumed)
    /// output. A skipped call re-fires as soon as any read document's
    /// version changes, so runs stay fair and Theorem 2.1's confluence
    /// is preserved. Also evaluates positive services through the
    /// per-atom [`MatchCache`].
    Delta,
}

/// How each round's pending calls are *evaluated*. Orthogonal to both
/// [`EngineMode`] and [`MatchStrategy`].
///
/// Evaluation (pattern matching + query answering) is read-only; only
/// grafting mutates documents. [`Parallelism::Workers`] exploits that
/// split: workers evaluate against the immutable round-start snapshot
/// and the calling thread commits every resulting graft sequentially in
/// call order. Theorem 2.1 (confluence of fair rewritings) guarantees
/// the same limit as [`Parallelism::Sequential`]; the fixed commit
/// order additionally makes parallel runs bit-for-bit deterministic for
/// every worker count. See `docs/parallelism.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// Evaluate calls one at a time on the calling thread.
    Sequential,
    /// Evaluate each round's calls on `n` worker threads (clamped to
    /// ≥ 1); grafts still commit sequentially on the calling thread.
    Workers(usize),
}

impl Default for Parallelism {
    /// [`Parallelism::Sequential`], unless the `AXML_WORKERS`
    /// environment variable forces `Workers(n)` process-wide — the hook
    /// the forced-parallel CI job uses. Read once and cached.
    fn default() -> Parallelism {
        static FORCED: OnceLock<Option<usize>> = OnceLock::new();
        match FORCED.get_or_init(|| {
            std::env::var("AXML_WORKERS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
        }) {
            Some(n) => Parallelism::Workers(*n),
            None => Parallelism::Sequential,
        }
    }
}

impl Parallelism {
    /// Worker-thread count; 0 means evaluate on the calling thread.
    fn worker_count(self) -> usize {
        match self {
            Parallelism::Sequential => 0,
            Parallelism::Workers(n) => n.max(1),
        }
    }
}

/// Engine budgets, strategy, and evaluation mode.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Maximum number of invocations (productive or not).
    pub max_invocations: usize,
    /// Abort when the system's total live node count exceeds this.
    pub max_nodes: usize,
    /// Visit order.
    pub strategy: Strategy,
    /// Evaluation mode (naive or delta-driven).
    pub mode: EngineMode,
    /// How positive services' bodies are matched
    /// ([`MatchStrategy::Indexed`] by default; [`MatchStrategy::Scan`]
    /// is the baseline of the X16 experiment). Observationally
    /// equivalent either way.
    pub match_strategy: MatchStrategy,
    /// Whether rounds evaluate their pending calls on worker threads
    /// ([`Parallelism::Sequential`] by default; setting `AXML_WORKERS=n`
    /// in the environment flips the default to
    /// [`Parallelism::Workers`]`(n)`). Observationally equivalent either
    /// way.
    pub parallelism: Parallelism,
    /// Whether positive services evaluate through compiled, cached match
    /// programs ([`crate::compile`]) instead of the recursive pattern
    /// interpreter. On by default; setting `AXML_FORCE_INTERPRET=1` in
    /// the environment flips the default off — the hook the
    /// forced-interpreter CI job uses. Observationally equivalent either
    /// way (bit-for-bit identical bindings, fixpoints, and event
    /// streams apart from the `compile:`-category events themselves).
    pub compile: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_invocations: 100_000,
            max_nodes: 1_000_000,
            strategy: Strategy::RoundRobin,
            mode: EngineMode::Naive,
            match_strategy: MatchStrategy::default(),
            parallelism: Parallelism::default(),
            compile: !crate::compile::force_interpret(),
        }
    }
}

impl EngineConfig {
    /// A config with the given invocation budget, default elsewhere.
    pub fn with_budget(max_invocations: usize) -> EngineConfig {
        EngineConfig {
            max_invocations,
            ..EngineConfig::default()
        }
    }

    /// A config with the given strategy, default elsewhere.
    pub fn with_strategy(strategy: Strategy) -> EngineConfig {
        EngineConfig {
            strategy,
            ..EngineConfig::default()
        }
    }

    /// A config with the given mode, default elsewhere.
    pub fn with_mode(mode: EngineMode) -> EngineConfig {
        EngineConfig {
            mode,
            ..EngineConfig::default()
        }
    }

    /// A config with the given match strategy, default elsewhere.
    pub fn with_match_strategy(match_strategy: MatchStrategy) -> EngineConfig {
        EngineConfig {
            match_strategy,
            ..EngineConfig::default()
        }
    }

    /// A config with the given parallelism, default elsewhere.
    pub fn with_parallelism(parallelism: Parallelism) -> EngineConfig {
        EngineConfig {
            parallelism,
            ..EngineConfig::default()
        }
    }

    /// A config with compilation forced on or off, default elsewhere.
    /// Unlike the `AXML_FORCE_INTERPRET` environment hook (which only
    /// moves the *default*), an explicit setting always wins — the
    /// differential tests toggle both paths programmatically with it.
    pub fn with_compile(compile: bool) -> EngineConfig {
        EngineConfig {
            compile,
            ..EngineConfig::default()
        }
    }
}

/// Why the engine stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Fixpoint: the system terminated (Definition 2.4). The final system
    /// is `[I]`.
    Terminated,
    /// The invocation budget ran out first; the system state is a fair
    /// finite prefix of the (possibly infinite) rewriting.
    InvocationBudget,
    /// The node budget ran out first.
    NodeBudget,
}

/// Statistics of one run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Complete rounds executed.
    pub rounds: usize,
    /// Total invocations actually evaluated (including no-ops). In
    /// [`EngineMode::Delta`] this is the number of snapshot/service
    /// evaluations performed; skipped visits are counted separately.
    pub invocations: usize,
    /// Invocations that strictly grew a document.
    pub productive: usize,
    /// Pending calls *not* evaluated because their read set was
    /// unchanged since their previous invocation (always 0 in
    /// [`EngineMode::Naive`]).
    pub skipped: usize,
    /// Per-atom match-cache hits ([`EngineMode::Delta`] only).
    pub cache_hits: usize,
    /// Per-atom match-cache misses ([`EngineMode::Delta`] only).
    pub cache_misses: usize,
    /// Match programs compiled ([`EngineConfig::compile`] only) — one
    /// per `(service, strategy)` pair plus one per index-generation
    /// invalidation.
    pub programs_compiled: usize,
    /// Program-cache hits: invocations that reused a compiled program.
    pub program_cache_hits: usize,
    /// Program-cache misses: invocations that had to (re)compile.
    pub program_cache_misses: usize,
    /// Invocations per function name.
    pub per_function: FxHashMap<Sym, usize>,
    /// Live nodes at the end of the run.
    pub final_nodes: usize,
}

/// Run the system to fixpoint or budget, visiting every function node.
pub fn run(sys: &mut System, cfg: &EngineConfig) -> Result<(RunStatus, RunStats)> {
    run_restricted(sys, cfg, |_, _| true)
}

/// [`run`], emitting the structured event stream of the run into
/// `tracer` (see [`crate::trace`]). With `Tracer::disabled()` this is
/// exactly [`run`]: every event site is one untaken branch.
pub fn run_traced(
    sys: &mut System,
    cfg: &EngineConfig,
    tracer: Tracer<'_>,
) -> Result<(RunStatus, RunStats)> {
    run_restricted_traced(sys, cfg, |_, _| true, tracer)
}

/// Run a fair rewriting that never invokes calls for which `allow`
/// returns `false` — the paper's `[I↓N]` with
/// `N = {v : !allow(doc, v)}`. Fair for all other nodes.
pub fn run_restricted(
    sys: &mut System,
    cfg: &EngineConfig,
    allow: impl Fn(Sym, NodeId) -> bool,
) -> Result<(RunStatus, RunStats)> {
    run_restricted_traced(sys, cfg, allow, Tracer::disabled())
}

/// [`run_traced`] additionally recording per-node lineage into `prov`
/// (see [`crate::provenance`]): seed nodes are stamped up front, every
/// grafting invocation logs an `InvocationRecord` and stamps its new
/// nodes, and every delta-mode skip logs its read-set evidence for
/// `explain_skip`. With `Provenance::disabled()` this is exactly
/// [`run_traced`].
pub fn run_with_provenance(
    sys: &mut System,
    cfg: &EngineConfig,
    tracer: Tracer<'_>,
    prov: Provenance<'_>,
) -> Result<(RunStatus, RunStats)> {
    run_restricted_with_provenance(sys, cfg, |_, _| true, tracer, prov)
}

/// [`run_restricted`] with tracing (see [`crate::trace`]).
pub fn run_restricted_traced(
    sys: &mut System,
    cfg: &EngineConfig,
    allow: impl Fn(Sym, NodeId) -> bool,
    tracer: Tracer<'_>,
) -> Result<(RunStatus, RunStats)> {
    run_restricted_with_provenance(sys, cfg, allow, tracer, Provenance::disabled())
}

/// The semi-naive skip rule for one pending call, shared by the
/// sequential and parallel round loops: returns `true` — emitting the
/// `CallSkipped` event and the provenance skip evidence — iff the call
/// was invoked before and no document of its read set has changed
/// since. Never invoked before ⇒ must run once.
#[allow(clippy::too_many_arguments)]
fn delta_skip(
    sys: &System,
    read_sets: &FxHashMap<Sym, ReadSet>,
    doc_changed_at: &FxHashMap<Sym, u64>,
    invoked_at: &FxHashMap<(Sym, NodeId), u64>,
    d: Sym,
    n: NodeId,
    fname: Sym,
    round: u64,
    tracer: Tracer<'_>,
    prov: Provenance<'_>,
) -> bool {
    let Some(&at) = invoked_at.get(&(d, n)) else {
        return false;
    };
    let changed_at = |e: &Sym| doc_changed_at.get(e).copied().unwrap_or(0);
    let unchanged = match read_sets.get(&fname) {
        Some(ReadSet::Docs { docs, own_doc }) => {
            docs.iter().all(|e| changed_at(e) <= at)
                && (!own_doc || changed_at(&d) <= at)
        }
        // Black box / unknown service: conservative.
        _ => sys.doc_names().iter().all(|e| changed_at(e) <= at),
    };
    if !unchanged {
        return false;
    }
    tracer.emit(|| EventKind::CallSkipped {
        doc: d,
        node: n,
        service: fname,
    });
    prov.with(|st| {
        // The evidence that justifies the skip: each read document's
        // last-change stamp is ≤ the call's last-invocation stamp.
        let evidence: Vec<(Sym, u64)> = match read_sets.get(&fname) {
            Some(ReadSet::Docs { docs, own_doc }) => docs
                .iter()
                .chain(own_doc.then_some(&d))
                .map(|e| (*e, changed_at(e)))
                .collect(),
            _ => sys
                .doc_names()
                .iter()
                .map(|e| (*e, changed_at(e)))
                .collect(),
        };
        st.record_skip(SkipRecord {
            doc: d,
            node: n,
            service: fname,
            round,
            invoked_at: at,
            evidence,
        });
    });
    true
}

/// [`run_restricted_traced`] with provenance recording (see
/// [`run_with_provenance`]).
pub fn run_restricted_with_provenance(
    sys: &mut System,
    cfg: &EngineConfig,
    allow: impl Fn(Sym, NodeId) -> bool,
    tracer: Tracer<'_>,
    prov: Provenance<'_>,
) -> Result<(RunStatus, RunStats)> {
    let mut runner = RoundRunner::new(cfg);
    loop {
        if let Some(status) =
            runner.step_restricted_with_provenance(sys, &allow, tracer, prov)?
        {
            return Ok((status, runner.stats(sys)));
        }
    }
}

/// A resumable fair-rewriting driver: the engine's run loop with its
/// per-run state (delta bookkeeping, match/program caches, strategy
/// RNG, counters) hoisted into a value, exposing **one round per
/// [`RoundRunner::step`] call**.
///
/// [`run_restricted_with_provenance`] — and therefore every `run_*`
/// entry point — is a thin loop over `step`, so a stepped run is
/// bit-for-bit identical (documents, stats, trace journal, provenance)
/// to the equivalent one-shot run. The point of stepping is what can
/// happen *between* rounds: the `axml-server` crate drains
/// [`crate::eval::QueryCursor`]s there to stream subscription deltas
/// while the fixpoint is still growing, and interleaves batched
/// snapshot queries against the round-consistent intermediate system.
///
/// After `step` returns `Some(status)` the run is over; further calls
/// return the same status without touching the system. Final statistics
/// (cache counters, node counts) are assembled by [`RoundRunner::stats`].
///
/// ```
/// use axml_core::engine::{run, EngineConfig, RoundRunner};
/// use axml_core::system::System;
/// use axml_core::trace::Tracer;
///
/// let build = || -> System {
///     let mut sys = System::new();
///     sys.add_document_text(
///         "edges",
///         r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, @tc}"#,
///     )
///     .unwrap();
///     sys.add_service_text(
///         "tc",
///         "t{from{$x},to{$y}} :- edges/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
///     )
///     .unwrap();
///     sys
/// };
///
/// // Stepped run…
/// let cfg = EngineConfig::default();
/// let mut sys = build();
/// let mut runner = RoundRunner::new(&cfg);
/// let status = loop {
///     if let Some(s) = runner.step(&mut sys, Tracer::disabled())? {
///         break s;
///     }
///     // …a server would serve queries / push deltas here…
/// };
/// let stats = runner.stats(&sys);
///
/// // …is bit-for-bit the one-shot run.
/// let mut sys2 = build();
/// let (status2, stats2) = run(&mut sys2, &cfg)?;
/// assert_eq!(status, status2);
/// assert_eq!(stats.rounds, stats2.rounds);
/// assert_eq!(sys.canonical_key(), sys2.canonical_key());
/// # Ok::<(), axml_core::AxmlError>(())
/// ```
pub struct RoundRunner {
    cfg: EngineConfig,
    stats: RunStats,
    rng: Option<StdRng>,
    /// Delta-mode read sets, derived from the system on the first step
    /// (name spaces are fixed for a run; only contents evolve).
    read_sets: Option<FxHashMap<Sym, ReadSet>>,
    stamp: u64,
    doc_changed_at: FxHashMap<Sym, u64>,
    invoked_at: FxHashMap<(Sym, NodeId), u64>,
    cache: MatchCache,
    /// Program cache: compiled match programs per service, kept for the
    /// whole run (unlike the delta-only match cache it pays off in
    /// every mode — a service's pattern never changes mid-run).
    pcache: ProgramCache,
    /// Parallel-mode state: one persistent match cache per worker (the
    /// job→worker assignment is a fixed stride, so a worker tends to
    /// see the same calls every round and its cache keeps paying off).
    /// Same per-worker ownership for the program caches.
    wcaches: Vec<MatchCache>,
    wpcaches: Vec<ProgramCache>,
    seeded: bool,
    status: Option<RunStatus>,
    /// The latest *committed* state, republished as an O(1) MVCC
    /// snapshot after every completed step (see
    /// [`RoundRunner::snapshot`]).
    latest: Option<SystemSnapshot>,
    /// Per-document delta stamps of the last completed step (see
    /// [`RoundRunner::round_deltas`]).
    last_deltas: Vec<DocDelta>,
}

/// One document's delta stamp for the last completed round: the wire
/// unit of push-mode change propagation. A consumer holding the
/// previous round's stamps can tell *which* documents moved — and by
/// how many mutations — without diffing any tree contents.
///
/// `id`/`version` are the MVCC snapshot handle ([`Tree::id`](crate::tree::Tree::id) /
/// [`Tree::version`](crate::tree::Tree::version); process-unique, not reproducible run-to-run);
/// `mutations` is the deterministic per-handle tally
/// ([`Tree::mutation_count`](crate::tree::Tree::mutation_count)) that observable surfaces report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DocDelta {
    /// The document that changed.
    pub doc: Sym,
    /// The document's arena identity ([`Tree::id`](crate::tree::Tree::id)).
    pub id: u64,
    /// The MVCC version stamp after the round ([`Tree::version`](crate::tree::Tree::version)).
    pub version: u64,
    /// The deterministic mutation tally after the round
    /// ([`Tree::mutation_count`](crate::tree::Tree::mutation_count)).
    pub mutations: u64,
}

impl RoundRunner {
    /// A fresh runner for one run of a system under `cfg`.
    pub fn new(cfg: &EngineConfig) -> RoundRunner {
        let workers = cfg.parallelism.worker_count();
        let mut wcaches: Vec<MatchCache> = Vec::new();
        wcaches.resize_with(workers, MatchCache::new);
        let mut wpcaches: Vec<ProgramCache> = Vec::new();
        wpcaches.resize_with(workers, ProgramCache::new);
        RoundRunner {
            cfg: *cfg,
            stats: RunStats::default(),
            rng: match cfg.strategy {
                Strategy::Random(seed) => Some(StdRng::seed_from_u64(seed)),
                _ => None,
            },
            read_sets: None,
            stamp: 0,
            doc_changed_at: FxHashMap::default(),
            invoked_at: FxHashMap::default(),
            cache: MatchCache::new(),
            pcache: ProgramCache::new(),
            wcaches,
            wpcaches,
            seeded: false,
            status: None,
            latest: None,
            last_deltas: Vec::new(),
        }
    }

    /// The latest committed state as an O(1) MVCC snapshot, refreshed at
    /// the end of every [`RoundRunner::step`] (including the final one).
    /// `None` until the first step completes.
    ///
    /// This is what lets readers overlap an in-flight fixpoint: a server
    /// hands the snapshot to concurrent `query`/`stats` frames and
    /// computes subscription deltas snapshot-to-snapshot while the next
    /// round is being evaluated and committed on the writer's side —
    /// the snapshot shares every untouched chunk (and `(id, version)`
    /// cache key) with the live system, so taking and reading it costs
    /// pointer bumps, not tree copies.
    pub fn snapshot(&self) -> Option<SystemSnapshot> {
        self.latest.clone()
    }

    /// The delta stamps of the last completed step: one [`DocDelta`]
    /// per document the round actually mutated, in document order.
    /// Empty before the first step *and* after any quiet round — a
    /// consumer (e.g. the server's subscription loop, or a sharded
    /// peer deciding whether to push) can skip recomputing derived
    /// state entirely when this is empty, because every observable
    /// answer is a function of the documents.
    pub fn round_deltas(&self) -> &[DocDelta] {
        &self.last_deltas
    }

    /// Why the run stopped, once it has ([`RoundRunner::step`] returned
    /// `Some`); `None` while rounds remain.
    pub fn status(&self) -> Option<RunStatus> {
        self.status
    }

    /// Complete rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.stats.rounds
    }

    /// Execute one fair round: all live calls, no restriction, no
    /// provenance. Returns `Some(status)` when the run is over (this
    /// round hit a fixpoint or a budget), `None` when more rounds
    /// remain.
    pub fn step(
        &mut self,
        sys: &mut System,
        tracer: Tracer<'_>,
    ) -> Result<Option<RunStatus>> {
        self.step_restricted_with_provenance(
            sys,
            &|_, _| true,
            tracer,
            Provenance::disabled(),
        )
    }

    /// The statistics of the run so far, with the end-of-run fields
    /// (final node count, cache and program counters summed across
    /// evaluation lanes) assembled from the current state.
    pub fn stats(&self, sys: &System) -> RunStats {
        let mut stats = self.stats.clone();
        stats.final_nodes = sys.node_count();
        stats.cache_hits =
            self.cache.hits() + self.wcaches.iter().map(MatchCache::hits).sum::<usize>();
        stats.cache_misses = self.cache.misses()
            + self.wcaches.iter().map(MatchCache::misses).sum::<usize>();
        let pcaches = std::iter::once(&self.pcache).chain(self.wpcaches.iter());
        for pc in pcaches {
            stats.programs_compiled += pc.compiles() as usize;
            stats.program_cache_hits += pc.hits() as usize;
            stats.program_cache_misses += pc.misses() as usize;
        }
        stats
    }

    /// [`RoundRunner::step`] restricted to `allow` and recording
    /// provenance — the full-generality round body shared by every
    /// `run_*` entry point.
    pub fn step_restricted_with_provenance(
        &mut self,
        sys: &mut System,
        allow: &impl Fn(Sym, NodeId) -> bool,
        tracer: Tracer<'_>,
        prov: Provenance<'_>,
    ) -> Result<Option<RunStatus>> {
        // Pin the pre-step state so the post-step diff is exact even on
        // the first step (O(1): Arc bumps per doc).
        let before = match &self.latest {
            Some(snap) => snap.clone(),
            None => sys.snapshot(),
        };
        let status = self.step_body(sys, allow, tracer, prov)?;
        // Per-document delta stamps: a document changed iff its
        // deterministic mutation tally moved. Tallies are strictly
        // increasing per handle, so equality means bit-identical
        // content between the two committed states.
        self.last_deltas.clear();
        for &d in sys.doc_names() {
            let Some(tree) = sys.doc(d) else { continue };
            let moved = before
                .doc(d)
                .map(|old| old.mutation_count() != tree.mutation_count())
                .unwrap_or(true);
            if moved {
                self.last_deltas.push(DocDelta {
                    doc: d,
                    id: tree.id(),
                    version: tree.version(),
                    mutations: tree.mutation_count(),
                });
            }
        }
        // Every exit from the round body — fixpoint, budget stop, or
        // more rounds to come — leaves `sys` in a committed state, so
        // republish it for concurrent readers (O(1): Arc bumps per doc).
        self.latest = Some(sys.snapshot());
        Ok(status)
    }

    fn step_body(
        &mut self,
        sys: &mut System,
        allow: &impl Fn(Sym, NodeId) -> bool,
        tracer: Tracer<'_>,
        prov: Provenance<'_>,
    ) -> Result<Option<RunStatus>> {
        if self.status.is_some() {
            return Ok(self.status);
        }
        if !self.seeded {
            prov.with(|st| st.seed_system(sys));
            self.seeded = true;
        }
        let cfg = &self.cfg;
        let delta = cfg.mode == EngineMode::Delta;
        // Delta-mode bookkeeping. Read sets are derivable once per run:
        // the document and service name spaces of a system are fixed,
        // only document *contents* evolve. Logical time is a single
        // counter that ticks on every document change; a call may be
        // skipped iff no document of its read set changed after the
        // call's last invocation.
        let read_sets: &FxHashMap<Sym, ReadSet> =
            self.read_sets.get_or_insert_with(|| {
                if delta {
                    sys.service_names()
                        .iter()
                        .map(|&f| (f, read_set(sys, f)))
                        .collect()
                } else {
                    FxHashMap::default()
                }
            });
        let doc_changed_at = &mut self.doc_changed_at;
        let invoked_at = &mut self.invoked_at;
        let stats = &mut self.stats;
        let workers = cfg.parallelism.worker_count();

        let mut pending = sys.function_nodes();
        match cfg.strategy {
            Strategy::RoundRobin => {}
            Strategy::Reverse => pending.reverse(),
            Strategy::Random(_) => pending
                .shuffle(self.rng.as_mut().expect("random strategy has an rng")),
        }
        pending.retain(|&(d, n)| allow(d, n));
        if pending.is_empty() {
            self.status = Some(RunStatus::Terminated);
            return Ok(self.status);
        }
        let round = stats.rounds as u64;
        tracer.emit(|| EventKind::RoundStart { round });
        let mut any_change = false;
        if workers > 0 {
            // ---- Parallel round: snapshot-read / sequential-graft ----
            //
            // Phase 1 (select, main thread): filter the pending calls
            // against the round-start state — aliveness, marking, the
            // semi-naive skip rule — exactly as the sequential loop
            // does, but before anything is evaluated.
            let mut jobs: Vec<(Sym, NodeId, Sym)> = Vec::new();
            for (d, n) in pending {
                if !sys.doc(d).map(|t| t.is_alive(n)).unwrap_or(false) {
                    continue;
                }
                let fname = match sys.doc(d).map(|t| t.marking(n)) {
                    Some(crate::tree::Marking::Func(f)) => f,
                    _ => continue,
                };
                if delta
                    && delta_skip(
                        sys, read_sets, doc_changed_at, invoked_at, d, n,
                        fname, round, tracer, prov,
                    )
                {
                    stats.skipped += 1;
                    continue;
                }
                jobs.push((d, n, fname));
            }
            // Evaluate only what the invocation budget still allows;
            // the truncated remainder would have been cut off at the
            // same point by the sequential loop's per-call check.
            let remaining = cfg.max_invocations.saturating_sub(stats.invocations);
            let over_budget = jobs.len() > remaining;
            if over_budget {
                jobs.truncate(remaining);
            }

            if !jobs.is_empty() {
                // Phase 2 (evaluate, workers): the system is frozen —
                // workers share `&System` and evaluate read-only, each
                // with its own match cache and (when tracing) its own
                // journal. Worker w takes jobs w, w+k, w+2k, … so the
                // assignment is deterministic and cache-friendly.
                let n_workers = workers;
                let compile_on = cfg.compile;
                let trace_on = tracer.enabled();
                let epoch = tracer.epoch();
                let trace_id = tracer.trace_id();
                let prov_on = prov.enabled();
                let match_strategy = cfg.match_strategy;
                let eval_t0 = Instant::now();
                let wcaches = &mut self.wcaches;
                let wpcaches = &mut self.wpcaches;
                // Workers read the round-start state through an MVCC
                // snapshot (O(1) to take). The commit phase below runs
                // after the scope ends, on `sys` itself, so evaluation
                // semantics are identical to sharing `&*sys` — but the
                // snapshot keeps its documents' `(id, version)` keys,
                // so per-worker match/program caches stay warm, and any
                // index a worker builds is published into the cell the
                // snapshot shares with the live documents.
                let round_snap = sys.snapshot();
                let sys_ref: &System = round_snap.system();
                let jobs_ref: &[(Sym, NodeId, Sym)] = &jobs;
                type WorkerOut = (Vec<(usize, Result<GraftPlan>)>, Option<Journal>);
                let worker_outs: Vec<WorkerOut> =
                    crossbeam::thread::scope(|scope| {
                        let handles: Vec<_> = wcaches
                            .iter_mut()
                            .zip(wpcaches.iter_mut())
                            .enumerate()
                            .map(|(w, (wcache, wpcache))| {
                                scope.spawn(move || {
                                    let journal = trace_on
                                        .then(|| Journal::for_worker(w as u32, epoch));
                                    let mut out = Vec::new();
                                    let mut i = w;
                                    while i < jobs_ref.len() {
                                        let (d, n, fname) = jobs_ref[i];
                                        // Worker events inherit the round's
                                        // request-scoped trace id.
                                        let wt = match &journal {
                                            Some(j) => Tracer::new(j).with_trace(trace_id),
                                            None => Tracer::disabled(),
                                        };
                                        let t0 = trace_on.then(Instant::now);
                                        let plan = evaluate_node(
                                            sys_ref,
                                            d,
                                            n,
                                            if delta { Some(&mut *wcache) } else { None },
                                            if compile_on {
                                                Some(&mut *wpcache)
                                            } else {
                                                None
                                            },
                                            wt,
                                            prov_on,
                                            match_strategy,
                                        );
                                        wt.emit(|| EventKind::WorkerEval {
                                            worker: w as u32,
                                            doc: d,
                                            node: n,
                                            service: fname,
                                            result_trees: plan
                                                .as_ref()
                                                .map(|p| p.forest.len() as u32)
                                                .unwrap_or(0),
                                            dur_ns: t0
                                                .map(|t| t.elapsed().as_nanos() as u64)
                                                .unwrap_or(0),
                                        });
                                        out.push((i, plan));
                                        i += n_workers;
                                    }
                                    (out, journal)
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("engine worker panicked"))
                            .collect()
                    });

                // Deterministic journal merge: workers in index order,
                // each worker's events in its own emission order. The
                // main sink re-stamps `seq` on absorption, so the merged
                // journal has one total order independent of how the
                // threads actually interleaved.
                let mut plans: Vec<Option<Result<GraftPlan>>> = Vec::new();
                plans.resize_with(jobs.len(), || None);
                for (out, journal) in worker_outs {
                    if let Some(j) = journal {
                        for ev in j.snapshot() {
                            tracer.absorb(ev);
                        }
                    }
                    for (i, plan) in out {
                        plans[i] = Some(plan);
                    }
                }
                tracer.emit(|| EventKind::ParallelRound {
                    round,
                    workers: n_workers as u32,
                    evaluated: jobs.len() as u32,
                    dur_ns: eval_t0.elapsed().as_nanos() as u64,
                });

                // Phase 3 (commit, main thread): graft every plan in job
                // order — the *same* fixed order for every worker count,
                // which is what pins bit-for-bit determinism. Commit-time
                // subsumption inside `apply_plan` re-checks against the
                // current siblings, so a plan whose data an earlier
                // same-round commit already produced grafts nothing.
                let round_stamp = self.stamp;
                for (i, &(d, n, fname)) in jobs.iter().enumerate() {
                    let plan = plans[i]
                        .take()
                        .expect("every job was assigned to a worker")?;
                    // An earlier commit's reduction may have merged this
                    // node away; its information survives in the
                    // equivalent sibling that was kept.
                    if !sys.doc(d).map(|t| t.is_alive(n)).unwrap_or(false) {
                        continue;
                    }
                    tracer.emit(|| EventKind::CallSelected {
                        doc: d,
                        node: n,
                        service: fname,
                    });
                    let started = tracer.enabled().then(Instant::now);
                    let outcome = apply_plan(sys, &plan, tracer, prov, round)?
                        .expect("node alive: just checked");
                    tracer.emit(|| EventKind::Invoke {
                        doc: d,
                        node: n,
                        service: fname,
                        changed: outcome.changed,
                        grafted: outcome.grafted as u32,
                        result_trees: outcome.result_trees as u32,
                        doc_version: sys.doc(d).map(|t| t.mutation_count()).unwrap_or(0),
                        dur_ns: started
                            .map(|t| t.elapsed().as_nanos() as u64)
                            .unwrap_or(0),
                    });
                    stats.invocations += 1;
                    *stats.per_function.entry(fname).or_insert(0) += 1;
                    if delta {
                        // The evaluation read the *round-start* snapshot,
                        // so the call's invocation time is the round-start
                        // stamp: any same-round change to its read set is
                        // stamped strictly later and re-fires it next
                        // round.
                        invoked_at.insert((d, n), round_stamp);
                        if outcome.changed {
                            self.stamp += 1;
                            doc_changed_at.insert(d, self.stamp);
                        }
                    }
                    if outcome.changed {
                        stats.productive += 1;
                        any_change = true;
                    }
                    if sys.node_count() > cfg.max_nodes {
                        self.status = Some(RunStatus::NodeBudget);
                        return Ok(self.status);
                    }
                }
            }
            if over_budget {
                self.status = Some(RunStatus::InvocationBudget);
                return Ok(self.status);
            }
        } else {
            for (d, n) in pending {
                // Reduction during an earlier invocation of this round
                // may have merged this node away; its information
                // survives in the equivalent sibling that was kept.
                if !sys.doc(d).map(|t| t.is_alive(n)).unwrap_or(false) {
                    continue;
                }
                let fname = match sys.doc(d).map(|t| t.marking(n)) {
                    Some(crate::tree::Marking::Func(f)) => f,
                    _ => continue,
                };
                if delta
                    && delta_skip(
                        sys, read_sets, doc_changed_at, invoked_at, d, n,
                        fname, round, tracer, prov,
                    )
                {
                    stats.skipped += 1;
                    continue;
                }
                if stats.invocations >= cfg.max_invocations {
                    self.status = Some(RunStatus::InvocationBudget);
                    return Ok(self.status);
                }
                tracer.emit(|| EventKind::CallSelected {
                    doc: d,
                    node: n,
                    service: fname,
                });
                let started = tracer.enabled().then(Instant::now);
                let outcome = invoke_node_with_provenance(
                    sys,
                    d,
                    n,
                    delta.then_some(&mut self.cache),
                    cfg.compile.then_some(&mut self.pcache),
                    tracer,
                    prov,
                    round,
                    cfg.match_strategy,
                )?;
                tracer.emit(|| EventKind::Invoke {
                    doc: d,
                    node: n,
                    service: fname,
                    changed: outcome.changed,
                    grafted: outcome.grafted as u32,
                    result_trees: outcome.result_trees as u32,
                    doc_version: sys.doc(d).map(|t| t.mutation_count()).unwrap_or(0),
                    dur_ns: started
                        .map(|t| t.elapsed().as_nanos() as u64)
                        .unwrap_or(0),
                });
                stats.invocations += 1;
                *stats.per_function.entry(fname).or_insert(0) += 1;
                if delta {
                    // The invocation read state at time `stamp`; its own
                    // change (if any) is stamped strictly later so calls
                    // reading their host document re-fire.
                    invoked_at.insert((d, n), self.stamp);
                    if outcome.changed {
                        self.stamp += 1;
                        doc_changed_at.insert(d, self.stamp);
                    }
                }
                if outcome.changed {
                    stats.productive += 1;
                    any_change = true;
                }
                if sys.node_count() > cfg.max_nodes {
                    self.status = Some(RunStatus::NodeBudget);
                    return Ok(self.status);
                }
            }
        }
        stats.rounds += 1;
        tracer.emit(|| EventKind::RoundEnd {
            round,
            changed: any_change,
        });
        if !any_change {
            self.status = Some(RunStatus::Terminated);
        }
        Ok(self.status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;
    use crate::subsume::equivalent;
    use crate::sym::Sym;

    fn tc_system() -> System {
        // Example 3.2: transitive closure.
        let mut sys = System::new();
        sys.add_document_text(
            "d0",
            r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, t{from{"3"},to{"4"}}}"#,
        )
        .unwrap();
        sys.add_document_text("d1", "r{@g,@f}").unwrap();
        sys.add_service_text("g", "t{from{$x},to{$y}} :- d0/r{t{from{$x},to{$y}}}")
            .unwrap();
        sys.add_service_text(
            "f",
            "t{from{$x},to{$y}} :- d1/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
        )
        .unwrap();
        sys
    }

    fn tc_pairs(sys: &System) -> Vec<(String, String)> {
        let d1 = sys.doc(Sym::intern("d1")).unwrap();
        let mut out = Vec::new();
        for n in d1.children(d1.root()) {
            if d1.marking(*n) == crate::tree::Marking::label("t") {
                let mut from = None;
                let mut to = None;
                for c in d1.children(*n) {
                    let v = d1.children(*c).first().map(|&v| d1.marking(v).sym());
                    match d1.marking(*c).sym().as_str() {
                        "from" => from = v,
                        "to" => to = v,
                        _ => {}
                    }
                }
                out.push((
                    from.unwrap().as_str().to_string(),
                    to.unwrap().as_str().to_string(),
                ));
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn example_3_2_computes_transitive_closure() {
        let mut sys = tc_system();
        let (status, stats) = run(&mut sys, &EngineConfig::default()).unwrap();
        assert_eq!(status, RunStatus::Terminated);
        assert!(stats.productive > 0);
        let pairs = tc_pairs(&sys);
        let expect: Vec<(String, String)> = [
            ("1", "2"),
            ("1", "3"),
            ("1", "4"),
            ("2", "3"),
            ("2", "4"),
            ("3", "4"),
        ]
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
        assert_eq!(pairs, expect);
    }

    #[test]
    fn confluence_across_strategies() {
        // Theorem 2.1: all fair rewritings terminate at the same system.
        let mut reference = tc_system();
        run(&mut reference, &EngineConfig::default()).unwrap();
        for strategy in [
            Strategy::Reverse,
            Strategy::Random(1),
            Strategy::Random(42),
            Strategy::Random(7_777),
        ] {
            let mut sys = tc_system();
            let (status, _) = run(&mut sys, &EngineConfig::with_strategy(strategy)).unwrap();
            assert_eq!(status, RunStatus::Terminated);
            assert_eq!(sys.canonical_key(), reference.canonical_key());
        }
    }

    #[test]
    fn example_2_1_runs_forever() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "a{@f} :-").unwrap();
        let (status, stats) = run(&mut sys, &EngineConfig::with_budget(50)).unwrap();
        assert_eq!(status, RunStatus::InvocationBudget);
        // Only the freshest f occurrence is productive each round (older
        // ones return already-subsumed data), so productive ≈ √(2·budget)
        // and the document's depth grows without bound.
        assert!(stats.productive >= 8, "productive = {}", stats.productive);
        let d = sys.doc(Sym::intern("d")).unwrap();
        assert!(d.depth(d.root()) >= 8);
    }

    #[test]
    fn example_3_3_grows_unboundedly() {
        // d'/a{a{b},g} with g : a{a{X}} :- context/a{a{X}}.
        let mut sys = System::new();
        sys.add_document_text("d", "a{a{b},@g}").unwrap();
        sys.add_service_text("g", "a{a{#X}} :- context/a{a{#X}}")
            .unwrap();
        let (status, _) = run(&mut sys, &EngineConfig::with_budget(10)).unwrap();
        assert_eq!(status, RunStatus::InvocationBudget);
        let d = sys.doc(Sym::intern("d")).unwrap();
        // After k productive calls the document contains a^{k+1}{b}.
        assert!(d.depth(d.root()) >= 5);
        // The first few steps match the paper's displayed rewriting.
        let mut sys2 = System::new();
        sys2.add_document_text("d", "a{a{b},@g}").unwrap();
        sys2.add_service_text("g", "a{a{#X}} :- context/a{a{#X}}")
            .unwrap();
        let (d2, n) = sys2.function_nodes()[0];
        crate::invoke::invoke_node(&mut sys2, d2, n).unwrap();
        let expected = parse_tree("a{a{b}, a{a{b}}, @g}").unwrap();
        assert!(equivalent(sys2.doc(d2).unwrap(), &expected));
        crate::invoke::invoke_node(&mut sys2, d2, n).unwrap();
        let expected2 = parse_tree("a{a{b}, a{a{b}}, a{a{a{b}}}, @g}").unwrap();
        assert!(equivalent(sys2.doc(d2).unwrap(), &expected2));
    }

    #[test]
    fn node_budget_respected() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "a{@f} :-").unwrap();
        let cfg = EngineConfig {
            max_nodes: 30,
            ..EngineConfig::default()
        };
        let (status, stats) = run(&mut sys, &cfg).unwrap();
        assert_eq!(status, RunStatus::NodeBudget);
        assert!(stats.final_nodes > 30);
        assert!(stats.final_nodes < 100);
    }

    #[test]
    fn restricted_run_excludes_calls() {
        // Excluding the only function node terminates immediately.
        let mut sys = tc_system();
        let excluded: Vec<(Sym, NodeId)> = sys.function_nodes();
        let (status, stats) = run_restricted(&mut sys, &EngineConfig::default(), |d, n| {
            !excluded.contains(&(d, n))
        })
        .unwrap();
        assert_eq!(status, RunStatus::Terminated);
        assert_eq!(stats.invocations, 0);
        // d1 is unchanged: no data was derived.
        let d1 = sys.doc(Sym::intern("d1")).unwrap();
        assert_eq!(d1.node_count(), 3);
    }

    #[test]
    fn stats_track_per_function_counts() {
        let mut sys = tc_system();
        let (_, stats) = run(&mut sys, &EngineConfig::default()).unwrap();
        assert!(stats.per_function[&Sym::intern("g")] >= 1);
        assert!(stats.per_function[&Sym::intern("f")] >= 1);
        assert_eq!(
            stats.invocations,
            stats.per_function.values().sum::<usize>()
        );
    }

    #[test]
    fn delta_mode_matches_naive_and_skips() {
        let mut naive = tc_system();
        let (ns, nstats) = run(&mut naive, &EngineConfig::default()).unwrap();
        assert_eq!(ns, RunStatus::Terminated);

        let mut delta = tc_system();
        let (ds, dstats) =
            run(&mut delta, &EngineConfig::with_mode(EngineMode::Delta)).unwrap();
        assert_eq!(ds, RunStatus::Terminated);
        assert_eq!(naive.canonical_key(), delta.canonical_key());
        // g reads only d0 (static): after its first evaluation every
        // later visit is skipped, so delta evaluates strictly less.
        assert!(dstats.skipped > 0, "stats: {dstats:?}");
        assert!(dstats.invocations < nstats.invocations);
        assert_eq!(nstats.skipped, 0);
    }

    #[test]
    fn delta_mode_confluent_across_strategies() {
        let mut reference = tc_system();
        run(&mut reference, &EngineConfig::default()).unwrap();
        for strategy in [Strategy::RoundRobin, Strategy::Reverse, Strategy::Random(9)] {
            let mut sys = tc_system();
            let cfg = EngineConfig {
                mode: EngineMode::Delta,
                ..EngineConfig::with_strategy(strategy)
            };
            let (status, _) = run(&mut sys, &cfg).unwrap();
            assert_eq!(status, RunStatus::Terminated);
            assert_eq!(sys.canonical_key(), reference.canonical_key());
        }
    }

    #[test]
    fn delta_mode_reports_cache_traffic() {
        // A cache hit needs a service that is *re*-evaluated (some read
        // doc changed) while another of its atoms' docs is unchanged:
        // `join` reads the static d0 and the growing d1.
        fn mixed_reads() -> System {
            let mut sys = System::new();
            sys.add_document_text("d0", r#"r{v{"1"},v{"2"}}"#).unwrap();
            sys.add_document_text("d1", "out{@join,@pump}").unwrap();
            sys.add_service_text(
                "join",
                "pair{$x,$y} :- d0/r{v{$x}}, d1/out{w{$y}}",
            )
            .unwrap();
            sys.add_service_text("pump", r#"w{"a"} :-"#).unwrap();
            sys
        }
        let mut sys = mixed_reads();
        let (status, stats) =
            run(&mut sys, &EngineConfig::with_mode(EngineMode::Delta)).unwrap();
        assert_eq!(status, RunStatus::Terminated);
        assert!(stats.cache_misses > 0);
        assert!(stats.cache_hits > 0, "stats: {stats:?}");
        // Same final system as the naive engine.
        let mut naive = mixed_reads();
        let (_, nstats) = run(&mut naive, &EngineConfig::default()).unwrap();
        assert_eq!(naive.canonical_key(), sys.canonical_key());
        // Naive mode leaves the cache untouched.
        assert_eq!(nstats.cache_hits + nstats.cache_misses, 0);
    }

    #[test]
    fn delta_mode_context_readers_keep_firing() {
        // Example 3.3: g reads its own document through `context`, so its
        // read set changes after every productive call — delta must not
        // starve it.
        let mut sys = System::new();
        sys.add_document_text("d", "a{a{b},@g}").unwrap();
        sys.add_service_text("g", "a{a{#X}} :- context/a{a{#X}}")
            .unwrap();
        let cfg = EngineConfig {
            mode: EngineMode::Delta,
            ..EngineConfig::with_budget(10)
        };
        let (status, stats) = run(&mut sys, &cfg).unwrap();
        assert_eq!(status, RunStatus::InvocationBudget);
        assert!(stats.productive >= 5);
        let d = sys.doc(Sym::intern("d")).unwrap();
        assert!(d.depth(d.root()) >= 5);
    }

    #[test]
    fn delta_mode_black_boxes_are_conservative_but_terminate() {
        use crate::forest::Forest;
        use crate::service::BlackBoxService;
        let mut naive = System::new();
        naive
            .add_document_text("d", r#"a{@bb}"#)
            .unwrap();
        let result = Forest::from_trees(vec![crate::parse::parse_tree("r{x}").unwrap()]);
        naive
            .add_black_box("bb", BlackBoxService::constant("c", result.clone()))
            .unwrap();
        let mut delta = naive.clone();
        run(&mut naive, &EngineConfig::default()).unwrap();
        let (status, _) =
            run(&mut delta, &EngineConfig::with_mode(EngineMode::Delta)).unwrap();
        assert_eq!(status, RunStatus::Terminated);
        assert_eq!(naive.canonical_key(), delta.canonical_key());
    }

    #[test]
    fn traced_run_journals_the_full_taxonomy() {
        use crate::trace::{
            chrome_trace, validate_chrome_trace, Fanout, Journal, MetricsRegistry,
        };
        let journal = Journal::new();
        let metrics = MetricsRegistry::new();
        let fan = Fanout::new(vec![&journal, &metrics]);
        let mut sys = tc_system();
        let (status, stats) = run_traced(
            &mut sys,
            &EngineConfig::with_mode(EngineMode::Delta),
            Tracer::new(&fan),
        )
        .unwrap();
        assert_eq!(status, RunStatus::Terminated);

        let events = journal.snapshot();
        // One Invoke event per evaluated invocation, one CallSkipped per
        // skip: the journal and RunStats agree exactly.
        let invokes = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Invoke { .. }))
            .count();
        let skips = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CallSkipped { .. }))
            .count();
        assert_eq!(invokes, stats.invocations);
        assert_eq!(skips, stats.skipped);
        let g = metrics.globals();
        assert_eq!(g.rounds as usize, stats.rounds);
        assert_eq!(g.calls_selected as usize, stats.invocations);
        // Delta mode routed evaluation through the cache.
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CacheMiss { .. })));
        // Productive invocations grafted and reduced.
        assert!(events.iter().any(|e| matches!(e.kind, EventKind::Graft { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Reduce { .. })));
        // The journal exports to valid Chrome trace JSON.
        let json = chrome_trace(&events);
        assert_eq!(validate_chrome_trace(&json).unwrap(), events.len());
        // Traced and untraced runs compute the same fixpoint.
        let mut plain = tc_system();
        run(&mut plain, &EngineConfig::with_mode(EngineMode::Delta)).unwrap();
        assert_eq!(plain.canonical_key(), sys.canonical_key());
    }

    #[test]
    fn parallel_shared_state_is_send_and_sync() {
        // The Sync/Send audit the worker pool relies on, pinned at
        // compile time: workers share `&System` and move plans,
        // journals, and caches across threads.
        fn sync<T: Sync>() {}
        fn send<T: Send>() {}
        sync::<System>();
        send::<crate::invoke::GraftPlan>();
        send::<MatchCache>();
        send::<ProgramCache>();
        send::<crate::trace::Journal>();
    }

    #[test]
    fn parallel_workers_match_sequential_fixpoint() {
        let mut reference = tc_system();
        run(&mut reference, &EngineConfig::default()).unwrap();
        for n in [1, 2, 4, 8] {
            for mode in [EngineMode::Naive, EngineMode::Delta] {
                let mut sys = tc_system();
                let cfg = EngineConfig {
                    mode,
                    ..EngineConfig::with_parallelism(Parallelism::Workers(n))
                };
                let (status, stats) = run(&mut sys, &cfg).unwrap();
                assert_eq!(status, RunStatus::Terminated);
                assert_eq!(
                    sys.canonical_key(),
                    reference.canonical_key(),
                    "Workers({n}) × {mode:?} diverged"
                );
                assert!(stats.invocations > 0);
            }
        }
    }

    #[test]
    fn parallel_runs_are_deterministic_across_worker_counts() {
        // The sequential-graft phase commits in job order whatever the
        // worker count, so *stats* (not just fixpoints) must agree.
        let run_with = |n: usize| {
            let mut sys = tc_system();
            let cfg = EngineConfig {
                mode: EngineMode::Delta,
                ..EngineConfig::with_parallelism(Parallelism::Workers(n))
            };
            let (status, stats) = run(&mut sys, &cfg).unwrap();
            (status, stats, sys.canonical_key())
        };
        let (s1, st1, k1) = run_with(1);
        for n in [2, 3, 8] {
            let (s, st, k) = run_with(n);
            assert_eq!(s, s1);
            assert_eq!(k, k1);
            assert_eq!(st.invocations, st1.invocations);
            assert_eq!(st.productive, st1.productive);
            assert_eq!(st.skipped, st1.skipped);
            assert_eq!(st.rounds, st1.rounds);
        }
        assert_eq!(s1, RunStatus::Terminated);
    }

    #[test]
    fn parallel_respects_invocation_budget() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "a{@f} :-").unwrap();
        let cfg = EngineConfig {
            parallelism: Parallelism::Workers(4),
            ..EngineConfig::with_budget(50)
        };
        let (status, stats) = run(&mut sys, &cfg).unwrap();
        assert_eq!(status, RunStatus::InvocationBudget);
        assert!(stats.invocations <= 50);
        assert!(stats.productive >= 8, "productive = {}", stats.productive);
    }

    #[test]
    fn parallel_respects_node_budget() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "a{@f} :-").unwrap();
        let cfg = EngineConfig {
            max_nodes: 30,
            parallelism: Parallelism::Workers(4),
            ..EngineConfig::default()
        };
        let (status, stats) = run(&mut sys, &cfg).unwrap();
        assert_eq!(status, RunStatus::NodeBudget);
        assert!(stats.final_nodes > 30);
        assert!(stats.final_nodes < 100);
    }

    #[test]
    fn parallel_delta_uses_worker_caches() {
        let mut sys = System::new();
        sys.add_document_text("d0", r#"r{v{"1"},v{"2"}}"#).unwrap();
        sys.add_document_text("d1", "out{@join,@pump}").unwrap();
        sys.add_service_text("join", "pair{$x,$y} :- d0/r{v{$x}}, d1/out{w{$y}}")
            .unwrap();
        sys.add_service_text("pump", r#"w{"a"} :-"#).unwrap();
        let cfg = EngineConfig {
            mode: EngineMode::Delta,
            ..EngineConfig::with_parallelism(Parallelism::Workers(2))
        };
        let (status, stats) = run(&mut sys, &cfg).unwrap();
        assert_eq!(status, RunStatus::Terminated);
        assert!(stats.cache_misses > 0);
        assert!(stats.cache_hits > 0, "stats: {stats:?}");
    }

    #[test]
    fn parallel_traced_run_keeps_journal_invariants() {
        use crate::trace::{
            chrome_trace, validate_chrome_trace, Fanout, Journal, MetricsRegistry,
        };
        let journal = Journal::new();
        let metrics = MetricsRegistry::new();
        let fan = Fanout::new(vec![&journal, &metrics]);
        let mut sys = tc_system();
        let cfg = EngineConfig {
            mode: EngineMode::Delta,
            ..EngineConfig::with_parallelism(Parallelism::Workers(3))
        };
        let (status, stats) = run_traced(&mut sys, &cfg, Tracer::new(&fan)).unwrap();
        assert_eq!(status, RunStatus::Terminated);

        let events = journal.snapshot();
        // The Invoke/CallSkipped ↔ RunStats agreement survives the
        // evaluate/commit split.
        let invokes = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Invoke { .. }))
            .count();
        let skips = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CallSkipped { .. }))
            .count();
        assert_eq!(invokes, stats.invocations);
        assert_eq!(skips, stats.skipped);
        // Every evaluated call produced a WorkerEval in some worker lane,
        // and every round with jobs produced a ParallelRound marker.
        let wevals = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::WorkerEval { .. }))
            .count();
        assert!(wevals >= stats.invocations, "wevals = {wevals}");
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ParallelRound { .. })));
        // Worker events carry worker ids > 0; the merged journal is
        // seq-ordered (absorption re-stamps).
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::WorkerEval { .. }) && e.worker > 0));
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        let g = metrics.globals();
        assert_eq!(g.rounds as usize, stats.rounds);
        assert_eq!(g.calls_selected as usize, stats.invocations);
        assert!(g.parallel_rounds > 0);
        assert!(g.worker_evals as usize >= stats.invocations);
        // Chrome export round-trips with the worker lanes included.
        let json = chrome_trace(&events);
        assert_eq!(validate_chrome_trace(&json).unwrap(), events.len());
        // The metrics report surfaces the parallel line.
        let report = metrics.render_report("parallel-tc");
        assert!(report.contains("parallel:"), "report:\n{report}");
        // Traced parallel and untraced sequential agree on the fixpoint.
        let mut plain = tc_system();
        run(&mut plain, &EngineConfig::with_mode(EngineMode::Delta)).unwrap();
        assert_eq!(plain.canonical_key(), sys.canonical_key());
    }

    #[test]
    fn parallel_with_provenance_records_lineage() {
        use crate::provenance::ProvenanceStore;
        let store = ProvenanceStore::new();
        let mut sys = tc_system();
        let cfg = EngineConfig {
            mode: EngineMode::Delta,
            ..EngineConfig::with_parallelism(Parallelism::Workers(2))
        };
        let (status, stats) = run_with_provenance(
            &mut sys,
            &cfg,
            Tracer::disabled(),
            Provenance::new(&store),
        )
        .unwrap();
        assert_eq!(status, RunStatus::Terminated);
        assert!(stats.invocations > 0);
        // Same lineage counts as the sequential provenance run.
        let seq_store = ProvenanceStore::new();
        let mut seq = tc_system();
        run_with_provenance(
            &mut seq,
            &EngineConfig::with_mode(EngineMode::Delta),
            Tracer::disabled(),
            Provenance::new(&seq_store),
        )
        .unwrap();
        assert_eq!(sys.canonical_key(), seq.canonical_key());
        assert_eq!(store.invocations().len(), seq_store.invocations().len());
        assert_eq!(store.skips().len(), seq_store.skips().len());
    }

    #[test]
    fn acyclic_system_single_pass() {
        // A one-shot service over a static doc terminates in <= 2 rounds.
        let mut sys = System::new();
        sys.add_document_text("src", r#"r{v{"1"},v{"2"}}"#).unwrap();
        sys.add_document_text("dst", "out{@copy}").unwrap();
        sys.add_service_text("copy", "v{$x} :- src/r{v{$x}}").unwrap();
        let (status, stats) = run(&mut sys, &EngineConfig::default()).unwrap();
        assert_eq!(status, RunStatus::Terminated);
        assert!(stats.rounds <= 2);
        let dst = sys.doc(Sym::intern("dst")).unwrap();
        assert!(equivalent(
            dst,
            &parse_tree(r#"out{@copy, v{"1"}, v{"2"}}"#).unwrap()
        ));
    }
}
