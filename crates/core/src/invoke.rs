//! Single service-call invocation semantics (§2.2).
//!
//! Invoking a function node `v` marked `f` in document `d`:
//!
//! 1. `θ(input)` is a tree rooted `input` whose children are copies of
//!    `v`'s children (the call parameters);
//! 2. `θ(context)` is the subtree rooted at `v`'s **parent**;
//! 3. every stored document keeps its current value;
//! 4. the service result forest is appended as **siblings of `v`**, and
//!    the document is reduced.
//!
//! A step only counts as a rewriting step when the document strictly
//! grows (`I ≢ I'`, Definition 2.4); [`invoke_node`] reports this via
//! [`InvokeOutcome::changed`], determined *before* grafting by checking
//! whether some result tree is not already subsumed by an existing
//! sibling subtree.

use crate::compile::ProgramCache;
use crate::error::{AxmlError, Result};
use crate::eval::{snapshot_inner, Env, MatchCache};
use crate::forest::Forest;
use crate::matcher::MatchStrategy;
use crate::provenance::{query_witnesses, InvocationRecord, Origin, Provenance};
use crate::reduce::reduce_in_place;
use crate::subsume::SubMemo;
use crate::system::{context_sym, input_sym, System};
use crate::sym::Sym;
use crate::trace::{EventKind, Tracer};
use crate::tree::{Marking, NodeId, Tree};

/// What one invocation did.
#[derive(Clone, Copy, Debug, Default)]
pub struct InvokeOutcome {
    /// Did the document strictly grow (a real rewriting step)?
    pub changed: bool,
    /// Trees in the service's result forest.
    pub result_trees: usize,
    /// Result trees actually grafted (not subsumed by existing siblings).
    pub grafted: usize,
}

/// Build `θ(input)` for the call at `node`: root labeled `input`, children
/// copied from the call's parameter subtrees.
pub fn build_input(doc: &Tree, node: NodeId) -> Tree {
    let mut input = Tree::with_label("input");
    let input_root = input.root();
    doc.copy_children_into(node, &mut input, input_root);
    input
}

/// The read-only half of one invocation: the evaluated result forest
/// plus everything the commit phase needs to graft it later via
/// [`apply_plan`].
///
/// Produced by [`evaluate_node`] against an *immutable* system
/// reference — building a plan never mutates any document. That split
/// is what lets [`crate::engine`]'s parallel mode evaluate a whole
/// round's calls concurrently on worker threads and then commit the
/// plans sequentially, in a deterministic order, on the main thread.
#[derive(Clone, Debug)]
pub struct GraftPlan {
    /// Document hosting the call.
    pub doc: Sym,
    /// The invoked function node.
    pub node: NodeId,
    /// The service invoked.
    pub service: Sym,
    /// The service's result forest (snapshot answer or black-box
    /// output), already reduced.
    pub forest: Forest,
    /// Provenance witnesses matched before evaluation (empty unless
    /// requested via `collect_witnesses`).
    pub witnesses: Vec<(Sym, NodeId)>,
}

/// Evaluate the service call at `node` of `doc_name` against the
/// current system state, without applying anything: the read-only
/// phase 1 of [`invoke_node_with_provenance`], shared-borrow friendly
/// so it can run from worker threads.
///
/// `collect_witnesses` asks for the provenance witness set (the nodes
/// the evaluation read); pass `prov.enabled()` when a store is
/// attached, `false` otherwise to skip the extra matching work.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_node(
    sys: &System,
    doc_name: Sym,
    node: NodeId,
    cache: Option<&mut MatchCache>,
    programs: Option<&mut ProgramCache>,
    tracer: Tracer<'_>,
    collect_witnesses: bool,
    strategy: MatchStrategy,
) -> Result<GraftPlan> {
    let doc = sys
        .doc(doc_name)
        .ok_or(AxmlError::UnknownDocument(doc_name))?;
    if !doc.is_alive(node) {
        return Err(AxmlError::DeadNode);
    }
    let fname = match doc.marking(node) {
        Marking::Func(f) => f,
        _ => return Err(AxmlError::NotAFunctionNode),
    };
    // Document roots are never function nodes, so `node` has a parent.
    let parent = doc.parent(node).ok_or(AxmlError::FunctionRoot)?;
    let svc = sys
        .service(fname)
        .ok_or(AxmlError::UnknownFunction(fname))?;

    // Witnesses are only matched when a provenance store is
    // attached — the disabled path pays one branch.
    let witnesses = if collect_witnesses {
        match svc.query() {
            Some(q) => {
                let mut w = query_witnesses(q, |d| sys.doc(d));
                if q.body
                    .iter()
                    .any(|a| a.doc == input_sym() || a.doc == context_sym())
                {
                    // input/context data comes from the call site.
                    w.push((doc_name, node));
                }
                w
            }
            // Black boxes read nothing we can see; the call site is
            // the only visible input.
            None => vec![(doc_name, node)],
        }
    } else {
        Vec::new()
    };

    let input = build_input(doc, node);
    let context = doc.subtree(parent);
    let env = Env::for_invocation(sys, &input, &context);
    // Positive services evaluate through the snapshot pipeline so
    // the match strategy (and the match/program caches, when attached)
    // applies; black boxes always run their closure.
    let forest = match svc.query() {
        Some(q) => {
            snapshot_inner(
                q,
                &env,
                cache.map(|c| (fname, c)),
                programs.map(|p| (fname, p)),
                tracer,
                strategy,
            )?
            .0
        }
        None => svc.invoke(&env)?,
    };
    Ok(GraftPlan {
        doc: doc_name,
        node,
        service: fname,
        forest,
        witnesses,
    })
}

/// Apply a [`GraftPlan`]: the mutating phase 2 of
/// [`invoke_node_with_provenance`]. Result trees not subsumed by an
/// existing sibling are grafted next to the call, lineage is stamped,
/// and the document is reduced.
///
/// Subsumption is re-checked here against the document *as it now is*,
/// so a plan evaluated against an older snapshot stays sound: results
/// that an intervening commit already made redundant are simply
/// dropped (monotonicity — Theorem 2.1's confluence argument).
///
/// Returns `Ok(None)` when the call node is no longer alive (an
/// earlier commit's reduction merged it away); the plan's information
/// survives in the equivalent sibling that was kept.
pub fn apply_plan(
    sys: &mut System,
    plan: &GraftPlan,
    tracer: Tracer<'_>,
    prov: Provenance<'_>,
    round: u64,
) -> Result<Option<InvokeOutcome>> {
    let doc_name = plan.doc;
    let result_trees = plan.forest.len();
    let doc = sys
        .doc_mut(doc_name)
        .ok_or(AxmlError::UnknownDocument(doc_name))?;
    if !doc.is_alive(plan.node) {
        return Ok(None);
    }
    // Re-resolve the parent from the live document: reduction during
    // earlier commits may have re-parented the (still alive) node.
    let parent = doc.parent(plan.node).ok_or(AxmlError::FunctionRoot)?;
    let pre_version = doc.mutation_count();
    // Index maintenance is reported as counter deltas over the whole
    // graft+reduce batch; the index's build state cannot change during
    // the commit (mutations maintain but never build).
    let pre_index = if tracer.enabled() {
        doc.index_stats()
    } else {
        None
    };
    let mut grafted = 0usize;
    // One memo serves every (result tree, existing child) comparison:
    // entries are keyed by tree identity, and grafting earlier result
    // trees only *adds* children under `parent`, never mutating the
    // subtrees already memoized.
    let mut memo = SubMemo::new();
    let mut seq: Option<u64> = None;
    for r in plan.forest.trees() {
        let already = doc
            .children(parent)
            .iter()
            .any(|&c| memo.subsumed_at(r, r.root(), doc, c));
        tracer.emit(|| EventKind::SubsumeCheck {
            doc: doc_name,
            subsumed: already,
        });
        if !already {
            let new_root = doc.graft(parent, r)?;
            grafted += 1;
            if prov.enabled() {
                // One invocation record per invocation that grafts,
                // logged lazily at the first graft so no-op invocations
                // leave no record.
                let s = *seq.get_or_insert_with(|| {
                    prov.with(|st| {
                        st.begin_invocation(InvocationRecord {
                            seq: 0,
                            service: plan.service,
                            doc: doc_name,
                            node: plan.node,
                            round,
                            doc_version: pre_version,
                            peer: None,
                            inputs: plan.witnesses.clone(),
                        })
                    })
                    .expect("enabled")
                });
                let fresh: Vec<NodeId> = doc.iter_live(new_root).collect();
                prov.with(|st| {
                    for nid in fresh {
                        st.stamp(doc_name, nid, Origin::Local { seq: s });
                    }
                });
            }
        }
    }
    if grafted > 0 {
        tracer.emit(|| EventKind::Graft {
            doc: doc_name,
            doc_version: doc.mutation_count(),
            trees: grafted as u32,
        });
        // Node counts are O(live nodes); only pay for them when a sink
        // is attached.
        let before = tracer.enabled().then(|| doc.node_count() as u32);
        reduce_in_place(doc);
        tracer.emit(|| EventKind::Reduce {
            doc: doc_name,
            nodes_before: before.unwrap_or(0),
            nodes_after: doc.node_count() as u32,
        });
        if tracer.enabled() {
            if let Some(post) = doc.index_stats() {
                let (pa, pr) = pre_index.map_or((0, 0), |s| (s.adds, s.removes));
                tracer.emit(|| EventKind::IndexMaintain {
                    doc: doc_name,
                    adds: post.adds.saturating_sub(pa) as u32,
                    removes: post.removes.saturating_sub(pr) as u32,
                    bytes: post.bytes_estimate,
                });
            }
        }
    }
    Ok(Some(InvokeOutcome {
        changed: grafted > 0,
        result_trees,
        grafted,
    }))
}

/// Invoke the function node `node` of document `doc_name` in `sys`.
pub fn invoke_node(sys: &mut System, doc_name: Sym, node: NodeId) -> Result<InvokeOutcome> {
    invoke_node_cached(sys, doc_name, node, None)
}

/// [`invoke_node`] with an optional per-atom [`MatchCache`]: positive
/// services evaluate through [`crate::eval::snapshot_with_cache`],
/// reusing each body
/// atom's bindings while the matched document is unchanged. Black-box
/// services always run their closure.
pub fn invoke_node_cached(
    sys: &mut System,
    doc_name: Sym,
    node: NodeId,
    cache: Option<&mut MatchCache>,
) -> Result<InvokeOutcome> {
    invoke_node_traced(sys, doc_name, node, cache, Tracer::disabled())
}

/// [`invoke_node_cached`] emitting graft/reduce/subsumption events into
/// `tracer` (see [`crate::trace`]).
pub fn invoke_node_traced(
    sys: &mut System,
    doc_name: Sym,
    node: NodeId,
    cache: Option<&mut MatchCache>,
    tracer: Tracer<'_>,
) -> Result<InvokeOutcome> {
    invoke_node_with_provenance(
        sys,
        doc_name,
        node,
        cache,
        None,
        tracer,
        Provenance::disabled(),
        0,
        MatchStrategy::default(),
    )
}

/// [`invoke_node_traced`] additionally stamping every grafted node's
/// lineage into `prov` (see [`crate::provenance`]): when a store is
/// attached, the service's witness nodes are collected before
/// evaluation, an [`InvocationRecord`] is logged on the first graft,
/// and each freshly copied node gets an [`Origin::Local`] stamp.
/// `round` is the engine round recorded in the invocation record, and
/// `strategy` selects how positive services' bodies are matched
/// ([`MatchStrategy`]; black boxes are unaffected).
#[allow(clippy::too_many_arguments)]
pub fn invoke_node_with_provenance(
    sys: &mut System,
    doc_name: Sym,
    node: NodeId,
    cache: Option<&mut MatchCache>,
    programs: Option<&mut ProgramCache>,
    tracer: Tracer<'_>,
    prov: Provenance<'_>,
    round: u64,
    strategy: MatchStrategy,
) -> Result<InvokeOutcome> {
    // Phase 1 — evaluate the service against the current (immutable)
    // system state; phase 2 — graft the new information and reduce.
    let plan = evaluate_node(
        sys,
        doc_name,
        node,
        cache,
        programs,
        tracer,
        prov.enabled(),
        strategy,
    )?;
    let outcome = apply_plan(sys, &plan, tracer, prov, round)?;
    // Nothing ran between the two phases, so the node is still alive.
    Ok(outcome.expect("node alive: evaluate_node just checked"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::Forest;
    use crate::parse::parse_tree;
    use crate::service::BlackBoxService;
    use crate::subsume::equivalent;

    fn get_rating_system() -> System {
        let mut sys = System::new();
        sys.add_document_text(
            "dir",
            r#"directory{cd{title{"Body and Soul"},
                           singer{"Billie Holiday"},
                           @GetRating{"Body and Soul"}}}"#,
        )
        .unwrap();
        // A black-box rating service: returns rating{"****"} whatever the
        // input (constant, hence monotone).
        let rating = Forest::from_trees(vec![parse_tree(r#"rating{"****"}"#).unwrap()]);
        sys.add_black_box("GetRating", BlackBoxService::constant("ratings", rating))
            .unwrap();
        sys
    }

    #[test]
    fn paper_get_rating_invocation() {
        let mut sys = get_rating_system();
        let (d, n) = sys.function_nodes()[0];
        let out = invoke_node(&mut sys, d, n).unwrap();
        assert!(out.changed);
        assert_eq!(out.grafted, 1);
        let expected = parse_tree(
            r#"directory{cd{title{"Body and Soul"},
                            singer{"Billie Holiday"},
                            @GetRating{"Body and Soul"},
                            rating{"****"}}}"#,
        )
        .unwrap();
        assert!(equivalent(sys.doc(d).unwrap(), &expected));
    }

    #[test]
    fn second_invocation_is_a_noop() {
        let mut sys = get_rating_system();
        let (d, n) = sys.function_nodes()[0];
        invoke_node(&mut sys, d, n).unwrap();
        let again = invoke_node(&mut sys, d, n).unwrap();
        assert!(!again.changed);
        assert_eq!(again.grafted, 0);
        assert_eq!(again.result_trees, 1);
    }

    #[test]
    fn input_and_context_are_visible_to_queries() {
        let mut sys = System::new();
        sys.add_document_text("d", r#"a{ctx{"c"}, @f{param{"p"}}}"#)
            .unwrap();
        // Echo both the parameter and a context child.
        sys.add_service_text(
            "f",
            "echo{$p,$c} :- input/input{param{$p}}, context/a{ctx{$c}}",
        )
        .unwrap();
        let (d, n) = sys.function_nodes()[0];
        let out = invoke_node(&mut sys, d, n).unwrap();
        assert!(out.changed);
        let expected =
            parse_tree(r#"a{ctx{"c"}, @f{param{"p"}}, echo{"p","c"}}"#).unwrap();
        assert!(equivalent(sys.doc(d).unwrap(), &expected));
    }

    #[test]
    fn nested_call_results_attach_inside_parameters() {
        let mut sys = System::new();
        sys.add_document_text("d", r#"a{@outer{@inner{"x"}}}"#).unwrap();
        sys.add_service_text("inner", r#"v{"found"} :-"#).unwrap();
        sys.add_service_text("outer", "w :-").unwrap();
        // Find the *inner* node: it is the function node with a value child.
        let nodes = sys.function_nodes();
        let d = nodes[0].0;
        let inner = *nodes
            .iter()
            .map(|(_, n)| n)
            .find(|&&n| {
                let t = sys.doc(d).unwrap();
                t.marking(n) == Marking::func("inner")
            })
            .unwrap();
        invoke_node(&mut sys, d, inner).unwrap();
        let expected = parse_tree(r#"a{@outer{@inner{"x"}, v{"found"}}}"#).unwrap();
        assert!(equivalent(sys.doc(d).unwrap(), &expected));
    }

    #[test]
    fn invoking_non_function_node_errors() {
        let mut sys = get_rating_system();
        let d = sys.doc_names()[0];
        let root = sys.doc(d).unwrap().root();
        assert!(matches!(
            invoke_node(&mut sys, d, root),
            Err(AxmlError::NotAFunctionNode)
        ));
    }

    #[test]
    fn invoking_unregistered_function_errors() {
        let mut sys = System::new();
        sys.add_document_text("d", "a{@ghost}").unwrap();
        let (d, n) = sys.function_nodes()[0];
        assert!(matches!(
            invoke_node(&mut sys, d, n),
            Err(AxmlError::UnknownFunction(_))
        ));
    }

    #[test]
    fn example_2_1_first_step() {
        // d/a{f}, f returns a{f}: first invocation yields a{a{f}, f}.
        let mut sys = System::new();
        sys.add_document_text("d", "a{@f}").unwrap();
        sys.add_service_text("f", "a{@f} :-").unwrap();
        let (d, n) = sys.function_nodes()[0];
        let out = invoke_node(&mut sys, d, n).unwrap();
        assert!(out.changed);
        let expected = parse_tree("a{a{@f}, @f}").unwrap();
        assert!(equivalent(sys.doc(d).unwrap(), &expected));
        // Invoking the *original* f again: result a{@f} is now subsumed
        // by the existing sibling a{@f} → no change ("once some
        // occurrence of f has been invoked, it is useless to invoke it
        // again").
        let again = invoke_node(&mut sys, d, n).unwrap();
        assert!(!again.changed);
    }
}
