//! Positive+reg queries: regular path expressions in tree patterns (§5).
//!
//! The query language extension allows a pattern edge to carry a regular
//! expression over labels instead of a single label: the pattern matches
//! when there is a downward path in the document whose label word belongs
//! to the expression's language; matching continues (and variables bind)
//! at the path's endpoint.
//!
//! Pattern syntax: a path item is written in angle brackets, e.g.
//!
//! ```text
//! songs{$x} :- d/directory{<cd.(info|meta)*>{title{$x}}}
//! ```
//!
//! This module evaluates positive+reg queries **directly** (an NFA walk
//! over the document); [`crate::translate`] implements Proposition 5.1's
//! ψ translation back to plain positive systems, and the two are checked
//! against each other by tests and experiment X10.

use crate::error::{AxmlError, Result};
use crate::eval::{instantiate_head, Env};
use crate::forest::Forest;
use crate::matcher::Binding;
use crate::pattern::{PItem, Pattern};
use crate::query::{parse_query, Operand, Query};
use crate::sym::{FxHashMap, FxHashSet, Sym};
use crate::tree::{Marking, NodeId, Tree};
use axml_automata::{parse_regex, Nfa, Regex, StateId};
use std::collections::HashSet;

/// One node item of a positive+reg pattern.
#[derive(Clone, Debug)]
pub enum RItem {
    /// An ordinary pattern item.
    Plain(PItem),
    /// A regular path expression: descend along a label path in its
    /// language, continue at the endpoint.
    Path(Regex<Sym>),
}

/// Index of a node in a [`RegPattern`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RNodeId(pub u32);

#[derive(Clone, Debug)]
struct RNode {
    item: RItem,
    children: Vec<RNodeId>,
}

/// A tree pattern whose edges may carry regular path expressions.
#[derive(Clone, Debug)]
pub struct RegPattern {
    nodes: Vec<RNode>,
    root: RNodeId,
}

impl RegPattern {
    /// Single-node pattern (the root must be a plain item).
    pub fn new(item: RItem) -> Result<RegPattern> {
        if matches!(item, RItem::Path(_)) {
            return Err(AxmlError::Parse {
                pos: 0,
                msg: "a path expression cannot be the pattern root".into(),
            });
        }
        Ok(RegPattern {
            nodes: vec![RNode {
                item,
                children: Vec::new(),
            }],
            root: RNodeId(0),
        })
    }

    /// The root.
    pub fn root(&self) -> RNodeId {
        self.root
    }

    /// Item at `n`.
    pub fn item(&self, n: RNodeId) -> &RItem {
        &self.nodes[n.0 as usize].item
    }

    /// Children of `n`.
    pub fn children(&self, n: RNodeId) -> &[RNodeId] {
        &self.nodes[n.0 as usize].children
    }

    /// Add a child.
    pub fn add_child(&mut self, parent: RNodeId, item: RItem) -> Result<RNodeId> {
        if let RItem::Plain(p) = &self.nodes[parent.0 as usize].item {
            if p.leaf_only() {
                return Err(AxmlError::NonLeafPatternVariable(
                    p.var().unwrap_or_else(|| Sym::intern("<value>")),
                ));
            }
        }
        let id = RNodeId(self.nodes.len() as u32);
        self.nodes.push(RNode {
            item,
            children: Vec::new(),
        });
        self.nodes[parent.0 as usize].children.push(id);
        Ok(id)
    }

    /// All node ids (preorder).
    pub fn node_ids(&self) -> Vec<RNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children(n).iter().copied());
        }
        out
    }

    /// Variables used (plain items only; path expressions bind nothing).
    pub fn variables(&self) -> FxHashSet<Sym> {
        self.node_ids()
            .into_iter()
            .filter_map(|n| match self.item(n) {
                RItem::Plain(p) => p.var(),
                RItem::Path(_) => None,
            })
            .collect()
    }

    /// Does this pattern use any path expression?
    pub fn uses_paths(&self) -> bool {
        self.node_ids()
            .into_iter()
            .any(|n| matches!(self.item(n), RItem::Path(_)))
    }

    /// Does this pattern use tree variables?
    pub fn uses_tree_vars(&self) -> bool {
        self.node_ids().into_iter().any(|n| {
            matches!(self.item(n), RItem::Plain(PItem::TreeVar(_)))
        })
    }

    /// A plain pattern, if no path expressions are used.
    pub fn to_plain(&self) -> Option<Pattern> {
        fn item_of(r: &RItem) -> Option<PItem> {
            match r {
                RItem::Plain(p) => Some(p.clone()),
                RItem::Path(_) => None,
            }
        }
        let mut p = Pattern::new(item_of(self.item(self.root))?);
        let proot = p.root();
        fn go(
            rp: &RegPattern,
            rn: RNodeId,
            p: &mut Pattern,
            pn: crate::pattern::PNodeId,
        ) -> Option<()> {
            for &rc in rp.children(rn) {
                let item = item_of(rp.item(rc))?;
                let pc = p.add_child(pn, item).ok()?;
                go(rp, rc, p, pc)?;
            }
            Some(())
        }
        go(self, self.root, &mut p, proot)?;
        Some(p)
    }
}

/// A positive+reg query: plain head, body patterns that may use path
/// expressions.
#[derive(Clone, Debug)]
pub struct RegQuery {
    /// The head (plain — results are constructed, not searched).
    pub head: Pattern,
    /// Body atoms (document name, positive+reg pattern).
    pub body: Vec<(Sym, RegPattern)>,
    /// Inequalities, as in plain queries.
    pub ineqs: Vec<(Operand, Operand)>,
}

impl RegQuery {
    /// Is the query simple (no tree variables)? Path expressions do not
    /// affect simplicity (Prop 5.1 (2)).
    pub fn is_simple(&self) -> bool {
        !self.head.uses_tree_vars() && self.body.iter().all(|(_, p)| !p.uses_tree_vars())
    }

    /// Convert to a plain query when no path expression is used.
    pub fn to_plain(&self) -> Option<Query> {
        let body = self
            .body
            .iter()
            .map(|(d, p)| {
                p.to_plain().map(|pattern| crate::query::Atom {
                    doc: *d,
                    pattern,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Query::new(self.head.clone(), body, self.ineqs.clone()).ok()
    }
}

/// Parse a positive+reg query. Same rule syntax as [`parse_query`], with
/// `<regex>` path items inside body patterns.
pub fn parse_reg_query(src: &str) -> Result<RegQuery> {
    // Split at ':-' once, parse the head as a plain pattern; the body
    // needs the extended pattern parser.
    let Some(sep) = src.find(":-") else {
        return parse_query(src).map(|q| RegQuery {
            head: q.head,
            body: q
                .body
                .into_iter()
                .map(|a| (a.doc, reg_from_plain(&a.pattern)))
                .collect(),
            ineqs: q.ineqs,
        });
    };
    let head = crate::parse::parse_pattern(src[..sep].trim())?;
    let mut body = Vec::new();
    let mut ineqs = Vec::new();
    let rest = src[sep + 2..].trim();
    if !rest.is_empty() {
        for part in split_top_level(rest) {
            let part = part.trim();
            if let Some(slash) = find_atom_slash(part) {
                let doc = Sym::intern(part[..slash].trim());
                let pattern = parse_reg_pattern(part[slash + 1..].trim())?;
                body.push((doc, pattern));
            } else {
                // An inequality `op != op`.
                let mut lx = crate::parse::Lexer::new(part);
                let left = crate::query::parse_operand(&mut lx)?;
                lx.expect(b'!')?;
                lx.expect(b'=')?;
                let right = crate::query::parse_operand(&mut lx)?;
                if !lx.at_end() {
                    return lx.err("trailing input after inequality");
                }
                ineqs.push((left, right));
            }
        }
    }
    let rq = RegQuery { head, body, ineqs };
    validate_reg(&rq)?;
    Ok(rq)
}

fn reg_from_plain(p: &Pattern) -> RegPattern {
    let mut rp = RegPattern::new(RItem::Plain(p.item(p.root()).clone()))
        .expect("plain roots are valid");
    fn go(
        p: &Pattern,
        pn: crate::pattern::PNodeId,
        rp: &mut RegPattern,
        rn: RNodeId,
    ) {
        for &pc in p.children(pn) {
            let rc = rp
                .add_child(rn, RItem::Plain(p.item(pc).clone()))
                .expect("plain children are valid");
            go(p, pc, rp, rc);
        }
    }
    let rroot = rp.root();
    go(p, p.root(), &mut rp, rroot);
    rp
}

/// Split a body at top-level commas (not inside braces/brackets/quotes).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut start = 0usize;
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if c == b'\\' {
                i += 1;
            } else if c == b'"' {
                in_str = false;
            }
        } else {
            match c {
                b'"' => in_str = true,
                b'{' | b'<' | b'(' => depth += 1,
                b'}' | b'>' | b')' => depth -= 1,
                b',' if depth == 0 => {
                    out.push(&s[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        i += 1;
    }
    out.push(&s[start..]);
    out
}

/// Find the '/' separating a doc name from its pattern (atoms start with
/// a bare identifier).
fn find_atom_slash(part: &str) -> Option<usize> {
    let bytes = part.as_bytes();
    let mut i = 0;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    let start = i;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'-' || bytes[i] == b'.')
    {
        i += 1;
    }
    if i == start {
        return None;
    }
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    (i < bytes.len() && bytes[i] == b'/').then_some(i)
}

/// Parse a positive+reg pattern: plain pattern syntax plus `<regex>`
/// items.
pub fn parse_reg_pattern(src: &str) -> Result<RegPattern> {
    let mut pos = 0usize;
    let item = parse_ritem(src, &mut pos)?;
    let mut p = RegPattern::new(item)?; // rejects a path-expression root
    let root = p.root();
    parse_rchildren(src, &mut pos, &mut p, root)?;
    skip_ws(src, &mut pos);
    if pos != src.len() {
        return Err(AxmlError::Parse {
            pos,
            msg: "trailing input after pattern".into(),
        });
    }
    Ok(p)
}

fn skip_ws(s: &str, pos: &mut usize) {
    let b = s.as_bytes();
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_rchildren(
    src: &str,
    pos: &mut usize,
    p: &mut RegPattern,
    parent: RNodeId,
) -> Result<()> {
    let b = src.as_bytes();
    skip_ws(src, pos);
    if *pos < b.len() && b[*pos] == b'{' {
        *pos += 1;
        loop {
            let item = parse_ritem(src, pos)?;
            let id = p.add_child(parent, item)?;
            parse_rchildren(src, pos, p, id)?;
            skip_ws(src, pos);
            if *pos < b.len() && b[*pos] == b',' {
                *pos += 1;
                continue;
            }
            break;
        }
        skip_ws(src, pos);
        if *pos >= b.len() || b[*pos] != b'}' {
            return Err(AxmlError::Parse {
                pos: *pos,
                msg: "expected '}'".into(),
            });
        }
        *pos += 1;
    }
    Ok(())
}

fn parse_ritem(src: &str, pos: &mut usize) -> Result<RItem> {
    skip_ws(src, pos);
    let b = src.as_bytes();
    if *pos < b.len() && b[*pos] == b'<' {
        // Path expression: find the matching '>'.
        let start = *pos + 1;
        let mut depth = 1;
        let mut i = start;
        while i < b.len() && depth > 0 {
            match b[i] {
                b'<' => depth += 1,
                b'>' => depth -= 1,
                _ => {}
            }
            i += 1;
        }
        if depth != 0 {
            return Err(AxmlError::Parse {
                pos: *pos,
                msg: "unterminated path expression".into(),
            });
        }
        let expr = &src[start..i - 1];
        let regex = parse_regex(expr).map_err(|e| AxmlError::Parse {
            pos: start + e.pos,
            msg: e.msg,
        })?;
        *pos = i;
        return Ok(RItem::Path(regex.map(&mut |l: &String| Sym::intern(l))));
    }
    // Fall back to the plain-item grammar via the shared lexer.
    let rest = &src[*pos..];
    let mut lx = crate::parse::Lexer::new(rest);
    let item = crate::parse::parse_pitem(&mut lx)?;
    *pos += lx.pos;
    Ok(RItem::Plain(item))
}

fn validate_reg(q: &RegQuery) -> Result<()> {
    // Head variables must occur in the body.
    let mut body_vars: FxHashSet<Sym> = FxHashSet::default();
    for (_, p) in &q.body {
        body_vars.extend(p.variables());
    }
    for v in q.head.variables() {
        if !body_vars.contains(&v) {
            return Err(AxmlError::UnsafeHeadVariable(v));
        }
    }
    // Tree variables: at most once across the body.
    let mut seen: FxHashSet<Sym> = FxHashSet::default();
    for (_, p) in &q.body {
        for n in p.node_ids() {
            if let RItem::Plain(PItem::TreeVar(v)) = p.item(n) {
                if !seen.insert(*v) {
                    return Err(AxmlError::RepeatedTreeVariable(*v));
                }
            }
        }
    }
    Ok(())
}

/// All endpoints below `anchor` reachable by a label path in the
/// regex's language (including `anchor` itself when ε is accepted).
pub fn path_endpoints(t: &Tree, anchor: NodeId, nfa: &Nfa<Sym>) -> Vec<NodeId> {
    let mut out = Vec::new();
    let start = nfa.eps_closure(&HashSet::from([nfa.start]));
    walk(t, anchor, nfa, &start, &mut out);
    out
}

fn walk(
    t: &Tree,
    node: NodeId,
    nfa: &Nfa<Sym>,
    states: &HashSet<StateId>,
    out: &mut Vec<NodeId>,
) {
    if states.iter().any(|s| nfa.accept.contains(s)) {
        out.push(node);
    }
    for &c in t.children(node) {
        if let Marking::Label(l) = t.marking(c) {
            let next = nfa.eps_closure(&nfa.step(states, &l));
            if !next.is_empty() {
                walk(t, c, nfa, &next, out);
            }
        }
    }
}

/// The NFAs of one [`RegPattern`]'s path items, keyed by pattern node.
///
/// Built once per pattern (by [`nfa_table`]) instead of once per document
/// node visited: `Nfa::from_regex` is pure in the regex, so hoisting it
/// out of the match recursion changes no result, only how often the
/// Thompson construction runs.
pub type NfaTable = FxHashMap<RNodeId, Nfa<Sym>>;

/// Build the [`NfaTable`] of a pattern: one NFA per path item.
pub fn nfa_table(p: &RegPattern) -> NfaTable {
    p.node_ids()
        .into_iter()
        .filter_map(|n| match p.item(n) {
            RItem::Path(r) => Some((n, Nfa::from_regex(r))),
            RItem::Plain(_) => None,
        })
        .collect()
}

fn match_rnode(
    p: &RegPattern,
    nfas: &NfaTable,
    rn: RNodeId,
    t: &Tree,
    tn: NodeId,
    b: &Binding,
) -> Vec<Binding> {
    let RItem::Plain(item) = p.item(rn) else {
        unreachable!("path nodes are handled by match_rchildren");
    };
    let Some(b0) = crate::matcher::bind_item(item, t, tn, b) else {
        return Vec::new();
    };
    match_rchildren(p, nfas, rn, t, tn, b0)
}

fn match_rchildren(
    p: &RegPattern,
    nfas: &NfaTable,
    rn: RNodeId,
    t: &Tree,
    tn: NodeId,
    b0: Binding,
) -> Vec<Binding> {
    let mut current = vec![b0];
    for &rc in p.children(rn) {
        // (`Binding` hashes tree bounds by canonical key, never through
        // the tree's lazily built index, so the set is sound.)
        #[allow(clippy::mutable_key_type)]
        let mut next: FxHashSet<Binding> = FxHashSet::default();
        match p.item(rc) {
            RItem::Plain(_) => {
                for base in &current {
                    for &tc in t.children(tn) {
                        for nb in match_rnode(p, nfas, rc, t, tc, base) {
                            next.insert(nb);
                        }
                    }
                }
            }
            RItem::Path(_) => {
                let nfa = &nfas[&rc];
                let endpoints = path_endpoints(t, tn, nfa);
                for base in &current {
                    for &ep in &endpoints {
                        for nb in match_rchildren(p, nfas, rc, t, ep, base.clone()) {
                            next.insert(nb);
                        }
                    }
                }
            }
        }
        if next.is_empty() {
            return Vec::new();
        }
        current = next.into_iter().collect();
    }
    current
}

/// A positive+reg query with its path-item NFAs prebuilt, one table per
/// body atom. Constructing the NFAs is the only non-trivial setup cost of
/// [`snapshot_reg`]; a `CompiledRegQuery` pays it once and every
/// [`CompiledRegQuery::snapshot`] thereafter walks the documents with the
/// cached automata. [`crate::compile::ProgramCache::reg`] memoizes these
/// per service, so an engine run no longer rebuilds NFAs per invocation.
#[derive(Clone, Debug)]
pub struct CompiledRegQuery {
    query: RegQuery,
    tables: Vec<NfaTable>,
}

impl CompiledRegQuery {
    /// Compile: build every body pattern's [`NfaTable`].
    pub fn new(query: RegQuery) -> CompiledRegQuery {
        let tables = query.body.iter().map(|(_, p)| nfa_table(p)).collect();
        CompiledRegQuery { query, tables }
    }

    /// The underlying query.
    pub fn query(&self) -> &RegQuery {
        &self.query
    }

    /// Total number of prebuilt NFAs across the body.
    pub fn nfa_count(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Snapshot evaluation with the prebuilt NFAs. Identical results to
    /// [`snapshot_reg`] on the same query.
    pub fn snapshot(&self, env: &Env<'_>) -> Result<Forest> {
        snapshot_reg_with(&self.query, &self.tables, env)
    }
}

/// Snapshot evaluation of a positive+reg query (direct NFA walk).
pub fn snapshot_reg(q: &RegQuery, env: &Env<'_>) -> Result<Forest> {
    let tables: Vec<NfaTable> = q.body.iter().map(|(_, p)| nfa_table(p)).collect();
    snapshot_reg_with(q, &tables, env)
}

fn snapshot_reg_with(q: &RegQuery, tables: &[NfaTable], env: &Env<'_>) -> Result<Forest> {
    let mut combined: Vec<Binding> = vec![Binding::new()];
    for ((doc, pattern), nfas) in q.body.iter().zip(tables) {
        let t = env.get(*doc).ok_or(AxmlError::UnknownDocument(*doc))?;
        let matches = match_rnode(pattern, nfas, pattern.root(), t, t.root(), &Binding::new());
        if matches.is_empty() {
            return Ok(Forest::new());
        }
        let mut next = Vec::new();
        for base in &combined {
            for m in &matches {
                if let Some(merged) = base.merge(m) {
                    next.push(merged);
                }
            }
        }
        #[allow(clippy::mutable_key_type)]
        let mut seen = FxHashSet::default();
        next.retain(|x| seen.insert(x.clone()));
        if next.is_empty() {
            return Ok(Forest::new());
        }
        combined = next;
    }
    combined.retain(|b| {
        q.ineqs.iter().all(|(l, r)| {
            let resolve = |op: &Operand| match op {
                Operand::Const(m) => Some(*m),
                Operand::Var(v) => b.get(*v).and_then(crate::matcher::Bound::as_marking),
            };
            matches!((resolve(l), resolve(r)), (Some(a), Some(c)) if a != c)
        })
    });
    let mut forest = Forest::new();
    for b in &combined {
        forest.push(instantiate_head(&q.head, b)?);
    }
    Ok(forest.reduce())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;

    fn eval(q: &str, docs: &[(&str, &str)]) -> Forest {
        let trees: Vec<(Sym, Tree)> = docs
            .iter()
            .map(|(n, s)| (Sym::intern(n), parse_tree(s).unwrap()))
            .collect();
        let mut env = Env::new();
        for (n, t) in &trees {
            env.insert(*n, t);
        }
        snapshot_reg(&parse_reg_query(q).unwrap(), &env).unwrap()
    }

    const HIER: &str = r#"lib{
        shelf{box{cd{title{"A"}}}, cd{title{"B"}}},
        cd{title{"C"}},
        misc{dvd{title{"D"}}}
    }"#;

    #[test]
    fn wildcard_star_descendant() {
        // All titles under any chain of labels ending at cd.
        let f = eval("t{$x} :- d/lib{<_*.cd>{title{$x}}}", &[("d", HIER)]);
        let mut got: Vec<String> = f.trees().iter().map(|t| t.to_string()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![r#"t{"A"}"#, r#"t{"B"}"#, r#"t{"C"}"#]);
    }

    #[test]
    fn specific_path_language() {
        // Only cds inside shelf.box chains.
        let f = eval("t{$x} :- d/lib{<shelf.box.cd>{title{$x}}}", &[("d", HIER)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.trees()[0].to_string(), r#"t{"A"}"#);
    }

    #[test]
    fn epsilon_in_language_matches_anchor() {
        // <cd?> matches the anchor itself (ε) and direct cd children.
        let f = eval("t{$x} :- d/lib{<cd?>{title{$x}}}", &[("d", HIER)]);
        // Anchor lib has no title child; direct cd child has "C".
        assert_eq!(f.len(), 1);
        assert_eq!(f.trees()[0].to_string(), r#"t{"C"}"#);
    }

    #[test]
    fn alternation_path() {
        let f = eval(
            "t{$x} :- d/lib{<(shelf|misc).(box|dvd)*.(cd|dvd)>{title{$x}}}",
            &[("d", HIER)],
        );
        let mut got: Vec<String> = f.trees().iter().map(|t| t.to_string()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![r#"t{"A"}"#, r#"t{"B"}"#, r#"t{"D"}"#]);
    }

    #[test]
    fn plain_reg_query_equals_plain_query() {
        // Without path items, snapshot_reg must agree with snapshot.
        let plain = crate::query::parse_query("t{$x} :- d/lib{cd{title{$x}}}").unwrap();
        let tree = parse_tree(HIER).unwrap();
        let mut env = Env::new();
        env.insert(Sym::intern("d"), &tree);
        let a = crate::eval::snapshot(&plain, &env).unwrap();
        let b = eval("t{$x} :- d/lib{cd{title{$x}}}", &[("d", HIER)]);
        assert!(a.equivalent(&b));
    }

    #[test]
    fn paths_do_not_cross_function_or_value_nodes() {
        let doc = r#"a{b{c{"x"}}, @f{b{c{"y"}}}}"#;
        let f = eval("hit{$v} :- d/a{<b.c>{$v}}", &[("d", doc)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.trees()[0].to_string(), r#"hit{"x"}"#);
    }

    #[test]
    fn path_root_rejected() {
        assert!(parse_reg_pattern("<a.b>").is_err());
    }

    #[test]
    fn inequalities_supported() {
        let f = eval(
            r#"pair{$x,$y} :- d/lib{<_*>{title{$x}}, <_*>{title{$y}}}, $x != $y"#,
            &[("d", r#"lib{cd{title{"A"}}, cd{title{"B"}}}"#)],
        );
        assert_eq!(f.len(), 1); // {A,B} once after reduction
    }

    #[test]
    fn simplicity_classification() {
        assert!(parse_reg_query("t{$x} :- d/a{<b*>{$x}}").unwrap().is_simple());
        assert!(!parse_reg_query("t{#X} :- d/a{<b*>{#X}}").unwrap().is_simple());
    }
}
