//! # axml-core — Positive Active XML
//!
//! A from-scratch Rust implementation of the model of
//! *Positive Active XML* (Abiteboul, Benjelloun, Milo — PODS 2004):
//!
//! * **AXML documents** (§2.1): unordered labeled trees mixing data nodes
//!   with *function nodes* — embedded calls to (Web) services —
//!   [`tree`], [`forest`], [`parse`], [`display`];
//! * **subsumption, equivalence, reduction** (Def 2.2, Prop 2.1):
//!   [`subsume`], [`mod@reduce`];
//! * **monotone systems and fair rewriting** (Def 2.3–2.5, Thm 2.1):
//!   [`system`], [`service`], [`invoke`], [`engine`];
//! * **positive queries** (Def 3.1, Prop 3.1): [`pattern`], [`query`],
//!   [`matcher`], [`eval`];
//! * **dependency graphs, acyclic systems** (Def 3.2): [`depgraph`];
//! * **regular-tree graph representations and decidable termination for
//!   simple systems** (Lemma 3.2, Thm 3.3): [`regular`], [`graphrepr`];
//! * **fire-once semantics** (§4): [`fireonce`];
//! * **lazy query evaluation** (§4): [`lazy`];
//! * **regular path expressions and the ψ translation** (§5, Prop 5.1):
//!   [`pathexpr`], [`translate`];
//! * **indexed pattern matching** (implementation-level, not from the
//!   paper): incremental per-document marking/child-label indexes backing
//!   the matcher's candidate seeding and child probes — [`index`];
//! * **query compilation** (implementation-level, not from the paper):
//!   per-service lowering of positive patterns into cached, optimized
//!   match programs executed by a decorrelated evaluator — [`compile`];
//! * **observability** (implementation-level, not from the paper):
//!   structured trace journal, per-service metrics, Chrome-trace export —
//!   [`trace`]; per-node data lineage and derivation explanations —
//!   [`provenance`];
//! * **serving entry points** (implementation-level, not from the
//!   paper): resumable round-at-a-time engine stepping
//!   ([`engine::RoundRunner`]) and continuous-query delta extraction
//!   ([`eval::QueryCursor`]) — the hooks the `axml-server` crate builds
//!   its batched requests and streaming subscriptions on.
//!
//! # Quickstart
//!
//! ```
//! use axml_core::engine::{run, EngineConfig};
//! use axml_core::system::System;
//! use axml_core::Sym;
//!
//! // Example 3.2 of the paper: transitive closure via an AXML service.
//! let mut sys = System::new();
//! sys.add_document_text(
//!     "edges",
//!     r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"3"}}, @tc}"#,
//! )?;
//! sys.add_service_text(
//!     "tc",
//!     "t{from{$x},to{$y}} :- edges/r{t{from{$x},to{$z}}, t{from{$z},to{$y}}}",
//! )?;
//!
//! let (status, stats) = run(&mut sys, &EngineConfig::default())?;
//! assert_eq!(status, axml_core::engine::RunStatus::Terminated);
//! assert!(stats.productive > 0);
//! // The closure edge 1 → 3 was derived into the document.
//! let doc = sys.doc(Sym::intern("edges")).unwrap();
//! assert!(doc.to_string().contains(r#"to{"3"}"#));
//! # Ok::<(), axml_core::AxmlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod depgraph;
pub mod display;
pub mod engine;
pub mod error;
pub mod eval;
pub mod invoke;
pub mod forest;
pub mod gensys;
pub mod matcher;
pub mod parse;
pub mod pathexpr;
pub mod pattern;
pub mod provenance;
pub mod file;
pub mod fireonce;
pub mod graphrepr;
pub mod index;
pub mod lazy;
pub mod query;
pub mod regular;
pub mod reduce;
pub mod service;
pub mod subsume;
pub mod sym;
pub mod system;
pub mod trace;
pub mod translate;
pub mod tree;

pub use compile::{compile_query, CompiledQuery, MatchProgram, ProgramCache};
pub use depgraph::{read_set, ReadSet};
pub use error::{AxmlError, Result};
pub use forest::Forest;
pub use engine::{
    run, run_traced, EngineConfig, EngineMode, RoundRunner, RunStats, RunStatus,
    Strategy,
};
pub use eval::{snapshot, snapshot_with_cache, Env, MatchCache, QueryCursor};
pub use index::{DocIndex, IndexStats};
pub use invoke::{invoke_node, invoke_node_cached};
pub use matcher::MatchStrategy;
pub use trace::{
    chrome_trace, json_escape, parse_chrome_trace, parse_json,
    validate_chrome_trace, ChromeEvent, EventKind, JsonValue, Journal,
    MetricsRegistry, ReqKind, SessionMetrics, TraceEvent, TraceSink, Tracer,
};
pub use provenance::{
    DerivationDag, InvocationRecord, Origin, Provenance, ProvenanceStore, SkipRecord,
};
pub use parse::{parse_document, parse_pattern, parse_tree};
pub use query::{parse_query, Query};
pub use system::{System, SystemSnapshot};
pub use reduce::{canonical_key, lub, reduce, CanonKey};
pub use subsume::{compare, equivalent, subsumed};
pub use sym::Sym;
pub use tree::{Marking, NodeId, Tree};
