//! # axml-core — Positive Active XML
//!
//! A from-scratch Rust implementation of the model of
//! *Positive Active XML* (Abiteboul, Benjelloun, Milo — PODS 2004):
//!
//! * **AXML documents** (§2.1): unordered labeled trees mixing data nodes
//!   with *function nodes* — embedded calls to (Web) services —
//!   [`tree`], [`forest`], [`parse`], [`display`];
//! * **subsumption, equivalence, reduction** (Def 2.2, Prop 2.1):
//!   [`subsume`], [`reduce`];
//! * **monotone systems and fair rewriting** (Def 2.3–2.5, Thm 2.1):
//!   [`system`], [`service`], [`invoke`], [`engine`];
//! * **positive queries** (Def 3.1, Prop 3.1): [`pattern`], [`query`],
//!   [`matcher`], [`eval`];
//! * **dependency graphs, acyclic systems** (Def 3.2): [`depgraph`];
//! * **regular-tree graph representations and decidable termination for
//!   simple systems** (Lemma 3.2, Thm 3.3): [`regular`], [`graphrepr`];
//! * **fire-once semantics** (§4): [`fireonce`];
//! * **lazy query evaluation** (§4): [`lazy`];
//! * **regular path expressions and the ψ translation** (§5, Prop 5.1):
//!   [`pathexpr`], [`translate`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod depgraph;
pub mod display;
pub mod engine;
pub mod error;
pub mod eval;
pub mod invoke;
pub mod forest;
pub mod gensys;
pub mod matcher;
pub mod parse;
pub mod pathexpr;
pub mod pattern;
pub mod file;
pub mod fireonce;
pub mod graphrepr;
pub mod lazy;
pub mod query;
pub mod regular;
pub mod reduce;
pub mod service;
pub mod subsume;
pub mod sym;
pub mod system;
pub mod translate;
pub mod tree;

pub use depgraph::{read_set, ReadSet};
pub use error::{AxmlError, Result};
pub use forest::Forest;
pub use engine::{run, EngineConfig, EngineMode, RunStats, RunStatus, Strategy};
pub use eval::{snapshot, snapshot_with_cache, Env, MatchCache};
pub use invoke::{invoke_node, invoke_node_cached};
pub use parse::{parse_document, parse_pattern, parse_tree};
pub use query::{parse_query, Query};
pub use system::System;
pub use reduce::{canonical_key, lub, reduce, CanonKey};
pub use subsume::{compare, equivalent, subsumed};
pub use sym::Sym;
pub use tree::{Marking, NodeId, Tree};
