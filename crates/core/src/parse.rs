//! Parser for the paper's compact tree syntax, extended with variable
//! sigils for patterns and a rule syntax for queries.
//!
//! Tree grammar (whitespace-insensitive):
//!
//! ```text
//! tree     := node
//! node     := label | func | value | var
//! label    := IDENT group?
//! func     := '@' IDENT group?
//! value    := STRING                     // "quoted", leaf only
//! group    := '{' node (',' node)* '}'
//! ```
//!
//! The paper typesets function names in bold; we prefix them with `@`:
//! `directory{cd{title{"L'amour"}}, @FreeMusicDB{type{"Jazz"}}}`.
//!
//! Pattern variables (only meaningful when parsing *patterns*):
//!
//! * `?x`  — label variable (may have children),
//! * `@?f` — function variable (may have children),
//! * `$x`  — value variable (leaf),
//! * `#X`  — tree variable (leaf).
//!
//! Queries are parsed by [`crate::query::parse_query`] using the
//! crate-internal `parse_pattern_at` for their head and body patterns.

use crate::error::{AxmlError, Result};
use crate::pattern::{PItem, Pattern};
use crate::sym::Sym;
use crate::tree::{Marking, Tree};

pub(crate) struct Lexer<'a> {
    src: &'a [u8],
    pub pos: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    pub fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(AxmlError::Parse {
            pos: self.pos,
            msg: msg.into(),
        })
    }

    pub fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    pub fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    pub fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    pub fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub fn expect(&mut self, c: u8) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(format!("expected {:?}", c as char))
        }
    }

    pub fn at_end(&mut self) -> bool {
        self.peek().is_none()
    }

    fn is_ident_byte(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.'
    }

    pub fn ident(&mut self) -> Result<Sym> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && Self::is_ident_byte(self.src[self.pos]) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected identifier");
        }
        let s = std::str::from_utf8(&self.src[start..self.pos])
            .expect("identifier bytes are ASCII");
        Ok(Sym::intern(s))
    }

    pub fn string(&mut self) -> Result<Sym> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut out = String::new();
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b == b'"' {
                self.pos += 1;
                return Ok(Sym::intern(&out));
            }
            if b == b'\\' && self.pos + 1 < self.src.len() {
                self.pos += 1;
                out.push(self.src[self.pos] as char);
            } else {
                out.push(b as char);
            }
            self.pos += 1;
        }
        self.pos = start;
        self.err("unterminated string literal")
    }
}

/// Parse a tree in compact syntax. The root may be any marking (including
/// a function node, for intermediate trees); use [`parse_document`] when
/// Definition 2.1 (ii) must hold.
pub fn parse_tree(src: &str) -> Result<Tree> {
    let mut lx = Lexer::new(src);
    let t = parse_tree_at(&mut lx)?;
    if !lx.at_end() {
        return lx.err("trailing input after tree");
    }
    Ok(t)
}

/// Parse a *document*: a tree whose root is a label or a value.
pub fn parse_document(src: &str) -> Result<Tree> {
    let t = parse_tree(src)?;
    t.validate_document_root()?;
    Ok(t)
}

pub(crate) fn parse_tree_at(lx: &mut Lexer<'_>) -> Result<Tree> {
    let marking = parse_marking(lx)?;
    let mut t = Tree::new(marking);
    let root = t.root();
    if lx.eat(b'{') {
        if marking.is_value() {
            return lx.err("atomic values are leaves and take no children");
        }
        loop {
            parse_node_into(lx, &mut t, root)?;
            if !lx.eat(b',') {
                break;
            }
        }
        lx.expect(b'}')?;
    }
    Ok(t)
}

fn parse_marking(lx: &mut Lexer<'_>) -> Result<Marking> {
    match lx.peek() {
        Some(b'@') => {
            lx.bump();
            Ok(Marking::Func(lx.ident()?))
        }
        Some(b'"') => Ok(Marking::Value(lx.string()?)),
        Some(_) => Ok(Marking::Label(lx.ident()?)),
        None => lx.err("expected a node"),
    }
}

fn parse_node_into(lx: &mut Lexer<'_>, t: &mut Tree, parent: crate::tree::NodeId) -> Result<()> {
    let marking = parse_marking(lx)?;
    let id = t.add_child(parent, marking).map_err(|_| AxmlError::Parse {
        pos: lx.pos,
        msg: "values cannot have children".into(),
    })?;
    if lx.eat(b'{') {
        if marking.is_value() {
            return lx.err("atomic values are leaves and take no children");
        }
        loop {
            parse_node_into(lx, t, id)?;
            if !lx.eat(b',') {
                break;
            }
        }
        lx.expect(b'}')?;
    }
    Ok(())
}

/// Parse a pattern (tree syntax plus variable sigils).
pub fn parse_pattern(src: &str) -> Result<Pattern> {
    let mut lx = Lexer::new(src);
    let p = parse_pattern_at(&mut lx)?;
    if !lx.at_end() {
        return lx.err("trailing input after pattern");
    }
    Ok(p)
}

pub(crate) fn parse_pattern_at(lx: &mut Lexer<'_>) -> Result<Pattern> {
    let item = parse_pitem(lx)?;
    let mut p = Pattern::new(item.clone());
    let root = p.root();
    if lx.eat(b'{') {
        if leafy(&item) {
            return lx.err("value/tree variables and values are pattern leaves");
        }
        loop {
            parse_pnode_into(lx, &mut p, root)?;
            if !lx.eat(b',') {
                break;
            }
        }
        lx.expect(b'}')?;
    }
    Ok(p)
}

fn leafy(item: &PItem) -> bool {
    matches!(
        item,
        PItem::ValueVar(_) | PItem::TreeVar(_) | PItem::Const(Marking::Value(_))
    )
}

pub(crate) fn parse_pitem(lx: &mut Lexer<'_>) -> Result<PItem> {
    match lx.peek() {
        Some(b'@') => {
            lx.bump();
            if lx.eat(b'?') {
                Ok(PItem::FuncVar(lx.ident()?))
            } else {
                Ok(PItem::Const(Marking::Func(lx.ident()?)))
            }
        }
        Some(b'?') => {
            lx.bump();
            Ok(PItem::LabelVar(lx.ident()?))
        }
        Some(b'$') => {
            lx.bump();
            Ok(PItem::ValueVar(lx.ident()?))
        }
        Some(b'#') => {
            lx.bump();
            Ok(PItem::TreeVar(lx.ident()?))
        }
        Some(b'"') => Ok(PItem::Const(Marking::Value(lx.string()?))),
        Some(_) => Ok(PItem::Const(Marking::Label(lx.ident()?))),
        None => lx.err("expected a pattern node"),
    }
}

fn parse_pnode_into(lx: &mut Lexer<'_>, p: &mut Pattern, parent: crate::pattern::PNodeId) -> Result<()> {
    let item = parse_pitem(lx)?;
    let id = p.add_child(parent, item.clone())?;
    if lx.eat(b'{') {
        if leafy(&item) {
            return lx.err("value/tree variables and values are pattern leaves");
        }
        loop {
            parse_pnode_into(lx, p, id)?;
            if !lx.eat(b',') {
                break;
            }
        }
        lx.expect(b'}')?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Marking;

    #[test]
    fn parse_jazz_portal_document() {
        let doc = parse_document(
            r#"directory{
                cd{title{"L'amour"}, singer{"Carla Bruni"}, rating{"***"}},
                cd{title{"Body and Soul"}, singer{"Billie Holiday"}, @GetRating{"Body and Soul"}},
                cd{title{"Where or When"}, singer{"Peggy Lee"}, rating{"*****"}},
                @FreeMusicDB{type{"Jazz"}},
                @GetMusicMoz{@FindSingerOf{"Hotel California"}}
            }"#,
        )
        .unwrap();
        assert_eq!(doc.marking(doc.root()), Marking::label("directory"));
        assert_eq!(doc.function_nodes().len(), 4); // GetRating, FreeMusicDB, GetMusicMoz, FindSingerOf
        assert_eq!(doc.children(doc.root()).len(), 5);
    }

    #[test]
    fn function_root_rejected_for_documents() {
        assert!(parse_document("@f{a}").is_err());
        assert!(parse_tree("@f{a}").is_ok());
    }

    #[test]
    fn values_cannot_nest() {
        assert!(parse_tree(r#"a{"v"{b}}"#).is_err());
        assert!(parse_tree(r#""v"{b}"#).is_err());
    }

    #[test]
    fn string_escapes() {
        let t = parse_tree(r#"a{"say \"hi\""}"#).unwrap();
        let child = t.children(t.root())[0];
        assert_eq!(t.marking(child), Marking::value("say \"hi\""));
    }

    #[test]
    fn unbalanced_braces_error() {
        assert!(parse_tree("a{b").is_err());
        assert!(parse_tree("a{b}}").is_err());
        assert!(parse_tree("a{}").is_err());
    }

    #[test]
    fn pattern_variables() {
        let p = parse_pattern(r#"directory{cd{title{$x}, singer{"Carla Bruni"}, ?l, #Z}}"#).unwrap();
        assert_eq!(p.node_count(), 8);
        assert!(parse_pattern("a{$x{b}}").is_err()); // value var leaf only
        assert!(parse_pattern("a{#X{b}}").is_err()); // tree var leaf only
        assert!(parse_pattern("a{?l{b}, @?f{c}}").is_ok()); // label/func vars may nest
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_tree("a{b , c{ d } }").unwrap();
        let b = parse_tree("a{b,c{d}}").unwrap();
        assert!(crate::subsume::equivalent(&a, &b));
    }
}
