//! Query compilation: lower positive patterns to cached, optimized
//! match programs.
//!
//! Every service's positive query is fixed for the lifetime of the
//! system, yet the interpreter ([`crate::matcher::match_pattern_with`])
//! re-walks the same pattern AST and re-derives the same join order on
//! every invocation. This module compiles each query once:
//!
//! 1. **Lower** the conjunctive tree patterns into a plan IR
//!    ([`QueryPlan`] of [`PlanNode`]s), annotated with selectivity
//!    estimates read from the live [`crate::index::DocIndex`] statistics
//!    (without ever *building* an index — see
//!    [`crate::tree::Tree::indexed_nodes_if_built`]).
//! 2. **Optimize** the IR: duplicate-conjunct elimination, dead
//!    ground-conjunct elimination ([`eliminate_conjuncts`]), and static
//!    join reordering by estimated selectivity ([`reorder_children`]).
//! 3. **Emit** a flat [`MatchProgram`] — a bytecode-like op vector where
//!    structurally identical subpatterns are hash-consed into shared ops
//!    ([common-subpattern factoring]) — executed by a compact,
//!    decorrelated register/binding evaluator instead of the recursive
//!    AST interpretation.
//!
//! [common-subpattern factoring]: MatchProgram::shared_count
//!
//! # Equivalence with the interpreter
//!
//! The compiled executor is bit-for-bit equivalent to the interpreter:
//! [`MatchProgram::run_atom`] returns exactly the vector
//! [`match_pattern_with`](crate::matcher::match_pattern_with) returns.
//! The argument:
//!
//! * The interpreter's output is a *canonical* representation of the
//!   set of embeddings — every intermediate level is sorted and
//!   deduplicated, and the top level is sorted — so any evaluator that
//!   produces the same embedding **set** produces the same **vector**.
//! * Decorrelation preserves the set: `match_at(pc, tc, base)` equals
//!   `{ base ⊔ e | e ∈ match_at(pc, tc, ∅) }` (pattern items bind
//!   variables from the document node alone; the seed only prunes
//!   conflicts, which [`Binding::merge`] prunes identically), and the
//!   map `e ↦ base ⊔ e` is injective on a fixed variable domain.
//! * Each optimization pass is set-preserving: a duplicate atom's
//!   self-join is idempotent, an eliminated ground atom is implied by a
//!   surviving *earlier* same-document atom (so error order and
//!   empty-result short-circuits are also preserved), and join order
//!   does not change the joined set (the runtime still re-sorts by
//!   actual candidate-set size, exactly like the interpreter — the
//!   static reorder only changes tie-breaks among equal sizes).
//!
//! What *may* differ: per-atom match statistics (the decorrelated
//! executor probes each `(op, node)` pair once where the interpreter
//! probes per seed binding, so compiled probe counts are ≤ interpreted)
//! and [`crate::eval::EvalStats::atom_bindings`] for eliminated atoms.
//!
//! # Caching and invalidation
//!
//! Compiled programs live in a [`ProgramCache`] keyed by
//! `(service, strategy)` and validated against an *index generation*:
//! the vector of `(document id, index built?)` pairs over the query's
//! stored documents. A document index crossing its lazy build threshold
//! (or a document being replaced wholesale, which allocates a fresh
//! tree id) flips the generation and forces a recompile with fresh
//! selectivity statistics. The reserved `input`/`context` documents are
//! fresh trees on every invocation and are excluded from the
//! generation. The cache also memoizes the per-service artifacts of the
//! regular-path machinery: prebuilt path NFAs
//! ([`crate::pathexpr::CompiledRegQuery`]) and ψ translations
//! ([`crate::translate::Translation`]), so path services stop paying
//! automaton construction and translation cost per run.
//!
//! # Escape hatch
//!
//! Setting `AXML_FORCE_INTERPRET=1` flips the *default* of
//! [`crate::engine::EngineConfig::compile`] to `false`, keeping every
//! engine run on the interpreter; explicit config settings always win.

use std::borrow::Cow;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::error::Result;
use crate::eval::Env;
use crate::matcher::{bind_item, candidates, Binding, MatchStats, MatchStrategy};
use crate::pathexpr::{CompiledRegQuery, RegQuery};
use crate::pattern::{PItem, Pattern, PNodeId};
use crate::query::Query;
use crate::sym::{FxHashMap, Sym};
use crate::system::{context_sym, input_sym, System};
use crate::trace::{EventKind, Tracer};
use crate::translate::{translate, Translation};
use crate::tree::{NodeId, Tree};

/// Is the `AXML_FORCE_INTERPRET` escape hatch set? Read once per
/// process (same pattern as the engine's `AXML_WORKERS`); it only flips
/// the *default* of [`crate::engine::EngineConfig::compile`] — explicit
/// config settings always win, so differential tests can exercise both
/// paths regardless of the environment.
pub fn force_interpret() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("AXML_FORCE_INTERPRET")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Estimated selectivity of one match op, used by the static join
/// reorder pass. The derived order *is* the pass's preference order:
/// smaller sorts earlier, i.e. is expanded first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Selectivity {
    /// A constant whose marking-index bucket size is known (the
    /// document's index was already built at compile time).
    Bucket(u64),
    /// A constant without live statistics (index not built yet, scan
    /// strategy, or unknown document).
    ConstUnknown,
    /// A label/function/value variable: matches one node kind.
    KindVar,
    /// A tree variable: matches every child.
    Any,
}

/// One node of the plan IR: a pattern item plus its (statically
/// ordered) children, annotated for the optimization passes.
#[derive(Clone, Debug)]
pub struct PlanNode {
    /// The match test this node performs.
    pub item: PItem,
    /// Estimated selectivity of the test (see [`Selectivity`]).
    pub sel: Selectivity,
    /// No variables anywhere in this subtree — the emitted op becomes a
    /// pure existence test (no binding is ever cloned for it).
    pub ground: bool,
    /// Children, in the order the reorder pass chose.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// Node count of this plan subtree (itself included).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PlanNode::size).sum::<usize>()
    }
}

/// One retained body atom of a [`QueryPlan`].
#[derive(Clone, Debug)]
pub struct PlanAtom {
    /// The atom's position in the *original* query body — kept so
    /// per-atom cache keys and trace events stay stable across
    /// conjunct elimination.
    pub index: usize,
    /// The document the atom matches against.
    pub doc: Sym,
    /// The lowered, optimized pattern.
    pub root: PlanNode,
}

/// Why a conjunct was eliminated (reported by [`CompiledQuery::dump`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElimReason {
    /// Structurally identical to an earlier surviving atom over the
    /// same document: the self-join is idempotent.
    Duplicate {
        /// Original body index of the surviving witness.
        of: usize,
    },
    /// A ground (variable-free) atom implied by an earlier surviving
    /// atom over the same document: whenever the witness matches, so
    /// does this atom, and whenever it fails the witness already made
    /// the join empty.
    ImpliedGround {
        /// Original body index of the surviving witness.
        by: usize,
    },
}

/// The optimized plan IR of one query: retained atoms plus the record
/// of what the elimination pass removed.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Retained body atoms, in original body order.
    pub atoms: Vec<PlanAtom>,
    /// Eliminated conjuncts as `(original index, reason)`.
    pub eliminated: Vec<(usize, ElimReason)>,
}

/// Id of an op inside a [`MatchProgram`].
pub type OpId = u32;

/// One instruction of an emitted [`MatchProgram`]: match this item at
/// the current document node, then join the child ops over the node's
/// children.
#[derive(Clone, Debug)]
pub struct MatchOp {
    /// The match test this op performs.
    pub item: PItem,
    /// Child ops, in statically optimized order (the executor still
    /// re-sorts by live candidate-set size at runtime, stably, exactly
    /// like the interpreter).
    pub children: Vec<OpId>,
    /// This subtree binds no variables: executed as an existence test.
    pub ground: bool,
    /// No children: binding against a pre-filtered candidate is all
    /// that is left to do.
    pub leaf: bool,
    /// Referenced more than once after hash-consing (common-subpattern
    /// factoring); the executor memoizes its relation per document node.
    pub shared: bool,
}

/// Entry point of one retained atom inside a [`MatchProgram`].
#[derive(Clone, Copy, Debug)]
pub struct AtomCode {
    /// Position in the original query body (cache/event key).
    pub index: usize,
    /// Document name the atom matches against.
    pub doc: Sym,
    /// Root op of the atom's pattern.
    pub root: OpId,
}

/// A compiled match program: the flat op vector emitted from a
/// [`QueryPlan`], executed by a decorrelated evaluator that computes
/// each op's relation once per document node and merge-joins it with
/// the accumulated bindings (instead of the interpreter's per-seed
/// re-embedding).
#[derive(Clone, Debug)]
pub struct MatchProgram {
    strategy: MatchStrategy,
    ops: Vec<MatchOp>,
    atoms: Vec<AtomCode>,
}

impl MatchProgram {
    /// The match strategy this program was emitted for.
    pub fn strategy(&self) -> MatchStrategy {
        self.strategy
    }

    /// The flat op vector.
    pub fn ops(&self) -> &[MatchOp] {
        &self.ops
    }

    /// The retained atoms' entry points, in original body order.
    pub fn atoms(&self) -> &[AtomCode] {
        &self.atoms
    }

    /// Ops referenced more than once (factored common subpatterns).
    pub fn shared_count(&self) -> usize {
        self.ops.iter().filter(|o| o.shared).count()
    }

    /// Execute the atom at position `pos` (of [`MatchProgram::atoms`])
    /// against document `t`. Returns exactly what
    /// [`crate::matcher::match_pattern_with`] returns for the original
    /// pattern: the sorted vector of all satisfying assignments, plus
    /// index-usage counters (compiled probe counts are ≤ interpreted —
    /// each `(op, node)` pair is probed once, not once per seed).
    pub fn run_atom(&self, pos: usize, t: &Tree) -> (Vec<Binding>, MatchStats) {
        let mut ex = Exec {
            prog: self,
            t,
            stats: MatchStats::default(),
            memo: FxHashMap::default(),
        };
        let mut out = ex.eval(self.atoms[pos].root, t.root());
        out.sort_unstable();
        (out, ex.stats)
    }
}

/// A query compiled end to end: the optimized plan IR (kept for
/// inspection) plus the emitted program.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    plan: QueryPlan,
    program: MatchProgram,
}

impl CompiledQuery {
    /// The optimized plan IR.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The emitted match program.
    pub fn program(&self) -> &MatchProgram {
        &self.program
    }

    /// Pretty-print the optimized IR and the emitted program — the
    /// payload of `axml-inspect plan`.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan: {} atoms retained, {} eliminated",
            self.plan.atoms.len(),
            self.plan.eliminated.len()
        );
        for atom in &self.plan.atoms {
            let _ = writeln!(out, "  atom #{} doc {}", atom.index, atom.doc);
            fn node(out: &mut String, n: &PlanNode, depth: usize) {
                let sel = match n.sel {
                    Selectivity::Bucket(k) => format!("bucket {k}"),
                    Selectivity::ConstUnknown => "const".into(),
                    Selectivity::KindVar => "kind-var".into(),
                    Selectivity::Any => "any".into(),
                };
                let ground = if n.ground { "  ground" } else { "" };
                let _ = writeln!(
                    out,
                    "    {:indent$}{}  ~{sel}{ground}",
                    "",
                    n.item,
                    indent = depth * 2
                );
                for c in &n.children {
                    node(out, c, depth + 1);
                }
            }
            node(&mut out, &atom.root, 0);
        }
        for (i, reason) in &self.plan.eliminated {
            let why = match reason {
                ElimReason::Duplicate { of } => format!("duplicate of #{of}"),
                ElimReason::ImpliedGround { by } => {
                    format!("ground, implied by #{by}")
                }
            };
            let _ = writeln!(out, "  eliminated #{i}: {why}");
        }
        let _ = writeln!(
            out,
            "program: strategy {:?}, {} ops ({} shared)",
            self.program.strategy,
            self.program.ops.len(),
            self.program.shared_count()
        );
        for (i, op) in self.program.ops.iter().enumerate() {
            let kids = op
                .children
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let kind = if op.leaf { "leaf" } else { "join" };
            let mut flags = String::new();
            if op.ground {
                flags.push_str("  ground");
            }
            if op.shared {
                flags.push_str("  shared");
            }
            let _ = writeln!(out, "  [{i}] {kind}  {}  {{{kids}}}{flags}", op.item);
        }
        for atom in &self.program.atoms {
            let _ = writeln!(
                out,
                "  atom #{} doc {} -> op {}",
                atom.index, atom.doc, atom.root
            );
        }
        out
    }

    /// Execute atom `pos` against `t` — see [`MatchProgram::run_atom`].
    pub fn run_atom(&self, pos: usize, t: &Tree) -> (Vec<Binding>, MatchStats) {
        self.program.run_atom(pos, t)
    }
}

// ---------------------------------------------------------------------
// Lowering and optimization passes
// ---------------------------------------------------------------------

/// Is ground pattern `a` implied by pattern `b` — i.e. does every
/// document (node) matched by `b` also match `a`? Witnessed by a
/// root-to-root homomorphism from `a` into `b` mapping each node to a
/// node with the *identical* item and each child edge to a child edge.
/// Sound only for ground `a` (for variable items the binding domains
/// would differ); callers enforce that.
pub fn ground_implied(a: &Pattern, b: &Pattern) -> bool {
    fn emb(a: &Pattern, an: PNodeId, b: &Pattern, bn: PNodeId) -> bool {
        a.item(an) == b.item(bn)
            && a.children(an)
                .iter()
                .all(|&ac| b.children(bn).iter().any(|&bc| emb(a, ac, b, bc)))
    }
    emb(a, a.root(), b, b.root())
}

/// The dead/duplicate conjunct elimination pass. Returns the retained
/// original body indices (in order) and the eliminated ones with
/// reasons. Every eliminated atom has an *earlier surviving* witness
/// over the same document, which preserves the interpreter's error
/// order (`UnknownDocument` fires at the witness first) and its
/// empty-result short-circuits (the witness's relation empties first).
pub fn eliminate_conjuncts(q: &Query) -> (Vec<usize>, Vec<(usize, ElimReason)>) {
    let n = q.body.len();
    let mut removed: Vec<Option<ElimReason>> = vec![None; n];
    for i in 0..n {
        let ai = &q.body[i];
        let earlier_survivors: Vec<usize> =
            (0..i).filter(|&j| removed[j].is_none()).collect();
        if let Some(&j) = earlier_survivors.iter().find(|&&j| {
            q.body[j].doc == ai.doc && q.body[j].pattern.structurally_eq(&ai.pattern)
        }) {
            removed[i] = Some(ElimReason::Duplicate { of: j });
            continue;
        }
        if ai.pattern.is_ground() {
            if let Some(&j) = earlier_survivors.iter().find(|&&j| {
                q.body[j].doc == ai.doc && ground_implied(&ai.pattern, &q.body[j].pattern)
            }) {
                removed[i] = Some(ElimReason::ImpliedGround { by: j });
            }
        }
    }
    let kept = (0..n).filter(|&i| removed[i].is_none()).collect();
    let eliminated = removed
        .into_iter()
        .enumerate()
        .filter_map(|(i, r)| r.map(|r| (i, r)))
        .collect();
    (kept, eliminated)
}

/// Estimate the selectivity of one item against an (optional) live
/// document. Reads the marking index only if it is *already built* —
/// estimation must never perturb the lazy build timing the matcher's
/// own probes control.
pub fn estimate(item: &PItem, doc: Option<&Tree>, strategy: MatchStrategy) -> Selectivity {
    match item {
        PItem::Const(m) => {
            if strategy == MatchStrategy::Indexed {
                if let Some(bucket) = doc.and_then(|t| t.indexed_nodes_if_built(*m)) {
                    return Selectivity::Bucket(bucket.len() as u64);
                }
            }
            Selectivity::ConstUnknown
        }
        PItem::LabelVar(_) | PItem::FuncVar(_) | PItem::ValueVar(_) => Selectivity::KindVar,
        PItem::TreeVar(_) => Selectivity::Any,
    }
}

/// The static join-reorder pass: stable-sort every node's children by
/// estimated selectivity, recursively. Purely a performance heuristic —
/// the executor re-sorts by *actual* candidate-set size at runtime
/// (stably, like the interpreter), so the final binding set is
/// independent of this order; the pass only improves tie-breaks and
/// bails earlier on empty candidate sets.
pub fn reorder_children(n: &mut PlanNode) {
    for c in &mut n.children {
        reorder_children(c);
    }
    n.children.sort_by_key(|c| c.sel);
}

fn lower_node(
    p: &Pattern,
    pn: PNodeId,
    doc: Option<&Tree>,
    strategy: MatchStrategy,
) -> PlanNode {
    let children: Vec<PlanNode> = p
        .children(pn)
        .iter()
        .map(|&c| lower_node(p, c, doc, strategy))
        .collect();
    let item = p.item(pn).clone();
    let ground = matches!(item, PItem::Const(_)) && children.iter().all(|c| c.ground);
    PlanNode {
        sel: estimate(&item, doc, strategy),
        item,
        ground,
        children,
    }
}

/// Compile a query end to end: eliminate conjuncts, lower the retained
/// atoms (resolving selectivity statistics against `env`'s documents
/// when given), reorder, and emit the hash-consed program.
pub fn compile_query(
    q: &Query,
    env: Option<&Env<'_>>,
    strategy: MatchStrategy,
) -> CompiledQuery {
    let (kept, eliminated) = eliminate_conjuncts(q);
    let mut atoms = Vec::with_capacity(kept.len());
    for i in kept {
        let atom = &q.body[i];
        let doc = env.and_then(|e| e.get(atom.doc));
        let mut root = lower_node(&atom.pattern, atom.pattern.root(), doc, strategy);
        reorder_children(&mut root);
        atoms.push(PlanAtom {
            index: i,
            doc: atom.doc,
            root,
        });
    }
    let plan = QueryPlan { atoms, eliminated };
    let program = emit(&plan, strategy);
    CompiledQuery { plan, program }
}

/// Emit the flat program from an optimized plan, hash-consing
/// structurally identical subtrees (common-subpattern factoring): the
/// cons key is `(item, child op ids)`, so two occurrences of the same
/// subpattern — within one atom or across a service's conjuncts — share
/// one op, which the executor then memoizes per document node.
fn emit(plan: &QueryPlan, strategy: MatchStrategy) -> MatchProgram {
    fn go(
        n: &PlanNode,
        ops: &mut Vec<MatchOp>,
        refs: &mut Vec<u32>,
        cons: &mut FxHashMap<(PItem, Vec<OpId>), OpId>,
    ) -> OpId {
        let children: Vec<OpId> = n.children.iter().map(|c| go(c, ops, refs, cons)).collect();
        let key = (n.item.clone(), children.clone());
        if let Some(&id) = cons.get(&key) {
            refs[id as usize] += 1;
            return id;
        }
        let id = ops.len() as OpId;
        ops.push(MatchOp {
            item: n.item.clone(),
            leaf: children.is_empty(),
            children,
            ground: n.ground,
            shared: false,
        });
        refs.push(1);
        cons.insert(key, id);
        id
    }
    let mut ops = Vec::new();
    let mut refs = Vec::new();
    let mut cons = FxHashMap::default();
    let atoms = plan
        .atoms
        .iter()
        .map(|a| AtomCode {
            index: a.index,
            doc: a.doc,
            root: go(&a.root, &mut ops, &mut refs, &mut cons),
        })
        .collect();
    for (i, op) in ops.iter_mut().enumerate() {
        // Memoizing a leaf costs more than re-binding it; only join ops
        // are worth a table entry.
        op.shared = refs[i] > 1 && !op.leaf;
    }
    MatchProgram {
        strategy,
        ops,
        atoms,
    }
}

// ---------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------

/// The compact execution frame: the program, the document, running
/// index-usage counters, and the per-run memo table for shared ops.
struct Exec<'p, 't> {
    prog: &'p MatchProgram,
    t: &'t Tree,
    stats: MatchStats,
    memo: FxHashMap<(OpId, NodeId), Arc<Vec<Binding>>>,
}

impl<'t> Exec<'_, 't> {
    /// The relation of op `op` rooted at document node `tn`: the
    /// sorted, duplicate-free vector of all embeddings of the op's
    /// subtree at `tn` (over the empty seed — decorrelated).
    fn eval(&mut self, op: OpId, tn: NodeId) -> Vec<Binding> {
        let prog = self.prog;
        let t = self.t;
        let o = &prog.ops[op as usize];
        let Some(b0) = bind_item(&o.item, t, tn, &Binding::new()) else {
            return Vec::new();
        };
        if o.children.is_empty() {
            return vec![b0];
        }
        // All child candidate sets up front — same probe accounting and
        // same all-or-nothing bail as the interpreter.
        let mut cands: Vec<(OpId, Cow<'t, [NodeId]>)> = o
            .children
            .iter()
            .map(|&c| {
                (
                    c,
                    candidates(&prog.ops[c as usize].item, t, tn, prog.strategy, &mut self.stats),
                )
            })
            .collect();
        if cands.iter().any(|(_, c)| c.is_empty()) {
            return Vec::new();
        }
        // Rarest candidate set first; stable, so the static order from
        // the reorder pass breaks ties.
        cands.sort_by_key(|(_, c)| c.len());
        let mut current: Vec<Binding> = vec![b0];
        for (c, tcs) in cands {
            if prog.ops[c as usize].ground {
                // A ground child's relation is {∅} or ∅: an existence
                // test with early exit, never a binding clone.
                if !tcs.iter().any(|&tc| self.exists(c, tc)) {
                    return Vec::new();
                }
                continue;
            }
            let crel = self.child_relation(c, &tcs);
            if crel.is_empty() {
                return Vec::new();
            }
            let mut next: Vec<Binding> = Vec::new();
            for base in &current {
                for m in crel.iter() {
                    if let Some(joined) = base.merge(m) {
                        next.push(joined);
                    }
                }
            }
            if next.len() > 1 {
                next.sort_unstable();
                next.dedup();
            }
            if next.is_empty() {
                return Vec::new();
            }
            current = next;
        }
        current
    }

    /// The union of a child op's relations over its candidate nodes,
    /// computed once per join level (this is the decorrelation: the
    /// interpreter re-embeds per seed binding × candidate).
    fn child_relation(&mut self, op: OpId, tcs: &[NodeId]) -> Vec<Binding> {
        let mut crel: Vec<Binding> = Vec::new();
        if self.prog.ops[op as usize].leaf {
            for &tc in tcs {
                if let Some(nb) = bind_item(&self.prog.ops[op as usize].item, self.t, tc, &Binding::new())
                {
                    crel.push(nb);
                }
            }
        } else {
            for &tc in tcs {
                let sub = self.eval_memo(op, tc);
                crel.extend(sub.iter().cloned());
            }
        }
        crel.sort_unstable();
        crel.dedup();
        crel
    }

    /// [`Exec::eval`], memoized per `(op, node)` for shared ops.
    fn eval_memo(&mut self, op: OpId, tn: NodeId) -> Arc<Vec<Binding>> {
        if !self.prog.ops[op as usize].shared {
            return Arc::new(self.eval(op, tn));
        }
        if let Some(hit) = self.memo.get(&(op, tn)) {
            return Arc::clone(hit);
        }
        let r = Arc::new(self.eval(op, tn));
        self.memo.insert((op, tn), Arc::clone(&r));
        r
    }

    /// Does the (ground) op's subtree embed at `tn`? Children of a
    /// ground subtree share no variables, so each just needs *some*
    /// embedding among its candidates — checked with early exit.
    fn exists(&mut self, op: OpId, tn: NodeId) -> bool {
        let prog = self.prog;
        let t = self.t;
        let o = &prog.ops[op as usize];
        if bind_item(&o.item, t, tn, &Binding::new()).is_none() {
            return false;
        }
        if o.children.is_empty() {
            return true;
        }
        let cands: Vec<(OpId, Cow<'t, [NodeId]>)> = o
            .children
            .iter()
            .map(|&c| {
                (
                    c,
                    candidates(&prog.ops[c as usize].item, t, tn, prog.strategy, &mut self.stats),
                )
            })
            .collect();
        if cands.iter().any(|(_, cs)| cs.is_empty()) {
            return false;
        }
        cands
            .into_iter()
            .all(|(c, tcs)| tcs.iter().any(|&tc| self.exists(c, tc)))
    }
}

// ---------------------------------------------------------------------
// The program cache
// ---------------------------------------------------------------------

/// Index generation of a query against an environment: `(document id,
/// index built?)` per stored document the body mentions, in
/// [`Query::doc_names`] order. The reserved `input`/`context` documents
/// are fresh per invocation and excluded; unknown documents contribute
/// a sentinel (resolution errors stay a *runtime* concern so the
/// compiled path errors in exactly the interpreter's order).
fn generation(q: &Query, env: &Env<'_>) -> Vec<(u64, bool)> {
    q.doc_names()
        .into_iter()
        .filter(|&d| d != input_sym() && d != context_sym())
        .map(|d| {
            env.get(d)
                .map_or((u64::MAX, false), |t| (t.id(), t.index_is_built()))
        })
        .collect()
}

struct ProgramEntry {
    generation: Vec<(u64, bool)>,
    compiled: Arc<CompiledQuery>,
}

struct PsiEntry {
    generation: Vec<(u64, u64)>,
    translation: Arc<Translation>,
}

/// The per-engine (or per-worker) cache of compiled artifacts:
/// match programs keyed by `(service, strategy)` and validated against
/// the index generation, plus the regular-path machinery's per-service
/// memos (prebuilt path NFAs, ψ translations). See the module docs for
/// the invalidation story.
#[derive(Default)]
pub struct ProgramCache {
    programs: FxHashMap<(Sym, MatchStrategy), ProgramEntry>,
    reg: FxHashMap<Sym, Arc<CompiledRegQuery>>,
    psi: FxHashMap<Sym, PsiEntry>,
    hits: u64,
    misses: u64,
    compiles: u64,
    compile_ns: u64,
}

impl ProgramCache {
    /// Fresh, empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Lookups answered from cache (programs, NFAs, and translations).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to (re)compile.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Compilations performed (misses that ran the pipeline).
    pub fn compiles(&self) -> u64 {
        self.compiles
    }

    /// Total nanoseconds spent compiling (programs and translations).
    pub fn compile_ns(&self) -> u64 {
        self.compile_ns
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.programs.len() + self.reg.len() + self.psi.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The compiled program for service `svc`'s query under `strategy`,
    /// compiling on miss or when the index generation moved (a document
    /// index crossed its build threshold, or a document was replaced).
    /// Emits [`EventKind::ProgramCacheHit`] / [`EventKind::ProgramCacheMiss`]
    /// and, on compilation, [`EventKind::PlanCompiled`].
    pub fn lookup(
        &mut self,
        svc: Sym,
        q: &Query,
        env: &Env<'_>,
        strategy: MatchStrategy,
        tracer: Tracer<'_>,
    ) -> Arc<CompiledQuery> {
        let generation = generation(q, env);
        if let Some(e) = self.programs.get(&(svc, strategy)) {
            if e.generation == generation {
                self.hits += 1;
                tracer.emit(|| EventKind::ProgramCacheHit { service: svc });
                return Arc::clone(&e.compiled);
            }
        }
        self.misses += 1;
        tracer.emit(|| EventKind::ProgramCacheMiss { service: svc });
        let t0 = Instant::now();
        let compiled = Arc::new(compile_query(q, Some(env), strategy));
        let dur_ns = t0.elapsed().as_nanos() as u64;
        self.compiles += 1;
        self.compile_ns += dur_ns;
        tracer.emit(|| EventKind::PlanCompiled {
            service: svc,
            atoms: compiled.program.atoms.len() as u32,
            ops: compiled.program.ops.len() as u32,
            shared: compiled.program.shared_count() as u32,
            dur_ns,
        });
        self.programs.insert(
            (svc, strategy),
            ProgramEntry {
                generation,
                compiled: Arc::clone(&compiled),
            },
        );
        compiled
    }

    /// The compile-once form of service `svc`'s positive+reg query:
    /// every path expression's NFA prebuilt (the per-invocation rebuild
    /// was the bug this memo fixes). Reg queries carry no document
    /// statistics, so the entry never invalidates.
    pub fn reg(&mut self, svc: Sym, q: &RegQuery) -> Arc<CompiledRegQuery> {
        if let Some(e) = self.reg.get(&svc) {
            self.hits += 1;
            return Arc::clone(e);
        }
        self.misses += 1;
        let t0 = Instant::now();
        let e = Arc::new(CompiledRegQuery::new(q.clone()));
        self.compile_ns += t0.elapsed().as_nanos() as u64;
        self.compiles += 1;
        self.reg.insert(svc, Arc::clone(&e));
        e
    }

    /// The memoized ψ translation of `q` against `sys` for service
    /// `svc`, validated against every document's `(id, version)` pair —
    /// the translation plants annotations derived from document
    /// content, so any document change invalidates it.
    pub fn psi(&mut self, svc: Sym, sys: &System, q: &RegQuery) -> Result<Arc<Translation>> {
        let generation: Vec<(u64, u64)> = sys
            .doc_names()
            .iter()
            .filter_map(|&d| sys.doc(d).map(|t| (t.id(), t.version())))
            .collect();
        if let Some(e) = self.psi.get(&svc) {
            if e.generation == generation {
                self.hits += 1;
                return Ok(Arc::clone(&e.translation));
            }
        }
        self.misses += 1;
        let t0 = Instant::now();
        let translation = Arc::new(translate(sys, q)?);
        self.compile_ns += t0.elapsed().as_nanos() as u64;
        self.compiles += 1;
        self.psi.insert(
            svc,
            PsiEntry {
                generation,
                translation: Arc::clone(&translation),
            },
        );
        Ok(translation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_pattern_with;
    use crate::parse::parse_tree;
    use crate::query::parse_query;

    fn tree(s: &str) -> Tree {
        parse_tree(s).unwrap()
    }

    #[test]
    fn duplicate_conjuncts_are_eliminated_keeping_the_first() {
        let q = parse_query("h{$x} :- d/a{b{$x}}, d/a{b{$x}}, e/a{b{$x}}").unwrap();
        let (kept, elim) = eliminate_conjuncts(&q);
        assert_eq!(kept, vec![0, 2]);
        assert_eq!(elim, vec![(1, ElimReason::Duplicate { of: 0 })]);
    }

    #[test]
    fn implied_ground_conjuncts_are_eliminated() {
        // a{b} is implied by the earlier a{b{c}}: same doc, and a
        // root-to-root homomorphism maps b onto b{c}.
        let q = parse_query(r#"h :- d/a{b{c}}, d/a{b}"#).unwrap();
        let (kept, elim) = eliminate_conjuncts(&q);
        assert_eq!(kept, vec![0]);
        assert_eq!(elim, vec![(1, ElimReason::ImpliedGround { by: 0 })]);
    }

    #[test]
    fn ground_elimination_requires_an_earlier_witness() {
        // Same pair in the other order: the ground atom comes first, so
        // no earlier witness exists and nothing is eliminated (the
        // witness invariant preserves the interpreter's error order).
        let q = parse_query(r#"h :- d/a{b}, d/a{b{c}}"#).unwrap();
        let (kept, elim) = eliminate_conjuncts(&q);
        assert_eq!(kept, vec![0, 1]);
        assert!(elim.is_empty());
    }

    #[test]
    fn mutual_implication_keeps_exactly_one_atom() {
        // a{b,b} and a{b} imply each other (homomorphisms may merge
        // children); only the later one may be dropped.
        let q = parse_query(r#"h :- d/a{b}, d/a{b,b}"#).unwrap();
        let (kept, elim) = eliminate_conjuncts(&q);
        assert_eq!(kept, vec![0]);
        assert_eq!(elim, vec![(1, ElimReason::ImpliedGround { by: 0 })]);
    }

    #[test]
    fn variable_atoms_are_never_eliminated_by_implication() {
        let q = parse_query("h{$x} :- d/a{b{$x}}, d/a{b{$x},c}").unwrap();
        let (kept, elim) = eliminate_conjuncts(&q);
        assert_eq!(kept, vec![0, 1]);
        assert!(elim.is_empty());
    }

    #[test]
    fn reorder_sorts_children_by_selectivity_stably() {
        let leaf = |item: PItem, sel: Selectivity| PlanNode {
            item,
            sel,
            ground: false,
            children: Vec::new(),
        };
        let mut n = PlanNode {
            item: PItem::Const(crate::tree::Marking::label("r")),
            sel: Selectivity::ConstUnknown,
            ground: false,
            children: vec![
                leaf(PItem::TreeVar(Sym::intern("t1")), Selectivity::Any),
                leaf(
                    PItem::Const(crate::tree::Marking::label("x")),
                    Selectivity::Bucket(9),
                ),
                leaf(PItem::ValueVar(Sym::intern("v")), Selectivity::KindVar),
                leaf(
                    PItem::Const(crate::tree::Marking::label("y")),
                    Selectivity::Bucket(2),
                ),
                // Equal key to the first Bucket(9): stable order keeps
                // source order among ties.
                leaf(
                    PItem::Const(crate::tree::Marking::label("z")),
                    Selectivity::Bucket(9),
                ),
            ],
        };
        reorder_children(&mut n);
        let sels: Vec<Selectivity> = n.children.iter().map(|c| c.sel).collect();
        assert_eq!(
            sels,
            vec![
                Selectivity::Bucket(2),
                Selectivity::Bucket(9),
                Selectivity::Bucket(9),
                Selectivity::KindVar,
                Selectivity::Any,
            ]
        );
        let names: Vec<String> = n.children.iter().map(|c| c.item.to_string()).collect();
        assert_eq!(names[1], "x");
        assert_eq!(names[2], "z");
    }

    #[test]
    fn selectivity_estimates_read_only_built_indexes() {
        let t = tree(r#"r{a{b},a{c},a{b}}"#);
        let item = PItem::Const(crate::tree::Marking::label("a"));
        // Below threshold, nothing built: no statistics, and crucially
        // no index build got triggered by estimating.
        assert_eq!(
            estimate(&item, Some(&t), MatchStrategy::Indexed),
            Selectivity::ConstUnknown
        );
        assert!(!t.index_is_built());
        t.build_index();
        assert_eq!(
            estimate(&item, Some(&t), MatchStrategy::Indexed),
            Selectivity::Bucket(3)
        );
        // Scan mode never consults statistics.
        assert_eq!(
            estimate(&item, Some(&t), MatchStrategy::Scan),
            Selectivity::ConstUnknown
        );
    }

    #[test]
    fn factoring_shares_common_subpatterns_across_conjuncts() {
        let q =
            parse_query("h{$x,$y} :- d/a{t{from{$x},to{$y}}}, d/b{t{from{$x},to{$y}}}").unwrap();
        let c = compile_query(&q, None, MatchStrategy::Indexed);
        let plan_nodes: usize = c.plan().atoms.iter().map(|a| a.root.size()).sum();
        assert!(c.program().ops().len() < plan_nodes, "no sharing happened");
        assert!(c.program().shared_count() >= 1);
        // The shared op is the t{from{$x},to{$y]} join node.
        let shared: Vec<&MatchOp> =
            c.program().ops().iter().filter(|o| o.shared).collect();
        assert!(shared.iter().any(|o| o.item.to_string() == "t"));
    }

    #[test]
    fn compiled_execution_matches_the_interpreter() {
        let q = parse_query(
            "h{$x,$y} :- d/r{t{from{$x},to{$y}}, t{from{$y},to{$x}}, marker}",
        )
        .unwrap();
        let t = tree(
            r#"r{t{from{"1"},to{"2"}}, t{from{"2"},to{"1"}}, t{from{"2"},to{"3"}}, marker}"#,
        );
        for strategy in [MatchStrategy::Scan, MatchStrategy::Indexed] {
            let c = compile_query(&q, None, strategy);
            for (pos, atom) in c.program().atoms().iter().enumerate() {
                let (compiled, _) = c.run_atom(pos, &t);
                let (interp, _) =
                    match_pattern_with(&q.body[atom.index].pattern, &t, strategy);
                assert_eq!(compiled, interp, "strategy {strategy:?} atom {pos}");
            }
        }
    }

    #[test]
    fn ground_subtrees_run_as_existence_tests_with_identical_results() {
        let q = parse_query("h{$x} :- d/r{a{b{c},d}, e{$x}}").unwrap();
        let yes = tree(r#"r{a{b{c},d,z}, e{"v"}, e{"w"}}"#);
        let no = tree(r#"r{a{b,d}, e{"v"}}"#);
        let c = compile_query(&q, None, MatchStrategy::Indexed);
        for t in [&yes, &no] {
            let (compiled, _) = c.run_atom(0, t);
            let (interp, _) =
                match_pattern_with(&q.body[0].pattern, t, MatchStrategy::Indexed);
            assert_eq!(compiled, interp);
        }
    }

    #[test]
    fn program_cache_hits_and_invalidates_on_index_generation() {
        let q = parse_query("h{$x} :- d/r{a{$x}}").unwrap();
        let t = tree(r#"r{a{"1"},a{"2"}}"#);
        let mut env = Env::new();
        let d = Sym::intern("d");
        env.insert(d, &t);
        let svc = Sym::intern("svc");
        let mut pc = ProgramCache::new();
        let tracer = Tracer::disabled();
        let p1 = pc.lookup(svc, &q, &env, MatchStrategy::Indexed, tracer);
        assert_eq!((pc.hits(), pc.misses()), (0, 1));
        let p2 = pc.lookup(svc, &q, &env, MatchStrategy::Indexed, tracer);
        assert_eq!((pc.hits(), pc.misses()), (1, 1));
        assert!(Arc::ptr_eq(&p1, &p2));
        // Index crosses its build threshold: generation moves, the
        // program recompiles with fresh selectivity statistics.
        t.build_index();
        let p3 = pc.lookup(svc, &q, &env, MatchStrategy::Indexed, tracer);
        assert_eq!((pc.hits(), pc.misses()), (1, 2));
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert!(pc.compiles() == 2 && pc.compile_ns() > 0);
        // Strategies cache independently.
        pc.lookup(svc, &q, &env, MatchStrategy::Scan, tracer);
        assert_eq!(pc.misses(), 3);
    }

    #[test]
    fn eliminated_atoms_keep_original_indices_in_the_program() {
        let q = parse_query("h{$x} :- d/a{b{$x}}, d/a{b{$x}}, e/c{$x}").unwrap();
        let c = compile_query(&q, None, MatchStrategy::Indexed);
        let indices: Vec<usize> = c.program().atoms().iter().map(|a| a.index).collect();
        assert_eq!(indices, vec![0, 2]);
        assert!(c.dump().contains("eliminated #1: duplicate of #0"));
    }
}
